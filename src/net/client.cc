#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace onion::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

SfcClient::~SfcClient() { Disconnect(); }

Status SfcClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status status =
        Errno("connect " + host + ":" + std::to_string(port));
    Disconnect();
    return status;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Status::OK();
}

void SfcClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_.Reset();
  next_request_id_ = 0;
}

Result<uint64_t> SfcClient::SendRequest(MessageType type,
                                        const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  const uint64_t id = ++next_request_id_;
  const std::vector<uint8_t> wire =
      EncodeFrame(id, static_cast<uint8_t>(type), payload);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return id;
}

Status SfcClient::ReadResponse(Response* out) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  Frame frame;
  while (true) {
    const Status status = decoder_.Next(&frame);
    if (status.ok()) break;
    if (status.code() != StatusCode::kNotFound) return status;  // poisoned
    uint8_t buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return Status::Internal("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
  return DecodeResponse(frame, out);
}

// --- pipelined request builders ------------------------------------------

Result<uint64_t> SfcClient::SendPut(const std::string& table, const Cell& cell,
                                    uint64_t payload) {
  std::vector<uint8_t> body;
  AppendString(&body, table);
  AppendCell(&body, cell);
  AppendU64(&body, payload);
  return SendRequest(MessageType::kPut, body);
}

Result<uint64_t> SfcClient::SendDelete(const std::string& table,
                                       const Cell& cell) {
  std::vector<uint8_t> body;
  AppendString(&body, table);
  AppendCell(&body, cell);
  return SendRequest(MessageType::kDelete, body);
}

Result<uint64_t> SfcClient::SendWrite(const storage::WriteBatch& batch) {
  std::vector<uint8_t> body;
  AppendU32(&body, static_cast<uint32_t>(batch.size()));
  for (const storage::WriteBatch::Op& op : batch.ops()) {
    AppendU8(&body, op.tombstone ? 1 : 0);
    AppendString(&body, op.table);
    AppendCell(&body, op.cell);
    AppendU64(&body, op.payload);
  }
  return SendRequest(MessageType::kWrite, body);
}

Result<uint64_t> SfcClient::SendGet(const std::string& table, const Cell& cell,
                                    uint64_t snapshot_id) {
  std::vector<uint8_t> body;
  AppendString(&body, table);
  AppendCell(&body, cell);
  AppendU64(&body, snapshot_id);
  return SendRequest(MessageType::kGet, body);
}

Result<uint64_t> SfcClient::SendOpenBoxCursor(const std::string& table,
                                              const Box& box,
                                              const RemoteReadOptions& options) {
  std::vector<uint8_t> body;
  AppendString(&body, table);
  AppendBox(&body, box);
  AppendU64(&body, options.snapshot_id);
  AppendU64(&body, options.limit);
  AppendU64(&body, options.max_pages);
  AppendU64(&body, options.max_bytes);
  return SendRequest(MessageType::kOpenBoxCursor, body);
}

Result<uint64_t> SfcClient::SendOpenIndexCursor(
    const std::string& table, const std::string& index, const Box& box,
    const RemoteReadOptions& options) {
  std::vector<uint8_t> body;
  AppendString(&body, table);
  AppendString(&body, index);
  AppendBox(&body, box);
  AppendU64(&body, options.snapshot_id);
  AppendU64(&body, options.limit);
  AppendU64(&body, options.max_pages);
  AppendU64(&body, options.max_bytes);
  return SendRequest(MessageType::kOpenIndexCursor, body);
}

Result<uint64_t> SfcClient::SendCursorNext(uint64_t cursor_id,
                                           uint32_t max_entries) {
  std::vector<uint8_t> body;
  AppendU64(&body, cursor_id);
  AppendU32(&body, max_entries);
  return SendRequest(MessageType::kCursorNext, body);
}

Result<uint64_t> SfcClient::SendCursorClose(uint64_t cursor_id) {
  std::vector<uint8_t> body;
  AppendU64(&body, cursor_id);
  return SendRequest(MessageType::kCursorClose, body);
}

Result<uint64_t> SfcClient::SendSnapshotAcquire() {
  return SendRequest(MessageType::kSnapshotAcquire, {});
}

Result<uint64_t> SfcClient::SendSnapshotRelease(uint64_t snapshot_id) {
  std::vector<uint8_t> body;
  AppendU64(&body, snapshot_id);
  return SendRequest(MessageType::kSnapshotRelease, body);
}

Result<uint64_t> SfcClient::SendDumpMetrics() {
  return SendRequest(MessageType::kDumpMetrics, {});
}

Result<uint64_t> SfcClient::SendPing() {
  return SendRequest(MessageType::kPing, {});
}

// --- synchronous wrappers -------------------------------------------------

Status SfcClient::Call(MessageType type, const std::vector<uint8_t>& payload,
                       Response* out) {
  const Result<uint64_t> id = SendRequest(type, payload);
  if (!id.ok()) return id.status();
  const Status status = ReadResponse(out);
  if (!status.ok()) return status;
  if (out->request_id != id.value() ||
      out->request_type != static_cast<uint8_t>(type)) {
    return Status::Corruption("response does not match request (id " +
                              std::to_string(out->request_id) + " type " +
                              std::to_string(out->request_type) + ")");
  }
  return out->status;
}

Status SfcClient::Put(const std::string& table, const Cell& cell,
                      uint64_t payload) {
  std::vector<uint8_t> body;
  AppendString(&body, table);
  AppendCell(&body, cell);
  AppendU64(&body, payload);
  Response response;
  return Call(MessageType::kPut, body, &response);
}

Status SfcClient::Delete(const std::string& table, const Cell& cell) {
  std::vector<uint8_t> body;
  AppendString(&body, table);
  AppendCell(&body, cell);
  Response response;
  return Call(MessageType::kDelete, body, &response);
}

Status SfcClient::Write(const storage::WriteBatch& batch) {
  const Result<uint64_t> id = SendWrite(batch);
  if (!id.ok()) return id.status();
  Response response;
  const Status status = ReadResponse(&response);
  if (!status.ok()) return status;
  return response.status;
}

Status SfcClient::Get(const std::string& table, const Cell& cell,
                      std::vector<uint64_t>* payloads, uint64_t snapshot_id) {
  std::vector<uint8_t> body;
  AppendString(&body, table);
  AppendCell(&body, cell);
  AppendU64(&body, snapshot_id);
  Response response;
  const Status status = Call(MessageType::kGet, body, &response);
  if (!status.ok()) return status;
  *payloads = std::move(response.payloads);
  return Status::OK();
}

Result<uint64_t> SfcClient::OpenBoxCursor(const std::string& table,
                                          const Box& box,
                                          const RemoteReadOptions& options) {
  const Result<uint64_t> id = SendOpenBoxCursor(table, box, options);
  if (!id.ok()) return id.status();
  Response response;
  const Status status = ReadResponse(&response);
  if (!status.ok()) return status;
  if (!response.status.ok()) return response.status;
  return response.cursor_id;
}

Result<uint64_t> SfcClient::OpenIndexCursor(const std::string& table,
                                            const std::string& index,
                                            const Box& box,
                                            const RemoteReadOptions& options) {
  const Result<uint64_t> id = SendOpenIndexCursor(table, index, box, options);
  if (!id.ok()) return id.status();
  Response response;
  const Status status = ReadResponse(&response);
  if (!status.ok()) return status;
  if (!response.status.ok()) return response.status;
  return response.cursor_id;
}

Status SfcClient::CursorNext(uint64_t cursor_id, uint32_t max_entries,
                             std::vector<SpatialEntry>* entries, bool* done,
                             bool* hit_read_budget) {
  std::vector<uint8_t> body;
  AppendU64(&body, cursor_id);
  AppendU32(&body, max_entries);
  Response response;
  const Status status = Call(MessageType::kCursorNext, body, &response);
  if (!status.ok()) return status;
  entries->insert(entries->end(), response.entries.begin(),
                  response.entries.end());
  *done = (response.flags & kCursorDone) != 0;
  if (hit_read_budget != nullptr) {
    *hit_read_budget = (response.flags & kCursorHitReadBudget) != 0;
  }
  return Status::OK();
}

Status SfcClient::CursorClose(uint64_t cursor_id) {
  std::vector<uint8_t> body;
  AppendU64(&body, cursor_id);
  Response response;
  return Call(MessageType::kCursorClose, body, &response);
}

Result<uint64_t> SfcClient::SnapshotAcquire() {
  const Result<uint64_t> id = SendSnapshotAcquire();
  if (!id.ok()) return id.status();
  Response response;
  const Status status = ReadResponse(&response);
  if (!status.ok()) return status;
  if (!response.status.ok()) return response.status;
  return response.snapshot_id;
}

Status SfcClient::SnapshotRelease(uint64_t snapshot_id) {
  std::vector<uint8_t> body;
  AppendU64(&body, snapshot_id);
  Response response;
  return Call(MessageType::kSnapshotRelease, body, &response);
}

Status SfcClient::DumpMetrics(std::string* json) {
  Response response;
  const Status status = Call(MessageType::kDumpMetrics, {}, &response);
  if (!status.ok()) return status;
  *json = std::move(response.text);
  return Status::OK();
}

Status SfcClient::Ping() {
  Response response;
  return Call(MessageType::kPing, {}, &response);
}

Status SfcClient::BoxQuery(const std::string& table, const Box& box,
                           std::vector<SpatialEntry>* entries,
                           const RemoteReadOptions& options,
                           bool* hit_read_budget) {
  const Result<uint64_t> cursor = OpenBoxCursor(table, box, options);
  if (!cursor.ok()) return cursor.status();
  if (hit_read_budget != nullptr) *hit_read_budget = false;
  bool done = false;
  while (!done) {
    bool hit = false;
    const Status status =
        CursorNext(cursor.value(), 512, entries, &done, &hit);
    if (!status.ok()) {
      (void)CursorClose(cursor.value());
      return status;
    }
    if (hit && hit_read_budget != nullptr) *hit_read_budget = true;
  }
  return Status::OK();  // a done cursor is already closed server-side
}

}  // namespace onion::net
