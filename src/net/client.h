// SfcClient: a small blocking client for the SfcServer wire protocol —
// and deliberately the protocol's SECOND implementation. The server never
// parses bytes the client produced through shared request-building code
// paths alone: both endpoints meet only at net/protocol.h's byte layout,
// which keeps the spec in docs/network_protocol.md honest.
//
// Two layers:
//   pipelined   Send*() enqueues one request frame on the socket and
//               returns its request id immediately; ReadResponse() blocks
//               for the next response in server order. A caller may issue
//               any number of Send*() calls before reading — that is the
//               protocol's pipelining — and match responses by id.
//   synchronous Put/Get/Write/... wrappers send one request, read one
//               response, and fold remote errors into the returned Status.
//
// The client is single-connection and NOT thread-safe; use one per thread
// (connections are cheap — the load driver bench/bench_net.cc opens
// thousands).

#ifndef ONION_NET_CLIENT_H_
#define ONION_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "sfc/types.h"
#include "storage/write_batch.h"

namespace onion::net {

/// Budgets for a remote cursor open; zeros mean "no bound" exactly like
/// storage::ReadOptions.
struct RemoteReadOptions {
  uint64_t limit = 0;
  uint64_t max_pages = 0;
  uint64_t max_bytes = 0;
  /// A server-side snapshot id from SnapshotAcquire(); 0 reads latest.
  uint64_t snapshot_id = 0;
};

class SfcClient {
 public:
  SfcClient() = default;
  ~SfcClient();

  SfcClient(const SfcClient&) = delete;
  SfcClient& operator=(const SfcClient&) = delete;

  /// Opens the TCP connection (blocking, TCP_NODELAY). InvalidArgument on
  /// a bad address, Internal on socket errors.
  Status Connect(const std::string& host, uint16_t port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  // --- pipelined layer ----------------------------------------------------

  /// Each Send* writes one request frame and returns its request id; the
  /// matching response arrives via ReadResponse() in request order.
  Result<uint64_t> SendPut(const std::string& table, const Cell& cell,
                           uint64_t payload);
  Result<uint64_t> SendDelete(const std::string& table, const Cell& cell);
  Result<uint64_t> SendWrite(const storage::WriteBatch& batch);
  Result<uint64_t> SendGet(const std::string& table, const Cell& cell,
                           uint64_t snapshot_id = 0);
  Result<uint64_t> SendOpenBoxCursor(const std::string& table, const Box& box,
                                     const RemoteReadOptions& options = {});
  Result<uint64_t> SendOpenIndexCursor(const std::string& table,
                                       const std::string& index,
                                       const Box& box,
                                       const RemoteReadOptions& options = {});
  Result<uint64_t> SendCursorNext(uint64_t cursor_id, uint32_t max_entries);
  Result<uint64_t> SendCursorClose(uint64_t cursor_id);
  Result<uint64_t> SendSnapshotAcquire();
  Result<uint64_t> SendSnapshotRelease(uint64_t snapshot_id);
  Result<uint64_t> SendDumpMetrics();
  Result<uint64_t> SendPing();

  /// Blocks for the next response frame (server order = request order) and
  /// decodes it. Corruption poisons the connection.
  Status ReadResponse(Response* out);

  // --- synchronous layer --------------------------------------------------

  Status Put(const std::string& table, const Cell& cell, uint64_t payload);
  Status Delete(const std::string& table, const Cell& cell);
  /// Ships the whole batch as one atomic kWrite.
  Status Write(const storage::WriteBatch& batch);
  Status Get(const std::string& table, const Cell& cell,
             std::vector<uint64_t>* payloads, uint64_t snapshot_id = 0);
  Result<uint64_t> OpenBoxCursor(const std::string& table, const Box& box,
                                 const RemoteReadOptions& options = {});
  Result<uint64_t> OpenIndexCursor(const std::string& table,
                                   const std::string& index, const Box& box,
                                   const RemoteReadOptions& options = {});
  /// One chunk: appends to `entries`, sets `done` when the cursor is
  /// exhausted server-side (then the id is already closed) and
  /// `hit_read_budget` when exhaustion came from a ReadOptions budget.
  Status CursorNext(uint64_t cursor_id, uint32_t max_entries,
                    std::vector<SpatialEntry>* entries, bool* done,
                    bool* hit_read_budget = nullptr);
  Status CursorClose(uint64_t cursor_id);
  Result<uint64_t> SnapshotAcquire();
  Status SnapshotRelease(uint64_t snapshot_id);
  Status DumpMetrics(std::string* json);
  Status Ping();

  /// Convenience: opens a box cursor, drains it chunk by chunk, closes it.
  /// `hit_read_budget` (optional) reports budget truncation.
  Status BoxQuery(const std::string& table, const Box& box,
                  std::vector<SpatialEntry>* entries,
                  const RemoteReadOptions& options = {},
                  bool* hit_read_budget = nullptr);

 private:
  /// Encodes and writes one request frame; returns its id.
  Result<uint64_t> SendRequest(MessageType type,
                               const std::vector<uint8_t>& payload);
  /// Send + ReadResponse + request-id/type match + remote status folding.
  Status Call(MessageType type, const std::vector<uint8_t>& payload,
              Response* out);

  int fd_ = -1;
  uint64_t next_request_id_ = 0;
  FrameDecoder decoder_;
};

}  // namespace onion::net

#endif  // ONION_NET_CLIENT_H_
