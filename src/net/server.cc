#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "storage/write_batch.h"

namespace onion::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

std::string PeerName(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof buf);
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

SfcServer::SfcServer(storage::SfcDb* db, const SfcServerOptions& options)
    : db_(db), options_(options) {
  obs::MetricsRegistry& m = db_->metrics();
  connections_accepted_ = m.counter("net.connections_accepted");
  connections_refused_ = m.counter("net.connections_refused");
  sessions_expired_ = m.counter("net.sessions_expired");
  snapshots_force_released_ = m.counter("snapshots.force_released");
  requests_ = m.counter("net.requests");
  requests_bad_ = m.counter("net.requests_bad");
  frames_bad_ = m.counter("net.frames_bad");
  bytes_read_ = m.counter("net.bytes_read");
  bytes_written_ = m.counter("net.bytes_written");
  write_queue_stalls_ = m.counter("net.write_queue_stalls");
  active_connections_ = m.gauge("net.active_connections");
  snapshots_pinned_ = m.gauge("net.snapshots_pinned");
  cursors_open_ = m.gauge("net.cursors_open");
  request_us_ = m.histogram("net.request_us");
}

SfcServer::~SfcServer() { Stop(); }

int64_t SfcServer::active_connections() const {
  return active_connections_->value();
}

Status SfcServer::Start() {
  if (running_.load(std::memory_order_acquire) || loop_thread_.joinable()) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 4096) != 0) {
    const Status status = Errno("bind/listen " + options_.host + ":" +
                                std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status status = Errno("epoll_create1/eventfd");
    Stop();
    return status;
  }
  epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread(&SfcServer::Loop, this);
  return Status::OK();
}

void SfcServer::Stop() {
  if (loop_thread_.joinable()) {
    stop_requested_.store(true, std::memory_order_release);
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
    loop_thread_.join();
  }
  // The loop is gone: tear down every session (releasing its snapshot
  // pins and cursors) and the listening machinery.
  while (!sessions_.empty()) {
    CloseSession(sessions_.begin()->first, "server stop");
  }
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  running_.store(false, std::memory_order_release);
}

void SfcServer::Loop() {
  const uint64_t deadline_us = options_.session_idle_deadline_ms * 1000;
  const uint64_t sweep_us =
      deadline_us == 0 ? 0 : std::max<uint64_t>(deadline_us / 4, 10'000);
  uint64_t next_sweep_us = obs::NowMicros() + sweep_us;
  std::vector<epoll_event> events(1024);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // A session may hold decoded-but-unexecuted frames after a fairness
    // cutoff; those are runnable without any new socket event, as long as
    // backpressure is not holding them.
    bool runnable_pending = false;
    for (const auto& [fd, session] : sessions_) {
      if (session->input_pending &&
          session->queued_bytes <= options_.write_queue_limit_bytes) {
        runnable_pending = true;
        break;
      }
    }
    int timeout_ms = -1;
    if (runnable_pending) {
      timeout_ms = 0;
    } else if (sweep_us != 0) {
      const uint64_t now = obs::NowMicros();
      timeout_ms = next_sweep_us <= now
                       ? 0
                       : static_cast<int>(
                             std::min<uint64_t>((next_sweep_us - now) / 1000 + 1,
                                                1000));
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof drained);
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      const auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;  // closed earlier this batch
      Session* session = it->second.get();
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseSession(fd, "peer hangup");
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) SessionWritable(session);
      if (sessions_.find(fd) == sessions_.end()) continue;
      if ((events[i].events & EPOLLIN) != 0) SessionReadable(session);
    }
    // Revisit fairness-deferred input. Collect fds first: DrainRequests
    // may close sessions, invalidating iterators.
    std::vector<int> pending;
    for (const auto& [fd, session] : sessions_) {
      if (session->input_pending &&
          session->queued_bytes <= options_.write_queue_limit_bytes) {
        pending.push_back(fd);
      }
    }
    for (const int fd : pending) {
      const auto it = sessions_.find(fd);
      if (it != sessions_.end()) (void)DrainRequests(it->second.get());
    }
    if (sweep_us != 0) {
      const uint64_t now = obs::NowMicros();
      if (now >= next_sweep_us) {
        ExpireStale(now);
        next_sweep_us = now + sweep_us;
      }
    }
  }
}

void SfcServer::AcceptReady() {
  while (true) {
    sockaddr_in addr = {};
    socklen_t len = sizeof addr;
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                             &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: nothing more to accept
    if (sessions_.size() >= options_.max_connections) {
      connections_refused_->Increment();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.socket_send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                   &options_.socket_send_buffer_bytes,
                   sizeof options_.socket_send_buffer_bytes);
    }
    auto session = std::make_unique<Session>(options_.max_frame_bytes);
    session->fd = fd;
    session->id = ++next_session_id_;
    session->peer = PeerName(addr);
    session->last_activity_us = obs::NowMicros();
    session->epoll_mask = EPOLLIN;
    epoll_event ev = {};
    ev.events = session->epoll_mask;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    sessions_.emplace(fd, std::move(session));
    connections_accepted_->Increment();
    active_connections_->Add(1);
  }
}

void SfcServer::SessionReadable(Session* session) {
  uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(session->fd, buf, sizeof buf, 0);
    if (n > 0) {
      bytes_read_->Add(static_cast<uint64_t>(n));
      session->last_activity_us = obs::NowMicros();
      session->decoder.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) {
      CloseSession(session->fd, "peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseSession(session->fd, "read error");
    return;
  }
  (void)DrainRequests(session);
}

bool SfcServer::DrainRequests(Session* session) {
  session->input_pending = false;
  for (uint32_t i = 0; i < options_.max_requests_per_tick; ++i) {
    if (session->queued_bytes > options_.write_queue_limit_bytes) {
      // Backpressured: leave the rest buffered; the write path revives us.
      session->input_pending = true;
      break;
    }
    Frame frame;
    const Status status = session->decoder.Next(&frame);
    if (status.code() == StatusCode::kNotFound) break;
    if (!status.ok()) {
      // Framing is unrecoverable (bad CRC, oversized length): the only
      // safe continuation is dropping the connection.
      frames_bad_->Increment();
      CloseSession(session->fd, "protocol error");
      return false;
    }
    HandleFrame(session, frame);
    if (i + 1 == options_.max_requests_per_tick) session->input_pending = true;
  }
  UpdateInterest(session);
  return true;
}

void SfcServer::HandleFrame(Session* session, const Frame& frame) {
  const obs::ScopedTimer timer(request_us_);
  requests_->Increment();
  session->last_activity_us = timer.start_us();
  std::vector<uint8_t> payload;
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kPut: payload = ExecPut(frame); break;
    case MessageType::kDelete: payload = ExecDelete(frame); break;
    case MessageType::kWrite: payload = ExecWrite(frame); break;
    case MessageType::kGet: payload = ExecGet(session, frame); break;
    case MessageType::kOpenBoxCursor:
      payload = ExecOpenBoxCursor(session, frame);
      break;
    case MessageType::kCursorNext:
      payload = ExecCursorNext(session, frame);
      break;
    case MessageType::kCursorClose:
      payload = ExecCursorClose(session, frame);
      break;
    case MessageType::kOpenIndexCursor:
      payload = ExecOpenIndexCursor(session, frame);
      break;
    case MessageType::kSnapshotAcquire:
      payload = ExecSnapshotAcquire(session);
      break;
    case MessageType::kSnapshotRelease:
      payload = ExecSnapshotRelease(session, frame);
      break;
    case MessageType::kDumpMetrics: payload = ExecDumpMetrics(); break;
    case MessageType::kPing: AppendStatusHeader(&payload, Status::OK()); break;
    default:
      requests_bad_->Increment();
      AppendStatusHeader(&payload,
                         Status::InvalidArgument(
                             "unknown request type " +
                             std::to_string(frame.type)));
      break;
  }
  QueueResponse(session, frame.request_id, frame.type, payload);
}

void SfcServer::QueueResponse(Session* session, uint64_t request_id,
                              uint8_t request_type,
                              const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> wire =
      EncodeFrame(request_id, request_type | kResponseBit, payload);
  // Opportunistic send: with an empty queue, most responses go straight
  // to the socket without ever arming EPOLLOUT.
  size_t sent = 0;
  if (session->write_queue.empty()) {
    while (sent < wire.size()) {
      const ssize_t n = ::send(session->fd, wire.data() + sent,
                               wire.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN (or a hard error EPOLLOUT/ERR will surface)
    }
    bytes_written_->Add(sent);
    if (sent > 0) session->last_activity_us = obs::NowMicros();
  }
  if (sent < wire.size()) {
    session->queued_bytes += wire.size() - sent;
    session->write_queue.push_back(std::move(wire));
    if (session->write_queue.size() == 1) session->head_sent = sent;
  }
}

void SfcServer::SessionWritable(Session* session) {
  while (!session->write_queue.empty()) {
    std::vector<uint8_t>& head = session->write_queue.front();
    const ssize_t n =
        ::send(session->fd, head.data() + session->head_sent,
               head.size() - session->head_sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseSession(session->fd, "write error");
      return;
    }
    bytes_written_->Add(static_cast<uint64_t>(n));
    session->queued_bytes -= static_cast<size_t>(n);
    session->head_sent += static_cast<size_t>(n);
    session->last_activity_us = obs::NowMicros();
    if (session->head_sent == head.size()) {
      session->write_queue.erase(session->write_queue.begin());
      session->head_sent = 0;
    }
  }
  // Draining may lift backpressure; deferred input runs on the next loop
  // pass (input_pending is still set).
  UpdateInterest(session);
}

void SfcServer::UpdateInterest(Session* session) {
  uint32_t desired = 0;
  if (!session->write_queue.empty()) desired |= EPOLLOUT;
  // Backpressure with hysteresis: stop reading above the limit, resume
  // below half of it — so a borderline queue does not flap the interest
  // set on every frame.
  const bool reading = (session->epoll_mask & EPOLLIN) != 0;
  if (reading ? session->queued_bytes <= options_.write_queue_limit_bytes
              : session->queued_bytes < options_.write_queue_limit_bytes / 2) {
    desired |= EPOLLIN;
  }
  if (desired == session->epoll_mask) return;
  if (reading && (desired & EPOLLIN) == 0) write_queue_stalls_->Increment();
  epoll_event ev = {};
  ev.events = desired;
  ev.data.fd = session->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->fd, &ev) == 0) {
    session->epoll_mask = desired;
  }
}

void SfcServer::CloseSession(int fd, const char* reason) {
  (void)reason;
  const auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session* session = it->second.get();
  snapshots_pinned_->Add(-static_cast<int64_t>(session->snapshots.size()));
  cursors_open_->Add(-static_cast<int64_t>(session->cursors.size()));
  active_connections_->Add(-1);
  if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  // Destroying the session releases its cursors first-class and drops
  // every DbSnapshot shared_ptr — the pins unregister themselves.
  sessions_.erase(it);
}

void SfcServer::ExpireStale(uint64_t now_us) {
  const uint64_t deadline_us = options_.session_idle_deadline_ms * 1000;
  std::vector<int> stale;
  for (const auto& [fd, session] : sessions_) {
    if (now_us - session->last_activity_us > deadline_us) stale.push_back(fd);
  }
  for (const int fd : stale) {
    Session* session = sessions_.at(fd).get();
    // Count the DbSnapshot pins this expiry force-releases: the ones the
    // client still holds by id, plus the ones kept alive only by its open
    // cursors.
    uint64_t pins = session->snapshots.size();
    for (const auto& [id, state] : session->cursors) {
      if (state.pin != nullptr) ++pins;
    }
    sessions_expired_->Increment();
    snapshots_force_released_->Add(pins);
    obs::TraceRing& ring = db_->trace();
    obs::TraceEvent event;
    event.id = ring.NextId();
    event.kind = obs::TraceKind::kSessionExpire;
    event.label = session->peer;
    event.start_us = session->last_activity_us;
    event.dur_us = now_us - session->last_activity_us;
    event.entries = pins;
    ring.Add(std::move(event));
    CloseSession(fd, "session deadline");
  }
}

// --- request executors ----------------------------------------------------

storage::SfcTable* SfcServer::ResolveTable(const std::string& name,
                                           Status* status) {
  storage::SfcTable* table = db_->GetTable(name);
  if (table != nullptr) return table;
  Result<storage::SfcTable*> opened = db_->OpenTable(name);
  if (!opened.ok()) {
    *status = opened.status();
    return nullptr;
  }
  return opened.value();
}

Status SfcServer::ResolveSnapshot(
    Session* session, uint64_t snapshot_id,
    std::shared_ptr<const storage::DbSnapshot>* out) {
  if (snapshot_id == 0) {
    out->reset();
    return Status::OK();
  }
  const auto it = session->snapshots.find(snapshot_id);
  if (it == session->snapshots.end()) {
    return Status::NotFound("unknown snapshot id " +
                            std::to_string(snapshot_id));
  }
  *out = it->second;
  return Status::OK();
}

namespace {

/// A response carrying only the status header.
std::vector<uint8_t> StatusOnly(const Status& status) {
  std::vector<uint8_t> out;
  AppendStatusHeader(&out, status);
  return out;
}

const Status kMalformed = Status::InvalidArgument("malformed request payload");

}  // namespace

std::vector<uint8_t> SfcServer::ExecPut(const Frame& frame) {
  PayloadReader reader(frame.payload);
  std::string table;
  Cell cell;
  uint64_t payload = 0;
  if (!reader.ReadString(&table) || !reader.ReadCell(&cell) ||
      !reader.ReadU64(&payload) || !reader.Done()) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  storage::WriteBatch batch;
  batch.Put(std::move(table), cell, payload);
  return StatusOnly(db_->Write(std::move(batch)));
}

std::vector<uint8_t> SfcServer::ExecDelete(const Frame& frame) {
  PayloadReader reader(frame.payload);
  std::string table;
  Cell cell;
  if (!reader.ReadString(&table) || !reader.ReadCell(&cell) ||
      !reader.Done()) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  storage::WriteBatch batch;
  batch.Delete(std::move(table), cell);
  return StatusOnly(db_->Write(std::move(batch)));
}

std::vector<uint8_t> SfcServer::ExecWrite(const Frame& frame) {
  PayloadReader reader(frame.payload);
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  storage::WriteBatch batch;
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t tombstone = 0;
    std::string table;
    Cell cell;
    uint64_t payload = 0;
    if (!reader.ReadU8(&tombstone) || !reader.ReadString(&table) ||
        !reader.ReadCell(&cell) || !reader.ReadU64(&payload)) {
      requests_bad_->Increment();
      return StatusOnly(kMalformed);
    }
    if (tombstone != 0) {
      batch.Delete(std::move(table), cell);
    } else {
      batch.Put(std::move(table), cell, payload);
    }
  }
  if (!reader.Done()) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  return StatusOnly(db_->Write(std::move(batch)));
}

std::vector<uint8_t> SfcServer::ExecGet(Session* session, const Frame& frame) {
  PayloadReader reader(frame.payload);
  std::string table_name;
  Cell cell;
  uint64_t snapshot_id = 0;
  if (!reader.ReadString(&table_name) || !reader.ReadCell(&cell) ||
      !reader.ReadU64(&snapshot_id) || !reader.Done()) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  Status status;
  storage::SfcTable* table = ResolveTable(table_name, &status);
  if (table == nullptr) return StatusOnly(status);
  std::shared_ptr<const storage::DbSnapshot> pin;
  status = ResolveSnapshot(session, snapshot_id, &pin);
  if (!status.ok()) return StatusOnly(status);
  ReadOptions options;
  if (pin != nullptr) options.snapshot = pin->ForTable(table);
  Result<std::vector<uint64_t>> result = table->Get(cell, options);
  if (!result.ok()) return StatusOnly(result.status());
  std::vector<uint8_t> out = StatusOnly(Status::OK());
  const std::vector<uint64_t>& payloads = result.value();
  AppendU32(&out, static_cast<uint32_t>(payloads.size()));
  for (const uint64_t p : payloads) AppendU64(&out, p);
  return out;
}

std::vector<uint8_t> SfcServer::ExecOpenBoxCursor(Session* session,
                                                  const Frame& frame) {
  PayloadReader reader(frame.payload);
  std::string table_name;
  Box box;
  uint64_t snapshot_id = 0;
  ReadOptions options;
  if (!reader.ReadString(&table_name) || !reader.ReadBox(&box) ||
      !reader.ReadU64(&snapshot_id) || !reader.ReadU64(&options.limit) ||
      !reader.ReadU64(&options.max_pages) ||
      !reader.ReadU64(&options.max_bytes) || !reader.Done()) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  Status status;
  storage::SfcTable* table = ResolveTable(table_name, &status);
  if (table == nullptr) return StatusOnly(status);
  std::shared_ptr<const storage::DbSnapshot> pin;
  status = ResolveSnapshot(session, snapshot_id, &pin);
  if (!status.ok()) return StatusOnly(status);
  if (pin != nullptr) options.snapshot = pin->ForTable(table);
  std::unique_ptr<Cursor> cursor = table->NewBoxCursor(box, options);
  if (!cursor->Valid() && !cursor->status().ok()) {
    return StatusOnly(cursor->status());
  }
  const uint64_t id = ++next_cursor_id_;
  session->cursors.emplace(id, CursorState{std::move(cursor), std::move(pin)});
  cursors_open_->Add(1);
  std::vector<uint8_t> out = StatusOnly(Status::OK());
  AppendU64(&out, id);
  return out;
}

std::vector<uint8_t> SfcServer::ExecOpenIndexCursor(Session* session,
                                                    const Frame& frame) {
  PayloadReader reader(frame.payload);
  std::string table_name;
  std::string index_name;
  Box box;
  uint64_t snapshot_id = 0;
  storage::IndexReadOptions options;
  if (!reader.ReadString(&table_name) || !reader.ReadString(&index_name) ||
      !reader.ReadBox(&box) || !reader.ReadU64(&snapshot_id) ||
      !reader.ReadU64(&options.limit) || !reader.ReadU64(&options.max_pages) ||
      !reader.ReadU64(&options.max_bytes) || !reader.Done()) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  std::shared_ptr<const storage::DbSnapshot> pin;
  const Status status = ResolveSnapshot(session, snapshot_id, &pin);
  if (!status.ok()) return StatusOnly(status);
  options.snapshot = pin;
  std::unique_ptr<Cursor> cursor =
      db_->NewIndexCursor(table_name, index_name, box, options);
  if (!cursor->Valid() && !cursor->status().ok()) {
    return StatusOnly(cursor->status());
  }
  const uint64_t id = ++next_cursor_id_;
  session->cursors.emplace(id, CursorState{std::move(cursor), std::move(pin)});
  cursors_open_->Add(1);
  std::vector<uint8_t> out = StatusOnly(Status::OK());
  AppendU64(&out, id);
  return out;
}

std::vector<uint8_t> SfcServer::ExecCursorNext(Session* session,
                                               const Frame& frame) {
  PayloadReader reader(frame.payload);
  uint64_t cursor_id = 0;
  uint32_t max_entries = 0;
  if (!reader.ReadU64(&cursor_id) || !reader.ReadU32(&max_entries) ||
      !reader.Done()) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  const auto it = session->cursors.find(cursor_id);
  if (it == session->cursors.end()) {
    return StatusOnly(
        Status::NotFound("unknown cursor id " + std::to_string(cursor_id)));
  }
  Cursor* cursor = it->second.cursor.get();
  const uint32_t cap =
      std::min(std::max<uint32_t>(max_entries, 1), options_.max_entries_per_chunk);
  std::vector<uint8_t> body;
  uint32_t count = 0;
  for (; cursor->Valid() && count < cap; cursor->Next(), ++count) {
    const SpatialEntry& entry = cursor->entry();
    AppendCell(&body, entry.cell);
    AppendU64(&body, entry.payload);
    AppendU64(&body, entry.seq);
  }
  uint8_t flags = 0;
  if (!cursor->Valid()) {
    if (!cursor->status().ok()) {
      // A failed cursor is dead; release it with the error.
      const Status status = cursor->status();
      session->cursors.erase(it);
      cursors_open_->Add(-1);
      return StatusOnly(status);
    }
    flags |= kCursorDone;
    if (cursor->hit_read_budget()) flags |= kCursorHitReadBudget;
    // Exhausted cursors close server-side; a later kCursorClose is an
    // idempotent no-op.
    session->cursors.erase(it);
    cursors_open_->Add(-1);
  }
  std::vector<uint8_t> out = StatusOnly(Status::OK());
  AppendU8(&out, flags);
  AppendU32(&out, count);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<uint8_t> SfcServer::ExecCursorClose(Session* session,
                                                const Frame& frame) {
  PayloadReader reader(frame.payload);
  uint64_t cursor_id = 0;
  if (!reader.ReadU64(&cursor_id) || !reader.Done()) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  if (session->cursors.erase(cursor_id) > 0) cursors_open_->Add(-1);
  return StatusOnly(Status::OK());
}

std::vector<uint8_t> SfcServer::ExecSnapshotAcquire(Session* session) {
  Result<std::shared_ptr<const storage::DbSnapshot>> snapshot =
      db_->GetSnapshot();
  if (!snapshot.ok()) return StatusOnly(snapshot.status());
  const uint64_t id = ++next_snapshot_id_;
  session->snapshots.emplace(id, std::move(snapshot).value());
  snapshots_pinned_->Add(1);
  std::vector<uint8_t> out = StatusOnly(Status::OK());
  AppendU64(&out, id);
  return out;
}

std::vector<uint8_t> SfcServer::ExecSnapshotRelease(Session* session,
                                                    const Frame& frame) {
  PayloadReader reader(frame.payload);
  uint64_t snapshot_id = 0;
  if (!reader.ReadU64(&snapshot_id) || !reader.Done()) {
    requests_bad_->Increment();
    return StatusOnly(kMalformed);
  }
  if (session->snapshots.erase(snapshot_id) == 0) {
    return StatusOnly(Status::NotFound("unknown snapshot id " +
                                       std::to_string(snapshot_id)));
  }
  snapshots_pinned_->Add(-1);
  return StatusOnly(Status::OK());
}

std::vector<uint8_t> SfcServer::ExecDumpMetrics() {
  const std::string json = db_->DumpMetrics();
  std::vector<uint8_t> out = StatusOnly(Status::OK());
  AppendU32(&out, static_cast<uint32_t>(json.size()));
  out.insert(out.end(), json.begin(), json.end());
  return out;
}

}  // namespace onion::net
