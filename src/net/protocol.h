// The wire protocol of the network front end: compact length-prefixed
// binary frames carrying SfcDb requests and responses over a byte stream.
//
// Frame layout (little-endian, byte-level spec in
// docs/network_protocol.md):
//
//   u32 len         byte length of the body (request id + type + payload);
//                   kMinFrameBody <= len <= max_frame_bytes
//   u32 crc         CRC32C (storage/crc32c.h) over the `len` body bytes
//   u64 request_id  caller-chosen correlation id: the response to a
//                   request echoes it verbatim, which is what lets a
//                   client PIPELINE any number of requests on one
//                   connection before reading the first response
//   u8  type        MessageType
//   payload         len - 9 bytes, layout per type (see the catalog below)
//
// Responses reuse the frame format: a response's type is the request's
// type with kResponseBit set, and every response payload begins with a
// status header (u8 StatusCode + string message) before the type-specific
// fields. The encoding vocabulary is deliberately tiny — unsigned
// little-endian integers, `u16 len + bytes` strings, `u8 dims + dims*u32`
// cells — so a second implementation (SfcClient, the conformance peer of
// SfcServer) stays honest.
//
// FrameDecoder is the single shared deserializer: both endpoints feed it
// raw stream bytes and pop whole validated frames. It never trusts the
// peer — oversized lengths, torn frames, and CRC mismatches surface as
// Status::Corruption, and payload readers bounds-check every field — so a
// malicious or corrupted stream can at worst close its own connection.

#ifndef ONION_NET_PROTOCOL_H_
#define ONION_NET_PROTOCOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "sfc/types.h"
#include "storage/cursor.h"

namespace onion::net {

/// Bytes before the body: u32 len + u32 crc.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Smallest legal body: u64 request_id + u8 type, no payload.
inline constexpr size_t kMinFrameBody = 9;
/// Default ceiling on one frame's body — a peer announcing more is
/// corrupt or hostile and its connection is dropped before any
/// allocation of that size happens.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Set on a response frame's type; the low 7 bits are the request's type.
inline constexpr uint8_t kResponseBit = 0x80;

enum class MessageType : uint8_t {
  kPut = 1,              // str table, cell, u64 payload
  kDelete = 2,           // str table, cell
  kWrite = 3,            // u32 n, n * (u8 tombstone, str table, cell, u64)
  kGet = 4,              // str table, cell, u64 snapshot_id (0 = latest)
  kOpenBoxCursor = 5,    // str table, box, u64 snapshot_id,
                         // u64 limit, u64 max_pages, u64 max_bytes
  kCursorNext = 6,       // u64 cursor_id, u32 max_entries
  kCursorClose = 7,      // u64 cursor_id
  kOpenIndexCursor = 8,  // str table, str index, box, u64 snapshot_id,
                         // u64 limit, u64 max_pages, u64 max_bytes
  kSnapshotAcquire = 9,   // (empty) -> u64 snapshot_id
  kSnapshotRelease = 10,  // u64 snapshot_id
  kDumpMetrics = 11,      // (empty) -> u32 len + JSON bytes
  kPing = 12,             // (empty) -> status only
};

/// Stable lower-case name for logs and tests ("put", "cursor_next", ...);
/// "unknown" for values outside the catalog. The response bit is ignored.
const char* MessageTypeName(uint8_t type);

/// True when `type` (without kResponseBit) names a known request.
bool IsKnownRequestType(uint8_t type);

/// CursorNext response flags.
inline constexpr uint8_t kCursorDone = 0x01;
inline constexpr uint8_t kCursorHitReadBudget = 0x02;

/// One decoded frame: the validated body, split into its fixed fields and
/// the raw payload bytes.
struct Frame {
  uint64_t request_id = 0;
  uint8_t type = 0;
  std::vector<uint8_t> payload;
};

// --- encoding ------------------------------------------------------------

/// Append primitives (little-endian, matching storage/codec.h).
void AppendU8(std::vector<uint8_t>* out, uint8_t v);
void AppendU16(std::vector<uint8_t>* out, uint16_t v);
void AppendU32(std::vector<uint8_t>* out, uint32_t v);
void AppendU64(std::vector<uint8_t>* out, uint64_t v);
/// u16 length prefix + raw bytes; aborts on strings over 64 KiB (table and
/// index names are short by construction).
void AppendString(std::vector<uint8_t>* out, const std::string& s);
/// u8 dims + dims * u32 coords.
void AppendCell(std::vector<uint8_t>* out, const Cell& cell);
/// Two cells (lo, hi); dims must match.
void AppendBox(std::vector<uint8_t>* out, const Box& box);

/// Wraps (request_id, type, payload) into one complete frame — header,
/// CRC, body — ready to write to the stream.
std::vector<uint8_t> EncodeFrame(uint64_t request_id, uint8_t type,
                                 const std::vector<uint8_t>& payload);

/// The status header every response payload starts with.
void AppendStatusHeader(std::vector<uint8_t>* out, const Status& status);

// --- bounds-checked payload reading --------------------------------------

/// Sequential reader over one frame's payload. Every Read* returns false
/// (and poisons the reader) when the remaining bytes cannot hold the
/// field; a well-formed consumer checks the final Done() too, so trailing
/// garbage is also detected.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<uint8_t>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  bool ReadU8(uint8_t* v);
  bool ReadU16(uint16_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadString(std::string* s);
  bool ReadCell(Cell* cell);
  bool ReadBox(Box* box);
  /// Reads `n` raw bytes.
  bool ReadBytes(size_t n, std::vector<uint8_t>* out);

  /// True when the whole payload was consumed and nothing failed.
  bool Done() const { return ok_ && at_ == size_; }
  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - at_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t at_ = 0;
  bool ok_ = true;
};

/// Reads a response's status header (the inverse of AppendStatusHeader).
bool ReadStatusHeader(PayloadReader* reader, Status* status);

// --- stream decoding ------------------------------------------------------

/// Incremental frame deserializer: feed stream bytes in any fragmentation,
/// pop whole frames. After the first error (oversized length, CRC
/// mismatch, undersized body) the decoder is poisoned — framing is lost,
/// so the only safe continuation is closing the connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Buffers `n` more stream bytes. No-op once poisoned.
  void Feed(const uint8_t* data, size_t n);

  /// Pops the next complete frame into `out`. Returns:
  ///   OK            — one frame delivered, call again for more
  ///   NotFound      — no complete frame buffered yet (not an error)
  ///   Corruption    — the stream violated the framing rules (sticky)
  Status Next(Frame* out);

  /// Bytes buffered but not yet consumed by a delivered frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  bool poisoned() const { return !error_.ok(); }

  /// Back to a fresh decoder (new connection on a reused endpoint).
  void Reset() {
    buffer_.clear();
    consumed_ = 0;
    error_ = Status::OK();
  }

 private:
  const uint32_t max_frame_bytes_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already handed out as frames
  Status error_;         // sticky first framing error
};

// --- typed response decoding (shared by SfcClient and tests) -------------

/// One parsed response frame. `status` is the remote outcome; the
/// type-specific fields are meaningful only when status.ok() (except
/// `entries`/`flags`, which a budget-truncated CursorNext still fills).
struct Response {
  uint64_t request_id = 0;
  uint8_t request_type = 0;  // response bit stripped
  Status status;
  std::vector<uint64_t> payloads;       // kGet
  std::vector<SpatialEntry> entries;    // kCursorNext
  uint8_t flags = 0;                    // kCursorNext (kCursorDone, ...)
  uint64_t cursor_id = 0;               // kOpenBoxCursor / kOpenIndexCursor
  uint64_t snapshot_id = 0;             // kSnapshotAcquire
  std::string text;                     // kDumpMetrics (JSON)
};

/// Parses a response frame into its typed form. Corruption when the frame
/// is not a well-formed response of a known type.
Status DecodeResponse(const Frame& frame, Response* out);

}  // namespace onion::net

#endif  // ONION_NET_PROTOCOL_H_
