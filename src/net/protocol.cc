#include "net/protocol.h"

#include <cstring>

#include "common/macros.h"
#include "storage/codec.h"
#include "storage/crc32c.h"

namespace onion::net {

using storage::Crc32c;
using storage::GetU32;
using storage::GetU64;

const char* MessageTypeName(uint8_t type) {
  switch (static_cast<MessageType>(type & ~kResponseBit)) {
    case MessageType::kPut: return "put";
    case MessageType::kDelete: return "delete";
    case MessageType::kWrite: return "write";
    case MessageType::kGet: return "get";
    case MessageType::kOpenBoxCursor: return "open_box_cursor";
    case MessageType::kCursorNext: return "cursor_next";
    case MessageType::kCursorClose: return "cursor_close";
    case MessageType::kOpenIndexCursor: return "open_index_cursor";
    case MessageType::kSnapshotAcquire: return "snapshot_acquire";
    case MessageType::kSnapshotRelease: return "snapshot_release";
    case MessageType::kDumpMetrics: return "dump_metrics";
    case MessageType::kPing: return "ping";
  }
  return "unknown";
}

bool IsKnownRequestType(uint8_t type) {
  const uint8_t raw = type & ~kResponseBit;
  return raw >= static_cast<uint8_t>(MessageType::kPut) &&
         raw <= static_cast<uint8_t>(MessageType::kPing);
}

void AppendU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void AppendU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + 4);
  storage::PutU32(out->data() + at, v);
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + 8);
  storage::PutU64(out->data() + at, v);
}

void AppendString(std::vector<uint8_t>* out, const std::string& s) {
  ONION_CHECK_MSG(s.size() <= UINT16_MAX, "string field over 64 KiB");
  AppendU16(out, static_cast<uint16_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

void AppendCell(std::vector<uint8_t>* out, const Cell& cell) {
  ONION_CHECK_MSG(cell.dims >= 1 && cell.dims <= kMaxDims,
                  "cell dims out of range");
  AppendU8(out, static_cast<uint8_t>(cell.dims));
  for (int d = 0; d < cell.dims; ++d) AppendU32(out, cell[d]);
}

void AppendBox(std::vector<uint8_t>* out, const Box& box) {
  AppendCell(out, box.lo);
  AppendCell(out, box.hi);
}

std::vector<uint8_t> EncodeFrame(uint64_t request_id, uint8_t type,
                                 const std::vector<uint8_t>& payload) {
  const size_t body = kMinFrameBody + payload.size();
  ONION_CHECK_MSG(body <= UINT32_MAX, "frame body over 4 GiB");
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + body);
  AppendU32(&out, static_cast<uint32_t>(body));
  AppendU32(&out, 0);  // CRC placeholder, patched below
  AppendU64(&out, request_id);
  AppendU8(&out, type);
  out.insert(out.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(out.data() + kFrameHeaderBytes, body);
  storage::PutU32(out.data() + 4, crc);
  return out;
}

void AppendStatusHeader(std::vector<uint8_t>* out, const Status& status) {
  AppendU8(out, static_cast<uint8_t>(status.code()));
  AppendString(out, status.message());
}

bool PayloadReader::ReadU8(uint8_t* v) {
  if (!ok_ || size_ - at_ < 1) return ok_ = false;
  *v = data_[at_++];
  return true;
}

bool PayloadReader::ReadU16(uint16_t* v) {
  if (!ok_ || size_ - at_ < 2) return ok_ = false;
  *v = static_cast<uint16_t>(data_[at_] | (data_[at_ + 1] << 8));
  at_ += 2;
  return true;
}

bool PayloadReader::ReadU32(uint32_t* v) {
  if (!ok_ || size_ - at_ < 4) return ok_ = false;
  *v = GetU32(data_ + at_);
  at_ += 4;
  return true;
}

bool PayloadReader::ReadU64(uint64_t* v) {
  if (!ok_ || size_ - at_ < 8) return ok_ = false;
  *v = GetU64(data_ + at_);
  at_ += 8;
  return true;
}

bool PayloadReader::ReadString(std::string* s) {
  uint16_t len = 0;
  if (!ReadU16(&len)) return false;
  if (size_ - at_ < len) return ok_ = false;
  s->assign(reinterpret_cast<const char*>(data_ + at_), len);
  at_ += len;
  return true;
}

bool PayloadReader::ReadCell(Cell* cell) {
  uint8_t dims = 0;
  if (!ReadU8(&dims)) return false;
  if (dims < 1 || dims > kMaxDims) return ok_ = false;
  *cell = Cell{};
  cell->dims = dims;
  for (int d = 0; d < dims; ++d) {
    if (!ReadU32(&(*cell)[d])) return false;
  }
  return true;
}

bool PayloadReader::ReadBox(Box* box) {
  Cell lo;
  Cell hi;
  if (!ReadCell(&lo) || !ReadCell(&hi)) return false;
  if (lo.dims != hi.dims) return ok_ = false;
  box->lo = lo;
  box->hi = hi;
  return true;
}

bool PayloadReader::ReadBytes(size_t n, std::vector<uint8_t>* out) {
  if (!ok_ || size_ - at_ < n) return ok_ = false;
  out->assign(data_ + at_, data_ + at_ + n);
  at_ += n;
  return true;
}

bool ReadStatusHeader(PayloadReader* reader, Status* status) {
  uint8_t code = 0;
  std::string message;
  if (!reader->ReadU8(&code) || !reader->ReadString(&message)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kCorruption)) return false;
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (poisoned() || n == 0) return;
  // Compact lazily: drop consumed bytes once they dominate the buffer, so
  // feeding a long pipelined stream does not grow memory without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

Status FrameDecoder::Next(Frame* out) {
  if (poisoned()) return error_;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) {
    return Status::NotFound("need more bytes");
  }
  const uint8_t* head = buffer_.data() + consumed_;
  const uint32_t body_len = GetU32(head);
  if (body_len < kMinFrameBody || body_len > max_frame_bytes_) {
    error_ = Status::Corruption("frame body length " +
                                std::to_string(body_len) +
                                " outside [9, " +
                                std::to_string(max_frame_bytes_) + "]");
    return error_;
  }
  if (avail < kFrameHeaderBytes + body_len) {
    return Status::NotFound("need more bytes");
  }
  const uint8_t* body = head + kFrameHeaderBytes;
  const uint32_t stored_crc = GetU32(head + 4);
  if (stored_crc != Crc32c(body, body_len)) {
    error_ = Status::Corruption("frame CRC32C mismatch");
    return error_;
  }
  out->request_id = GetU64(body);
  out->type = body[8];
  out->payload.assign(body + kMinFrameBody, body + body_len);
  consumed_ += kFrameHeaderBytes + body_len;
  return Status::OK();
}

Status DecodeResponse(const Frame& frame, Response* out) {
  if ((frame.type & kResponseBit) == 0 || !IsKnownRequestType(frame.type)) {
    return Status::Corruption("not a response frame: type " +
                              std::to_string(frame.type));
  }
  *out = Response{};
  out->request_id = frame.request_id;
  out->request_type = frame.type & ~kResponseBit;
  PayloadReader reader(frame.payload);
  if (!ReadStatusHeader(&reader, &out->status)) {
    return Status::Corruption("response status header malformed");
  }
  const auto fail = [&] {
    return Status::Corruption(std::string("response payload malformed: ") +
                              MessageTypeName(out->request_type));
  };
  switch (static_cast<MessageType>(out->request_type)) {
    case MessageType::kPut:
    case MessageType::kDelete:
    case MessageType::kWrite:
    case MessageType::kCursorClose:
    case MessageType::kSnapshotRelease:
    case MessageType::kPing:
      break;
    case MessageType::kGet: {
      if (!out->status.ok()) break;
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) return fail();
      out->payloads.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint64_t payload = 0;
        if (!reader.ReadU64(&payload)) return fail();
        out->payloads.push_back(payload);
      }
      break;
    }
    case MessageType::kOpenBoxCursor:
    case MessageType::kOpenIndexCursor:
      if (!out->status.ok()) break;
      if (!reader.ReadU64(&out->cursor_id)) return fail();
      break;
    case MessageType::kCursorNext: {
      if (!out->status.ok()) break;
      uint32_t count = 0;
      if (!reader.ReadU8(&out->flags) || !reader.ReadU32(&count)) {
        return fail();
      }
      out->entries.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        SpatialEntry entry;
        if (!reader.ReadCell(&entry.cell) || !reader.ReadU64(&entry.payload) ||
            !reader.ReadU64(&entry.seq)) {
          return fail();
        }
        out->entries.push_back(entry);
      }
      break;
    }
    case MessageType::kSnapshotAcquire:
      if (!out->status.ok()) break;
      if (!reader.ReadU64(&out->snapshot_id)) return fail();
      break;
    case MessageType::kDumpMetrics: {
      if (!out->status.ok()) break;
      uint32_t len = 0;
      std::vector<uint8_t> bytes;
      if (!reader.ReadU32(&len) || !reader.ReadBytes(len, &bytes)) {
        return fail();
      }
      out->text.assign(bytes.begin(), bytes.end());
      break;
    }
  }
  if (!reader.Done()) return fail();
  return Status::OK();
}

}  // namespace onion::net
