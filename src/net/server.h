// SfcServer: the network front end — serves one SfcDb to remote clients
// over the pipelined binary protocol of net/protocol.h.
//
// Architecture: one epoll-based, non-blocking event-loop thread owns
// every connection (the classic single-reactor shape — Redis, memcached).
// Requests are executed inline on the loop thread against the SfcDb,
// whose own internal synchronization (storage/sfc_db.h) makes that safe
// alongside any other threads using the database in-process. All session
// state — read buffers, write queues, pinned snapshots, open cursors —
// is owned exclusively by the loop thread, so the server itself needs no
// locks beyond the atomic stop flag (concurrency notes in
// docs/concurrency.md).
//
// Sessions and resource lifetime: snapshots a client acquires
// (kSnapshotAcquire) and cursors it opens are SESSION-SCOPED — they are
// recorded on the connection that created them and are released
// unconditionally when that connection closes, for any reason. A cursor
// opened at a snapshot holds its own reference to the pin, so releasing
// the snapshot id early never invalidates an open cursor.
//
// A stalled client can never pin a snapshot (and hold back compaction GC)
// forever; three mechanisms guarantee it:
//   backpressure      each session's outgoing queue is bounded
//                     (write_queue_limit_bytes). When a client stops
//                     reading, the queue fills, the server STOPS READING
//                     its requests (EPOLLIN off) — so a slow consumer is
//                     throttled instead of ballooning server memory.
//   admission control at most max_connections sessions; further accepts
//                     are closed immediately (net.connections_refused).
//   session deadline  a session that makes no progress (no bytes read
//                     from it, no bytes written to it) for
//                     session_idle_deadline_ms is force-expired: its
//                     snapshots and cursors are released — compaction GC
//                     proceeds — the connection is closed, a
//                     session_expire trace event is deposited, and
//                     snapshots.force_released counts the pins.
//
// Observability: the server records net.* counters/gauges/histograms into
// the database's own metrics registry, so one SfcDb::DumpMetrics() (local
// or over the wire via kDumpMetrics) shows the whole engine including its
// network layer. Metric catalog in docs/observability.md.

#ifndef ONION_NET_SERVER_H_
#define ONION_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "storage/sfc_db.h"

namespace onion::net {

struct SfcServerOptions {
  /// Listen address. The default binds loopback only — this PR's front
  /// end has no authentication, so exposing it beyond the host is a
  /// deliberate operator decision.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Admission control: accepted connections beyond this are closed
  /// immediately.
  size_t max_connections = 8192;
  /// Backpressure bound on one session's outgoing queue; when exceeded
  /// the server stops reading that session's requests until the queue
  /// drains below half.
  size_t write_queue_limit_bytes = 4u << 20;
  /// Largest request frame body accepted; bigger announcements poison the
  /// connection (see net/protocol.h).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Force-expiry deadline for sessions making no progress, in
  /// milliseconds; 0 disables the sweep (tests only — a production server
  /// should always bound session lifetime).
  uint64_t session_idle_deadline_ms = 60'000;
  /// Ceiling on entries returned by one kCursorNext chunk (a request may
  /// ask for less).
  uint32_t max_entries_per_chunk = 1024;
  /// Fairness quantum: at most this many pipelined requests are executed
  /// per session per loop visit before other sessions get a turn.
  uint32_t max_requests_per_tick = 64;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Tests
  /// shrink it so backpressure engages without megabytes of traffic.
  int socket_send_buffer_bytes = 0;
};

class SfcServer {
 public:
  /// `db` must outlive the server and stay open while it runs.
  SfcServer(storage::SfcDb* db, const SfcServerOptions& options = {});
  /// Stops the loop and closes every session (releasing their pins).
  ~SfcServer();

  SfcServer(const SfcServer&) = delete;
  SfcServer& operator=(const SfcServer&) = delete;

  /// Binds, listens, and starts the event-loop thread. InvalidArgument on
  /// a second Start; Internal on socket errors.
  Status Start();

  /// Idempotent: wakes the loop, joins the thread, closes all sessions
  /// and the listen socket. Pinned snapshots and cursors are released.
  void Stop();

  /// The bound TCP port (resolves option port 0); 0 before Start().
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Live session count (loop-thread maintained gauge; approximate from
  /// other threads).
  int64_t active_connections() const;

 private:
  struct CursorState {
    std::unique_ptr<Cursor> cursor;
    /// Keeps the snapshot this cursor reads at pinned for the cursor's
    /// whole life, independent of the session releasing the snapshot id.
    std::shared_ptr<const storage::DbSnapshot> pin;
  };

  struct Session {
    int fd = -1;
    uint64_t id = 0;
    std::string peer;
    FrameDecoder decoder;
    /// Outgoing frames, oldest first; head_sent bytes of the front one
    /// are already on the wire.
    std::vector<std::vector<uint8_t>> write_queue;
    size_t head_sent = 0;
    size_t queued_bytes = 0;
    std::map<uint64_t, std::shared_ptr<const storage::DbSnapshot>> snapshots;
    std::map<uint64_t, CursorState> cursors;
    uint64_t last_activity_us = 0;
    /// Complete frames may still be buffered in the decoder after a
    /// fairness-quantum cutoff; such sessions are revisited before the
    /// next epoll wait.
    bool input_pending = false;
    uint32_t epoll_mask = 0;

    explicit Session(uint32_t max_frame_bytes) : decoder(max_frame_bytes) {}
  };

  void Loop();
  void AcceptReady();
  /// Reads until EAGAIN, then processes buffered frames.
  void SessionReadable(Session* session);
  void SessionWritable(Session* session);
  /// Executes up to the fairness quantum of buffered frames; sets
  /// input_pending when more remain. Returns false when the session was
  /// closed (protocol error).
  bool DrainRequests(Session* session);
  void HandleFrame(Session* session, const Frame& frame);
  void QueueResponse(Session* session, uint64_t request_id,
                     uint8_t request_type, const std::vector<uint8_t>& payload);
  /// Updates EPOLLIN/EPOLLOUT registration to match the session's queue
  /// and backpressure state.
  void UpdateInterest(Session* session);
  void CloseSession(int fd, const char* reason);
  /// The deadline sweep: force-expires sessions without progress.
  void ExpireStale(uint64_t now_us);

  // Request executors (each appends the response payload after a status
  // header).
  std::vector<uint8_t> ExecPut(const Frame& frame);
  std::vector<uint8_t> ExecDelete(const Frame& frame);
  std::vector<uint8_t> ExecWrite(const Frame& frame);
  std::vector<uint8_t> ExecGet(Session* session, const Frame& frame);
  std::vector<uint8_t> ExecOpenBoxCursor(Session* session, const Frame& frame);
  std::vector<uint8_t> ExecOpenIndexCursor(Session* session,
                                           const Frame& frame);
  std::vector<uint8_t> ExecCursorNext(Session* session, const Frame& frame);
  std::vector<uint8_t> ExecCursorClose(Session* session, const Frame& frame);
  std::vector<uint8_t> ExecSnapshotAcquire(Session* session);
  std::vector<uint8_t> ExecSnapshotRelease(Session* session,
                                           const Frame& frame);
  std::vector<uint8_t> ExecDumpMetrics();

  /// Resolves a table by name, opening it on demand; null with a status.
  storage::SfcTable* ResolveTable(const std::string& name, Status* status);
  /// The session's pinned snapshot for `snapshot_id` (0 -> null/latest).
  Status ResolveSnapshot(Session* session, uint64_t snapshot_id,
                         std::shared_ptr<const storage::DbSnapshot>* out);

  storage::SfcDb* const db_;
  const SfcServerOptions options_;

  // Metric handles (database registry; resolved in the constructor).
  obs::Counter* connections_accepted_;
  obs::Counter* connections_refused_;
  obs::Counter* sessions_expired_;
  obs::Counter* snapshots_force_released_;
  obs::Counter* requests_;
  obs::Counter* requests_bad_;
  obs::Counter* frames_bad_;
  obs::Counter* bytes_read_;
  obs::Counter* bytes_written_;
  obs::Counter* write_queue_stalls_;
  obs::Gauge* active_connections_;
  obs::Gauge* snapshots_pinned_;
  obs::Gauge* cursors_open_;
  obs::Histogram* request_us_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_thread_;

  // Loop-thread-owned state (never touched while the loop runs, except by
  // the loop itself; Start/Stop serialize around the thread's lifetime).
  std::map<int, std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 0;
  uint64_t next_snapshot_id_ = 0;
  uint64_t next_cursor_id_ = 0;
};

}  // namespace onion::net

#endif  // ONION_NET_SERVER_H_
