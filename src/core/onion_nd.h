// d-dimensional onion curve — the paper's "future work" extension
// (Sec. VIII: "The onion curve can be extended naturally to higher
// dimensions, using the idea of ordering points according to increasing
// distance from the edge of the universe").
//
// The essential property, which all of the paper's clustering upper bounds
// rest on, is that layers are ordered sequentially (Sec. VI-A: "the order in
// which the onion curve organizes the different groups ... is not so
// important. We can actually adopt any permutation"). Within a layer (the
// shell of a w^d cube) this implementation uses a recursive face ordering:
//
//   1. face x0 = 0:   a full (d-1)-cube slice, ordered by onion_{d-1};
//   2. face x0 = w-1: likewise;
//   3. the band (x0 interior) x shell_{d-1}, ordered lexicographically by
//      (shell position of the remaining coordinates, x0).
//
// For d = 2 and d = 3 prefer Onion2D / Onion3D, which implement the paper's
// exact constructions (and in 2D are continuous); OnionND is the generic
// extension and is not continuous for d >= 2.

#ifndef ONION_CORE_ONION_ND_H_
#define ONION_CORE_ONION_ND_H_

#include <string>

#include "common/status.h"
#include "sfc/curve.h"

namespace onion {

class OnionND final : public SpaceFillingCurve {
 public:
  /// Creates the generic onion curve for any dims in [1, kMaxDims].
  static Result<std::unique_ptr<OnionND>> Make(const Universe& universe);

  std::string name() const override { return "onion_nd"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override {
    return dims() == 1 || num_cells() == 1;
  }

 private:
  explicit OnionND(const Universe& universe) : SpaceFillingCurve(universe) {}
};

}  // namespace onion

#endif  // ONION_CORE_ONION_ND_H_
