// The three-dimensional onion curve (paper, Sec. VI-A).
//
// The universe of side s = 2m is ordered layer by layer (S(1) outermost).
// Within layer t, cells are indexed in ten groups S1..S10, exactly as in
// the paper: the two full faces i = lo and i = hi first (each an s' x s'
// square ordered by the 2D onion curve), then the four edge lines and four
// edge planes of the remaining band. Planes are ordered by the 2D onion
// curve on their two free axes (in increasing axis order); lines in natural
// order. The cell's index is K1(t) + K2(t, g) + r for its triple key
// (t, g, r), matching the paper's indexing scheme.

#ifndef ONION_CORE_ONION3D_H_
#define ONION_CORE_ONION3D_H_

#include <string>

#include "common/status.h"
#include "sfc/curve.h"

namespace onion {

class Onion3D final : public SpaceFillingCurve {
 public:
  /// Creates the curve; fails unless dims == 3 and the side is even
  /// (the paper's setting, side = 2m). Groups are laid out in the paper's
  /// order S1..S10.
  static Result<std::unique_ptr<Onion3D>> Make(const Universe& universe);

  /// Creates the curve with a custom within-layer group order. The paper
  /// notes the group order "is not so important. We can actually adopt any
  /// permutation" (Sec. VI-A); this constructor enables the ablation that
  /// verifies it. `group_order` must be a permutation of {1, ..., 10}.
  static Result<std::unique_ptr<Onion3D>> MakeWithGroupOrder(
      const Universe& universe, const std::array<int, 10>& group_order);

  std::string name() const override { return "onion"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  /// The 3D onion curve is "almost continuous" (paper, Sec. VI-C): the vast
  /// majority of steps are between neighbors but group boundaries within a
  /// layer may jump, so it does not satisfy Definition 1 exactly.
  bool is_continuous() const override { return false; }

  /// The paper's triple key (t, g, r): 1-based layer t, group g in [1, 10],
  /// rank r within the group. Exposed for tests and the visualizer.
  struct TripleKey {
    Coord t = 1;
    int g = 1;
    Key r = 0;
  };
  TripleKey TripleKeyOf(const Cell& cell) const;

  /// The group laid out at position `pos` (0-based) within each layer.
  int GroupAtPosition(int pos) const { return group_order_[pos]; }

 private:
  Onion3D(const Universe& universe, const std::array<int, 10>& group_order)
      : SpaceFillingCurve(universe), group_order_(group_order) {
    for (int pos = 0; pos < 10; ++pos) {
      position_of_group_[group_order_[pos] - 1] = pos;
    }
  }

  std::array<int, 10> group_order_;  // layout position -> group id (1-based)
  int position_of_group_[10];        // group id - 1 -> layout position
};

}  // namespace onion

#endif  // ONION_CORE_ONION3D_H_
