#include "core/onion_nd.h"

#include <algorithm>
#include <cmath>

namespace onion {

namespace {

Key CubePow(Coord w, int d) {
  Key result = 1;
  for (int i = 0; i < d; ++i) result *= w;
  return result;
}

// Smallest r with r^d >= value (integer d-th root, rounded up), exact.
uint64_t IRootCeil(uint64_t value, int d) {
  if (value <= 1) return value;
  auto r = static_cast<uint64_t>(
      std::pow(static_cast<double>(value), 1.0 / d));
  // Guard against floating-point error in either direction.
  while (r > 1 && CubePow(static_cast<Coord>(r - 1), d) >= value) --r;
  while (CubePow(static_cast<Coord>(r), d) < value) ++r;
  return r;
}

// Forward declarations of the mutually recursive encode/decode helpers.
// All operate on local coordinates of a d-cube of side w.
Key CubeIndex(const Coord* c, int d, Coord w);
Key ShellIndex(const Coord* c, int d, Coord w);
void CubeCell(Key key, int d, Coord w, Coord* c);
void ShellCell(Key pos, int d, Coord w, Coord* c);

// Full onion index within a d-cube of side w. For d == 1 this degenerates
// to the natural order (see header).
Key CubeIndex(const Coord* c, int d, Coord w) {
  if (d == 1) return c[0];
  Coord layer = w;  // min over axes of distance-to-boundary (0-based)
  for (int axis = 0; axis < d; ++axis) {
    layer = std::min(layer, std::min(c[axis], w - 1 - c[axis]));
  }
  const Coord ws = w - 2 * layer;  // shell width
  const Key base = CubePow(w, d) - CubePow(ws, d);
  Coord local[kMaxDims];
  for (int axis = 0; axis < d; ++axis) local[axis] = c[axis] - layer;
  return base + ShellIndex(local, d, ws);
}

// Index within the outermost shell (layer 0) of a d-cube of side w.
// Requires that some coordinate equals 0 or w-1 (or w == 1).
Key ShellIndex(const Coord* c, int d, Coord w) {
  if (d == 1) {
    if (w == 1) return 0;
    ONION_DCHECK(c[0] == 0 || c[0] == w - 1);
    return c[0] == 0 ? 0 : 1;
  }
  const Key face = CubePow(w, d - 1);
  if (c[0] == 0) return CubeIndex(c + 1, d - 1, w);
  if (c[0] == w - 1) return face + CubeIndex(c + 1, d - 1, w);
  // Band: x0 interior, remaining coordinates on the (d-1)-shell.
  ONION_DCHECK(w > 2);
  return 2 * face + ShellIndex(c + 1, d - 1, w) * (w - 2) + (c[0] - 1);
}

void CubeCell(Key key, int d, Coord w, Coord* c) {
  if (d == 1) {
    c[0] = static_cast<Coord>(key);
    return;
  }
  const Key total = CubePow(w, d);
  ONION_DCHECK(key < total);
  const uint64_t remaining = total - key;
  uint64_t ws = IRootCeil(remaining, d);
  if (((w - ws) & 1) != 0) ++ws;  // match parity of w
  const Coord shell_width = static_cast<Coord>(ws);
  const Coord layer = (w - shell_width) / 2;
  const Key pos = key - (total - CubePow(shell_width, d));
  ShellCell(pos, d, shell_width, c);
  for (int axis = 0; axis < d; ++axis) c[axis] += layer;
}

void ShellCell(Key pos, int d, Coord w, Coord* c) {
  if (d == 1) {
    ONION_DCHECK(pos <= 1);
    c[0] = pos == 0 ? 0 : w - 1;
    return;
  }
  const Key face = CubePow(w, d - 1);
  if (pos < face) {
    c[0] = 0;
    CubeCell(pos, d - 1, w, c + 1);
    return;
  }
  if (pos < 2 * face) {
    c[0] = w - 1;
    CubeCell(pos - face, d - 1, w, c + 1);
    return;
  }
  ONION_DCHECK(w > 2);
  const Key band = pos - 2 * face;
  const Key shell_pos = band / (w - 2);
  const Key interior = band % (w - 2);
  c[0] = static_cast<Coord>(1 + interior);
  ShellCell(shell_pos, d - 1, w, c + 1);
}

}  // namespace

Result<std::unique_ptr<OnionND>> OnionND::Make(const Universe& universe) {
  return std::unique_ptr<OnionND>(new OnionND(universe));
}

Key OnionND::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  Coord local[kMaxDims];
  for (int axis = 0; axis < dims(); ++axis) local[axis] = cell[axis];
  return CubeIndex(local, dims(), side());
}

Cell OnionND::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  Cell cell;
  cell.dims = dims();
  Coord local[kMaxDims] = {};
  CubeCell(key, dims(), side(), local);
  for (int axis = 0; axis < dims(); ++axis) cell[axis] = local[axis];
  return cell;
}

}  // namespace onion
