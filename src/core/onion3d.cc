#include "core/onion3d.h"

#include <algorithm>
#include <cmath>

#include "core/onion2d.h"

namespace onion {

namespace {

// Largest integer r with r^3 <= value, exact for 64-bit inputs.
uint64_t ICbrt(uint64_t value) {
  if (value == 0) return 0;
  auto r = static_cast<uint64_t>(std::cbrt(static_cast<double>(value)));
  while (r > 0 && r * r * r > value) --r;
  while ((r + 1) * (r + 1) * (r + 1) <= value) ++r;
  return r;
}

// Sizes of the ten groups S1..S10 for a layer whose full width is w
// (w = side - 2*layer, w >= 2). Groups are 0-indexed here (g-1).
void GroupSizes(Coord w, Key sizes[10]) {
  const Key face = static_cast<Key>(w) * w;
  const Key inner = w - 2;
  const Key plane = inner * inner;
  sizes[0] = face;   // S1: face i = lo
  sizes[1] = face;   // S2: face i = hi
  sizes[2] = inner;  // S3: line j=lo, k=lo
  sizes[3] = plane;  // S4: plane j=lo, k interior
  sizes[4] = inner;  // S5: line j=lo, k=hi
  sizes[5] = inner;  // S6: line j=hi, k=lo
  sizes[6] = plane;  // S7: plane j=hi, k interior
  sizes[7] = inner;  // S8: line j=hi, k=hi
  sizes[8] = plane;  // S9: plane j interior, k=lo
  sizes[9] = plane;  // S10: plane j interior, k=hi
}

}  // namespace

Result<std::unique_ptr<Onion3D>> Onion3D::Make(const Universe& universe) {
  return MakeWithGroupOrder(universe, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
}

Result<std::unique_ptr<Onion3D>> Onion3D::MakeWithGroupOrder(
    const Universe& universe, const std::array<int, 10>& group_order) {
  if (universe.dims() != 3) {
    return Status::InvalidArgument("Onion3D requires a 3D universe");
  }
  if (universe.side() % 2 != 0) {
    return Status::InvalidArgument(
        "Onion3D follows the paper's construction and requires an even side");
  }
  bool seen[10] = {};
  for (const int g : group_order) {
    if (g < 1 || g > 10 || seen[g - 1]) {
      return Status::InvalidArgument(
          "group_order must be a permutation of {1, ..., 10}");
    }
    seen[g - 1] = true;
  }
  return std::unique_ptr<Onion3D>(new Onion3D(universe, group_order));
}

Onion3D::TripleKey Onion3D::TripleKeyOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  const Coord s = side();
  const Coord i = cell[0];
  const Coord j = cell[1];
  const Coord k = cell[2];
  const Coord layer = universe().Layer(cell);  // 0-based
  const Coord lo = layer;
  const Coord hi = s - 1 - layer;
  const Coord w = s - 2 * layer;

  TripleKey triple;
  triple.t = layer + 1;

  if (i == lo) {  // S1: full face, 2D onion over (j, k)
    triple.g = 1;
    triple.r = Onion2DLocalIndex(j - lo, k - lo, w);
    return triple;
  }
  if (i == hi) {  // S2
    triple.g = 2;
    triple.r = Onion2DLocalIndex(j - lo, k - lo, w);
    return triple;
  }
  // Band: i interior; (j, k) on the boundary of the (j, k) square.
  const Key ri = i - lo - 1;  // natural rank along the interior i-range
  const Coord wi = w - 2;
  if (j == lo && k == lo) {  // S3
    triple.g = 3;
    triple.r = ri;
  } else if (j == lo && k == hi) {  // S5
    triple.g = 5;
    triple.r = ri;
  } else if (j == hi && k == lo) {  // S6
    triple.g = 6;
    triple.r = ri;
  } else if (j == hi && k == hi) {  // S8
    triple.g = 8;
    triple.r = ri;
  } else if (j == lo) {  // S4: plane over (i, k), both interior
    triple.g = 4;
    triple.r = Onion2DLocalIndex(i - lo - 1, k - lo - 1, wi);
  } else if (j == hi) {  // S7
    triple.g = 7;
    triple.r = Onion2DLocalIndex(i - lo - 1, k - lo - 1, wi);
  } else if (k == lo) {  // S9: plane over (i, j), both interior
    triple.g = 9;
    triple.r = Onion2DLocalIndex(i - lo - 1, j - lo - 1, wi);
  } else {  // S10
    ONION_DCHECK(k == hi);
    triple.g = 10;
    triple.r = Onion2DLocalIndex(i - lo - 1, j - lo - 1, wi);
  }
  return triple;
}

Key Onion3D::IndexOf(const Cell& cell) const {
  const Coord s = side();
  const Coord layer = universe().Layer(cell);
  const Coord w = s - 2 * layer;
  // K1: cells in all outer layers = s^3 - w^3.
  const Key k1 = static_cast<Key>(s) * s * s - static_cast<Key>(w) * w * w;
  const TripleKey triple = TripleKeyOf(cell);
  Key sizes[10];
  GroupSizes(w, sizes);
  // Sum the sizes of groups laid out before this cell's group.
  const int position = position_of_group_[triple.g - 1];
  Key k2 = 0;
  for (int pos = 0; pos < position; ++pos) {
    k2 += sizes[group_order_[static_cast<size_t>(pos)] - 1];
  }
  return k1 + k2 + triple.r;
}

Cell Onion3D::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  const Coord s = side();
  const Key total = static_cast<Key>(s) * s * s;
  // Find the layer: smallest even-parity w with w^3 >= total - key.
  const uint64_t remaining = total - key;
  uint64_t wc = ICbrt(remaining);
  if (wc * wc * wc < remaining) ++wc;      // ceil
  if (((s - wc) & 1) != 0) ++wc;           // match parity (s even => w even)
  const Coord w = static_cast<Coord>(wc);
  const Coord layer = (s - w) / 2;
  const Coord lo = layer;
  const Coord hi = s - 1 - layer;

  Key pos = key - (total - wc * wc * wc);
  Key sizes[10];
  GroupSizes(w, sizes);
  int layout_pos = 0;
  while (pos >= sizes[group_order_[static_cast<size_t>(layout_pos)] - 1]) {
    pos -= sizes[group_order_[static_cast<size_t>(layout_pos)] - 1];
    ++layout_pos;
  }
  const int g = group_order_[static_cast<size_t>(layout_pos)] - 1;
  // g is 0-based here; r = pos.
  const Coord wi = w - 2;
  Coord a = 0;
  Coord b = 0;
  Cell cell;
  cell.dims = 3;
  switch (g + 1) {
    case 1:
      Onion2DLocalCell(pos, w, &a, &b);
      cell = Cell(lo, a + lo, b + lo);
      break;
    case 2:
      Onion2DLocalCell(pos, w, &a, &b);
      cell = Cell(hi, a + lo, b + lo);
      break;
    case 3:
      cell = Cell(static_cast<Coord>(lo + 1 + pos), lo, lo);
      break;
    case 4:
      Onion2DLocalCell(pos, wi, &a, &b);
      cell = Cell(a + lo + 1, lo, b + lo + 1);
      break;
    case 5:
      cell = Cell(static_cast<Coord>(lo + 1 + pos), lo, hi);
      break;
    case 6:
      cell = Cell(static_cast<Coord>(lo + 1 + pos), hi, lo);
      break;
    case 7:
      Onion2DLocalCell(pos, wi, &a, &b);
      cell = Cell(a + lo + 1, hi, b + lo + 1);
      break;
    case 8:
      cell = Cell(static_cast<Coord>(lo + 1 + pos), hi, hi);
      break;
    case 9:
      Onion2DLocalCell(pos, wi, &a, &b);
      cell = Cell(a + lo + 1, b + lo + 1, lo);
      break;
    case 10:
      Onion2DLocalCell(pos, wi, &a, &b);
      cell = Cell(a + lo + 1, b + lo + 1, hi);
      break;
    default:
      ONION_CHECK_MSG(false, "corrupt group index");
  }
  return cell;
}

}  // namespace onion
