#include "core/onion2d.h"

#include <algorithm>
#include <cmath>

namespace onion {

namespace {

// Largest integer r with r * r <= value, exact for all 64-bit inputs.
uint64_t ISqrt(uint64_t value) {
  if (value == 0) return 0;
  auto r = static_cast<uint64_t>(std::sqrt(static_cast<double>(value)));
  // std::sqrt on 64-bit inputs can be off by one in either direction.
  while (r > 0 && r * r > value) --r;
  while ((r + 1) * (r + 1) <= value) ++r;
  return r;
}

}  // namespace

Key OnionPerimeterIndex(Coord u, Coord v, Coord j) {
  ONION_DCHECK(u < j && v < j);
  ONION_DCHECK(u == 0 || v == 0 || u == j - 1 || v == j - 1);
  // The four cases of the paper's O_j definition.
  if (v == 0) return u;                                  // bottom row
  if (u == j - 1) return static_cast<Key>(j) - 1 + v;    // right column
  if (v == j - 1) return 3 * (static_cast<Key>(j) - 1) - u;  // top row
  return 4 * (static_cast<Key>(j) - 1) - v;              // left column
}

void OnionPerimeterCell(Key pos, Coord j, Coord* u, Coord* v) {
  const Key jj = j;
  if (j == 1) {
    ONION_DCHECK(pos == 0);
    *u = 0;
    *v = 0;
    return;
  }
  ONION_DCHECK(pos < 4 * (jj - 1));
  if (pos <= jj - 1) {  // bottom row: (pos, 0)
    *u = static_cast<Coord>(pos);
    *v = 0;
  } else if (pos <= 2 * jj - 2) {  // right column: (j-1, pos-(j-1))
    *u = j - 1;
    *v = static_cast<Coord>(pos - (jj - 1));
  } else if (pos <= 3 * jj - 3) {  // top row: (3j-3-pos, j-1)
    *u = static_cast<Coord>(3 * (jj - 1) - pos);
    *v = j - 1;
  } else {  // left column: (0, 4j-4-pos)
    *u = 0;
    *v = static_cast<Coord>(4 * (jj - 1) - pos);
  }
}

Key Onion2DLocalIndex(Coord u, Coord v, Coord j) {
  ONION_DCHECK(u < j && v < j);
  const Coord layer =
      std::min(std::min(u, j - 1 - u), std::min(v, j - 1 - v));
  const Coord local_side = j - 2 * layer;
  const Key outer = static_cast<Key>(j) * j -
                    static_cast<Key>(local_side) * local_side;
  return outer +
         OnionPerimeterIndex(u - layer, v - layer, local_side);
}

void Onion2DLocalCell(Key key, Coord j, Coord* u, Coord* v) {
  const Key total = static_cast<Key>(j) * j;
  ONION_DCHECK(key < total);
  // Find the layer: the local square of side `ls` satisfies ls^2 >= total -
  // key, with ls of the same parity as j; the smallest such ls belongs to
  // the cell's layer.
  const uint64_t remaining = total - key;
  uint64_t ls = ISqrt(remaining);
  if (ls * ls < remaining) ++ls;         // ceil
  if (((j - ls) & 1) != 0) ++ls;         // match parity of j
  const Coord local_side = static_cast<Coord>(ls);
  const Coord layer = (j - local_side) / 2;
  const Key pos = key - (total - ls * ls);
  Coord lu = 0;
  Coord lv = 0;
  OnionPerimeterCell(pos, local_side, &lu, &lv);
  *u = lu + layer;
  *v = lv + layer;
}

Result<std::unique_ptr<Onion2D>> Onion2D::Make(const Universe& universe) {
  if (universe.dims() != 2) {
    return Status::InvalidArgument("Onion2D requires a 2D universe");
  }
  return std::unique_ptr<Onion2D>(new Onion2D(universe));
}

Key Onion2D::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  return Onion2DLocalIndex(cell.x(), cell.y(), side());
}

Cell Onion2D::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  Coord u = 0;
  Coord v = 0;
  Onion2DLocalCell(key, side(), &u, &v);
  return Cell(u, v);
}

}  // namespace onion
