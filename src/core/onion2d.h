// The two-dimensional onion curve (paper, Sec. III-A).
//
// The curve orders cells layer by layer: all cells at distance 1 from the
// universe boundary first (the outermost "onion shell"), then distance 2,
// and so on inward. Within a layer of local side j, the perimeter is walked
// bottom row left-to-right, right column bottom-to-top, top row
// right-to-left, then left column top-to-bottom — exactly the recursive
// definition O_j in the paper, unrolled to a closed form.
//
// The curve is continuous (Definition 1): consecutive positions are always
// grid neighbors, including across layer transitions, because each layer
// ends at local (0, 1) which is adjacent to the next layer's start (1, 1).
//
// Works for any side >= 1 (the paper assumes an even side; odd sides simply
// terminate in a single center cell).

#ifndef ONION_CORE_ONION2D_H_
#define ONION_CORE_ONION2D_H_

#include <string>

#include "common/status.h"
#include "sfc/curve.h"

namespace onion {

/// Position of local cell (u, v) on the perimeter walk of a j x j square,
/// valid only for cells on the perimeter (u or v equal to 0 or j-1).
/// This is the paper's O_j restricted to its first layer.
Key OnionPerimeterIndex(Coord u, Coord v, Coord j);

/// Inverse of OnionPerimeterIndex: decodes perimeter position `pos`
/// (0 <= pos < 4j-4, or pos == 0 when j == 1) to local coordinates.
void OnionPerimeterCell(Key pos, Coord j, Coord* u, Coord* v);

/// Full 2D onion index of local cell (u, v) within a j x j square
/// (all layers, not just the perimeter).
Key Onion2DLocalIndex(Coord u, Coord v, Coord j);

/// Inverse of Onion2DLocalIndex.
void Onion2DLocalCell(Key key, Coord j, Coord* u, Coord* v);

/// The 2D onion curve over a square universe.
class Onion2D final : public SpaceFillingCurve {
 public:
  /// Creates the curve; fails unless dims == 2. Any side >= 1 is accepted.
  static Result<std::unique_ptr<Onion2D>> Make(const Universe& universe);

  std::string name() const override { return "onion"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override { return true; }

 private:
  explicit Onion2D(const Universe& universe) : SpaceFillingCurve(universe) {}
};

}  // namespace onion

#endif  // ONION_CORE_ONION2D_H_
