// Deterministic pseudo-random number generation for workloads and tests.
//
// We deliberately do not use std::mt19937 + std::uniform_int_distribution in
// workload generators: their outputs are not guaranteed to be identical
// across standard library implementations, and reproducing the paper's
// experiment tables requires bit-stable workloads. Xoshiro256++ seeded via
// SplitMix64 is small, fast and fully specified here.

#ifndef ONION_COMMON_RNG_H_
#define ONION_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace onion {

/// SplitMix64 step; used to expand a single seed into generator state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256++ generator. Deterministic across platforms for a given seed.
class Rng {
 public:
  /// Seeds the generator; any 64-bit value (including 0) is a valid seed.
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
  }

  /// Returns the next 64 uniformly random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound] (inclusive). Uses rejection sampling so
  /// the distribution is exactly uniform.
  uint64_t UniformInclusive(uint64_t bound) {
    if (bound == ~0ULL) return Next();
    const uint64_t range = bound + 1;
    // Largest multiple of `range` that fits in 2^64.
    const uint64_t limit = ~0ULL - (~0ULL % range);
    uint64_t draw = Next();
    while (draw >= limit) draw = Next();
    return draw % range;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    ONION_DCHECK(lo <= hi);
    return lo + UniformInclusive(hi - lo);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace onion

#endif  // ONION_COMMON_RNG_H_
