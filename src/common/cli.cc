#include "common/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace onion {

CommandLine::CommandLine(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg);
      std::exit(2);
    }
    std::string body = arg + 2;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";  // bare boolean flag
    }
  }
}

int64_t CommandLine::GetInt(const std::string& name, int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second;
}

bool CommandLine::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace onion
