// Clang Thread Safety Analysis annotation shim.
//
// These macros attach compile-time lock-discipline attributes to types,
// fields, and functions: which mutex guards a field, which lock a method
// requires, which locks a function acquires or releases. Under Clang with
// -Wthread-safety (the ONION_THREAD_SAFETY CMake option turns it on
// together with -Werror=thread-safety) every violation — reading a
// guarded field without its mutex, calling a *Locked method unlocked,
// double-acquiring, returning with a lock still held — is a build error.
// Under every other compiler the macros expand to nothing, so GCC builds
// and sanitizer jobs are untouched.
//
// The annotated wrapper types that make these attributes usable with the
// standard library mutexes live in common/mutex.h; the engine's lock
// catalog and acquisition-order rules live in docs/concurrency.md.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef ONION_COMMON_THREAD_ANNOTATIONS_H_
#define ONION_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define ONION_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define ONION_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex").
#define ONION_CAPABILITY(x) ONION_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII guard type: constructing acquires, destructing releases.
#define ONION_SCOPED_CAPABILITY ONION_THREAD_ANNOTATION__(scoped_lockable)

/// Field is protected by the given mutex: every access needs it held
/// (shared for reads, exclusive for writes).
#define ONION_GUARDED_BY(x) ONION_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose POINTEE is protected by the given mutex.
#define ONION_PT_GUARDED_BY(x) ONION_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering edges, checked under -Wthread-safety-beta.
#define ONION_ACQUIRED_BEFORE(...) \
  ONION_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ONION_ACQUIRED_AFTER(...) \
  ONION_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function requires the mutex(es) held EXCLUSIVELY on entry (and exit).
#define ONION_REQUIRES(...) \
  ONION_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function requires the mutex(es) held at least SHARED on entry.
#define ONION_REQUIRES_SHARED(...) \
  ONION_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and returns holding them.
#define ONION_ACQUIRE(...) \
  ONION_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ONION_ACQUIRE_SHARED(...) \
  ONION_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the mutex(es), which must be held on entry.
#define ONION_RELEASE(...) \
  ONION_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define ONION_RELEASE_SHARED(...) \
  ONION_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define ONION_RELEASE_GENERIC(...) \
  ONION_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function acquires the mutex only when it returns the given value.
#define ONION_TRY_ACQUIRE(...) \
  ONION_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must be called WITHOUT the mutex(es) held (deadlock guard for
/// non-reentrant locks and for enforcing acquisition order).
#define ONION_EXCLUDES(...) \
  ONION_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the mutex is held here.
#define ONION_ASSERT_CAPABILITY(x) \
  ONION_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the named mutex.
#define ONION_RETURN_CAPABILITY(x) ONION_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function juggles locks in a way the (intraprocedural)
/// analysis cannot model — e.g. locking a DYNAMIC set of mutexes in a
/// loop. Every use carries a comment saying why.
#define ONION_NO_THREAD_SAFETY_ANALYSIS \
  ONION_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // ONION_COMMON_THREAD_ANNOTATIONS_H_
