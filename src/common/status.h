// Minimal Status / Result error-handling vocabulary, in the spirit of
// arrow::Status / rocksdb::Status. The library does not throw exceptions;
// fallible constructors are expressed as factory functions returning
// Result<T>.

#ifndef ONION_COMMON_STATUS_H_
#define ONION_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace onion {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kUnimplemented = 4,
  kInternal = 5,
  kCorruption = 6,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of a fallible operation.
/// [[nodiscard]] on the class makes EVERY function returning a Status by
/// value warn when the result is dropped — an ignored error is a bug
/// unless a call site says otherwise with an explicit (void) cast and a
/// comment arguing why.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as e.g. "InvalidArgument: side must be even".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts the process (the library treats that as a
/// programming error, consistent with CHECK semantics).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    ONION_CHECK_MSG(!std::get<Status>(repr_).ok(),
                    "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const T& value() const& {
    ONION_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T& value() & {
    ONION_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T&& value() && {
    ONION_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(repr_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace onion

#endif  // ONION_COMMON_STATUS_H_
