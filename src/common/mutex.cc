#include "common/mutex.h"

namespace onion {

// Waiting and notifying are cold (they block or make a futex syscall), so
// these live out of line; the lock/unlock fast paths stay inline in the
// header.

void CondVar::Wait(Mutex& mu) {
  // Adopt the already-held std::mutex into a unique_lock for the wait,
  // then release ownership again so the caller's guard keeps it. The
  // analysis sees `mu` held across the call (ONION_REQUIRES), which
  // matches the runtime contract: Wait returns with the lock reacquired.
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

void CondVar::NotifyOne() { cv_.notify_one(); }
void CondVar::NotifyAll() { cv_.notify_all(); }

void CondVarAny::Wait(SharedMutex& mu) {
  // std::shared_mutex is BasicLockable in exclusive mode, which is all
  // condition_variable_any needs: wait() unlocks, blocks, and relocks it.
  cv_.wait(mu.mu_);
}

void CondVarAny::NotifyOne() { cv_.notify_one(); }
void CondVarAny::NotifyAll() { cv_.notify_all(); }

}  // namespace onion
