// Lightweight assertion macros used across the onion-curve library.
//
// ONION_CHECK is active in all build types: library invariants must hold in
// release benchmarks too, and the cost is negligible relative to the work
// done per check site. ONION_DCHECK compiles away in NDEBUG builds and is
// meant for hot loops.

#ifndef ONION_COMMON_MACROS_H_
#define ONION_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define ONION_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define ONION_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define ONION_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define ONION_DCHECK(cond) ONION_CHECK(cond)
#endif

#endif  // ONION_COMMON_MACROS_H_
