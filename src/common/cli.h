// Tiny command-line flag parser for the benchmark and example binaries.
// Supports "--name=value" and "--name value". Unrecognized flags abort with
// a usage message so that typos in experiment parameters are never silently
// ignored.

#ifndef ONION_COMMON_CLI_H_
#define ONION_COMMON_CLI_H_

#include <cstdint>
#include <map>
#include <string>

namespace onion {

class CommandLine {
 public:
  /// Parses argv. Flags must look like --key=value or --key value.
  CommandLine(int argc, char** argv);

  /// Returns the flag value, or `def` if the flag was not passed.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace onion

#endif  // ONION_COMMON_CLI_H_
