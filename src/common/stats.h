// Order statistics used to report the paper's box plots (Figures 5-7) as
// numeric five-number summaries.

#ifndef ONION_COMMON_STATS_H_
#define ONION_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace onion {

/// Five-number summary plus mean, matching the box plots in the paper
/// ("25 percentile and 75 percentile within the box, as well as the median,
/// minimum, and maximum").
struct BoxPlot {
  double min = 0;
  double q25 = 0;
  double median = 0;
  double q75 = 0;
  double max = 0;
  double mean = 0;
  size_t count = 0;

  /// Renders as "min/q25/med/q75/max (mean)" with fixed precision.
  std::string ToString() const;
};

/// Computes the summary of a sample. The input is copied and sorted
/// internally; quantiles use linear interpolation between closest ranks
/// (type-7, the numpy/R default). An empty sample yields an all-zero
/// summary with count == 0.
BoxPlot Summarize(std::vector<double> sample);

/// Convenience overload for integer samples (clustering numbers).
BoxPlot Summarize(const std::vector<uint64_t>& sample);

}  // namespace onion

#endif  // ONION_COMMON_STATS_H_
