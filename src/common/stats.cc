#include "common/stats.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace onion {

namespace {

// Type-7 quantile (linear interpolation between closest ranks) of a sorted
// sample; q in [0, 1].
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::string BoxPlot::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.1f / %.1f / %.1f / %.1f / %.1f (mean %.2f)",
                min, q25, median, q75, max, mean);
  return buf;
}

BoxPlot Summarize(std::vector<double> sample) {
  BoxPlot out;
  out.count = sample.size();
  if (sample.empty()) return out;
  std::sort(sample.begin(), sample.end());
  out.min = sample.front();
  out.max = sample.back();
  out.q25 = SortedQuantile(sample, 0.25);
  out.median = SortedQuantile(sample, 0.5);
  out.q75 = SortedQuantile(sample, 0.75);
  out.mean = std::accumulate(sample.begin(), sample.end(), 0.0) /
             static_cast<double>(sample.size());
  return out;
}

BoxPlot Summarize(const std::vector<uint64_t>& sample) {
  std::vector<double> as_double(sample.begin(), sample.end());
  return Summarize(std::move(as_double));
}

}  // namespace onion
