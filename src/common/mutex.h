// Capability-annotated mutex wrappers over <mutex> / <shared_mutex>.
//
// The standard-library lock types carry no thread-safety attributes, so
// Clang's analysis cannot see through them. These zero-overhead wrappers
// delegate 1:1 to std::mutex / std::shared_mutex and add the annotations
// from common/thread_annotations.h, which is what lets the engine declare
// `ONION_GUARDED_BY(mu_)` on fields and have the compiler enforce it.
//
// Lock vocabulary used across the engine:
//   Mutex        — exclusive lock (std::mutex)
//   SharedMutex  — reader/writer lock (std::shared_mutex)
//   MutexLock    — scoped exclusive guard for Mutex; supports early
//                  Unlock() and re-Lock() for release-around-I/O sections
//   WriterLock   — same, for SharedMutex held exclusively
//   ReaderLock   — scoped shared guard for SharedMutex
//   CondVar      — condition variable bound to a Mutex at each Wait
//   CondVarAny   — condition variable waiting on an EXCLUSIVELY held
//                  SharedMutex (memtable rotation backpressure)
//
// Waits always sit in explicit `while (!cond) cv.Wait(mu);` loops so the
// condition reads stay inside the analyzed function body (a predicate
// lambda would be analyzed as a separate, unannotated function).
//
// The engine's lock catalog and acquisition-order rules: docs/concurrency.md.

#ifndef ONION_COMMON_MUTEX_H_
#define ONION_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace onion {

class CondVar;
class CondVarAny;

/// Exclusive mutex. Prefer MutexLock; raw Lock()/Unlock() is for manual
/// protocols (SfcTable::LockWal) and release-around-I/O sections.
class ONION_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ONION_ACQUIRE() { mu_.lock(); }
  void Unlock() ONION_RELEASE() { mu_.unlock(); }
  bool TryLock() ONION_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex (exclusive writers, concurrent readers).
class ONION_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ONION_ACQUIRE() { mu_.lock(); }
  void Unlock() ONION_RELEASE() { mu_.unlock(); }
  void LockShared() ONION_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() ONION_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class CondVarAny;
  std::shared_mutex mu_;
};

/// Scoped exclusive guard for Mutex. Relockable: Unlock()/Lock() open a
/// window (fsync, file write) where the mutex is released; the destructor
/// releases only if currently held. The analysis tracks the held state
/// through all of it.
class ONION_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ONION_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() ONION_RELEASE() {
    if (held_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() ONION_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  void Lock() ONION_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Scoped exclusive guard for SharedMutex, relockable like MutexLock.
class ONION_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ONION_ACQUIRE(mu)
      : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~WriterLock() ONION_RELEASE() {
    if (held_) mu_.Unlock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  void Unlock() ONION_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  void Lock() ONION_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  SharedMutex& mu_;
  bool held_;
};

/// Scoped shared (read) guard for SharedMutex.
class ONION_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ONION_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() ONION_RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable used with Mutex. The mutex is named per Wait call
/// (not stored) so one CondVar cannot silently migrate between locks.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// `mu` must be the mutex every other waiter/notifier of this CondVar
  /// uses. Spurious wakeups happen: always call inside a condition loop.
  void Wait(Mutex& mu) ONION_REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

/// Condition variable waiting on an exclusively held SharedMutex (readers
/// never wait on one of these in this codebase).
class CondVarAny {
 public:
  CondVarAny() = default;
  CondVarAny(const CondVarAny&) = delete;
  CondVarAny& operator=(const CondVarAny&) = delete;

  /// As CondVar::Wait, for a SharedMutex held EXCLUSIVELY.
  void Wait(SharedMutex& mu) ONION_REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable_any cv_;
};

}  // namespace onion

#endif  // ONION_COMMON_MUTEX_H_
