#include "analysis/advisor.h"

#include <algorithm>
#include <utility>

#include "analysis/clustering.h"
#include "sfc/registry.h"

namespace onion {

Result<CurveAdvice> AdviseCurve(const Universe& universe,
                                const std::vector<Box>& boxes,
                                const DiskModel& model,
                                const std::vector<std::string>& candidates) {
  if (boxes.empty()) {
    return Status::InvalidArgument("AdviseCurve needs at least one query box");
  }
  for (const Box& box : boxes) {
    if (!universe.Contains(box)) {
      return Status::InvalidArgument("query box " + box.ToString() +
                                     " outside universe " +
                                     universe.ToString());
    }
  }
  const std::vector<std::string> names =
      candidates.empty() ? KnownCurveNames() : candidates;
  const auto num_queries = static_cast<double>(boxes.size());
  CurveAdvice advice;
  for (const std::string& name : names) {
    auto curve = MakeCurve(name, universe);
    if (!curve.ok()) continue;  // not applicable to this universe geometry
    const ClusteringEvaluator evaluator(curve.value().get());
    double clusters = 0;
    double cells = 0;
    for (const Box& box : boxes) {
      clusters += static_cast<double>(evaluator.Clustering(box));
      cells += static_cast<double>(box.Volume());
    }
    CurveCost cost;
    cost.curve = name;
    cost.avg_clusters = clusters / num_queries;
    cost.avg_cells = cells / num_queries;
    cost.modeled_ms_per_query =
        model.EstimateMs(static_cast<uint64_t>(clusters),
                         static_cast<uint64_t>(cells)) /
        num_queries;
    advice.ranked.push_back(std::move(cost));
  }
  if (advice.ranked.empty()) {
    return Status::InvalidArgument(
        "no candidate curve applies to universe " + universe.ToString());
  }
  // stable_sort: candidates tied on cost keep the given (registry) order,
  // so the recommendation is deterministic.
  std::stable_sort(advice.ranked.begin(), advice.ranked.end(),
                   [](const CurveCost& a, const CurveCost& b) {
                     return a.modeled_ms_per_query < b.modeled_ms_per_query;
                   });
  advice.recommended = advice.ranked.front().curve;
  advice.modeled_ms_per_query = advice.ranked.front().modeled_ms_per_query;
  return advice;
}

}  // namespace onion
