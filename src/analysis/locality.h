// Locality metrics beyond the clustering number.
//
// 1. Inter-cluster gaps: the paper's conclusion singles out "the distance
//    between different clusters of the same query region, which tends to be
//    important in fetching data from the disk" as an unanalyzed aspect of
//    clustering and explicit future work. ComputeClusterGaps quantifies it:
//    the key-space distances between consecutive clusters of a query.
//
// 2. Stretch-style metrics (Gotsman & Lindenbaum 1996, cited as [14]):
//    how far apart in space consecutive curve positions are
//    (NeighborStretch), and how far apart in key space grid-adjacent cells
//    land (KeyGapOfGridNeighbors).

#ifndef ONION_ANALYSIS_LOCALITY_H_
#define ONION_ANALYSIS_LOCALITY_H_

#include <cstdint>

#include "sfc/curve.h"

namespace onion {

/// Key-space distances between the consecutive clusters of one query.
struct ClusterGapStats {
  uint64_t clusters = 0;   ///< number of clusters (= seeks)
  uint64_t total_gap = 0;  ///< sum of key gaps between consecutive clusters
  uint64_t max_gap = 0;    ///< largest single gap
  uint64_t span = 0;       ///< last key - first key + 1 over the whole query

  /// Average gap between consecutive clusters (0 if a single cluster).
  double MeanGap() const {
    return clusters <= 1
               ? 0.0
               : static_cast<double>(total_gap) /
                     static_cast<double>(clusters - 1);
  }
};

/// Exact inter-cluster gap statistics of `box` under `curve`.
ClusterGapStats ComputeClusterGaps(const SpaceFillingCurve& curve,
                                   const Box& box);

/// Spatial distance between consecutive curve positions.
struct StretchStats {
  double mean_l1 = 0;  ///< average L1 distance of steps (1 iff continuous)
  uint64_t max_l1 = 0;  ///< largest single step
  uint64_t jumps = 0;   ///< steps with L1 distance > 1
};

/// Full-scan stretch of the curve: O(n) CellAt calls.
StretchStats NeighborStretch(const SpaceFillingCurve& curve);

/// Key-space gap of grid neighbors: for every grid-adjacent cell pair, the
/// absolute key difference. Reports the mean and max over all pairs
/// (Gotsman-Lindenbaum-style locality; smaller is better for near-neighbor
/// access patterns). O(n * d).
struct KeyGapStats {
  double mean = 0;
  uint64_t max = 0;
};
KeyGapStats KeyGapOfGridNeighbors(const SpaceFillingCurve& curve);

}  // namespace onion

#endif  // ONION_ANALYSIS_LOCALITY_H_
