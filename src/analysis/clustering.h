// Clustering-number computation (paper, Sec. I).
//
// The clustering number c(q, pi) of a query q under curve pi is the minimum
// number of clusters (runs of consecutive curve positions) that q can be
// partitioned into. Equivalently it is the number of cells alpha in q whose
// key-predecessor cell lies outside q (counting the curve's first cell as
// having no predecessor).
//
// Three algorithms, all exact:
//  * brute force     - O(|q| log |q|): map every cell, sort, count runs.
//  * entry test      - O(|q|): for every cell, test whether its predecessor
//                      is outside q. Works for any curve.
//  * boundary scan   - O(surface(q)): for continuous curves the predecessor
//                      of an interior cell is always inside q, so only
//                      boundary cells can begin clusters.

#ifndef ONION_ANALYSIS_CLUSTERING_H_
#define ONION_ANALYSIS_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "sfc/curve.h"

namespace onion {

/// A maximal run of consecutive curve positions, inclusive on both ends.
struct KeyRange {
  Key lo = 0;
  Key hi = 0;

  bool operator==(const KeyRange& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// O(|q| log |q|) reference implementation.
uint64_t ClusteringNumberBruteForce(const SpaceFillingCurve& curve,
                                    const Box& box);

/// O(|q|) predecessor test; works for any curve.
uint64_t ClusteringNumberEntryTest(const SpaceFillingCurve& curve,
                                   const Box& box);

/// O(surface(q)) boundary scan; requires curve.is_continuous().
uint64_t ClusteringNumberBoundary(const SpaceFillingCurve& curve,
                                  const Box& box);

/// Picks the fastest exact algorithm for the curve.
uint64_t ClusteringNumber(const SpaceFillingCurve& curve, const Box& box);

/// The exact minimal set of key ranges covering the box, sorted ascending.
/// The size of the result equals ClusteringNumber(curve, box).
std::vector<KeyRange> ClusterRanges(const SpaceFillingCurve& curve,
                                    const Box& box);

/// Exact average clustering number over the full translation query set
/// Q(lengths): every position of a box with the given side lengths
/// (paper, Sec. I). Intended for small universes (validation of the
/// closed-form theorems); cost is O(#translations * surface).
double AverageClusteringExact(const SpaceFillingCurve& curve,
                              const std::vector<Coord>& lengths);

/// Amortized exact clustering evaluation for repeated queries against one
/// curve. For continuous curves it uses the O(surface) boundary scan. For
/// "almost continuous" curves (e.g. the 3D onion curve, whose only
/// non-neighbor steps are at the <= 10 group boundaries per layer) it
/// additionally precomputes the jump-target cells in one O(n) pass and
/// checks the few that fall strictly inside each query. Curves with many
/// jumps (Z-order, Gray-code) fall back to the O(|q|) entry test.
class ClusteringEvaluator {
 public:
  /// The precomputation pass costs O(n) CellAt calls for non-continuous
  /// curves (nothing for continuous ones).
  explicit ClusteringEvaluator(const SpaceFillingCurve* curve);

  /// Exact clustering number of `box`; equal to ClusteringNumber(curve,box).
  uint64_t Clustering(const Box& box) const;

  /// How this evaluator computes: "boundary", "almost", or "entry".
  const char* mode() const;

 private:
  const SpaceFillingCurve* curve_;
  enum class Mode { kBoundary, kAlmostContinuous, kEntryTest } mode_;
  // Cells whose predecessor along the curve is not a grid neighbor (plus
  // the curve's start cell). Only these can begin a cluster while lying
  // strictly inside a query.
  std::vector<Cell> jump_targets_;
};

}  // namespace onion

#endif  // ONION_ANALYSIS_CLUSTERING_H_
