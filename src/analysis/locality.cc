#include "analysis/locality.h"

#include <cstdlib>

#include "analysis/boxiter.h"
#include "analysis/clustering.h"

namespace onion {

ClusterGapStats ComputeClusterGaps(const SpaceFillingCurve& curve,
                                   const Box& box) {
  const std::vector<KeyRange> ranges = ClusterRanges(curve, box);
  ClusterGapStats stats;
  stats.clusters = ranges.size();
  if (ranges.empty()) return stats;
  stats.span = ranges.back().hi - ranges.front().lo + 1;
  for (size_t i = 1; i < ranges.size(); ++i) {
    const uint64_t gap = ranges[i].lo - ranges[i - 1].hi - 1;
    stats.total_gap += gap;
    stats.max_gap = std::max(stats.max_gap, gap);
  }
  return stats;
}

StretchStats NeighborStretch(const SpaceFillingCurve& curve) {
  StretchStats stats;
  if (curve.num_cells() < 2) return stats;
  uint64_t total = 0;
  Cell prev = curve.CellAt(0);
  for (Key key = 1; key < curve.num_cells(); ++key) {
    const Cell next = curve.CellAt(key);
    uint64_t step = 0;
    for (int axis = 0; axis < curve.dims(); ++axis) {
      step += static_cast<uint64_t>(
          std::llabs(static_cast<int64_t>(prev[axis]) - next[axis]));
    }
    total += step;
    stats.max_l1 = std::max(stats.max_l1, step);
    if (step > 1) ++stats.jumps;
    prev = next;
  }
  stats.mean_l1 =
      static_cast<double>(total) / static_cast<double>(curve.num_cells() - 1);
  return stats;
}

KeyGapStats KeyGapOfGridNeighbors(const SpaceFillingCurve& curve) {
  KeyGapStats stats;
  uint64_t pairs = 0;
  long double total = 0;
  const Coord side = curve.side();
  ForEachCellInUniverse(curve.universe(), [&](const Cell& cell) {
    const Key key = curve.IndexOf(cell);
    // Count each undirected pair once: only look at +1 neighbors.
    for (int axis = 0; axis < curve.dims(); ++axis) {
      if (cell[axis] + 1 >= side) continue;
      Cell up = cell;
      up[axis] += 1;
      const Key other = curve.IndexOf(up);
      const uint64_t gap = other > key ? other - key : key - other;
      total += static_cast<long double>(gap);
      stats.max = std::max(stats.max, gap);
      ++pairs;
    }
  });
  if (pairs > 0) stats.mean = static_cast<double>(total / pairs);
  return stats;
}

}  // namespace onion
