#include "analysis/edge_stats.h"

#include <algorithm>
#include <limits>

#include "analysis/boxiter.h"

namespace onion {

namespace {

// Number of placements of an interval of length `len` within [0, side)
// that cover coordinate c: positions x0 in [max(0, c-len+1), min(c, side-len)].
uint64_t CoverOptions1D(Coord side, Coord len, Coord c) {
  const int64_t lo = std::max<int64_t>(0, static_cast<int64_t>(c) - len + 1);
  const int64_t hi =
      std::min<int64_t>(c, static_cast<int64_t>(side) - len);
  return hi >= lo ? static_cast<uint64_t>(hi - lo + 1) : 0;
}

}  // namespace

int GammaSingle(const Box& query, const Cell& from, const Cell& to) {
  const bool from_in = query.Contains(from);
  const bool to_in = query.Contains(to);
  return from_in != to_in ? 1 : 0;
}

uint64_t GammaTranslations(const Universe& universe,
                           const std::vector<Coord>& lengths,
                           const Cell& from, const Cell& to) {
  ONION_CHECK(static_cast<int>(lengths.size()) == universe.dims());
  // A translated query q is crossed by (from, to) iff exactly one endpoint
  // is inside. Decompose per axis: let S = set of axes where the placement
  // separates the endpoints, C = axes where it covers both. The edge is
  // crossed iff exactly one axis separates and all others cover both ...
  // in general (arbitrary edges) iff an odd/mixed condition holds; for
  // clarity and correctness in all cases we use:
  //   crossed iff (covers from) XOR (covers to)
  // where covers(cell) = AND over axes of 1D coverage. Inclusion-exclusion:
  //   #crossing = #covering-from + #covering-to - 2 * #covering-both.
  uint64_t cover_from = 1;
  uint64_t cover_to = 1;
  uint64_t cover_both = 1;
  for (int axis = 0; axis < universe.dims(); ++axis) {
    const Coord len = lengths[static_cast<size_t>(axis)];
    const Coord a = from[axis];
    const Coord b = to[axis];
    const uint64_t fa = CoverOptions1D(universe.side(), len, a);
    const uint64_t fb = CoverOptions1D(universe.side(), len, b);
    uint64_t both;
    if (a == b) {
      both = fa;
    } else {
      // Placements covering both coordinates of this axis.
      const Coord lo_c = std::min(a, b);
      const Coord hi_c = std::max(a, b);
      const int64_t lo = std::max<int64_t>(
          0, static_cast<int64_t>(hi_c) - len + 1);
      const int64_t hi = std::min<int64_t>(
          lo_c, static_cast<int64_t>(universe.side()) - len);
      both = hi >= lo ? static_cast<uint64_t>(hi - lo + 1) : 0;
    }
    cover_from *= fa;
    cover_to *= fb;
    cover_both *= both;
  }
  return cover_from + cover_to - 2 * cover_both;
}

uint64_t GammaTranslationsBrute(const Universe& universe,
                                const std::vector<Coord>& lengths,
                                const Cell& from, const Cell& to) {
  ONION_CHECK(static_cast<int>(lengths.size()) == universe.dims());
  std::array<Coord, kMaxDims> len_array = {};
  for (int axis = 0; axis < universe.dims(); ++axis) {
    len_array[static_cast<size_t>(axis)] = lengths[static_cast<size_t>(axis)];
  }
  Cell corner = Cell::Filled(universe.dims(), 0);
  uint64_t crossings = 0;
  for (;;) {
    const Box box = Box::FromCornerAndLengths(corner, len_array);
    crossings += static_cast<uint64_t>(GammaSingle(box, from, to));
    int axis = 0;
    while (axis < universe.dims()) {
      if (corner[axis] + len_array[static_cast<size_t>(axis)] <
          universe.side()) {
        ++corner[axis];
        break;
      }
      corner[axis] = 0;
      ++axis;
    }
    if (axis == universe.dims()) break;
  }
  return crossings;
}

uint64_t CoverCount(const Universe& universe,
                    const std::vector<Coord>& lengths, const Cell& cell) {
  ONION_CHECK(static_cast<int>(lengths.size()) == universe.dims());
  uint64_t count = 1;
  for (int axis = 0; axis < universe.dims(); ++axis) {
    count *= CoverOptions1D(universe.side(),
                            lengths[static_cast<size_t>(axis)], cell[axis]);
  }
  return count;
}

uint64_t LambdaMin(const Universe& universe, const std::vector<Coord>& lengths,
                   const Cell& cell) {
  uint64_t lambda = std::numeric_limits<uint64_t>::max();
  for (const Cell& neighbor : GridNeighbors(universe, cell)) {
    lambda = std::min(lambda,
                      GammaTranslations(universe, lengths, cell, neighbor));
  }
  ONION_CHECK_MSG(lambda != std::numeric_limits<uint64_t>::max(),
                  "cell has no neighbors (1x1 universe)");
  return lambda;
}

uint64_t LambdaSum(const Universe& universe,
                   const std::vector<Coord>& lengths) {
  uint64_t total = 0;
  ForEachCellInUniverse(universe, [&](const Cell& cell) {
    total += LambdaMin(universe, lengths, cell);
  });
  return total;
}

uint64_t GammaCurveTotal(const SpaceFillingCurve& curve,
                         const std::vector<Coord>& lengths) {
  uint64_t total = 0;
  Cell prev = curve.CellAt(0);
  for (Key key = 1; key < curve.num_cells(); ++key) {
    const Cell next = curve.CellAt(key);
    total += GammaTranslations(curve.universe(), lengths, prev, next);
    prev = next;
  }
  return total;
}

double AverageClusteringViaLemma1(const SpaceFillingCurve& curve,
                                  const std::vector<Coord>& lengths) {
  const Universe& universe = curve.universe();
  const uint64_t gamma = GammaCurveTotal(curve, lengths);
  const uint64_t i_start = CoverCount(universe, lengths, curve.StartCell());
  const uint64_t i_end = CoverCount(universe, lengths, curve.EndCell());
  const uint64_t num_queries = NumTranslations(universe, lengths);
  return static_cast<double>(gamma + i_start + i_end) /
         (2.0 * static_cast<double>(num_queries));
}

uint64_t NumTranslations(const Universe& universe,
                         const std::vector<Coord>& lengths) {
  ONION_CHECK(static_cast<int>(lengths.size()) == universe.dims());
  uint64_t count = 1;
  for (int axis = 0; axis < universe.dims(); ++axis) {
    const Coord len = lengths[static_cast<size_t>(axis)];
    ONION_CHECK(len >= 1 && len <= universe.side());
    count *= universe.side() - len + 1;
  }
  return count;
}

}  // namespace onion
