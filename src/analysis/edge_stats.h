// Edge-crossing statistics from the paper's general techniques (Sec. II and
// Sec. V): gamma (crossing counts), the I indicator sums, lambda (minimum
// neighboring crossing number), and the T sum behind the lower bounds.
//
// Throughout, Q = Q(lengths) is the query set of ALL translations of a box
// with the given side lengths inside the universe (the paper's standard
// query-set construction).

#ifndef ONION_ANALYSIS_EDGE_STATS_H_
#define ONION_ANALYSIS_EDGE_STATS_H_

#include <cstdint>
#include <vector>

#include "sfc/curve.h"

namespace onion {

/// A directed edge of a curve: consecutive cells (CellAt(k), CellAt(k+1)).
struct CurveEdge {
  Cell from;
  Cell to;
};

/// gamma(q, e): 1 if e enters or leaves q (i.e. exactly one endpoint is in
/// q), else 0.
int GammaSingle(const Box& query, const Cell& from, const Cell& to);

/// gamma(Q, e) where Q is all translations of a box with side `lengths`:
/// the number of translations that edge (from, to) crosses. Closed form
/// generalizing Lemma 2 to arbitrary edges in arbitrary dimension.
uint64_t GammaTranslations(const Universe& universe,
                           const std::vector<Coord>& lengths,
                           const Cell& from, const Cell& to);

/// Brute-force version of GammaTranslations (iterates every translation).
/// Used as a test oracle.
uint64_t GammaTranslationsBrute(const Universe& universe,
                                const std::vector<Coord>& lengths,
                                const Cell& from, const Cell& to);

/// I(Q, alpha): the number of translations containing cell alpha.
uint64_t CoverCount(const Universe& universe,
                    const std::vector<Coord>& lengths, const Cell& cell);

/// lambda(Q, alpha) (Definition 2): minimum of GammaTranslations over the
/// grid neighbors of alpha.
uint64_t LambdaMin(const Universe& universe, const std::vector<Coord>& lengths,
                   const Cell& cell);

/// T = sum over all cells of lambda(Q, alpha) (Sec. V-A). O(n) cells with
/// O(d) work each; exact in any dimension.
uint64_t LambdaSum(const Universe& universe,
                   const std::vector<Coord>& lengths);

/// gamma(Q, pi): total crossings of the curve's edge set over all
/// translations, computed edge by edge with the closed form. O(n * d).
uint64_t GammaCurveTotal(const SpaceFillingCurve& curve,
                         const std::vector<Coord>& lengths);

/// Average clustering number via Lemma 1:
///   c(Q, pi) = (gamma(Q, pi) + I(Q, pi_s) + I(Q, pi_e)) / (2 |Q|).
/// Exact for any curve; cost O(n * d) independent of |Q|.
double AverageClusteringViaLemma1(const SpaceFillingCurve& curve,
                                  const std::vector<Coord>& lengths);

/// Number of translations |Q(lengths)| in the universe.
uint64_t NumTranslations(const Universe& universe,
                         const std::vector<Coord>& lengths);

}  // namespace onion

#endif  // ONION_ANALYSIS_EDGE_STATS_H_
