// Cell enumeration helpers for box queries: all cells, and boundary cells
// only (each visited exactly once). Header-only templates so the per-cell
// callback inlines into the clustering hot loops.

#ifndef ONION_ANALYSIS_BOXITER_H_
#define ONION_ANALYSIS_BOXITER_H_

#include <utility>

#include "sfc/types.h"

namespace onion {

/// Invokes fn(cell) for every cell of `box`, in row-major order.
template <typename Fn>
void ForEachCell(const Box& box, Fn&& fn) {
  Cell cell = box.lo;
  const int d = box.dims();
  for (;;) {
    fn(static_cast<const Cell&>(cell));
    int axis = 0;
    while (axis < d) {
      if (cell[axis] < box.hi[axis]) {
        ++cell[axis];
        break;
      }
      cell[axis] = box.lo[axis];
      ++axis;
    }
    if (axis == d) return;
  }
}

/// Invokes fn(cell) exactly once for every boundary cell of `box` (cells
/// with at least one coordinate equal to the box's lo or hi along some
/// axis). Enumeration strategy: classify each boundary cell by the smallest
/// axis on which it is extreme; for that axis the coordinate is pinned to
/// lo/hi, smaller axes range over the strict interior, larger axes over the
/// full extent.
template <typename Fn>
void ForEachBoundaryCell(const Box& box, Fn&& fn) {
  const int d = box.dims();
  for (int pinned = 0; pinned < d; ++pinned) {
    // Skip if any smaller axis has no interior (then every cell is extreme
    // on that axis and is enumerated there).
    bool has_interior = true;
    for (int axis = 0; axis < pinned; ++axis) {
      if (box.Length(axis) <= 2) {
        has_interior = false;
        break;
      }
    }
    if (!has_interior) break;

    const Coord extremes[2] = {box.lo[pinned], box.hi[pinned]};
    const int num_extremes = box.Length(pinned) == 1 ? 1 : 2;
    for (int which = 0; which < num_extremes; ++which) {
      // Iterate the remaining axes: smaller axes over strict interior,
      // larger axes over the full range.
      Cell cell = box.lo;
      cell[pinned] = extremes[which];
      for (int axis = 0; axis < pinned; ++axis) cell[axis] = box.lo[axis] + 1;
      for (;;) {
        fn(static_cast<const Cell&>(cell));
        int axis = 0;
        for (; axis < d; ++axis) {
          if (axis == pinned) continue;
          const Coord hi_bound =
              axis < pinned ? box.hi[axis] - 1 : box.hi[axis];
          const Coord lo_bound =
              axis < pinned ? box.lo[axis] + 1 : box.lo[axis];
          if (cell[axis] < hi_bound) {
            ++cell[axis];
            break;
          }
          cell[axis] = lo_bound;
        }
        if (axis == d) break;
      }
    }
  }
}

/// Invokes fn(cell) for every cell of the universe.
template <typename Fn>
void ForEachCellInUniverse(const Universe& universe, Fn&& fn) {
  ForEachCell(universe.Bounds(), std::forward<Fn>(fn));
}

}  // namespace onion

#endif  // ONION_ANALYSIS_BOXITER_H_
