// Continuity checking (Definition 1 in the paper): a curve is continuous if
// every pair of consecutive positions are grid neighbors.

#ifndef ONION_ANALYSIS_CONTINUITY_H_
#define ONION_ANALYSIS_CONTINUITY_H_

#include <cstdint>

#include "sfc/curve.h"

namespace onion {

/// True if cells a and b differ by exactly 1 along exactly one axis.
bool AreGridNeighbors(const Cell& a, const Cell& b);

/// Number of consecutive pairs (CellAt(k), CellAt(k+1)) that are NOT grid
/// neighbors. Zero iff the curve is continuous. O(n) full scan.
uint64_t CountDiscontinuities(const SpaceFillingCurve& curve);

/// Full-scan continuity verdict; use in tests to validate the static
/// is_continuous() claims of curve implementations.
bool VerifyContinuity(const SpaceFillingCurve& curve);

}  // namespace onion

#endif  // ONION_ANALYSIS_CONTINUITY_H_
