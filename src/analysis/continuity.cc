#include "analysis/continuity.h"

#include <cstdlib>

namespace onion {

bool AreGridNeighbors(const Cell& a, const Cell& b) {
  if (a.dims != b.dims) return false;
  int diff_axes = 0;
  for (int axis = 0; axis < a.dims; ++axis) {
    const int64_t delta = static_cast<int64_t>(a[axis]) - b[axis];
    if (delta == 0) continue;
    if (delta != 1 && delta != -1) return false;
    ++diff_axes;
  }
  return diff_axes == 1;
}

uint64_t CountDiscontinuities(const SpaceFillingCurve& curve) {
  uint64_t jumps = 0;
  Cell prev = curve.CellAt(0);
  for (Key key = 1; key < curve.num_cells(); ++key) {
    const Cell next = curve.CellAt(key);
    if (!AreGridNeighbors(prev, next)) ++jumps;
    prev = next;
  }
  return jumps;
}

bool VerifyContinuity(const SpaceFillingCurve& curve) {
  return CountDiscontinuities(curve) == 0;
}

}  // namespace onion
