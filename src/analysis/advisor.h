// Curve advisor: which space-filling curve should key an index serving
// THIS query distribution?
//
// The paper's central quantity — the clustering number of a query under a
// curve — is exactly the number of disk seeks a range scan pays, so the
// best curve for a workload is the one minimizing the modeled cost
// seek_ms * clusters + transfer_ms * cells over the observed boxes.
// AdviseCurve() evaluates every candidate curve exactly (ClusteringEvaluator)
// on the given boxes and ranks them by that model. It is the engine behind
// examples/curve_advisor.cc and SfcDb::AdviseCurve (which feeds it the
// query boxes its index cursors actually served, and can then migrate the
// index via SfcDb::MigrateIndexCurve).

#ifndef ONION_ANALYSIS_ADVISOR_H_
#define ONION_ANALYSIS_ADVISOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "index/disk_model.h"
#include "sfc/types.h"

namespace onion {

/// Exact modeled cost of one candidate curve over the evaluated workload.
struct CurveCost {
  std::string curve;
  double avg_clusters = 0;    ///< mean clustering number (== seeks) per query
  double avg_cells = 0;       ///< mean cells (== entries transferred) per query
  double modeled_ms_per_query = 0;  ///< DiskModel::EstimateMs, per query
};

/// The advisor's answer: the cheapest curve plus the full ranking (cost
/// ascending) for reporting.
struct CurveAdvice {
  std::string recommended;
  double modeled_ms_per_query = 0;
  std::vector<CurveCost> ranked;
};

/// Evaluates every candidate curve on `boxes` (each must lie inside
/// `universe`) and returns the ranking under `model`. `candidates` empty
/// means every KnownCurveNames() entry; candidates the registry rejects
/// for this universe (e.g. "zorder" on a non-power-of-two side) are
/// skipped, not errors. Fails with InvalidArgument when `boxes` is empty,
/// a box falls outside the universe, or no candidate curve applies.
Result<CurveAdvice> AdviseCurve(const Universe& universe,
                                const std::vector<Box>& boxes,
                                const DiskModel& model,
                                const std::vector<std::string>& candidates = {});

}  // namespace onion

#endif  // ONION_ANALYSIS_ADVISOR_H_
