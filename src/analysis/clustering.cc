#include "analysis/clustering.h"

#include <algorithm>

#include "analysis/boxiter.h"

namespace onion {

uint64_t ClusteringNumberBruteForce(const SpaceFillingCurve& curve,
                                    const Box& box) {
  std::vector<Key> keys;
  keys.reserve(box.Volume());
  ForEachCell(box, [&](const Cell& cell) { keys.push_back(curve.IndexOf(cell)); });
  std::sort(keys.begin(), keys.end());
  uint64_t clusters = keys.empty() ? 0 : 1;
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] != keys[i - 1] + 1) ++clusters;
  }
  return clusters;
}

namespace {

// True if `cell` begins a cluster of `box` under `curve`.
inline bool IsClusterStart(const SpaceFillingCurve& curve, const Box& box,
                           const Cell& cell) {
  const Key key = curve.IndexOf(cell);
  if (key == 0) return true;
  return !box.Contains(curve.CellAt(key - 1));
}

// True if `cell` ends a cluster of `box` under `curve`.
inline bool IsClusterEnd(const SpaceFillingCurve& curve, const Box& box,
                         const Cell& cell) {
  const Key key = curve.IndexOf(cell);
  if (key + 1 == curve.num_cells()) return true;
  return !box.Contains(curve.CellAt(key + 1));
}

}  // namespace

uint64_t ClusteringNumberEntryTest(const SpaceFillingCurve& curve,
                                   const Box& box) {
  uint64_t clusters = 0;
  ForEachCell(box, [&](const Cell& cell) {
    if (IsClusterStart(curve, box, cell)) ++clusters;
  });
  return clusters;
}

uint64_t ClusteringNumberBoundary(const SpaceFillingCurve& curve,
                                  const Box& box) {
  ONION_CHECK_MSG(curve.is_continuous(),
                  "boundary scan requires a continuous curve");
  uint64_t clusters = 0;
  ForEachBoundaryCell(box, [&](const Cell& cell) {
    if (IsClusterStart(curve, box, cell)) ++clusters;
  });
  // The curve's first cell starts a cluster regardless of its neighbors;
  // on a continuous curve it could in principle sit strictly inside the box
  // and be missed by the boundary walk.
  const Cell start = curve.StartCell();
  if (box.Contains(start)) {
    bool on_boundary = false;
    for (int axis = 0; axis < box.dims(); ++axis) {
      if (start[axis] == box.lo[axis] || start[axis] == box.hi[axis]) {
        on_boundary = true;
        break;
      }
    }
    if (!on_boundary) ++clusters;  // interior start cell: key 0 entry
  }
  return clusters;
}

uint64_t ClusteringNumber(const SpaceFillingCurve& curve, const Box& box) {
  if (curve.is_continuous() && box.Volume() > box.SurfaceCells()) {
    return ClusteringNumberBoundary(curve, box);
  }
  return ClusteringNumberEntryTest(curve, box);
}

std::vector<KeyRange> ClusterRanges(const SpaceFillingCurve& curve,
                                    const Box& box) {
  std::vector<Key> starts;
  std::vector<Key> ends;
  const bool boundary_only =
      curve.is_continuous() && box.Volume() > box.SurfaceCells();
  auto visit = [&](const Cell& cell) {
    if (IsClusterStart(curve, box, cell)) starts.push_back(curve.IndexOf(cell));
    if (IsClusterEnd(curve, box, cell)) ends.push_back(curve.IndexOf(cell));
  };
  if (boundary_only) {
    ForEachBoundaryCell(box, visit);
    // Strictly-interior first/last cells of the curve (see
    // ClusteringNumberBoundary for rationale).
    for (const Cell& cell : {curve.StartCell(), curve.EndCell()}) {
      if (!box.Contains(cell)) continue;
      bool on_boundary = false;
      for (int axis = 0; axis < box.dims(); ++axis) {
        if (cell[axis] == box.lo[axis] || cell[axis] == box.hi[axis]) {
          on_boundary = true;
          break;
        }
      }
      if (!on_boundary) visit(cell);
    }
  } else {
    ForEachCell(box, visit);
  }
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  ONION_CHECK(starts.size() == ends.size());
  std::vector<KeyRange> ranges;
  ranges.reserve(starts.size());
  for (size_t i = 0; i < starts.size(); ++i) {
    ONION_DCHECK(starts[i] <= ends[i]);
    ranges.push_back(KeyRange{starts[i], ends[i]});
  }
  return ranges;
}

namespace {

// True if a and b differ by exactly 1 along exactly one axis.
bool NeighborCells(const Cell& a, const Cell& b) {
  int diff_axes = 0;
  for (int axis = 0; axis < a.dims; ++axis) {
    const int64_t delta = static_cast<int64_t>(a[axis]) - b[axis];
    if (delta == 0) continue;
    if (delta != 1 && delta != -1) return false;
    ++diff_axes;
  }
  return diff_axes == 1;
}

bool OnBoxBoundary(const Box& box, const Cell& cell) {
  for (int axis = 0; axis < box.dims(); ++axis) {
    if (cell[axis] == box.lo[axis] || cell[axis] == box.hi[axis]) return true;
  }
  return false;
}

}  // namespace

ClusteringEvaluator::ClusteringEvaluator(const SpaceFillingCurve* curve)
    : curve_(curve) {
  ONION_CHECK(curve != nullptr);
  if (curve->is_continuous()) {
    mode_ = Mode::kBoundary;
    return;
  }
  // One full pass to find all jump targets. Give up (entry-test mode) as
  // soon as the jump count exceeds a small multiple of the side length,
  // since the per-query overhead would then dominate.
  const uint64_t limit = 8ull * curve->side() * curve->dims() + 16;
  jump_targets_.push_back(curve->CellAt(0));
  Cell prev = jump_targets_.front();
  for (Key key = 1; key < curve->num_cells(); ++key) {
    const Cell next = curve->CellAt(key);
    if (!NeighborCells(prev, next)) {
      jump_targets_.push_back(next);
      if (jump_targets_.size() > limit) {
        jump_targets_.clear();
        mode_ = Mode::kEntryTest;
        return;
      }
    }
    prev = next;
  }
  mode_ = Mode::kAlmostContinuous;
}

uint64_t ClusteringEvaluator::Clustering(const Box& box) const {
  if (mode_ == Mode::kEntryTest || box.Volume() <= box.SurfaceCells()) {
    return ClusteringNumberEntryTest(*curve_, box);
  }
  // Starts on the query boundary.
  uint64_t clusters = 0;
  ForEachBoundaryCell(box, [&](const Cell& cell) {
    if (IsClusterStart(*curve_, box, cell)) ++clusters;
  });
  // Starts strictly inside the query: only possible at jump targets (or
  // the curve's start cell); both are precomputed for kAlmostContinuous.
  if (mode_ == Mode::kAlmostContinuous) {
    for (const Cell& cell : jump_targets_) {
      if (box.Contains(cell) && !OnBoxBoundary(box, cell) &&
          IsClusterStart(*curve_, box, cell)) {
        ++clusters;
      }
    }
  } else {
    // Continuous curve: only the start cell needs the interior check.
    const Cell start = curve_->StartCell();
    if (box.Contains(start) && !OnBoxBoundary(box, start)) ++clusters;
  }
  return clusters;
}

const char* ClusteringEvaluator::mode() const {
  switch (mode_) {
    case Mode::kBoundary:
      return "boundary";
    case Mode::kAlmostContinuous:
      return "almost";
    case Mode::kEntryTest:
      return "entry";
  }
  return "unknown";
}

double AverageClusteringExact(const SpaceFillingCurve& curve,
                              const std::vector<Coord>& lengths) {
  const Universe& universe = curve.universe();
  ONION_CHECK(static_cast<int>(lengths.size()) == universe.dims());
  std::array<Coord, kMaxDims> len_array = {};
  for (int axis = 0; axis < universe.dims(); ++axis) {
    ONION_CHECK(lengths[static_cast<size_t>(axis)] >= 1 &&
                lengths[static_cast<size_t>(axis)] <= universe.side());
    len_array[static_cast<size_t>(axis)] = lengths[static_cast<size_t>(axis)];
  }
  // Iterate all translations: corner[axis] in [0, side - len].
  Cell corner = Cell::Filled(universe.dims(), 0);
  uint64_t total = 0;
  uint64_t count = 0;
  for (;;) {
    const Box box = Box::FromCornerAndLengths(corner, len_array);
    total += ClusteringNumber(curve, box);
    ++count;
    int axis = 0;
    while (axis < universe.dims()) {
      if (corner[axis] + len_array[static_cast<size_t>(axis)] <
          universe.side()) {
        ++corner[axis];
        break;
      }
      corner[axis] = 0;
      ++axis;
    }
    if (axis == universe.dims()) break;
  }
  return static_cast<double>(total) / static_cast<double>(count);
}

}  // namespace onion
