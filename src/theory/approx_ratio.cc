#include "theory/approx_ratio.h"

#include <algorithm>

#include "common/macros.h"

namespace onion {

namespace {

// Asymptotic (n -> infinity) average clustering of the 2D onion curve for
// l_i = phi_i * sqrt(n), in units of sqrt(n): dominant terms of Theorem 1
// with m -> 1/2, L_i -> (1 - phi_i) sqrt(n).
double OnionClusteringLimit2D(double phi1, double phi2) {
  if (phi1 > phi2) std::swap(phi1, phi2);
  const double denom = (1 - phi1) * (1 - phi2);
  const double cubic = (2.0 / 3.0) * phi2 * phi2 * phi2 -
                       3.5 * phi1 * phi2 * phi2 + 2.5 * phi1 * phi1 * phi2 -
                       0.5 * (phi2 - phi1) * (phi2 - 3 * phi1);
  return 0.5 * (phi1 + phi2) + cubic / denom;
}

// Asymptotic continuous-SFC lower bound, in units of sqrt(n): dominant
// terms of Lemma 8 / Theorem 2 with m -> 1/2.
double LowerBoundLimit2D(double phi1, double phi2) {
  if (phi1 > phi2) std::swap(phi1, phi2);
  double t;  // T / (4 n^{3/2})
  if (phi1 <= phi2 / 2) {
    t = phi1 * phi1 * phi1 / 12 + phi1 * phi1 * phi2 / 2 -
        (5.0 / 8.0) * phi1 * phi1 - phi1 * phi2 / 2 + phi1 / 2;
  } else {
    t = phi1 * phi1 * phi1 / 12 + 1.5 * phi1 * phi1 * phi2 -
        phi1 * phi2 * phi2 + phi2 * phi2 * phi2 / 4 -
        (9.0 / 8.0) * phi1 * phi1 - phi2 * phi2 / 8 + phi1 / 2;
  }
  const double queries = (1 - phi1) * (1 - phi2);  // |Q| / n
  return 4 * t / (2 * queries);
}

}  // namespace

double OnionRatio2DEqualPhi(double phi) {
  ONION_CHECK(phi > 0 && phi <= 0.5);
  return 2 * (1 + phi * (0.5 - phi) /
                      (1 - 2.5 * phi + (5.0 / 3.0) * phi * phi));
}

double OnionRatio2DAsymptotic(double phi1, double phi2) {
  ONION_CHECK(phi1 > 0 && phi1 <= phi2 && phi2 <= 0.5);
  return 2 * OnionClusteringLimit2D(phi1, phi2) /
         LowerBoundLimit2D(phi1, phi2);
}

double OnionRatio2DLargePhi(double phi1, double phi2) {
  ONION_CHECK(phi1 > 0.5 && phi1 <= phi2 && phi2 < 1);
  const double r = (phi2 - phi1) / (1 - phi2);
  return 2 + 3 * r * r;
}

double OnionRatio2DNearFull(double psi1, double psi2) {
  ONION_CHECK(psi1 <= psi2 && psi2 <= 0);
  const double r = (psi2 - psi1) / (1 - psi2);
  return 2 + 3 * r * r;
}

double OnionRatio3DEqualPhi(double phi) {
  ONION_CHECK(phi > 0 && phi <= 0.5);
  const double numerator = 0.75 * phi * (0.5 - phi) * (4 + 3 * phi);
  const double denominator =
      (1 - phi) * (1 - phi) * (1 - phi) +
      (phi / 40) * (29 * phi * phi + 37.5 * phi - 30);
  return 2 + numerator / denominator;
}

double OnionRatio3DNearFull(double psi) {
  ONION_CHECK(psi <= 0);
  return 2 + (95.0 / 6.0) / (-psi - 1.5);
}

double ConstantQueryClusteringLimit(int dims, const double* lengths) {
  ONION_CHECK(dims >= 1 && lengths != nullptr);
  // Surface area of a box = sum over axes of 2 * (product of the other
  // side lengths).
  double surface = 0;
  for (int drop = 0; drop < dims; ++drop) {
    double face = 1;
    for (int axis = 0; axis < dims; ++axis) {
      if (axis != drop) face *= lengths[axis];
    }
    surface += 2 * face;
  }
  return surface / (2.0 * dims);
}

namespace {

template <typename Fn>
double MaximizeOnHalfOpenUnitInterval(Fn&& fn) {
  double best = 0;
  for (int i = 1; i <= 50000; ++i) {
    const double phi = 0.5 * i / 50000.0;
    best = std::max(best, fn(phi));
  }
  return best;
}

}  // namespace

double MaxOnionRatio2D() {
  return MaximizeOnHalfOpenUnitInterval(OnionRatio2DEqualPhi);
}

double MaxOnionRatio3D() {
  return MaximizeOnHalfOpenUnitInterval(OnionRatio3DEqualPhi);
}

}  // namespace onion
