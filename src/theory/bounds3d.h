// Three-dimensional bounds (paper, Sec. VI-B): Theorem 4 (onion upper
// bound), Theorem 5 (continuous-SFC lower bound) and Theorem 6 (general-SFC
// lower bound), for cube query sets Q(l) on a universe of even side
// s = n^(1/3) with L = s - l + 1 and m = s/2.

#ifndef ONION_THEORY_BOUNDS3D_H_
#define ONION_THEORY_BOUNDS3D_H_

#include <cstdint>

namespace onion {

/// Theorem 4: closed-form estimate of c(Q(l), O) for the 3D onion curve.
/// For l <= s/2 the o(l^2) term is dropped; for l > s/2 this is the
/// theorem's upper bound (3/5)L^2 + (13/4)L - 13/6.
double Onion3DClusteringTheorem4(uint64_t side, uint64_t l);

/// Theorem 5: lower bound LB(l) on the average clustering number of any
/// continuous 3D SFC (o(l^2) term dropped).
double LowerBoundContinuous3D(uint64_t side, uint64_t l);

/// Theorem 6: lower bound for arbitrary 3D SFCs (half of Theorem 5).
double LowerBoundGeneral3D(uint64_t side, uint64_t l);

}  // namespace onion

#endif  // ONION_THEORY_BOUNDS3D_H_
