// Lower bounds on the average clustering number of ANY two-dimensional SFC
// (paper, Sec. V): the minimum neighboring crossing number lambda
// (Definition 2 / Lemma 7), the T sum (Lemma 8), Theorem 2 (continuous
// SFCs) and Theorem 3 (arbitrary SFCs).
//
// NOTE ON FIDELITY: the paper's Lemma 7 closed form assumes the minimum
// crossing is achieved at the left/down neighbor, which is correct for
// l2 <= m but NOT in the large-query regime (l1 > m), where the edge
// TOWARD the universe center can have zero crossings (e.g. side 8, l = 7,
// cell (0, 1): true lambda = 0 via the up-edge; the paper formula gives 1).
// Lambda2DExact therefore evaluates all four incident edges with the exact
// Lemma 2 factors; the verbatim paper formula is kept as
// Lambda2DPaperFormula, and the divergence is quantified in EXPERIMENTS.md.
// All bounds exported from this header use the exact (sound) version.

#ifndef ONION_THEORY_LOWER_BOUNDS2D_H_
#define ONION_THEORY_LOWER_BOUNDS2D_H_

#include <cstdint>

namespace onion {

/// Exact lambda(Q(l1,l2), (i,j)) on a side x side grid, O(1): the minimum
/// over the (up to four) incident grid edges of the Lemma 2 crossing count.
uint64_t Lambda2DExact(uint64_t side, uint64_t l1, uint64_t l2, uint64_t i,
                       uint64_t j);

/// The paper's Lemma 7 closed form, verbatim (left/down edges only, h1/h2
/// and tau factors). Agrees with Lambda2DExact when l1, l2 <= side/2;
/// overestimates for some boundary cells when l1 > side/2.
uint64_t Lambda2DPaperFormula(uint64_t side, uint64_t l1, uint64_t l2,
                              uint64_t i, uint64_t j);

/// Exact T = sum over all cells of lambda (Sec. V-A), via the quadrant
/// symmetry; O(side^2 / 4). `side` must be even.
double TSum2DExact(uint64_t side, uint64_t l1, uint64_t l2);

/// Lemma 8's closed-form polynomials for T, verbatim. Matches TSum2DExact
/// for l2 <= side/2; overestimates in the l1 > side/2 regime (see header
/// note). The mixed case l1 <= m < l2, which Lemma 8 does not cover, falls
/// back to TSum2DExact.
double TSum2DClosedForm(uint64_t side, uint64_t l1, uint64_t l2);

/// Theorem 2: lower bound for continuous SFCs, LB = T / (2 |Q|) computed
/// from the exact T; any continuous SFC's average clustering number is
/// >= LB - 1.
double LowerBoundContinuous2D(uint64_t side, uint64_t l1, uint64_t l2);

/// Theorem 3: lower bound for arbitrary SFCs (half the continuous bound,
/// up to an additive constant |eps| <= 2).
double LowerBoundGeneral2D(uint64_t side, uint64_t l1, uint64_t l2);

}  // namespace onion

#endif  // ONION_THEORY_LOWER_BOUNDS2D_H_
