#include "theory/onion2d_bounds.h"

#include <algorithm>

#include "common/macros.h"

namespace onion {

TheoryEstimate Onion2DClusteringTheorem1(uint64_t side, uint64_t l1,
                                         uint64_t l2) {
  ONION_CHECK_MSG(side % 2 == 0, "Theorem 1 assumes an even side");
  ONION_CHECK(l1 >= 1 && l2 >= 1 && l1 <= side && l2 <= side);
  if (l1 > l2) std::swap(l1, l2);
  const double s = static_cast<double>(side);
  const double m = s / 2;
  const double a = static_cast<double>(l1);
  const double b = static_cast<double>(l2);
  const double big_l1 = s - a + 1;
  const double big_l2 = s - b + 1;

  TheoryEstimate estimate;
  if (b <= m) {
    const double correction =
        (2.0 / 3.0) * b * b * b - 3.5 * a * b * b + 2.5 * a * a * b -
        m * (b - a) * (b - 3 * a);
    estimate.value = 0.5 * (a + b) + correction / (big_l1 * big_l2);
    estimate.error = 5.0;
  } else if (a > m) {
    estimate.value =
        big_l1 - big_l2 + (2.0 / 3.0) * big_l2 * big_l2 / big_l1 + 0.0;
    estimate.error = 2.0;
  } else {
    // Near-cube remark: approximate by the cube Q(m, m).
    estimate.value = 2.0 * m / 3.0;
    estimate.error = 6.0;
  }
  return estimate;
}

}  // namespace onion
