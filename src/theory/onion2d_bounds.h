// Closed-form clustering estimates for the 2D onion curve (Theorem 1).
//
// For query set Q(l1, l2) (all translations; l1 <= l2) on a sqrt(n) x
// sqrt(n) universe with even side and m = sqrt(n)/2, L_i = sqrt(n) - l_i + 1:
//
//   l2 <= m:  c(Q,O) = (l1+l2)/2
//                      + [ (2/3)l2^3 - (7/2)l1 l2^2 + (5/2)l1^2 l2
//                          - m(l2-l1)(l2-3l1) ] / (L1 L2)  + eps1, |eps1|<=5
//   m  <  l1: c(Q,O) = L1 - L2 + (2/3)L2^2/L1 + eps2,          |eps2|<=2
//   l1 <= m < l2 (near-cube remark): c(Q,O) = 2m/3 + O(1).

#ifndef ONION_THEORY_ONION2D_BOUNDS_H_
#define ONION_THEORY_ONION2D_BOUNDS_H_

#include <cstdint>

namespace onion {

/// A closed-form estimate together with the theorem's error bound: the true
/// average clustering number lies within [value - error, value + error].
struct TheoryEstimate {
  double value = 0;
  double error = 0;
};

/// Theorem 1 estimate of the onion curve's average clustering number over
/// Q(l1, l2). Orders l1/l2 internally. `side` must be even. For the mixed
/// case l1 <= m < l2 the estimate is the near-cube remark (2m/3) with a
/// conservative O(1) error of 6.
TheoryEstimate Onion2DClusteringTheorem1(uint64_t side, uint64_t l1,
                                         uint64_t l2);

}  // namespace onion

#endif  // ONION_THEORY_ONION2D_BOUNDS_H_
