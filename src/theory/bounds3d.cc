#include "theory/bounds3d.h"

#include "common/macros.h"

namespace onion {

double Onion3DClusteringTheorem4(uint64_t side, uint64_t l) {
  ONION_CHECK(side % 2 == 0);
  ONION_CHECK(l >= 1 && l <= side);
  const double s = static_cast<double>(side);
  const double x = static_cast<double>(l);
  const double big_l = s - x + 1;
  if (2 * l <= side) {
    // c(Q,O) = l^2 - (2/5) l^5 / L^3 + o(l^2)
    return x * x - 0.4 * x * x * x * x * x / (big_l * big_l * big_l);
  }
  // c(Q,O) <= (3/5)L^2 + (13/4)L - 13/6
  return 0.6 * big_l * big_l + 3.25 * big_l - 13.0 / 6.0;
}

double LowerBoundContinuous3D(uint64_t side, uint64_t l) {
  ONION_CHECK(side % 2 == 0);
  ONION_CHECK(l >= 1 && l <= side);
  const double s = static_cast<double>(side);
  const double x = static_cast<double>(l);
  const double m = s / 2;
  const double big_l = s - x + 1;
  if (2 * l <= side) {
    // LB = l^2 + [ (29/40) l^5 + (15/8) m l^4 - 3 m^2 l^3 ] / L^3 + o(l^2).
    // (The last exponent is l^3: with l = phi*s this makes the bracket
    // O(s^2) like l^2 itself, and reproduces the paper's closed-form ratio
    // eta(phi) with its maximum 3.4 at phi = 0.3967; an l^2 exponent there
    // would make the "lower bound" exceed the Theorem 4 upper bound.)
    const double correction = (29.0 / 40.0) * x * x * x * x * x +
                              (15.0 / 8.0) * m * x * x * x * x -
                              3.0 * m * m * x * x * x;
    return x * x + correction / (big_l * big_l * big_l);
  }
  // LB = (3/5)L^2 - (3/2)L (+ eps in [0, 1], dropped).
  return 0.6 * big_l * big_l - 1.5 * big_l;
}

double LowerBoundGeneral3D(uint64_t side, uint64_t l) {
  return 0.5 * LowerBoundContinuous3D(side, l);
}

}  // namespace onion
