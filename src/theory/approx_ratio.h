// Approximation-ratio case analysis (paper, Sec. V-D and VI-C; Tables I
// and II). Query side lengths scale as l_i = phi_i * side^mu + psi_i.
//
// The asymptotic ratios eta(Q, O) = c(Q, O) / OPT(Q) are bounded by
// 2 * c(Q, O) / LB_continuous; the functions below evaluate the paper's
// closed-form limits of that bound.

#ifndef ONION_THEORY_APPROX_RATIO_H_
#define ONION_THEORY_APPROX_RATIO_H_

namespace onion {

/// Case III (d = 2, mu = 1, phi1 = phi2 = phi <= 1/2):
///   eta <= 2 (1 + phi(1/2 - phi) / (1 - (5/2)phi + (5/3)phi^2)).
/// Maximum 2.32 at phi = 0.355 (Table I).
double OnionRatio2DEqualPhi(double phi);

/// General mu = 1 asymptotic bound for 0 < phi1 <= phi2 <= 1/2, obtained as
/// 2 * lim c(Q,O) / lim LB with the dominant terms of Theorem 1 and
/// Lemma 8 (the paper states this function exists but omits it; we evaluate
/// it exactly from the same closed forms).
double OnionRatio2DAsymptotic(double phi1, double phi2);

/// Case IV (d = 2, 1/2 < phi1 <= phi2 < 1):
///   eta <= 2 + 3 ((phi2 - phi1) / (1 - phi2))^2.
double OnionRatio2DLargePhi(double phi1, double phi2);

/// Case V (d = 2, phi = 1, side lengths side + psi_i, psi1 <= psi2 <= 0):
///   eta <= 2 + 3 ((psi2 - psi1) / (1 - psi2))^2.
double OnionRatio2DNearFull(double psi1, double psi2);

/// Case III (d = 3, mu = 1, phi <= 1/2):
///   eta <= 2 + (3/4) phi (1/2 - phi)(4 + 3 phi)
///              / [ (1-phi)^3 + (phi/40)(29 phi^2 + (75/2) phi - 30) ].
/// Maximum 3.4 at phi = 0.3967 (Table I).
double OnionRatio3DEqualPhi(double phi);

/// Case V (d = 3, l = side + psi, psi <= 0):
///   eta <= 2 + (95/6) / (-psi - 3/2).   (<= 3 for psi <= -20.)
double OnionRatio3DNearFull(double psi);

/// Moon/Jagadish/Faloutsos/Saltz (TKDE 2001, cited as [11]): for a query
/// shape of CONSTANT size, the average clustering number of the Hilbert
/// curve tends to (surface area of the shape) / (2d) as n grows; Xu &
/// Tirthapura (TODS 2014, [13]) extend this to every continuous curve and
/// show it is optimal. Returns that limit for a box of the given side
/// lengths (2D surface area = perimeter).
double ConstantQueryClusteringLimit(int dims, const double* lengths);

/// The paper's headline constants (Table I).
inline constexpr double kOnionCubeRatio2D = 2.32;
inline constexpr double kOnionCubeRatio3D = 3.4;

/// Numerically maximizes OnionRatio2DEqualPhi over (0, 1/2]; should return
/// ~2.32 (used to regenerate Table I).
double MaxOnionRatio2D();

/// Numerically maximizes OnionRatio3DEqualPhi over (0, 1/2]; ~3.4.
double MaxOnionRatio3D();

}  // namespace onion

#endif  // ONION_THEORY_APPROX_RATIO_H_
