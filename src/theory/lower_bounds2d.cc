#include "theory/lower_bounds2d.h"

#include <algorithm>

#include "common/macros.h"

namespace onion {

namespace {

// tau(k, l) = min(k+1, l, side+1-l): the covering-options factor of
// Lemma 2 for a cell at distance k from the near boundary.
uint64_t Tau(uint64_t side, uint64_t k, uint64_t l) {
  return std::min({k + 1, l, side + 1 - l});
}

// Separating-options factor of Lemma 2 for an edge at boundary distance
// `depth` (= min over endpoints of coordinate distance to the boundary,
// 1-based): h1 when l <= side/2, h2 otherwise.
uint64_t SeparationFactor(uint64_t side, uint64_t depth, uint64_t l) {
  if (l <= side / 2) {
    return depth <= l - 1 ? 1 : 2;  // h1
  }
  return depth <= side - l ? 1 : 0;  // h2
}

// Reflects a coordinate into the lower quadrant [0, side/2).
uint64_t Reflect(uint64_t side, uint64_t c) {
  return c < side / 2 ? c : side - 1 - c;
}

}  // namespace

uint64_t Lambda2DExact(uint64_t side, uint64_t l1, uint64_t l2, uint64_t i,
                       uint64_t j) {
  ONION_CHECK(side % 2 == 0);
  ONION_CHECK(i < side && j < side);
  // lambda is invariant under reflections of the universe.
  i = Reflect(side, i);
  j = Reflect(side, j);
  // Edge boundary depths (1-based): the left edge of cell i sits at depth
  // i, the right edge at depth i+1 (both clamped by the quadrant).
  const uint64_t cover1 = Tau(side, i, l1);  // covering options along axis 1
  const uint64_t cover2 = Tau(side, j, l2);
  uint64_t lambda = ~0ull;
  if (i > 0) {  // left edge
    lambda = std::min(lambda, SeparationFactor(side, i, l1) * cover2);
  }
  // right edge (always exists for quadrant cells, i+1 <= side/2)
  lambda = std::min(lambda, SeparationFactor(side, i + 1, l1) * cover2);
  if (j > 0) {  // down edge
    lambda = std::min(lambda, SeparationFactor(side, j, l2) * cover1);
  }
  // up edge
  lambda = std::min(lambda, SeparationFactor(side, j + 1, l2) * cover1);
  return lambda;
}

uint64_t Lambda2DPaperFormula(uint64_t side, uint64_t l1, uint64_t l2,
                              uint64_t i, uint64_t j) {
  ONION_CHECK(side % 2 == 0);
  ONION_CHECK(i < side && j < side);
  i = Reflect(side, i);
  j = Reflect(side, j);
  // Lemma 7: min(h(i, l1) tau(j, l2), h(j, l2) tau(i, l1)) with h = h1 for
  // l <= m and h = h2 for l > m.
  const uint64_t horizontal =
      SeparationFactor(side, i, l1) * Tau(side, j, l2);
  const uint64_t vertical = SeparationFactor(side, j, l2) * Tau(side, i, l1);
  return std::min(horizontal, vertical);
}

double TSum2DExact(uint64_t side, uint64_t l1, uint64_t l2) {
  ONION_CHECK(side % 2 == 0);
  const uint64_t half = side / 2;
  uint64_t total = 0;
  for (uint64_t i = 0; i < half; ++i) {
    for (uint64_t j = 0; j < half; ++j) {
      total += Lambda2DExact(side, l1, l2, i, j);
    }
  }
  return 4.0 * static_cast<double>(total);
}

double TSum2DClosedForm(uint64_t side, uint64_t l1, uint64_t l2) {
  ONION_CHECK(side % 2 == 0);
  if (l1 > l2) std::swap(l1, l2);
  const double a = static_cast<double>(l1);
  const double b = static_cast<double>(l2);
  const double m = static_cast<double>(side) / 2;
  if (b <= m) {
    if (a <= b / 2) {
      // Lemma 8, first case.
      return 4 * (a / 6 - a * a / 2 + a * a * a / 12 - a * b / 2 +
                  a * a * b / 2 + 1.5 * a * m - 1.25 * a * a * m - a * b * m +
                  2 * a * m * m);
    }
    // Lemma 8, second case.
    return 4 * (a / 6 - a * a / 2 + a * a * a / 12 + a * b / 2 +
                1.5 * a * a * b - b * b / 2 - a * b * b + b * b * b / 4 +
                a * m / 2 - 2.25 * a * a * m + b * m / 2 - b * b * m / 4 +
                2 * a * m * m);
  }
  if (a > m) {
    // Lemma 8, third case (overestimates the exact T; see header).
    const double big_l1 = static_cast<double>(side) - a + 1;
    const double big_l2 = static_cast<double>(side) - b + 1;
    return (2.0 / 3.0) * (1 + 3 * big_l1 - big_l2) * big_l2 * (1 + big_l2);
  }
  // Mixed case (l1 <= m < l2): not covered by Lemma 8.
  return TSum2DExact(side, l1, l2);
}

double LowerBoundContinuous2D(uint64_t side, uint64_t l1, uint64_t l2) {
  const double t_sum = TSum2DExact(side, l1, l2);
  const double num_queries = static_cast<double>(side - l1 + 1) *
                             static_cast<double>(side - l2 + 1);
  return t_sum / (2 * num_queries);
}

double LowerBoundGeneral2D(uint64_t side, uint64_t l1, uint64_t l2) {
  return 0.5 * LowerBoundContinuous2D(side, l1, l2);
}

}  // namespace onion
