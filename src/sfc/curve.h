// The space-filling-curve abstraction.
//
// A space-filling curve (SFC) pi on a universe U of n cells is a bijection
// pi : U -> {0, 1, ..., n-1} (paper, Sec. I). Implementations provide both
// directions of the bijection; everything else in the library (clustering
// analysis, range decomposition, spatial indexes) is generic over this
// interface.

#ifndef ONION_SFC_CURVE_H_
#define ONION_SFC_CURVE_H_

#include <memory>
#include <string>
#include <vector>

#include "sfc/types.h"

namespace onion {

class SpaceFillingCurve {
 public:
  virtual ~SpaceFillingCurve() = default;

  /// The universe this curve fills.
  const Universe& universe() const { return universe_; }
  int dims() const { return universe_.dims(); }
  Coord side() const { return universe_.side(); }
  Key num_cells() const { return universe_.num_cells(); }

  /// Short stable identifier, e.g. "onion", "hilbert", "zorder".
  virtual std::string name() const = 0;

  /// Maps a cell to its position along the curve. `cell` must lie in the
  /// universe.
  virtual Key IndexOf(const Cell& cell) const = 0;

  /// Maps a curve position back to its cell. `key` must be < num_cells().
  virtual Cell CellAt(Key key) const = 0;

  /// Whether consecutive curve positions are always grid neighbors
  /// (Definition 1 in the paper). Continuous curves admit the O(surface)
  /// boundary-scan clustering algorithm.
  virtual bool is_continuous() const = 0;

  /// Whether every grid-aligned b^k-subcube (b = aligned_block_base())
  /// occupies one contiguous, aligned block of b^(k*d) keys. True for the
  /// digit-recursive curves (Z-order, Gray-code, Hilbert with b = 2; Peano
  /// with b = 3); enables the hierarchical range decomposition in
  /// index/decompose.h.
  virtual bool has_contiguous_aligned_blocks() const { return false; }

  /// Branching base of the recursive structure (2 for binary curves, 3 for
  /// Peano). Only meaningful when has_contiguous_aligned_blocks().
  virtual Coord aligned_block_base() const { return 2; }

  /// First and last cells of the curve (pi_s and pi_e in the paper).
  Cell StartCell() const { return CellAt(0); }
  Cell EndCell() const { return CellAt(num_cells() - 1); }

  SpaceFillingCurve(const SpaceFillingCurve&) = delete;
  SpaceFillingCurve& operator=(const SpaceFillingCurve&) = delete;

 protected:
  explicit SpaceFillingCurve(const Universe& universe) : universe_(universe) {}

 private:
  Universe universe_;
};

/// Cells adjacent to `cell` in the grid (differing by exactly 1 along
/// exactly one axis), clipped to the universe. Returns 2*dims cells at most.
std::vector<Cell> GridNeighbors(const Universe& universe, const Cell& cell);

}  // namespace onion

#endif  // ONION_SFC_CURVE_H_
