// The Z curve (Orenstein & Merrett 1984): position = bit interleaving of
// the coordinates. Works in any dimension; requires a power-of-two side.
// Not continuous (Definition 1): consecutive positions can be far apart,
// which is what inflates its clustering number in the paper's Figure 1.

#ifndef ONION_SFC_ZORDER_H_
#define ONION_SFC_ZORDER_H_

#include <string>

#include "common/status.h"
#include "sfc/curve.h"

namespace onion {

class ZOrderCurve final : public SpaceFillingCurve {
 public:
  /// Creates a Z curve; fails unless the universe side is a power of two.
  static Result<std::unique_ptr<ZOrderCurve>> Make(const Universe& universe);

  std::string name() const override { return "zorder"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override { return num_cells() <= 2; }
  bool has_contiguous_aligned_blocks() const override { return true; }

  /// Bits per coordinate.
  int bits() const { return bits_; }

 private:
  ZOrderCurve(const Universe& universe, int bits)
      : SpaceFillingCurve(universe), bits_(bits) {}

  int bits_;
};

}  // namespace onion

#endif  // ONION_SFC_ZORDER_H_
