#include "sfc/registry.h"

#include "core/onion2d.h"
#include "core/onion3d.h"
#include "core/onion_nd.h"
#include "sfc/graycode.h"
#include "sfc/hilbert2d.h"
#include "sfc/hilbert_nd.h"
#include "sfc/linear_curves.h"
#include "sfc/peano.h"
#include "sfc/zorder.h"

namespace onion {

namespace {

// Adapts a Result<unique_ptr<Derived>> to Result<unique_ptr<Base>>.
template <typename Derived>
Result<std::unique_ptr<SpaceFillingCurve>> Upcast(
    Result<std::unique_ptr<Derived>> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<SpaceFillingCurve>(std::move(result).value());
}

}  // namespace

Result<std::unique_ptr<SpaceFillingCurve>> MakeCurve(
    const std::string& name, const Universe& universe) {
  if (name == "onion") {
    if (universe.dims() == 2) return Upcast(Onion2D::Make(universe));
    if (universe.dims() == 3 && universe.side() % 2 == 0) {
      return Upcast(Onion3D::Make(universe));
    }
    return Upcast(OnionND::Make(universe));
  }
  if (name == "onion_nd") return Upcast(OnionND::Make(universe));
  if (name == "hilbert") {
    if (universe.dims() == 2) return Upcast(Hilbert2D::Make(universe));
    return Upcast(HilbertND::Make(universe));
  }
  if (name == "hilbert_nd") return Upcast(HilbertND::Make(universe));
  if (name == "peano") return Upcast(PeanoCurve::Make(universe));
  if (name == "zorder") return Upcast(ZOrderCurve::Make(universe));
  if (name == "graycode") return Upcast(GrayCodeCurve::Make(universe));
  if (name == "row_major") {
    return std::unique_ptr<SpaceFillingCurve>(
        std::make_unique<RowMajorCurve>(universe));
  }
  if (name == "column_major") {
    return std::unique_ptr<SpaceFillingCurve>(
        std::make_unique<ColumnMajorCurve>(universe));
  }
  if (name == "snake") {
    return std::unique_ptr<SpaceFillingCurve>(
        std::make_unique<SnakeCurve>(universe));
  }
  return Status::NotFound("unknown curve: " + name);
}

std::vector<std::string> KnownCurveNames() {
  return {"onion",  "onion_nd", "hilbert",   "hilbert_nd",
          "zorder", "graycode", "peano",     "row_major",
          "column_major", "snake"};
}

}  // namespace onion
