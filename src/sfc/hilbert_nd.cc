#include "sfc/hilbert_nd.h"

#include "sfc/bits.h"
#include "sfc/morton.h"

namespace onion {

namespace {

// Skilling's AxesToTranspose: converts grid coordinates (in place) into the
// transposed Hilbert index.
void AxesToTranspose(Coord* X, int bits, int dims) {
  if (bits <= 1) {
    // With one bit per axis the loop below is empty except Gray coding.
    if (bits == 0) return;
  }
  // Inverse undo.
  for (Coord q = Coord{1} << (bits - 1); q > 1; q >>= 1) {
    const Coord p = q - 1;
    for (int i = 0; i < dims; ++i) {
      if (X[i] & q) {
        X[0] ^= p;  // invert low bits of X[0]
      } else {
        const Coord t = (X[0] ^ X[i]) & p;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < dims; ++i) X[i] ^= X[i - 1];
  Coord t = 0;
  for (Coord q = Coord{1} << (bits - 1); q > 1; q >>= 1) {
    if (X[dims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < dims; ++i) X[i] ^= t;
}

// Skilling's TransposeToAxes: inverse of AxesToTranspose.
void TransposeToAxes(Coord* X, int bits, int dims) {
  if (bits == 0) return;
  const Coord n = Coord{2} << (bits - 1);
  // Gray decode by H ^ (H/2).
  Coord t = X[dims - 1] >> 1;
  for (int i = dims - 1; i > 0; --i) X[i] ^= X[i - 1];
  X[0] ^= t;
  // Undo excess work.
  for (Coord q = 2; q != n; q <<= 1) {
    const Coord p = q - 1;
    for (int i = dims - 1; i >= 0; --i) {
      if (X[i] & q) {
        X[0] ^= p;
      } else {
        t = (X[0] ^ X[i]) & p;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
}

}  // namespace

Result<std::unique_ptr<HilbertND>> HilbertND::Make(const Universe& universe) {
  if (universe.dims() < 2) {
    return Status::InvalidArgument("HilbertND requires dims >= 2");
  }
  if (!IsPowerOfTwo(universe.side())) {
    return Status::InvalidArgument("Hilbert curve requires power-of-two side");
  }
  const int bits = Log2Exact(universe.side());
  return std::unique_ptr<HilbertND>(new HilbertND(universe, bits));
}

Key HilbertND::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  Coord X[kMaxDims];
  for (int i = 0; i < dims(); ++i) X[i] = cell[i];
  AxesToTranspose(X, bits_, dims());
  // Interleave the transpose, most significant bit-plane first; within a
  // plane, X[0] is most significant — the Morton layout with the axis
  // order reversed, so the shared kernel applies to the reversed array.
  Coord rev[kMaxDims];
  for (int i = 0; i < dims(); ++i) rev[i] = X[dims() - 1 - i];
  return bits::Interleave(rev, dims(), bits_);
}

Cell HilbertND::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  // Inverse of IndexOf's interleave: deinterleave through the shared
  // kernel, then un-reverse the axis order back into the transpose.
  Coord rev[kMaxDims] = {};
  bits::Deinterleave(key, dims(), bits_, rev);
  Coord X[kMaxDims] = {};
  for (int i = 0; i < dims(); ++i) X[i] = rev[dims() - 1 - i];
  TransposeToAxes(X, bits_, dims());
  Cell cell;
  cell.dims = dims();
  for (int i = 0; i < dims(); ++i) cell[i] = X[i];
  return cell;
}

}  // namespace onion
