#include "sfc/linear_curves.h"

namespace onion {

Key RowMajorCurve::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  // Last axis is the most significant digit.
  Key key = 0;
  for (int axis = dims() - 1; axis >= 0; --axis) {
    key = key * side() + cell[axis];
  }
  return key;
}

Cell RowMajorCurve::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  Cell cell;
  cell.dims = dims();
  for (int axis = 0; axis < dims(); ++axis) {
    cell[axis] = static_cast<Coord>(key % side());
    key /= side();
  }
  return cell;
}

Key ColumnMajorCurve::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  // First axis is the most significant digit.
  Key key = 0;
  for (int axis = 0; axis < dims(); ++axis) {
    key = key * side() + cell[axis];
  }
  return key;
}

Cell ColumnMajorCurve::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  Cell cell;
  cell.dims = dims();
  for (int axis = dims() - 1; axis >= 0; --axis) {
    cell[axis] = static_cast<Coord>(key % side());
    key /= side();
  }
  return cell;
}

Key SnakeCurve::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  // Recursive slab construction: the last axis selects a slab; odd slabs
  // traverse the (d-1)-dimensional snake in reverse ORDER (not a coordinate
  // reflection), which keeps the curve continuous across slab boundaries.
  Key key = 0;     // index within the processed prefix of axes
  Key block = 1;   // number of cells in that prefix
  for (int axis = 0; axis < dims(); ++axis) {
    const Coord t = cell[axis];
    const Key sub = (t & 1) ? block - 1 - key : key;
    key = static_cast<Key>(t) * block + sub;
    block *= side();
  }
  return key;
}

Cell SnakeCurve::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  Cell cell;
  cell.dims = dims();
  // Peel axes from the most significant (last) down, undoing the
  // odd-slab order reversal at each level.
  Key block = num_cells() / side();
  for (int axis = dims() - 1; axis >= 0; --axis) {
    const Coord t = static_cast<Coord>(key / block);
    Key off = key % block;
    if (t & 1) off = block - 1 - off;
    cell[axis] = t;
    key = off;
    if (axis > 0) block /= side();
  }
  return cell;
}

}  // namespace onion
