// d-dimensional Hilbert curve via Skilling's transpose algorithm
// ("Programming the Hilbert curve", J. Skilling, AIP Conf. Proc. 707, 2004).
//
// The Hilbert index of a cell is carried in "transpose" form: an array
// X[0..d) where bit q of X[i] is bit q*d + (d-1-i) of the index. The
// algorithm converts between coordinates and transpose form in place with
// O(d * b) bit operations. Continuous in any dimension; requires a
// power-of-two side.

#ifndef ONION_SFC_HILBERT_ND_H_
#define ONION_SFC_HILBERT_ND_H_

#include <string>

#include "common/status.h"
#include "sfc/curve.h"

namespace onion {

class HilbertND final : public SpaceFillingCurve {
 public:
  /// Creates a d-dimensional Hilbert curve (d >= 2); fails unless the side
  /// is a power of two and side^d fits in a Key.
  static Result<std::unique_ptr<HilbertND>> Make(const Universe& universe);

  std::string name() const override { return "hilbert_nd"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override { return true; }
  bool has_contiguous_aligned_blocks() const override { return true; }

  int bits() const { return bits_; }

 private:
  HilbertND(const Universe& universe, int bits)
      : SpaceFillingCurve(universe), bits_(bits) {}

  int bits_;
};

}  // namespace onion

#endif  // ONION_SFC_HILBERT_ND_H_
