#include "sfc/curve.h"

namespace onion {

std::vector<Cell> GridNeighbors(const Universe& universe, const Cell& cell) {
  std::vector<Cell> neighbors;
  neighbors.reserve(static_cast<size_t>(2 * universe.dims()));
  for (int axis = 0; axis < universe.dims(); ++axis) {
    if (cell[axis] > 0) {
      Cell down = cell;
      down[axis] -= 1;
      neighbors.push_back(down);
    }
    if (cell[axis] + 1 < universe.side()) {
      Cell up = cell;
      up[axis] += 1;
      neighbors.push_back(up);
    }
  }
  return neighbors;
}

}  // namespace onion
