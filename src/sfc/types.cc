#include "sfc/types.h"

#include <cstdio>
#include <limits>

namespace onion {

Cell Cell::Filled(int dims, Coord fill) {
  ONION_CHECK(dims >= 1 && dims <= kMaxDims);
  Cell cell;
  cell.dims = dims;
  for (int axis = 0; axis < dims; ++axis) cell[axis] = fill;
  return cell;
}

std::string Cell::ToString() const {
  std::string out = "(";
  for (int axis = 0; axis < dims; ++axis) {
    if (axis > 0) out += ", ";
    out += std::to_string(coords[static_cast<size_t>(axis)]);
  }
  out += ")";
  return out;
}

Box::Box(const Cell& lo_cell, const Cell& hi_cell) : lo(lo_cell), hi(hi_cell) {
  ONION_CHECK(lo.dims == hi.dims);
  for (int axis = 0; axis < lo.dims; ++axis) {
    ONION_CHECK_MSG(lo[axis] <= hi[axis], "box corners out of order");
  }
}

Box Box::FromCornerAndLengths(const Cell& corner,
                              const std::array<Coord, kMaxDims>& lengths) {
  Cell hi = corner;
  for (int axis = 0; axis < corner.dims; ++axis) {
    const Coord len = lengths[static_cast<size_t>(axis)];
    ONION_CHECK_MSG(len >= 1, "box side lengths must be >= 1");
    hi[axis] = corner[axis] + len - 1;
  }
  return Box(corner, hi);
}

Box Box::Cube(const Cell& corner, Coord len) {
  std::array<Coord, kMaxDims> lengths = {};
  for (int axis = 0; axis < corner.dims; ++axis) {
    lengths[static_cast<size_t>(axis)] = len;
  }
  return FromCornerAndLengths(corner, lengths);
}

uint64_t Box::Volume() const {
  uint64_t volume = 1;
  for (int axis = 0; axis < dims(); ++axis) volume *= Length(axis);
  return volume;
}

uint64_t Box::SurfaceCells() const {
  // Volume minus the strictly-interior sub-box (empty if any side <= 2).
  uint64_t interior = 1;
  for (int axis = 0; axis < dims(); ++axis) {
    const Coord len = Length(axis);
    if (len <= 2) return Volume();
    interior *= len - 2;
  }
  return Volume() - interior;
}

bool Box::Contains(const Cell& cell) const {
  if (cell.dims != dims()) return false;
  for (int axis = 0; axis < dims(); ++axis) {
    if (cell[axis] < lo[axis] || cell[axis] > hi[axis]) return false;
  }
  return true;
}

std::string Box::ToString() const {
  return lo.ToString() + ".." + hi.ToString();
}

Key PowChecked(Coord side, int dims) {
  Key result = 1;
  for (int i = 0; i < dims; ++i) {
    ONION_CHECK_MSG(side == 0 ||
                        result <= std::numeric_limits<Key>::max() / side,
                    "universe size overflows 64-bit keys");
    result *= side;
  }
  return result;
}

Universe::Universe(int dims, Coord side) : dims_(dims), side_(side) {
  ONION_CHECK_MSG(dims >= 1 && dims <= kMaxDims, "dims out of range");
  ONION_CHECK_MSG(side >= 1, "side must be positive");
  num_cells_ = PowChecked(side, dims);
}

bool Universe::Contains(const Cell& cell) const {
  if (cell.dims != dims_) return false;
  for (int axis = 0; axis < dims_; ++axis) {
    if (cell[axis] >= side_) return false;
  }
  return true;
}

bool Universe::Contains(const Box& box) const {
  return Contains(box.lo) && Contains(box.hi);
}

Box Universe::Bounds() const {
  return Box(Cell::Filled(dims_, 0), Cell::Filled(dims_, side_ - 1));
}

Coord Universe::Depth(const Cell& cell) const {
  ONION_DCHECK(Contains(cell));
  Coord depth = side_;  // upper bound
  for (int axis = 0; axis < dims_; ++axis) {
    const Coord c = cell[axis];
    const Coord dist = std::min(c + 1, side_ - c);
    depth = std::min(depth, dist);
  }
  return depth;
}

std::string Universe::ToString() const {
  return std::to_string(dims_) + "D universe, side " + std::to_string(side_) +
         " (" + std::to_string(num_cells_) + " cells)";
}

}  // namespace onion
