// The two-dimensional Hilbert curve (Hilbert 1891), implemented with the
// classic iterative quadrant-rotation algorithm. This is the paper's main
// comparison baseline. Continuous; requires a power-of-two side.

#ifndef ONION_SFC_HILBERT2D_H_
#define ONION_SFC_HILBERT2D_H_

#include <string>

#include "common/status.h"
#include "sfc/curve.h"

namespace onion {

class Hilbert2D final : public SpaceFillingCurve {
 public:
  /// Creates a 2D Hilbert curve; fails unless dims == 2 and the side is a
  /// power of two.
  static Result<std::unique_ptr<Hilbert2D>> Make(const Universe& universe);

  std::string name() const override { return "hilbert"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override { return true; }
  bool has_contiguous_aligned_blocks() const override { return true; }

 private:
  explicit Hilbert2D(const Universe& universe) : SpaceFillingCurve(universe) {}
};

}  // namespace onion

#endif  // ONION_SFC_HILBERT2D_H_
