// The Gray-code curve (Faloutsos 1986/1988): the position of a cell is the
// Gray-code rank of its bit-interleaved (Morton) code. Equivalently, the
// curve enumerates Morton codes in binary-reflected Gray-code order.
// Requires a power-of-two side. Not continuous in the grid sense, but
// consecutive cells differ in exactly one Morton bit.

#ifndef ONION_SFC_GRAYCODE_H_
#define ONION_SFC_GRAYCODE_H_

#include <string>

#include "common/status.h"
#include "sfc/curve.h"

namespace onion {

class GrayCodeCurve final : public SpaceFillingCurve {
 public:
  /// Creates a Gray-code curve; fails unless the side is a power of two.
  static Result<std::unique_ptr<GrayCodeCurve>> Make(const Universe& universe);

  std::string name() const override { return "graycode"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override { return num_cells() <= 2; }
  bool has_contiguous_aligned_blocks() const override { return true; }

  int bits() const { return bits_; }

 private:
  GrayCodeCurve(const Universe& universe, int bits)
      : SpaceFillingCurve(universe), bits_(bits) {}

  int bits_;
};

}  // namespace onion

#endif  // ONION_SFC_GRAYCODE_H_
