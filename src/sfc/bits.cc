#include "sfc/bits.h"

#include <cstddef>

#if defined(ONION_BITS_HAVE_BMI2_KERNELS)
#include <immintrin.h>
#endif

namespace onion::bits {
namespace {

// ---- magic-number spread/compact masks --------------------------------
//
// Spread2(x) distributes the low 32 bits of x so that source bit q lands
// at position 2q (every other bit); Spread3 lands bit q at position 3q.
// Each step doubles the gap between populated bit groups and masks away
// the duplicated copies — the standard O(log bits) Morton spreading.

inline uint64_t Spread2(uint64_t x) {
  x &= 0xffffffffull;
  x = (x | (x << 16)) & 0x0000ffff0000ffffull;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffull;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

inline uint64_t Compact2(uint64_t x) {
  x &= 0x5555555555555555ull;
  x = (x | (x >> 1)) & 0x3333333333333333ull;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0full;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffull;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffull;
  x = (x | (x >> 16)) & 0x00000000ffffffffull;
  return x;
}

inline uint64_t Spread3(uint64_t x) {
  x &= 0x1fffffull;  // 21 bits: 3 * 21 = 63 <= 64
  x = (x | (x << 32)) & 0x001f00000000ffffull;
  x = (x | (x << 16)) & 0x001f0000ff0000ffull;
  x = (x | (x << 8)) & 0x100f00f00f00f00full;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}

inline uint64_t Compact3(uint64_t x) {
  x &= 0x1249249249249249ull;
  x = (x | (x >> 2)) & 0x10c30c30c30c30c3ull;
  x = (x | (x >> 4)) & 0x100f00f00f00f00full;
  x = (x | (x >> 8)) & 0x001f0000ff0000ffull;
  x = (x | (x >> 16)) & 0x001f00000000ffffull;
  x = (x | (x >> 32)) & 0x00000000001fffffull;
  return x;
}

// ---- byte lookup tables ------------------------------------------------
//
// kSpread2[b] is the 16-bit 2D spread of byte b (bit q at position 2q);
// kSpread3[b] the 24-bit 3D spread. The compact tables invert them over
// one byte of interleaved code: kCompact2[b] gathers the 4 even bits of b,
// and for 3D, kCompact3[b] gathers bits {0,3,6} of b — a byte covers two
// full 3-bit groups plus a spill bit, so the decode walks bytes with a
// per-byte phase shift instead.

struct SpreadTables {
  uint16_t spread2[256];
  uint32_t spread3[256];
  uint8_t compact2[256];

  constexpr SpreadTables() : spread2(), spread3(), compact2() {
    for (int b = 0; b < 256; ++b) {
      uint16_t s2 = 0;
      uint32_t s3 = 0;
      uint8_t c2 = 0;
      for (int q = 0; q < 8; ++q) {
        if ((b >> q) & 1) {
          s2 = static_cast<uint16_t>(s2 | (1u << (2 * q)));
          s3 |= 1u << (3 * q);
        }
        if (q < 4 && ((b >> (2 * q)) & 1)) c2 = static_cast<uint8_t>(c2 | (1u << q));
      }
      spread2[b] = s2;
      spread3[b] = s3;
      compact2[b] = c2;
    }
  }
};

constexpr SpreadTables kTables{};

#if defined(ONION_BITS_HAVE_BMI2_KERNELS)
// kStrideMask[d] has every d-th bit set starting at bit 0 — the pdep/pext
// deposit mask for axis 0 at `d` dims; axis i uses kStrideMask[d] << i.
// Index 0 is unused padding so the array reads naturally by dims.
constexpr uint64_t StrideMask(int dims) {
  uint64_t mask = 0;
  for (int pos = 0; pos < 64; pos += dims) mask |= 1ull << pos;
  return mask;
}
constexpr uint64_t kStrideMask[kMaxDims + 1] = {
    0,
    StrideMask(1), StrideMask(2), StrideMask(3), StrideMask(4),
    StrideMask(5), StrideMask(6), StrideMask(7), StrideMask(8),
};

bool DetectBmi2() { return __builtin_cpu_supports("bmi2") != 0; }
#endif

}  // namespace

bool HasBmi2() {
#if defined(ONION_BITS_HAVE_BMI2_KERNELS)
  static const bool cached = DetectBmi2();
  return cached;
#else
  return false;
#endif
}

Key InterleaveScalar(const Coord* coords, int dims, int bits) {
  Key code = 0;
  for (int q = bits - 1; q >= 0; --q) {
    for (int axis = dims - 1; axis >= 0; --axis) {
      code = (code << 1) | ((coords[axis] >> q) & 1u);
    }
  }
  return code;
}

void DeinterleaveScalar(Key code, int dims, int bits, Coord* coords) {
  for (int axis = 0; axis < dims; ++axis) coords[axis] = 0;
  for (int q = 0; q < bits; ++q) {
    for (int axis = 0; axis < dims; ++axis) {
      const Key bit = (code >> (q * dims + axis)) & 1u;
      coords[axis] |= static_cast<Coord>(bit << q);
    }
  }
}

Key InterleaveMagic2(const Coord* coords) {
  return Spread2(coords[0]) | (Spread2(coords[1]) << 1);
}

void DeinterleaveMagic2(Key code, Coord* coords) {
  coords[0] = static_cast<Coord>(Compact2(code));
  coords[1] = static_cast<Coord>(Compact2(code >> 1));
}

Key InterleaveMagic3(const Coord* coords) {
  return Spread3(coords[0]) | (Spread3(coords[1]) << 1) |
         (Spread3(coords[2]) << 2);
}

void DeinterleaveMagic3(Key code, Coord* coords) {
  coords[0] = static_cast<Coord>(Compact3(code));
  coords[1] = static_cast<Coord>(Compact3(code >> 1));
  coords[2] = static_cast<Coord>(Compact3(code >> 2));
}

Key InterleaveLut2(const Coord* coords) {
  Key code = 0;
  for (int byte = 3; byte >= 0; --byte) {
    const uint64_t x = kTables.spread2[(coords[0] >> (8 * byte)) & 0xff];
    const uint64_t y = kTables.spread2[(coords[1] >> (8 * byte)) & 0xff];
    code = (code << 16) | x | (y << 1);
  }
  return code;
}

void DeinterleaveLut2(Key code, Coord* coords) {
  Coord x = 0;
  Coord y = 0;
  // Each input byte holds 4 bits of each axis; byte k contributes bits
  // [4k, 4k+4) of both coordinates.
  for (int byte = 0; byte < 8; ++byte) {
    const uint8_t chunk = static_cast<uint8_t>(code >> (8 * byte));
    x |= static_cast<Coord>(kTables.compact2[chunk]) << (4 * byte);
    y |= static_cast<Coord>(kTables.compact2[chunk >> 1]) << (4 * byte);
  }
  coords[0] = x;
  coords[1] = y;
}

Key InterleaveLut3(const Coord* coords) {
  // 21 usable bits per axis: three table bytes cover bits [0,8), [8,16),
  // [16,21) — each byte spreads to 24 interleaved bits.
  Key code = 0;
  for (int byte = 2; byte >= 0; --byte) {
    const uint64_t x = kTables.spread3[(coords[0] >> (8 * byte)) & 0xff];
    const uint64_t y = kTables.spread3[(coords[1] >> (8 * byte)) & 0xff];
    const uint64_t z = kTables.spread3[(coords[2] >> (8 * byte)) & 0xff];
    code = (code << 24) | x | (y << 1) | (z << 2);
  }
  return code;
}

void DeinterleaveLut3(Key code, Coord* coords) {
  // The 3-bit group stride is not byte-aligned, so the table inverse works
  // in 24-bit chunks (8 groups each) using the 2D compact table twice:
  // gather even bits of the axis-projected chunk, then compact again.
  Coord out[3] = {0, 0, 0};
  for (int chunk = 0; chunk < 3; ++chunk) {
    const uint64_t block = (code >> (24 * chunk)) & 0xffffffull;
    for (int axis = 0; axis < 3; ++axis) {
      // Project the axis's bits (positions 3q+axis within the block) down
      // with two rounds of even-bit compaction: 3q+axis -> drop axis shift
      // -> positions 3q -> Compact over stride 3 via the scalar-free magic
      // compact (cheap: the block is only 24 bits).
      out[axis] |= static_cast<Coord>(Compact3(block >> axis)) << (8 * chunk);
    }
  }
  coords[0] = out[0];
  coords[1] = out[1];
  coords[2] = out[2];
}

#if defined(ONION_BITS_HAVE_BMI2_KERNELS)

__attribute__((target("bmi2"))) Key InterleaveBmi2(const Coord* coords,
                                                   int dims, int bits) {
  (void)bits;  // coords are already < 2^bits; the stride mask covers 64 bits
  const uint64_t stride = kStrideMask[dims];
  Key code = 0;
  for (int axis = 0; axis < dims; ++axis) {
    code |= _pdep_u64(coords[axis], stride << axis);
  }
  return code;
}

__attribute__((target("bmi2"))) void DeinterleaveBmi2(Key code, int dims,
                                                      int bits,
                                                      Coord* coords) {
  (void)bits;
  const uint64_t stride = kStrideMask[dims];
  for (int axis = 0; axis < dims; ++axis) {
    coords[axis] = static_cast<Coord>(_pext_u64(code, stride << axis));
  }
}

#endif  // ONION_BITS_HAVE_BMI2_KERNELS

Key Interleave(const Coord* coords, int dims, int bits) {
  // The scalar reference truncates each coordinate to its low `bits` bits;
  // the fast kernels assume clean input, so truncate here once — a few
  // register ANDs, preserving identical results for ANY input.
  const Coord mask =
      bits >= 32 ? ~Coord{0} : static_cast<Coord>((Coord{1} << bits) - 1);
  Coord c[kMaxDims];
  for (int axis = 0; axis < dims; ++axis) c[axis] = coords[axis] & mask;
#if defined(ONION_BITS_HAVE_BMI2_KERNELS)
  if (HasBmi2()) return InterleaveBmi2(c, dims, bits);
#endif
  if (dims == 2) return InterleaveMagic2(c);
  if (dims == 3) return InterleaveMagic3(c);
  return InterleaveScalar(c, dims, bits);
}

void Deinterleave(Key code, int dims, int bits, Coord* coords) {
  // Same truncation rule on the code side: ignore bits past dims*bits.
  const int total = dims * bits;
  if (total < 64) code &= (Key{1} << total) - 1;
#if defined(ONION_BITS_HAVE_BMI2_KERNELS)
  if (HasBmi2()) {
    DeinterleaveBmi2(code, dims, bits, coords);
    return;
  }
#endif
  if (dims == 2) {
    DeinterleaveMagic2(code, coords);
    return;
  }
  if (dims == 3) {
    DeinterleaveMagic3(code, coords);
    return;
  }
  DeinterleaveScalar(code, dims, bits, coords);
}

}  // namespace onion::bits
