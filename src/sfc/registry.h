// Factory for curves by name, used by benchmarks, examples, and the
// parameterized test sweeps.

#ifndef ONION_SFC_REGISTRY_H_
#define ONION_SFC_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sfc/curve.h"

namespace onion {

/// Creates a curve by name over `universe`. Recognized names:
///   "onion"        - Onion2D (d=2), Onion3D (d=3, even side), OnionND else
///   "onion_nd"     - generic d-dimensional onion curve
///   "hilbert"      - Hilbert2D (d=2) or HilbertND (d>=3); power-of-two side
///   "hilbert_nd"   - Skilling Hilbert in any dimension >= 2
///   "zorder"       - Z curve (Morton order); power-of-two side
///   "graycode"     - Gray-code curve; power-of-two side
///   "peano"        - Peano curve (any d); power-of-THREE side
///   "row_major", "column_major", "snake"
Result<std::unique_ptr<SpaceFillingCurve>> MakeCurve(const std::string& name,
                                                     const Universe& universe);

/// All names accepted by MakeCurve.
std::vector<std::string> KnownCurveNames();

}  // namespace onion

#endif  // ONION_SFC_REGISTRY_H_
