#include "sfc/graycode.h"

#include "sfc/morton.h"

namespace onion {

Result<std::unique_ptr<GrayCodeCurve>> GrayCodeCurve::Make(
    const Universe& universe) {
  if (!IsPowerOfTwo(universe.side())) {
    return Status::InvalidArgument(
        "Gray-code curve requires power-of-two side");
  }
  const int bits = Log2Exact(universe.side());
  return std::unique_ptr<GrayCodeCurve>(new GrayCodeCurve(universe, bits));
}

Key GrayCodeCurve::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  return GrayDecode(MortonEncode(cell, bits_));
}

Cell GrayCodeCurve::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  return MortonDecode(GrayEncode(key), dims(), bits_);
}

}  // namespace onion
