#include "sfc/hilbert2d.h"

#include <utility>

#include "sfc/morton.h"

namespace onion {

namespace {

// Rotates/flips the quadrant-local frame; the standard step of the
// iterative Hilbert transform.
inline void Rotate(Coord n, Coord* x, Coord* y, Coord rx, Coord ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    std::swap(*x, *y);
  }
}

}  // namespace

Result<std::unique_ptr<Hilbert2D>> Hilbert2D::Make(const Universe& universe) {
  if (universe.dims() != 2) {
    return Status::InvalidArgument("Hilbert2D requires a 2D universe");
  }
  if (!IsPowerOfTwo(universe.side())) {
    return Status::InvalidArgument("Hilbert curve requires power-of-two side");
  }
  return std::unique_ptr<Hilbert2D>(new Hilbert2D(universe));
}

Key Hilbert2D::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  Coord x = cell.x();
  Coord y = cell.y();
  Key d = 0;
  for (Coord s = side() / 2; s > 0; s /= 2) {
    const Coord rx = (x & s) ? 1 : 0;
    const Coord ry = (y & s) ? 1 : 0;
    d += static_cast<Key>(s) * s * ((3 * rx) ^ ry);
    Rotate(side(), &x, &y, rx, ry);
  }
  return d;
}

Cell Hilbert2D::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  Coord x = 0;
  Coord y = 0;
  Key t = key;
  for (Coord s = 1; s < side(); s *= 2) {
    const Coord rx = 1 & static_cast<Coord>(t / 2);
    const Coord ry = 1 & static_cast<Coord>(t ^ rx);
    Rotate(s, &x, &y, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return Cell(x, y);
}

}  // namespace onion
