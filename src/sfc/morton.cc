#include "sfc/morton.h"

#include "sfc/bits.h"

namespace onion {

Key MortonEncode(const Cell& cell, int bits) {
  return bits::Interleave(cell.coords.data(), cell.dims, bits);
}

Cell MortonDecode(Key code, int dims, int bits) {
  Cell cell;
  cell.dims = dims;
  bits::Deinterleave(code, dims, bits, cell.coords.data());
  return cell;
}

int Log2Exact(Coord side) {
  ONION_CHECK_MSG(IsPowerOfTwo(side), "side must be a power of two");
  int bits = 0;
  while ((Coord{1} << bits) < side) ++bits;
  return bits;
}

bool IsPowerOfTwo(Coord side) {
  return side >= 1 && (side & (side - 1)) == 0;
}

uint64_t GrayDecode(uint64_t gray) {
  uint64_t value = gray;
  for (int shift = 1; shift < 64; shift <<= 1) {
    value ^= value >> shift;
  }
  return value;
}

}  // namespace onion
