#include "sfc/morton.h"

namespace onion {

Key MortonEncode(const Cell& cell, int bits) {
  Key code = 0;
  for (int q = bits - 1; q >= 0; --q) {
    for (int axis = cell.dims - 1; axis >= 0; --axis) {
      code = (code << 1) | ((cell[axis] >> q) & 1u);
    }
  }
  return code;
}

Cell MortonDecode(Key code, int dims, int bits) {
  Cell cell;
  cell.dims = dims;
  for (int q = 0; q < bits; ++q) {
    for (int axis = 0; axis < dims; ++axis) {
      const Key bit = (code >> (q * dims + axis)) & 1u;
      cell[axis] |= static_cast<Coord>(bit << q);
    }
  }
  return cell;
}

int Log2Exact(Coord side) {
  ONION_CHECK_MSG(IsPowerOfTwo(side), "side must be a power of two");
  int bits = 0;
  while ((Coord{1} << bits) < side) ++bits;
  return bits;
}

bool IsPowerOfTwo(Coord side) {
  return side >= 1 && (side & (side - 1)) == 0;
}

uint64_t GrayDecode(uint64_t gray) {
  uint64_t value = gray;
  for (int shift = 1; shift < 64; shift <<= 1) {
    value ^= value >> shift;
  }
  return value;
}

}  // namespace onion
