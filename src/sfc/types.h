// Core geometric vocabulary: cells of a discrete d-dimensional grid, axis-
// aligned boxes (the paper's rectangular queries), and the universe they
// live in.
//
// Model (paper, Sec. I): U is a discrete d-dimensional universe of n cells,
// of dimensions s x s x ... x s where s = n^(1/d). A query is a subset of U;
// this library works with rectangular (box) queries.

#ifndef ONION_SFC_TYPES_H_
#define ONION_SFC_TYPES_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/macros.h"

namespace onion {

/// One coordinate of a grid cell.
using Coord = uint32_t;

/// Position of a cell along a space-filling curve, in [0, n).
using Key = uint64_t;

/// Maximum supported dimensionality. Keys are 64-bit, so side^dims must fit
/// in 64 bits; with dims == 8 that allows sides up to 256.
inline constexpr int kMaxDims = 8;

/// A cell of the grid: `dims` coordinates, each in [0, side).
/// Coordinates beyond `dims` are kept zero so that equality can compare the
/// whole array.
struct Cell {
  std::array<Coord, kMaxDims> coords = {};
  int dims = 2;

  Cell() = default;
  Cell(Coord x, Coord y) : coords{x, y}, dims(2) {}
  Cell(Coord x, Coord y, Coord z) : coords{x, y, z}, dims(3) {}
  /// Builds a cell with `dims` coordinates, all initialized to `fill`.
  static Cell Filled(int dims, Coord fill);

  Coord& operator[](int axis) { return coords[static_cast<size_t>(axis)]; }
  Coord operator[](int axis) const {
    return coords[static_cast<size_t>(axis)];
  }

  Coord x() const { return coords[0]; }
  Coord y() const { return coords[1]; }
  Coord z() const { return coords[2]; }

  bool operator==(const Cell& other) const {
    return dims == other.dims && coords == other.coords;
  }
  bool operator!=(const Cell& other) const { return !(*this == other); }

  /// Renders as "(x, y, ...)".
  std::string ToString() const;
};

/// An axis-aligned box query: coordinates axis i range over
/// [lo[i], hi[i]] inclusive. The paper's query of side lengths l_i
/// corresponds to hi[i] - lo[i] + 1 == l_i.
struct Box {
  Cell lo;
  Cell hi;

  Box() = default;
  Box(const Cell& lo_cell, const Cell& hi_cell);

  /// Box with lower corner `corner` and side length `len[i]` along axis i.
  static Box FromCornerAndLengths(const Cell& corner,
                                  const std::array<Coord, kMaxDims>& lengths);
  /// Cube with lower corner `corner` and uniform side length `len`.
  static Box Cube(const Cell& corner, Coord len);

  int dims() const { return lo.dims; }

  /// Side length along `axis` (number of cells).
  Coord Length(int axis) const { return hi[axis] - lo[axis] + 1; }

  /// Number of cells contained in the box.
  uint64_t Volume() const;

  /// Number of cells on the inner boundary of the box (cells with at least
  /// one coordinate equal to lo or hi along some axis).
  uint64_t SurfaceCells() const;

  bool Contains(const Cell& cell) const;

  bool operator==(const Box& other) const {
    return lo == other.lo && hi == other.hi;
  }

  std::string ToString() const;
};

/// The discrete universe: a `dims`-dimensional grid of side `side`.
class Universe {
 public:
  /// Constructs a universe; aborts if side^dims does not fit in a Key or if
  /// dims is outside [1, kMaxDims].
  Universe(int dims, Coord side);

  int dims() const { return dims_; }
  Coord side() const { return side_; }
  /// Total number of cells n = side^dims.
  Key num_cells() const { return num_cells_; }

  bool Contains(const Cell& cell) const;
  /// True if `box` is fully inside the universe and has matching dims.
  bool Contains(const Box& box) const;

  /// The whole universe as a box query.
  Box Bounds() const;

  /// Distance of the cell to the boundary of the universe, as defined in the
  /// paper (Sec. III-A): min over axes of min(x_i + 1, side - x_i). The
  /// outermost layer has Depth == 1.
  Coord Depth(const Cell& cell) const;

  /// 0-based layer index, Depth - 1; outermost layer is 0.
  Coord Layer(const Cell& cell) const { return Depth(cell) - 1; }

  /// Number of onion layers: ceil(side / 2).
  Coord NumLayers() const { return (side_ + 1) / 2; }

  bool operator==(const Universe& other) const {
    return dims_ == other.dims_ && side_ == other.side_;
  }

  std::string ToString() const;

 private:
  int dims_;
  Coord side_;
  Key num_cells_;
};

/// Returns side^dims, aborting on overflow of Key.
Key PowChecked(Coord side, int dims);

}  // namespace onion

#endif  // ONION_SFC_TYPES_H_
