// Bit-interleaving (Morton code) utilities shared by the Z-order and
// Gray-code curves and by the hierarchical range decomposition.
//
// Bit layout: for dims = d and bits = b per axis, the interleaved code has
// d*b bits. Bit position q of axis i lands at interleaved position
// q*d + i, so axis 0 occupies the least significant slot within each group
// of d bits and higher bit-groups are more significant. This makes an
// aligned 2^k-subcube occupy one contiguous aligned block of codes, the
// property the hierarchical decomposition relies on.

#ifndef ONION_SFC_MORTON_H_
#define ONION_SFC_MORTON_H_

#include <cstdint>

#include "sfc/types.h"

namespace onion {

/// Interleaves the low `bits` bits of each of the `dims` coordinates.
Key MortonEncode(const Cell& cell, int bits);

/// Inverse of MortonEncode.
Cell MortonDecode(Key code, int dims, int bits);

/// Number of bits needed to represent coordinates in [0, side); side must be
/// a power of two. Returns b with side == 2^b.
int Log2Exact(Coord side);

/// True if `side` is a power of two (and >= 1).
bool IsPowerOfTwo(Coord side);

/// Binary-reflected Gray code of `value`.
inline uint64_t GrayEncode(uint64_t value) { return value ^ (value >> 1); }

/// Inverse of GrayEncode: the rank of `gray` in Gray-code order.
uint64_t GrayDecode(uint64_t gray);

}  // namespace onion

#endif  // ONION_SFC_MORTON_H_
