#include "sfc/peano.h"

namespace onion {

namespace {

// Positions are processed most-significant first; position p (0-based)
// carries the digit of axis p % d at level p / d. The digit of axis i is
// reflected (d -> 2-d) iff the sum of all more significant digits
// belonging to OTHER axes is odd — the coordinatewise form of Peano's
// serpentine construction.

}  // namespace

bool PeanoCurve::IsPowerOfThree(Coord side) {
  if (side < 1) return false;
  while (side % 3 == 0) side /= 3;
  return side == 1;
}

Result<std::unique_ptr<PeanoCurve>> PeanoCurve::Make(
    const Universe& universe) {
  if (!IsPowerOfThree(universe.side())) {
    return Status::InvalidArgument(
        "Peano curve requires a power-of-three side");
  }
  int trits = 0;
  for (Coord s = universe.side(); s > 1; s /= 3) ++trits;
  return std::unique_ptr<PeanoCurve>(new PeanoCurve(universe, trits));
}

Key PeanoCurve::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  const int d = dims();
  // Coordinate digits, most significant first.
  int coord_digit[kMaxDims][40];
  for (int i = 0; i < d; ++i) {
    Coord c = cell[i];
    for (int j = trits_ - 1; j >= 0; --j) {
      coord_digit[i][j] = static_cast<int>(c % 3);
      c /= 3;
    }
  }
  Key key = 0;
  int axis_sum[kMaxDims] = {};  // sum of emitted index digits per axis
  int total_sum = 0;
  for (int p = 0; p < trits_ * d; ++p) {
    const int axis = p % d;
    const int level = p / d;
    const int parity = (total_sum - axis_sum[axis]) & 1;
    const int c = coord_digit[axis][level];
    const int t = parity ? 2 - c : c;
    key = key * 3 + static_cast<Key>(t);
    axis_sum[axis] += t;
    total_sum += t;
  }
  return key;
}

Cell PeanoCurve::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  const int d = dims();
  const int total_digits = trits_ * d;
  int index_digit[40 * kMaxDims];
  for (int p = total_digits - 1; p >= 0; --p) {
    index_digit[p] = static_cast<int>(key % 3);
    key /= 3;
  }
  Cell cell;
  cell.dims = d;
  int axis_sum[kMaxDims] = {};
  int total_sum = 0;
  Coord coords[kMaxDims] = {};
  for (int p = 0; p < total_digits; ++p) {
    const int axis = p % d;
    const int parity = (total_sum - axis_sum[axis]) & 1;
    const int t = index_digit[p];
    const int c = parity ? 2 - t : t;
    coords[axis] = coords[axis] * 3 + static_cast<Coord>(c);
    axis_sum[axis] += t;
    total_sum += t;
  }
  for (int i = 0; i < d; ++i) cell[i] = coords[i];
  return cell;
}

}  // namespace onion
