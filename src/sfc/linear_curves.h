// Simple baseline curves from the paper's related work (Jagadish 1990):
// row-major, column-major, and the snake (boustrophedon) curve.
//
// Row-major and column-major are the curves used in the paper's Lemma 10
// (each is optimal on one of Q_R / Q_C and pathological on the other).
// The snake curve is a continuous relative of row-major included as an
// additional continuous baseline.

#ifndef ONION_SFC_LINEAR_CURVES_H_
#define ONION_SFC_LINEAR_CURVES_H_

#include <string>

#include "sfc/curve.h"

namespace onion {

/// Row-major order: key = y * side + x in 2D; the last axis varies slowest.
/// Generalizes to d dimensions. Not continuous (wraps between rows).
class RowMajorCurve final : public SpaceFillingCurve {
 public:
  explicit RowMajorCurve(const Universe& universe)
      : SpaceFillingCurve(universe) {}

  std::string name() const override { return "row_major"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override { return side() == 1; }
};

/// Column-major order: the first axis varies slowest (transpose of
/// row-major in 2D).
class ColumnMajorCurve final : public SpaceFillingCurve {
 public:
  explicit ColumnMajorCurve(const Universe& universe)
      : SpaceFillingCurve(universe) {}

  std::string name() const override { return "column_major"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override { return side() == 1; }
};

/// Snake (boustrophedon) order: row-major but with every other row (and,
/// recursively, every other higher-dimensional slab) reversed, making the
/// curve continuous in any dimension.
class SnakeCurve final : public SpaceFillingCurve {
 public:
  explicit SnakeCurve(const Universe& universe)
      : SpaceFillingCurve(universe) {}

  std::string name() const override { return "snake"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override { return true; }
};

}  // namespace onion

#endif  // ONION_SFC_LINEAR_CURVES_H_
