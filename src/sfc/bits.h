// Bit-interleave kernels: the innermost arithmetic of every Morton-layout
// curve key (Z-order, Gray-code, and the Hilbert transpose) in one place,
// with hardware acceleration where the CPU offers it.
//
// Layout contract (identical to sfc/morton.h): for `dims` axes of `bits`
// bits each, bit q of axis i lands at interleaved position q*dims + i —
// axis 0 is least significant within each d-bit group. All kernels in this
// header compute exactly that function; they differ only in how.
//
//   InterleaveScalar /    the portable reference: one loop iteration per
//   DeinterleaveScalar    output bit, any dims in [1, kMaxDims].
//   InterleaveMagic2 / 3  portable magic-number (shift-and-mask) bit
//   DeinterleaveMagic2/3  spreading for the common 2D / 3D cases —
//                         O(log bits) masked shifts instead of O(bits)
//                         single-bit steps.
//   InterleaveLut2 / 3    byte-at-a-time lookup tables (256-entry spread /
//   DeinterleaveLut2 / 3  compact tables) for 2D / 3D: the classic
//                         table-driven Morton path, kept as a measured
//                         alternative and as a third independent
//                         implementation for equivalence tests.
//   InterleaveBmi2 /      x86-64 BMI2 pdep/pext — one instruction per axis.
//   DeinterleaveBmi2      Compiled with a function-level target attribute,
//                         so the binary still runs on pre-BMI2 machines;
//                         call only when HasBmi2() is true.
//
// Interleave() / Deinterleave() are the dispatched entry points the curve
// code uses: BMI2 when the CPU has it (detected once, cached), otherwise
// the magic-number path for 2D/3D and the scalar loop for higher dims.
//
// Throughput of each path is measured by bench_curve_ops into
// BENCH_curve_ops.json; cross-path equivalence is proven exhaustively by
// tests/bits_test.cc.

#ifndef ONION_SFC_BITS_H_
#define ONION_SFC_BITS_H_

#include <cstdint>

#include "sfc/types.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ONION_BITS_HAVE_BMI2_KERNELS 1
#endif

namespace onion::bits {

/// True when the running CPU executes pdep/pext natively (checked once via
/// CPUID, cached). Always false on non-x86-64 builds.
bool HasBmi2();

/// Portable reference kernel: interleaves the low `bits` bits of each of
/// the `dims` coordinates, one output bit per step.
Key InterleaveScalar(const Coord* coords, int dims, int bits);
/// Inverse of InterleaveScalar; writes `dims` coordinates.
void DeinterleaveScalar(Key code, int dims, int bits, Coord* coords);

/// Magic-number 2D spread/compact (bits <= 32 per axis).
Key InterleaveMagic2(const Coord* coords);
void DeinterleaveMagic2(Key code, Coord* coords);
/// Magic-number 3D spread/compact (bits <= 21 per axis — the most a
/// 64-bit key can hold at dims == 3).
Key InterleaveMagic3(const Coord* coords);
void DeinterleaveMagic3(Key code, Coord* coords);

/// Byte-table 2D / 3D paths (same bit budgets as the magic kernels).
Key InterleaveLut2(const Coord* coords);
void DeinterleaveLut2(Key code, Coord* coords);
Key InterleaveLut3(const Coord* coords);
void DeinterleaveLut3(Key code, Coord* coords);

#if defined(ONION_BITS_HAVE_BMI2_KERNELS)
/// BMI2 kernels: one pdep (pext) per axis against a precomputed stride
/// mask. Callable only when HasBmi2() is true — the instructions are
/// emitted via a function target attribute, not a global -march flag.
Key InterleaveBmi2(const Coord* coords, int dims, int bits);
void DeinterleaveBmi2(Key code, int dims, int bits, Coord* coords);
#endif

/// Dispatched hot-path kernels: BMI2 when available, else magic-number for
/// dims 2/3, else the scalar loop. `dims` in [1, kMaxDims]; `bits` must
/// satisfy dims*bits <= 64 and, on the fallback paths, bits <= 32 (2D) /
/// 21 (3D) — the same envelope the curves themselves enforce.
Key Interleave(const Coord* coords, int dims, int bits);
void Deinterleave(Key code, int dims, int bits, Coord* coords);

}  // namespace onion::bits

#endif  // ONION_SFC_BITS_H_
