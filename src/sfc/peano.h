// The Peano curve (Peano 1890), the original space-filling curve: a base-3
// analogue of the Hilbert curve built from 3x3 blocks of serpentines.
// Continuous in any dimension; requires the side to be a power of THREE.
//
// Construction (standard coordinatewise form): write each coordinate in
// base 3, digits d^(i)_q (axis i, digit position q from most significant).
// A digit is reflected (d -> 2-d) iff the sum of all more significant
// digits on OTHER axes plus the more significant digits of the SAME axis
// ... is odd; concretely we use the recursive serpentine: at each level the
// key digit group is the mixed-radix serpentine of the coordinate digits,
// with each axis's digit direction flipping according to the parity of the
// digits consumed after it at this level and all digits of coarser levels.

#ifndef ONION_SFC_PEANO_H_
#define ONION_SFC_PEANO_H_

#include <string>

#include "common/status.h"
#include "sfc/curve.h"

namespace onion {

class PeanoCurve final : public SpaceFillingCurve {
 public:
  /// Creates a Peano curve; fails unless the side is a power of three.
  static Result<std::unique_ptr<PeanoCurve>> Make(const Universe& universe);

  std::string name() const override { return "peano"; }
  Key IndexOf(const Cell& cell) const override;
  Cell CellAt(Key key) const override;
  bool is_continuous() const override { return true; }
  bool has_contiguous_aligned_blocks() const override { return true; }
  Coord aligned_block_base() const override { return 3; }

  /// Base-3 digits per coordinate.
  int trits() const { return trits_; }

  /// True if `side` is a power of three (3^k, k >= 0).
  static bool IsPowerOfThree(Coord side);

 private:
  PeanoCurve(const Universe& universe, int trits)
      : SpaceFillingCurve(universe), trits_(trits) {}

  int trits_;
};

}  // namespace onion

#endif  // ONION_SFC_PEANO_H_
