#include "sfc/zorder.h"

#include "sfc/morton.h"

namespace onion {

Result<std::unique_ptr<ZOrderCurve>> ZOrderCurve::Make(
    const Universe& universe) {
  if (!IsPowerOfTwo(universe.side())) {
    return Status::InvalidArgument("Z-order curve requires power-of-two side");
  }
  const int bits = Log2Exact(universe.side());
  return std::unique_ptr<ZOrderCurve>(new ZOrderCurve(universe, bits));
}

Key ZOrderCurve::IndexOf(const Cell& cell) const {
  ONION_DCHECK(universe().Contains(cell));
  return MortonEncode(cell, bits_);
}

Cell ZOrderCurve::CellAt(Key key) const {
  ONION_DCHECK(key < num_cells());
  return MortonDecode(key, dims(), bits_);
}

}  // namespace onion
