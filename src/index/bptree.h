// An in-memory B+-tree keyed by curve positions (Key = uint64_t), used as
// the one-dimensional index substrate beneath the SFC spatial index.
//
// This models the on-disk index the paper motivates: "Suppose that
// multi-dimensional data was indexed on the disk according to the ordering
// induced by the SFC ... the clustering number measures the number of disk
// seeks" (Sec. I). Leaves are chained, so a range scan performs one "seek"
// (tree descent) followed by sequential leaf traversal, and the tree
// exposes seek/scan counters that the spatial index aggregates.
//
// Duplicate keys are permitted (several payloads can share one cell).
// Supported operations: Insert, Erase (one matching entry), point lookup,
// range scan, forward iteration. Deletion uses the relaxed scheme common in
// practical systems (e.g. it does not aggressively rebalance underfull
// leaves; empty leaves are unlinked).

#ifndef ONION_INDEX_BPTREE_H_
#define ONION_INDEX_BPTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "sfc/types.h"

namespace onion {

/// Counters describing the physical work performed by index operations.
struct TreeStats {
  uint64_t seeks = 0;          ///< root-to-leaf descents
  uint64_t entries_scanned = 0;  ///< leaf entries touched by scans
  uint64_t leaves_visited = 0;   ///< distinct leaves touched by scans

  void Reset() { *this = TreeStats{}; }
};

template <typename Value>
class BPlusTree {
 public:
  static constexpr int kFanout = 64;    // max children of an internal node
  static constexpr int kLeafCap = 64;   // max entries of a leaf

  BPlusTree() : root_(MakeLeaf()) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  ~BPlusTree() { DestroySubtree(root_); }

  /// Number of stored entries.
  uint64_t size() const { return size_; }

  /// Inserts (key, value); duplicates allowed.
  void Insert(Key key, const Value& value) {
    SplitResult split = InsertRec(root_, key, value);
    if (split.new_node != nullptr) {
      auto* new_root = new Internal();
      new_root->count = 2;
      new_root->children[0] = root_;
      new_root->children[1] = split.new_node;
      new_root->keys[0] = split.separator;
      root_ = new_root;
      ++height_;
    }
    ++size_;
  }

  /// Removes one entry with the given key and value; returns whether an
  /// entry was removed.
  bool Erase(Key key, const Value& value) {
    Leaf* leaf = FindLeaf(key, nullptr);
    while (leaf != nullptr) {
      bool past = false;
      for (int i = 0; i < leaf->count; ++i) {
        if (leaf->keys[i] > key) {
          past = true;
          break;
        }
        if (leaf->keys[i] == key && leaf->values[i] == value) {
          for (int j = i; j + 1 < leaf->count; ++j) {
            leaf->keys[j] = leaf->keys[j + 1];
            leaf->values[j] = leaf->values[j + 1];
          }
          --leaf->count;
          --size_;
          return true;
        }
      }
      if (past) return false;
      leaf = leaf->next;  // duplicates may spill into the next leaf
    }
    return false;
  }

  /// Collects all values stored under `key`.
  std::vector<Value> Lookup(Key key, TreeStats* stats = nullptr) const {
    std::vector<Value> out;
    Scan(key, key, [&](Key, const Value& value) { out.push_back(value); },
         stats);
    return out;
  }

  /// Invokes fn(key, value) for every entry with lo <= key <= hi, in key
  /// order. Counts one seek plus the leaves/entries touched in `stats`.
  template <typename Fn>
  void Scan(Key lo, Key hi, Fn&& fn, TreeStats* stats = nullptr) const {
    if (stats != nullptr) ++stats->seeks;
    const Leaf* leaf = FindLeaf(lo, stats);
    bool counted_leaf = false;
    while (leaf != nullptr) {
      if (stats != nullptr && !counted_leaf) {
        ++stats->leaves_visited;
      }
      counted_leaf = false;
      for (int i = 0; i < leaf->count; ++i) {
        if (leaf->keys[i] < lo) continue;
        if (leaf->keys[i] > hi) return;
        if (stats != nullptr) ++stats->entries_scanned;
        fn(leaf->keys[i], leaf->values[i]);
      }
      leaf = leaf->next;
    }
  }

  /// Height of the tree (number of levels; a lone leaf has height 1).
  int height() const { return height_; }

  /// Internal consistency check (key ordering, separator correctness,
  /// leaf-chain order); aborts on violation. For tests.
  void CheckInvariants() const {
    Key last = 0;
    bool first = true;
    const Leaf* leaf = LeftmostLeaf();
    uint64_t counted = 0;
    while (leaf != nullptr) {
      for (int i = 0; i < leaf->count; ++i) {
        ONION_CHECK_MSG(first || leaf->keys[i] >= last,
                        "B+-tree keys out of order");
        last = leaf->keys[i];
        first = false;
        ++counted;
      }
      leaf = leaf->next;
    }
    ONION_CHECK_MSG(counted == size_, "B+-tree size mismatch");
    CheckNode(root_, 1);
  }

 private:
  struct Node {
    bool is_leaf = false;
    int count = 0;  // children for internal nodes, entries for leaves
  };

  struct Leaf : Node {
    Key keys[kLeafCap];
    Value values[kLeafCap];
    Leaf* next = nullptr;
    Leaf() { this->is_leaf = true; }
  };

  struct Internal : Node {
    // keys[i] separates children[i] (< keys[i]) from children[i+1] (>=).
    Key keys[kFanout - 1];
    Node* children[kFanout];
    Internal() { this->is_leaf = false; }
  };

  struct SplitResult {
    Node* new_node = nullptr;  // right sibling created by a split
    Key separator = 0;
  };

  static Leaf* MakeLeaf() { return new Leaf(); }

  static void DestroySubtree(Node* node) {
    if (node->is_leaf) {
      delete static_cast<Leaf*>(node);
      return;
    }
    auto* internal = static_cast<Internal*>(node);
    for (int i = 0; i < internal->count; ++i) {
      DestroySubtree(internal->children[i]);
    }
    delete internal;
  }

  // Child covering `key` for insertion: on separator equality, descend
  // right (new duplicates append after existing ones).
  static int ChildIndex(const Internal* node, Key key) {
    int i = 0;
    while (i < node->count - 1 && key >= node->keys[i]) ++i;
    return i;
  }

  // Child holding the FIRST entry with key >= `key`: on separator equality
  // descend left, because duplicates of a separator key may remain in the
  // left subtree after a split. Used by scans and erases.
  static int ChildIndexLower(const Internal* node, Key key) {
    int i = 0;
    while (i < node->count - 1 && key > node->keys[i]) ++i;
    return i;
  }

  Leaf* FindLeaf(Key key, TreeStats*) {
    Node* node = root_;
    while (!node->is_leaf) {
      auto* internal = static_cast<Internal*>(node);
      node = internal->children[ChildIndexLower(internal, key)];
    }
    return static_cast<Leaf*>(node);
  }
  const Leaf* FindLeaf(Key key, TreeStats* stats) const {
    return const_cast<BPlusTree*>(this)->FindLeaf(key, stats);
  }

  const Leaf* LeftmostLeaf() const {
    const Node* node = root_;
    while (!node->is_leaf) {
      node = static_cast<const Internal*>(node)->children[0];
    }
    return static_cast<const Leaf*>(node);
  }

  SplitResult InsertRec(Node* node, Key key, const Value& value) {
    if (node->is_leaf) return InsertIntoLeaf(static_cast<Leaf*>(node), key, value);
    auto* internal = static_cast<Internal*>(node);
    const int child = ChildIndex(internal, key);
    SplitResult split = InsertRec(internal->children[child], key, value);
    if (split.new_node == nullptr) return {};
    // Insert the new child to the right of `child`.
    if (internal->count < kFanout) {
      for (int i = internal->count; i > child + 1; --i) {
        internal->children[i] = internal->children[i - 1];
        internal->keys[i - 1] = internal->keys[i - 2];
      }
      internal->children[child + 1] = split.new_node;
      internal->keys[child] = split.separator;
      ++internal->count;
      return {};
    }
    // Split the internal node: gather children+keys, distribute halves.
    Node* children[kFanout + 1];
    Key keys[kFanout];
    for (int i = 0; i < kFanout; ++i) children[i] = internal->children[i];
    for (int i = 0; i < kFanout - 1; ++i) keys[i] = internal->keys[i];
    for (int i = kFanout; i > child + 1; --i) children[i] = children[i - 1];
    children[child + 1] = split.new_node;
    for (int i = kFanout - 1; i > child; --i) keys[i] = keys[i - 1];
    keys[child] = split.separator;

    const int total_children = kFanout + 1;
    const int left_children = total_children / 2;
    auto* right = new Internal();
    internal->count = left_children;
    right->count = total_children - left_children;
    for (int i = 0; i < internal->count; ++i) internal->children[i] = children[i];
    for (int i = 0; i < internal->count - 1; ++i) internal->keys[i] = keys[i];
    for (int i = 0; i < right->count; ++i) {
      right->children[i] = children[left_children + i];
    }
    for (int i = 0; i < right->count - 1; ++i) {
      right->keys[i] = keys[left_children + i];
    }
    return SplitResult{right, keys[left_children - 1]};
  }

  SplitResult InsertIntoLeaf(Leaf* leaf, Key key, const Value& value) {
    int pos = leaf->count;
    while (pos > 0 && leaf->keys[pos - 1] > key) --pos;
    if (leaf->count < kLeafCap) {
      for (int i = leaf->count; i > pos; --i) {
        leaf->keys[i] = leaf->keys[i - 1];
        leaf->values[i] = leaf->values[i - 1];
      }
      leaf->keys[pos] = key;
      leaf->values[pos] = value;
      ++leaf->count;
      return {};
    }
    // Split the leaf, then insert into the proper half.
    auto* right = new Leaf();
    const int left_count = kLeafCap / 2;
    right->count = kLeafCap - left_count;
    for (int i = 0; i < right->count; ++i) {
      right->keys[i] = leaf->keys[left_count + i];
      right->values[i] = leaf->values[left_count + i];
    }
    leaf->count = left_count;
    right->next = leaf->next;
    leaf->next = right;
    if (key < right->keys[0]) {
      InsertIntoLeaf(leaf, key, value);
    } else {
      InsertIntoLeaf(right, key, value);
    }
    return SplitResult{right, right->keys[0]};
  }

  void CheckNode(const Node* node, int depth) const {
    if (node->is_leaf) {
      ONION_CHECK_MSG(depth == height_, "B+-tree leaves at unequal depth");
      return;
    }
    const auto* internal = static_cast<const Internal*>(node);
    ONION_CHECK(internal->count >= 2);
    for (int i = 0; i + 2 < internal->count; ++i) {
      ONION_CHECK_MSG(internal->keys[i] <= internal->keys[i + 1],
                      "B+-tree separators out of order");
    }
    for (int i = 0; i < internal->count; ++i) {
      CheckNode(internal->children[i], depth + 1);
    }
  }

  Node* root_;
  uint64_t size_ = 0;
  int height_ = 1;
};

}  // namespace onion

#endif  // ONION_INDEX_BPTREE_H_
