// Query-box -> key-range decomposition.
//
// A box query against an SFC index must be translated into a set of
// one-dimensional key ranges; the number of ranges is exactly the
// clustering number of the box (paper, Sec. I), and each range costs one
// seek. Two exact algorithms:
//
//  * DecomposeHierarchical: for digit-recursive curves (Z-order, Gray-code,
//    Hilbert: base 2; Peano: base 3) descends the implicit b^d-ary space
//    partition; every aligned subcube fully inside the query contributes
//    one aligned key block, and adjacent blocks are merged. Cost is
//    proportional to the number of nodes intersecting the query boundary.
//  * DecomposeByClusterScan: generic fallback for any curve, using the
//    cluster-start/end scan from analysis/clustering.h.
//
// Both return the minimal sorted set of ranges covering exactly the query.

#ifndef ONION_INDEX_DECOMPOSE_H_
#define ONION_INDEX_DECOMPOSE_H_

#include <vector>

#include "analysis/clustering.h"
#include "core/onion2d.h"
#include "sfc/curve.h"

namespace onion {

/// Hierarchical decomposition; requires
/// curve.has_contiguous_aligned_blocks().
std::vector<KeyRange> DecomposeHierarchical(const SpaceFillingCurve& curve,
                                            const Box& box);

/// Analytic decomposition for the 2D onion curve: walks the O(side) layers
/// intersecting the box and emits the (at most four) perimeter arcs each
/// contributes, in O(layers) time — no per-cell work at all.
std::vector<KeyRange> DecomposeOnion2DAnalytic(const Onion2D& curve,
                                               const Box& box);

/// Generic decomposition via cluster scanning (any curve).
std::vector<KeyRange> DecomposeByClusterScan(const SpaceFillingCurve& curve,
                                             const Box& box);

/// Picks the cheapest exact algorithm for the curve.
std::vector<KeyRange> DecomposeBox(const SpaceFillingCurve& curve,
                                   const Box& box);

/// Merges adjacent/overlapping ranges in a sorted range list (in place).
void MergeAdjacentRanges(std::vector<KeyRange>* ranges);

}  // namespace onion

#endif  // ONION_INDEX_DECOMPOSE_H_
