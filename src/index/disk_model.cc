#include "index/disk_model.h"

// DiskModel is header-only; this translation unit exists so the target has
// a concrete object file and the header stays self-contained under IWYU.
