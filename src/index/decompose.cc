#include "index/decompose.h"

#include <algorithm>

namespace onion {

namespace {

struct HierarchicalState {
  const SpaceFillingCurve* curve;
  const Box* box;
  std::vector<KeyRange>* out;
};

// Recursively visits the aligned subcube with lower corner `origin` and
// side `size` (a power of the curve's aligned_block_base()).
void Visit(const HierarchicalState& state, const Cell& origin, Coord size) {
  const Box& query = *state.box;
  const int d = query.dims();
  // Disjoint / containment tests per axis.
  bool contained = true;
  for (int axis = 0; axis < d; ++axis) {
    const Coord lo = origin[axis];
    const Coord hi = origin[axis] + size - 1;
    if (hi < query.lo[axis] || lo > query.hi[axis]) return;  // disjoint
    if (lo < query.lo[axis] || hi > query.hi[axis]) contained = false;
  }
  if (contained) {
    // The whole subcube maps to one aligned key block.
    Key block = 1;
    for (int axis = 0; axis < d; ++axis) block *= size;
    const Key key = state.curve->IndexOf(origin);
    const Key base = key - key % block;
    state.out->push_back(KeyRange{base, base + block - 1});
    return;
  }
  ONION_DCHECK(size > 1);
  const Coord base_b = state.curve->aligned_block_base();
  const Coord sub = size / base_b;
  // Recurse into the base^d children (odometer over per-axis offsets).
  Coord offsets[kMaxDims] = {};
  for (;;) {
    Cell child = origin;
    for (int axis = 0; axis < d; ++axis) {
      child[axis] += offsets[axis] * sub;
    }
    Visit(state, child, sub);
    int axis = 0;
    while (axis < d) {
      if (++offsets[axis] < base_b) break;
      offsets[axis] = 0;
      ++axis;
    }
    if (axis == d) break;
  }
}

}  // namespace

void MergeAdjacentRanges(std::vector<KeyRange>* ranges) {
  if (ranges->empty()) return;
  std::sort(ranges->begin(), ranges->end(),
            [](const KeyRange& a, const KeyRange& b) { return a.lo < b.lo; });
  size_t write = 0;
  for (size_t read = 1; read < ranges->size(); ++read) {
    KeyRange& current = (*ranges)[write];
    const KeyRange& next = (*ranges)[read];
    if (next.lo <= current.hi + 1) {
      current.hi = std::max(current.hi, next.hi);
    } else {
      (*ranges)[++write] = next;
    }
  }
  ranges->resize(write + 1);
}

std::vector<KeyRange> DecomposeHierarchical(const SpaceFillingCurve& curve,
                                            const Box& box) {
  ONION_CHECK_MSG(curve.has_contiguous_aligned_blocks(),
                  "hierarchical decomposition needs a bit-recursive curve");
  std::vector<KeyRange> out;
  HierarchicalState state{&curve, &box, &out};
  Visit(state, Cell::Filled(curve.dims(), 0), curve.side());
  MergeAdjacentRanges(&out);
  return out;
}

std::vector<KeyRange> DecomposeByClusterScan(const SpaceFillingCurve& curve,
                                             const Box& box) {
  return ClusterRanges(curve, box);
}

std::vector<KeyRange> DecomposeOnion2DAnalytic(const Onion2D& curve,
                                               const Box& box) {
  ONION_CHECK(box.dims() == 2);
  const Coord s = curve.side();
  const Coord x0 = box.lo.x();
  const Coord x1 = box.hi.x();
  const Coord y0 = box.lo.y();
  const Coord y1 = box.hi.y();

  // Layer range touched by the box. The per-axis distance-to-boundary is a
  // tent function, so its min over an interval sits at an endpoint and its
  // max at the midpoint (if covered) or the nearer endpoint.
  auto tent = [s](Coord c) { return std::min(c, s - 1 - c); };
  auto tent_max = [&](Coord a, Coord b) {
    const Coord mid_lo = (s - 1) / 2;
    const Coord mid_hi = s / 2 > 0 ? s / 2 : 0;
    if (a <= mid_lo && mid_lo <= b) return tent(mid_lo);
    if (a <= mid_hi && mid_hi <= b) return tent(mid_hi);
    return std::max(tent(a), tent(b));
  };
  const Coord layer_min =
      std::min(std::min(tent(x0), tent(x1)), std::min(tent(y0), tent(y1)));
  const Coord layer_max = std::min(tent_max(x0, x1), tent_max(y0, y1));

  std::vector<KeyRange> ranges;
  for (Coord layer = layer_min; layer <= layer_max; ++layer) {
    const Coord j = s - 2 * layer;  // local side of the layer ring
    const Coord lo = layer;
    const Coord hi = s - 1 - layer;
    const Key base = static_cast<Key>(s) * s - static_cast<Key>(j) * j;
    if (j == 1) {  // degenerate center cell (odd side)
      if (box.Contains(Cell(lo, lo))) ranges.push_back(KeyRange{base, base});
      break;
    }
    const Key jj = j;
    // Horizontal overlap of the box with the ring's u-range [0, j-1].
    const Coord ux0 = std::max(x0, lo) - lo;
    const Coord ux1 = std::min(x1, hi) - lo;
    const bool x_overlap = std::max(x0, lo) <= std::min(x1, hi);
    const Coord vy0 = std::max(y0, lo) - lo;
    const Coord vy1 = std::min(y1, hi) - lo;
    const bool y_overlap = std::max(y0, lo) <= std::min(y1, hi);
    if (!x_overlap || !y_overlap) continue;

    // Bottom row (v = 0): p = u.
    if (y0 <= lo && lo <= y1) {
      ranges.push_back(KeyRange{base + ux0, base + ux1});
    }
    // Right column (u = j-1): p = j-1+v.
    if (x0 <= hi && hi <= x1) {
      ranges.push_back(KeyRange{base + jj - 1 + vy0, base + jj - 1 + vy1});
    }
    // Top row (v = j-1): p = 3j-3-u (reversed).
    if (y0 <= hi && hi <= y1) {
      ranges.push_back(
          KeyRange{base + 3 * (jj - 1) - ux1, base + 3 * (jj - 1) - ux0});
    }
    // Left column (u = 0, 1 <= v <= j-2): p = 4j-4-v (reversed).
    if (x0 <= lo && lo <= x1) {
      const Coord v_lo = std::max<Coord>(vy0, 1);
      const Coord v_hi = std::min<Coord>(vy1, j - 2);
      if (v_lo <= v_hi) {
        ranges.push_back(
            KeyRange{base + 4 * (jj - 1) - v_hi, base + 4 * (jj - 1) - v_lo});
      }
    }
  }
  MergeAdjacentRanges(&ranges);
  return ranges;
}

std::vector<KeyRange> DecomposeBox(const SpaceFillingCurve& curve,
                                   const Box& box) {
  if (curve.has_contiguous_aligned_blocks()) {
    return DecomposeHierarchical(curve, box);
  }
  if (const auto* onion2d = dynamic_cast<const Onion2D*>(&curve)) {
    return DecomposeOnion2DAnalytic(*onion2d, box);
  }
  return DecomposeByClusterScan(curve, box);
}

}  // namespace onion
