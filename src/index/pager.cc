#include "index/pager.h"

#include "common/macros.h"

namespace onion {

PackedRun::PackedRun(std::vector<Entry> entries, uint32_t entries_per_page)
    : storage::MemPageSource(std::move(entries), entries_per_page) {}

BufferPool::BufferPool(const PackedRun* run, uint64_t capacity_pages)
    : run_(run), pool_(capacity_pages) {
  ONION_CHECK(run != nullptr);
}

}  // namespace onion
