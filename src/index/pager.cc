#include "index/pager.h"

#include <algorithm>

namespace onion {

PackedRun::PackedRun(std::vector<Entry> entries, uint32_t entries_per_page)
    : entries_(std::move(entries)), page_size_(entries_per_page) {
  ONION_CHECK_MSG(page_size_ >= 1, "page size must be positive");
  for (size_t i = 1; i < entries_.size(); ++i) {
    ONION_CHECK_MSG(entries_[i - 1].key <= entries_[i].key,
                    "PackedRun input must be sorted by key");
  }
  fences_.reserve(num_pages());
  for (uint64_t page = 0; page < num_pages(); ++page) {
    fences_.push_back(entries_[page * page_size_].key);
  }
}

uint64_t PackedRun::PageOf(Key key) const {
  if (fences_.empty()) return 0;
  // Candidate: one page before the first fence >= key (duplicates of a
  // fence key can spill backward into the preceding page), then advance
  // past pages whose entries all precede `key`.
  auto it = std::lower_bound(fences_.begin(), fences_.end(), key);
  uint64_t page =
      it == fences_.begin()
          ? 0
          : static_cast<uint64_t>(it - fences_.begin()) - 1;
  while (page < num_pages() && entries_[PageEnd(page) - 1].key < key) {
    ++page;
  }
  return page;
}

uint64_t PackedRun::PageEnd(uint64_t page) const {
  return std::min<uint64_t>(entries_.size(), (page + 1) * page_size_);
}

BufferPool::BufferPool(const PackedRun* run, uint64_t capacity_pages)
    : run_(run), capacity_(capacity_pages) {
  ONION_CHECK(run != nullptr);
  ONION_CHECK_MSG(capacity_pages >= 1, "buffer pool needs >= 1 page");
}

void BufferPool::Fetch(uint64_t page) {
  auto it = resident_.find(page);
  if (it != resident_.end()) {
    ++stats_.cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return;
  }
  // Disk read.
  ++stats_.page_reads;
  if (page != last_disk_page_ + 1) ++stats_.seeks;
  last_disk_page_ = page;
  lru_.push_front(page);
  resident_[page] = lru_.begin();
  if (lru_.size() > capacity_) {
    resident_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace onion
