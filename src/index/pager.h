// Single-run pager facade, kept for the simulation benchmarks and tests
// that predate the storage engine. The actual machinery now lives in
// src/storage/: PackedRun is the in-memory MemPageSource backend, and
// BufferPool wraps the generalized multi-source pool (storage/buffer_pool.h)
// pinned to one run. New code should use the storage layer directly — it
// serves the same pages from real segment files (storage/segment.h) and
// caches across many runs at once.
//
// The paper's argument (Sec. I) is that each cluster of a query costs one
// disk seek. This module makes that concrete: a range scan reads
// consecutive pages (one seek, then sequential), so a query with k
// clusters costs k seeks plus its data volume — measurable against a
// buffer pool instead of assumed.

#ifndef ONION_INDEX_PAGER_H_
#define ONION_INDEX_PAGER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "sfc/types.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/mem_source.h"

namespace onion {

/// An immutable sorted run of (key, payload) entries packed into fixed-size
/// pages, with an in-memory fence index. Alias shell over the storage
/// layer's in-memory page source.
class PackedRun : public storage::MemPageSource {
 public:
  using Entry = storage::Entry;

  /// Builds a run from entries sorted by key (checked).
  PackedRun(std::vector<Entry> entries, uint32_t entries_per_page);

  uint32_t page_size() const { return entries_per_page(); }
};

/// A simple LRU buffer pool over the pages of one PackedRun. Fetching a
/// cached page is a hit; otherwise it is a disk read, counted as a seek
/// unless it is the page immediately after the previously read page.
class BufferPool {
 public:
  BufferPool(const PackedRun* run, uint64_t capacity_pages);

  /// Ensures `page` is resident, updating statistics.
  void Fetch(uint64_t page) { pool_.Fetch(*run_, page); }

  /// Scans all entries with lo <= key <= hi through the pool, invoking
  /// fn(key, payload) and accounting page fetches + entries.
  template <typename Fn>
  void ScanRange(Key lo, Key hi, Fn&& fn) {
    pool_.ScanRange(*run_, lo, hi, std::forward<Fn>(fn));
  }

  IoStats stats() const { return pool_.stats(); }
  void ResetStats() { pool_.ResetStats(); }
  uint64_t resident_pages() const { return pool_.resident_pages(); }
  uint64_t capacity() const { return pool_.capacity(); }

 private:
  const PackedRun* run_;
  storage::BufferPool pool_;
};

}  // namespace onion

#endif  // ONION_INDEX_PAGER_H_
