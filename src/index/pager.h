// A miniature storage-engine substrate used to turn clustering numbers into
// simulated physical I/O: a page-packed sorted run (the on-disk layout of
// an SFC-ordered table), an LRU buffer pool, and I/O statistics that
// distinguish sequential from random page reads.
//
// The paper's argument (Sec. I) is that each cluster of a query costs one
// disk seek. This module makes that concrete: a range scan reads
// consecutive pages (one seek, then sequential), so a query with k
// clusters costs k seeks plus its data volume — now measurable against a
// buffer pool instead of assumed.

#ifndef ONION_INDEX_PAGER_H_
#define ONION_INDEX_PAGER_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "sfc/types.h"

namespace onion {

/// Physical I/O counters.
struct IoStats {
  uint64_t page_reads = 0;   ///< pages fetched from "disk"
  uint64_t cache_hits = 0;   ///< pages served by the buffer pool
  uint64_t seeks = 0;        ///< non-sequential disk reads
  uint64_t entries_read = 0; ///< entries delivered to the caller

  void Reset() { *this = IoStats{}; }
};

/// An immutable sorted run of (key, payload) entries packed into fixed-size
/// pages, with an in-memory fence index (first key of each page).
class PackedRun {
 public:
  struct Entry {
    Key key;
    uint64_t payload;
  };

  /// Builds a run from entries sorted by key (checked).
  PackedRun(std::vector<Entry> entries, uint32_t entries_per_page);

  uint64_t num_entries() const { return entries_.size(); }
  uint64_t num_pages() const {
    return (entries_.size() + page_size_ - 1) / page_size_;
  }
  uint32_t page_size() const { return page_size_; }

  /// Page containing the first entry with key >= `key`, or num_pages() if
  /// every entry precedes `key`. Binary search over the fence index plus a
  /// duplicate-aware adjustment.
  uint64_t PageOf(Key key) const;

  /// First entry index of page `page`.
  uint64_t PageBegin(uint64_t page) const { return page * page_size_; }
  /// One-past-last entry index of page `page`.
  uint64_t PageEnd(uint64_t page) const;

  const Entry& entry(uint64_t index) const { return entries_[index]; }

 private:
  std::vector<Entry> entries_;
  std::vector<Key> fences_;  // first key of each page
  uint32_t page_size_;
};

/// A simple LRU buffer pool over the pages of one PackedRun. Fetching a
/// cached page is a hit; otherwise it is a disk read, counted as a seek
/// unless it is the page immediately after the previously read page.
class BufferPool {
 public:
  BufferPool(const PackedRun* run, uint64_t capacity_pages);

  /// Ensures `page` is resident, updating statistics.
  void Fetch(uint64_t page);

  /// Scans all entries with lo <= key <= hi through the pool, invoking
  /// fn(key, payload) and accounting page fetches + entries.
  template <typename Fn>
  void ScanRange(Key lo, Key hi, Fn&& fn) {
    const uint64_t pages = run_->num_pages();
    for (uint64_t page = run_->PageOf(lo); page < pages; ++page) {
      const uint64_t begin = run_->PageBegin(page);
      // The fence index already tells us this page starts past the range;
      // no I/O needed.
      if (run_->entry(begin).key > hi) break;
      Fetch(page);
      bool past_end = false;
      for (uint64_t i = begin; i < run_->PageEnd(page); ++i) {
        const auto& entry = run_->entry(i);
        if (entry.key < lo) continue;
        if (entry.key > hi) {
          past_end = true;
          break;
        }
        ++stats_.entries_read;
        fn(entry.key, entry.payload);
      }
      if (past_end) break;
    }
  }

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  uint64_t resident_pages() const { return lru_.size(); }
  uint64_t capacity() const { return capacity_; }

 private:
  const PackedRun* run_;
  uint64_t capacity_;
  // LRU list of resident pages, most recent at front, with an index.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> resident_;
  // Sentinel chosen so that sentinel + 1 cannot equal a real page id (the
  // very first disk read must count as a seek).
  uint64_t last_disk_page_ = ~0ull - 1;
  IoStats stats_;
};

}  // namespace onion

#endif  // ONION_INDEX_PAGER_H_
