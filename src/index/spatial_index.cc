#include "index/spatial_index.h"

#include <utility>

namespace onion {

std::vector<SpatialEntry> SpatialIndex::Materialize(
    const std::vector<KeyRange>& ranges, uint64_t limit) const {
  std::vector<SpatialEntry> results;
  ++stats_.queries;
  stats_.ranges += ranges.size();
  for (const KeyRange& range : ranges) {
    if (limit != 0 && results.size() >= limit) break;
    // The cap is enforced INSIDE the callback: BPlusTree::Scan cannot
    // abort mid-range, but a limit query over one huge range must still
    // accumulate (and convert) only `limit` entries, not the whole tree.
    tree_.Scan(range.lo, range.hi,
               [&](Key key, uint64_t payload) {
                 if (limit != 0 && results.size() >= limit) return;
                 results.push_back(SpatialEntry{curve_->CellAt(key), payload});
               },
               &stats_.tree);
  }
  return results;
}

std::vector<SpatialEntry> SpatialIndex::Query(const Box& box) const {
  ONION_CHECK(curve_->universe().Contains(box));
  // The decomposition is exact, so every scanned entry lies in the box.
  return Materialize(DecomposeBox(*curve_, box), 0);
}

namespace {

/// One past the limit, so the VectorCursor can see whether data remains
/// beyond it and report hit_read_budget() honestly (0 stays unbounded).
uint64_t MaterializeCap(const ReadOptions& options) {
  if (options.limit == 0 || options.limit == ~0ull) return 0;
  return options.limit + 1;
}

}  // namespace

std::unique_ptr<Cursor> SpatialIndex::NewBoxCursor(
    const Box& box, const ReadOptions& options) const {
  if (!curve_->universe().Contains(box)) {
    return NewErrorCursor(Status::InvalidArgument(
        "query box outside the index's universe: " + box.ToString()));
  }
  // In memory the B+-tree scan IS the cheap path, so the cursor wraps an
  // eagerly-materialized result; the interface (and the limit bound) still
  // matches the streaming SfcTable cursor.
  return NewVectorCursor(
      Materialize(DecomposeBox(*curve_, box), MaterializeCap(options)),
      options);
}

std::unique_ptr<Cursor> SpatialIndex::NewScanCursor(
    const ReadOptions& options) const {
  const Key num_cells = curve_->universe().num_cells();
  std::vector<KeyRange> ranges;
  if (num_cells > 0) ranges.push_back(KeyRange{0, num_cells - 1});
  return NewVectorCursor(Materialize(ranges, MaterializeCap(options)),
                         options);
}

Result<std::vector<uint64_t>> SpatialIndex::Get(const Cell& cell) const {
  if (!curve_->universe().Contains(cell)) {
    return Status::OutOfRange("cell outside the index's universe: " +
                              cell.ToString());
  }
  return LookupCell(cell);
}

}  // namespace onion
