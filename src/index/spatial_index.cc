#include "index/spatial_index.h"

namespace onion {

std::vector<SpatialEntry> SpatialIndex::Query(const Box& box) const {
  ONION_CHECK(curve_->universe().Contains(box));
  std::vector<SpatialEntry> results;
  const std::vector<KeyRange> ranges = DecomposeBox(*curve_, box);
  ++stats_.queries;
  stats_.ranges += ranges.size();
  for (const KeyRange& range : ranges) {
    tree_.Scan(range.lo, range.hi,
               [&](Key key, uint64_t payload) {
                 const Cell cell = curve_->CellAt(key);
                 // The decomposition is exact, so every scanned entry must
                 // lie inside the query box.
                 ONION_DCHECK(box.Contains(cell));
                 results.push_back(SpatialEntry{cell, payload});
               },
               &stats_.tree);
  }
  return results;
}

}  // namespace onion
