// A simple disk cost model that converts seek/scan counts into estimated
// latency, demonstrating why the clustering number is the right figure of
// merit for SFC-based indexes (paper, Sec. I: "a smaller clustering number
// means better performance" because every cluster costs a disk seek).

#ifndef ONION_INDEX_DISK_MODEL_H_
#define ONION_INDEX_DISK_MODEL_H_

#include <cstdint>

namespace onion {

struct DiskModel {
  /// Cost of repositioning to the start of a new key range.
  double seek_ms = 8.0;
  /// Cost of sequentially reading one indexed entry.
  double transfer_ms_per_entry = 0.001;

  /// Estimated latency of a query that scanned `seeks` ranges touching
  /// `entries` entries.
  double EstimateMs(uint64_t seeks, uint64_t entries) const {
    return seek_ms * static_cast<double>(seeks) +
           transfer_ms_per_entry * static_cast<double>(entries);
  }

  /// A model of a typical spinning disk (default).
  static DiskModel Hdd() { return DiskModel{8.0, 0.001}; }
  /// A model of a NAND SSD: cheaper "seeks", same transfer.
  static DiskModel Ssd() { return DiskModel{0.08, 0.0005}; }
};

}  // namespace onion

#endif  // ONION_INDEX_DISK_MODEL_H_
