// SFC-backed spatial index: points are mapped to curve keys and stored in a
// B+-tree; box queries are decomposed into key ranges, each scanned
// sequentially. This is the data structure the paper's clustering metric is
// about — the number of ranges (seeks) per query is exactly the clustering
// number of the query box under the chosen curve.
//
// This index is purely in-memory; its persistent, file-backed twin is
// storage::SfcTable (storage/sfc_table.h), which serves the same queries
// from on-disk segments through a buffer pool and reports measured I/O.
// Both expose the same streaming Cursor interface (storage/cursor.h) —
// NewBoxCursor / NewScanCursor / Get — so the in-memory and on-disk paths
// are drop-in interchangeable; SpatialEntry itself lives in cursor.h.

#ifndef ONION_INDEX_SPATIAL_INDEX_H_
#define ONION_INDEX_SPATIAL_INDEX_H_

#include <memory>
#include <vector>

#include "index/bptree.h"
#include "index/decompose.h"
#include "sfc/curve.h"
#include "storage/cursor.h"

namespace onion {

/// Aggregate statistics of spatial queries (resettable).
struct QueryStats {
  uint64_t queries = 0;
  uint64_t ranges = 0;  ///< total key ranges scanned (== total seeks)
  TreeStats tree;       ///< physical B+-tree work

  void Reset() { *this = QueryStats{}; }
};

class SpatialIndex {
 public:
  /// Takes ownership of the curve that defines the linearization.
  explicit SpatialIndex(std::unique_ptr<SpaceFillingCurve> curve)
      : curve_(std::move(curve)) {
    ONION_CHECK(curve_ != nullptr);
  }

  const SpaceFillingCurve& curve() const { return *curve_; }
  uint64_t size() const { return tree_.size(); }

  /// Inserts a point with a payload id. The cell must lie in the universe.
  void Insert(const Cell& cell, uint64_t payload) {
    ONION_CHECK(curve_->universe().Contains(cell));
    tree_.Insert(curve_->IndexOf(cell), payload);
  }

  /// Removes one matching (cell, payload) entry; returns whether found.
  bool Erase(const Cell& cell, uint64_t payload) {
    return tree_.Erase(curve_->IndexOf(cell), payload);
  }

  /// Payloads stored exactly at `cell`.
  std::vector<uint64_t> LookupCell(const Cell& cell) const {
    return tree_.Lookup(curve_->IndexOf(cell));
  }

  /// Status-returning point lookup, interface-compatible with
  /// SfcTable::Get: OutOfRange for a cell outside the universe.
  Result<std::vector<uint64_t>> Get(const Cell& cell) const;

  /// Streams every entry inside `box` in (curve key, payload) order.
  /// Same interface as SfcTable::NewBoxCursor: an out-of-universe box
  /// arrives as a cursor whose status() is not OK, and options.limit caps
  /// delivered entries (the page/byte bounds have no meaning in memory).
  /// Updates stats(); the cursor must not outlive this index.
  std::unique_ptr<Cursor> NewBoxCursor(const Box& box,
                                       const ReadOptions& options = {}) const;

  /// Streams the whole index in (curve key, payload) order.
  std::unique_ptr<Cursor> NewScanCursor(const ReadOptions& options = {}) const;

  /// DEPRECATED: all entries inside `box`, in curve-key order. Updates
  /// `stats_`. The materializing twin of NewBoxCursor, kept for
  /// compatibility — it aborts on an out-of-universe box instead of
  /// reporting a Status and cannot bound its work; prefer the cursor,
  /// which is drop-in interchangeable with the on-disk SfcTable's.
  [[deprecated(
      "materializes the whole result and aborts on bad input; use "
      "NewBoxCursor")]]
  std::vector<SpatialEntry> Query(const Box& box) const;

  /// Statistics accumulated by Query calls since the last Reset.
  const QueryStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  std::vector<SpatialEntry> Materialize(const std::vector<KeyRange>& ranges,
                                        uint64_t limit) const;

  std::unique_ptr<SpaceFillingCurve> curve_;
  BPlusTree<uint64_t> tree_;
  mutable QueryStats stats_;
};

}  // namespace onion

#endif  // ONION_INDEX_SPATIAL_INDEX_H_
