// The page-granular read abstraction of the storage engine.
//
// A PageSource is an immutable sorted run of (key, payload) entries packed
// into fixed-size pages, with an in-memory fence index (first and last key
// of every page). Concrete sources are MemPageSource (a std::vector, the
// original simulation backend from index/pager.h) and SegmentReader (a
// real file). The buffer pool and all range-scan logic are generic over
// this interface, so "how many seeks does this query cost" is answered the
// same way whether pages live in RAM or on disk.
//
// The fence index is the only metadata a caller may consult without doing
// page I/O: PageOf() and range-termination tests are pure fence lookups,
// while entry data is reachable solely through ReadPage().

#ifndef ONION_STORAGE_PAGE_SOURCE_H_
#define ONION_STORAGE_PAGE_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sfc/types.h"
#include "storage/io_stats.h"

namespace onion::storage {

/// One stored record: a curve key, an opaque payload id, and the packed
/// version stamp of the MVCC write path (see PackSeq below). Entries
/// predating the versioned API — format-v1/v2 segment pages, WAL-v1
/// records — carry seq 0: sequence number 0, not a tombstone, visible to
/// every snapshot.
struct Entry {
  Key key;
  uint64_t payload;
  uint64_t seq = 0;

  bool operator==(const Entry& other) const {
    return key == other.key && payload == other.payload && seq == other.seq;
  }
};

/// Packs a sequence number and the tombstone flag into Entry::seq. The
/// sequence lives in the high 63 bits so packed stamps of the same kind
/// compare like their sequences; the low bit marks a Delete.
inline constexpr uint64_t PackSeq(uint64_t sequence, bool tombstone) {
  return (sequence << 1) | (tombstone ? 1u : 0u);
}
/// Sequence number of a packed stamp.
inline constexpr uint64_t SequenceOf(uint64_t seq) { return seq >> 1; }
/// Whether a packed stamp marks a tombstone (a Delete of its key).
inline constexpr bool IsTombstone(uint64_t seq) { return (seq & 1) != 0; }
/// Largest storable sequence number (63 usable bits).
inline constexpr uint64_t kMaxSequence = ~0ull >> 1;

/// Bytes of a (key, payload) pair in the v1/v2 on-disk segment formats;
/// also the per-entry unit of the legacy in-memory disk simulation.
inline constexpr uint64_t kEntryBytes = 16;
/// Bytes of a raw-encoded (key, payload, seq) triple in segment format v3.
inline constexpr uint64_t kEntryBytesV3 = 24;
/// Bytes one decoded Entry occupies in a buffer-pool frame (the unit of
/// IoStats::decoded_bytes).
inline constexpr uint64_t kDecodedEntryBytes = 24;

class PageSource {
 public:
  PageSource();
  virtual ~PageSource() = default;

  /// Process-unique, never-reused identifier of this source. The buffer
  /// pool keys its frames by (source_id, page) rather than by pointer, so
  /// a source retired by compaction while a query still holds its pages
  /// can never be confused with a newer source allocated at the same
  /// address.
  uint64_t source_id() const { return source_id_; }

  virtual uint64_t num_entries() const = 0;
  virtual uint32_t entries_per_page() const = 0;

  /// Fence index: first / last key of page `page` (page must be < num_pages
  /// and non-empty — every page of a source holds at least one entry).
  virtual Key first_key(uint64_t page) const = 0;
  virtual Key last_key(uint64_t page) const = 0;

  /// Reads the entries of page `page` into `*out` (replacing its contents).
  /// This is the only operation that touches entry data; for disk-backed
  /// sources it performs real file I/O and may fail with
  /// Status::Corruption when the page's block checksum or encoding does
  /// not validate (in-memory sources always succeed).
  virtual Status ReadPage(uint64_t page, std::vector<Entry>* out) const = 0;

  /// Reads `count` consecutive pages starting at `first_page`, appending
  /// one decoded vector per page to `*out` (cleared first). The contract
  /// mirrors ReadPage called in a loop — the base implementation IS that
  /// loop — but disk-backed sources override it with one batched transfer
  /// over the contiguous byte span, which is what the buffer pool's
  /// readahead path calls. A page that fails to validate leaves an EMPTY
  /// vector in its slot (pages are never legitimately empty) rather than
  /// failing the whole batch; only a transfer-level failure returns
  /// non-OK. Callers needing the exact per-page error re-read that page
  /// alone via ReadPage.
  virtual Status ReadPages(uint64_t first_page, uint64_t count,
                           std::vector<std::vector<Entry>>* out) const {
    out->clear();
    out->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      std::vector<Entry> page;
      if (!ReadPage(first_page + i, &page).ok()) page.clear();
      out->push_back(std::move(page));
    }
    return Status::OK();
  }

  /// On-disk (encoded) bytes ReadPage(page) transfers. For in-memory and
  /// uncompressed sources this equals the decoded entry bytes; compressed
  /// segment pages report their real encoded size. Byte budgets
  /// (ReadOptions::max_bytes) and IoStats::disk_bytes count THIS number.
  virtual uint64_t PageDiskBytes(uint64_t page) const {
    return (PageEnd(page) - PageBegin(page)) * kEntryBytes;
  }

  /// Filter probe: false proves no entry of this source has key `key`.
  /// The default (no filter) answers "maybe" — true never lies, false is
  /// authoritative. Sources with a bloom filter (segment format v2)
  /// override this; BufferPool::ProbeFilter turns a false into a skipped
  /// page fetch.
  virtual bool MayContainKey(Key key) const {
    (void)key;
    return true;
  }

  /// Zone-map probe: false proves no entry of page `page` lies inside
  /// `box`. The default (no zone maps) answers "maybe". Cursors consult
  /// this before scheduling a page fetch, so pages whose cell bounding box
  /// misses the query box cost no I/O at all.
  virtual bool PageMayIntersect(uint64_t page, const Box& box) const {
    (void)page;
    (void)box;
    return true;
  }

  uint64_t num_pages() const {
    return (num_entries() + entries_per_page() - 1) / entries_per_page();
  }

  /// First entry index of page `page`.
  uint64_t PageBegin(uint64_t page) const {
    return page * entries_per_page();
  }
  /// One-past-last entry index of page `page`.
  uint64_t PageEnd(uint64_t page) const;

  /// Page containing the first entry with key >= `key`, or num_pages() if
  /// every entry precedes `key`. Pure fence-index binary search (duplicate
  /// keys can spill backward across a page boundary, handled via the
  /// last-key fences) — no page I/O.
  uint64_t PageOf(Key key) const;

 private:
  const uint64_t source_id_;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_PAGE_SOURCE_H_
