#include "storage/sfc_table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "index/decompose.h"
#include "sfc/registry.h"
#include "storage/compaction.h"

namespace onion::storage {
namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestFormat[] = "onion-sfc-table";
constexpr int kManifestVersion = 1;

}  // namespace

SfcTable::SfcTable(std::string dir, std::unique_ptr<SpaceFillingCurve> curve,
                   const SfcTableOptions& options)
    : dir_(std::move(dir)),
      curve_(std::move(curve)),
      curve_name_(curve_->name()),
      options_(options),
      pool_(options.pool_pages) {}

std::string SfcTable::SegmentPath(const std::string& file) const {
  return dir_ + "/" + file;
}

Status SfcTable::WriteManifest() const {
  const std::string tmp_path = dir_ + "/" + kManifestName + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot write manifest: " + tmp_path);
    }
    out << kManifestFormat << " " << kManifestVersion << "\n";
    out << "curve " << curve_name_ << "\n";
    out << "dims " << curve_->universe().dims() << "\n";
    out << "side " << curve_->universe().side() << "\n";
    out << "entries_per_page " << options_.entries_per_page << "\n";
    out << "next_segment_id " << next_segment_id_ << "\n";
    for (const std::string& file : segment_files_) {
      out << "segment " << file << "\n";
    }
    out.flush();
    if (!out) {
      return Status::Internal("cannot write manifest: " + tmp_path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, dir_ + "/" + kManifestName, ec);
  if (ec) {
    return Status::Internal("cannot install manifest: " + ec.message());
  }
  return Status::OK();
}

Result<std::unique_ptr<SfcTable>> SfcTable::Create(
    const std::string& dir, const std::string& curve_name,
    const Universe& universe, const SfcTableOptions& options) {
  if (options.entries_per_page < 1) {
    return Status::InvalidArgument("entries_per_page must be positive");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create table directory " + dir + ": " +
                            ec.message());
  }
  if (std::filesystem::exists(dir + "/" + kManifestName)) {
    return Status::InvalidArgument("table already exists in " + dir);
  }
  auto curve = MakeCurve(curve_name, universe);
  if (!curve.ok()) return curve.status();
  std::unique_ptr<SfcTable> table(
      new SfcTable(dir, std::move(curve).value(), options));
  const Status status = table->WriteManifest();
  if (!status.ok()) return status;
  return table;
}

Result<std::unique_ptr<SfcTable>> SfcTable::Open(
    const std::string& dir, const SfcTableOptions& options) {
  std::ifstream in(dir + "/" + kManifestName);
  if (!in) {
    return Status::NotFound("no table manifest in " + dir);
  }
  std::string format;
  int version = 0;
  in >> format >> version;
  if (!in || format != kManifestFormat) {
    return Status::InvalidArgument("bad manifest format in " + dir);
  }
  if (version != kManifestVersion) {
    return Status::InvalidArgument("unsupported manifest version " +
                                   std::to_string(version) + " in " + dir);
  }
  std::string curve_name;
  int dims = 0;
  Coord side = 0;
  uint32_t entries_per_page = 0;
  uint64_t next_segment_id = 0;
  std::vector<std::string> segment_files;
  std::string field;
  while (in >> field) {
    if (field == "curve") {
      in >> curve_name;
    } else if (field == "dims") {
      in >> dims;
    } else if (field == "side") {
      in >> side;
    } else if (field == "entries_per_page") {
      in >> entries_per_page;
    } else if (field == "next_segment_id") {
      in >> next_segment_id;
    } else if (field == "segment") {
      std::string file;
      in >> file;
      segment_files.push_back(file);
    } else {
      return Status::InvalidArgument("unknown manifest field '" + field +
                                     "' in " + dir);
    }
  }
  if (curve_name.empty() || dims < 1 || side < 1 || entries_per_page < 1) {
    return Status::InvalidArgument("incomplete manifest in " + dir);
  }

  auto curve = MakeCurve(curve_name, Universe(dims, side));
  if (!curve.ok()) return curve.status();
  SfcTableOptions effective = options;
  // Page geometry is a property of the files on disk, not of the caller.
  effective.entries_per_page = entries_per_page;
  std::unique_ptr<SfcTable> table(
      new SfcTable(dir, std::move(curve).value(), effective));
  table->next_segment_id_ = next_segment_id;
  for (const std::string& file : segment_files) {
    auto reader = SegmentReader::Open(table->SegmentPath(file));
    if (!reader.ok()) return reader.status();
    table->segments_.push_back(std::move(reader).value());
    table->segment_files_.push_back(file);
  }
  return table;
}

uint64_t SfcTable::size() const {
  uint64_t total = memtable_.size();
  for (const auto& segment : segments_) total += segment->num_entries();
  return total;
}

Status SfcTable::Insert(const Cell& cell, uint64_t payload) {
  if (!curve_->universe().Contains(cell)) {
    return Status::OutOfRange("cell outside the table's universe: " +
                              cell.ToString());
  }
  // Flush BEFORE buffering so a failed Insert has not retained the entry —
  // callers can retry it without creating a duplicate.
  if (memtable_.size() >= options_.memtable_flush_entries) {
    const Status status = Flush();
    if (!status.ok()) return status;
  }
  memtable_.Insert(curve_->IndexOf(cell), payload);
  return Status::OK();
}

Status SfcTable::Flush() {
  if (memtable_.empty()) return Status::OK();
  const std::string file =
      "seg_" + std::to_string(next_segment_id_++) + ".sfc";
  SegmentWriter writer(SegmentPath(file), options_.entries_per_page);
  Status status = memtable_.FlushTo(&writer);
  if (status.ok()) status = writer.Finish();
  if (!status.ok()) return status;
  auto reader = SegmentReader::Open(SegmentPath(file));
  if (!reader.ok()) return reader.status();
  segments_.push_back(std::move(reader).value());
  segment_files_.push_back(file);
  return WriteManifest();
}

Status SfcTable::Compact() {
  Status status = Flush();
  if (!status.ok()) return status;
  if (segments_.size() <= 1) return Status::OK();

  const std::string file =
      "seg_" + std::to_string(next_segment_id_++) + ".sfc";
  {
    SegmentWriter writer(SegmentPath(file), options_.entries_per_page);
    std::vector<const SegmentReader*> inputs;
    inputs.reserve(segments_.size());
    for (const auto& segment : segments_) inputs.push_back(segment.get());
    status = MergeSegments(inputs, &writer);
    if (status.ok()) status = writer.Finish();
    if (!status.ok()) return status;
  }
  auto reader = SegmentReader::Open(SegmentPath(file));
  if (!reader.ok()) return reader.status();

  // Install the new manifest BEFORE deleting the inputs: a crash in between
  // leaves both generations on disk and a manifest that names a live one,
  // never a manifest pointing at deleted files.
  std::vector<std::unique_ptr<SegmentReader>> retired;
  std::vector<std::string> retired_files;
  retired.swap(segments_);
  retired_files.swap(segment_files_);
  segments_.push_back(std::move(reader).value());
  segment_files_.push_back(file);
  status = WriteManifest();
  if (!status.ok()) {
    // Roll back to the (still valid) old generation; discard the new file.
    segments_.swap(retired);
    segment_files_.swap(retired_files);
    std::remove(SegmentPath(file).c_str());
    return status;
  }
  // Retire the inputs: evict their cached pages, close, delete.
  for (size_t i = 0; i < retired.size(); ++i) {
    pool_.Drop(retired[i].get());
    const std::string path = SegmentPath(retired_files[i]);
    retired[i].reset();  // close before unlink, for portability
    std::remove(path.c_str());
  }
  return Status::OK();
}

std::vector<SpatialEntry> SfcTable::Query(const Box& box) {
  ONION_CHECK(curve_->universe().Contains(box));
  const std::vector<KeyRange> ranges = DecomposeBox(*curve_, box);
  ++read_stats_.queries;
  read_stats_.ranges += ranges.size();

  std::vector<Entry> hits;
  // One pass over the memtable for the whole query (not one per range):
  // the ranges are sorted and disjoint, so membership is a binary search.
  if (!memtable_.empty() && !ranges.empty()) {
    memtable_.ScanRange(
        ranges.front().lo, ranges.back().hi, [&](Key key, uint64_t payload) {
          auto it = std::lower_bound(
              ranges.begin(), ranges.end(), key,
              [](const KeyRange& range, Key k) { return range.hi < k; });
          if (it != ranges.end() && it->lo <= key) {
            ++read_stats_.memtable_entries;
            hits.push_back(Entry{key, payload});
          }
        });
  }
  for (const KeyRange& range : ranges) {
    for (const auto& segment : segments_) {
      if (segment->num_entries() == 0 || range.hi < segment->min_key() ||
          range.lo > segment->max_key()) {
        continue;
      }
      pool_.ScanRange(*segment, range.lo, range.hi,
                      [&](Key key, uint64_t payload) {
                        hits.push_back(Entry{key, payload});
                      });
    }
  }
  std::sort(hits.begin(), hits.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.payload < b.payload;
  });

  std::vector<SpatialEntry> results;
  results.reserve(hits.size());
  for (const Entry& hit : hits) {
    const Cell cell = curve_->CellAt(hit.key);
    ONION_DCHECK(box.Contains(cell));
    results.push_back(SpatialEntry{cell, hit.payload});
  }
  return results;
}

void SfcTable::ResetStats() {
  read_stats_.Reset();
  pool_.ResetStats();
}

}  // namespace onion::storage
