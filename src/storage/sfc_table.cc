#include "storage/sfc_table.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "index/decompose.h"
#include "sfc/registry.h"
#include "storage/compaction.h"
#include "storage/fs_util.h"

namespace onion::storage {
namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestFormat[] = "onion-sfc-table";
// Version 4 adds the `last_sequence` line (the MVCC sequence fence: the
// newest sequence number durably in segments). Version 3 added the
// `codec` and `filter_bits_per_key` lines (segment format v2); version 2
// added the per-segment level and the WAL floor; version 1 manifests (no
// levels, no WALs) are still readable — their segments all load as level
// 0. Older versions default the missing fields (last_sequence 0, the
// caller's codec options) and are rewritten as version 4 on the next
// flush or compaction.
constexpr int kManifestVersion = 4;

constexpr char kWalPrefix[] = "wal_";
constexpr char kWalSuffix[] = ".log";

std::string SegmentFileName(uint64_t id) {
  return "seg_" + std::to_string(id) + ".sfc";
}

/// Rejects option combinations that would deadlock or loop the engine.
Status ValidateOptions(const SfcTableOptions& options) {
  if (options.entries_per_page < 1) {
    return Status::InvalidArgument("entries_per_page must be positive");
  }
  if (options.pool_pages < 1) {
    return Status::InvalidArgument("pool_pages must be positive");
  }
  if (options.memtable_flush_entries < 1) {
    return Status::InvalidArgument("memtable_flush_entries must be positive");
  }
  if (options.max_pending_memtables < 1) {
    return Status::InvalidArgument("max_pending_memtables must be positive");
  }
  if (options.l0_compaction_trigger < 2) {
    return Status::InvalidArgument("l0_compaction_trigger must be >= 2");
  }
  if (options.level_growth_factor < 2) {
    return Status::InvalidArgument("level_growth_factor must be >= 2");
  }
  if (!PageCodecValid(static_cast<uint32_t>(options.codec))) {
    return Status::InvalidArgument("unknown page codec");
  }
  if (options.filter_bits_per_key > 64) {
    return Status::InvalidArgument("filter_bits_per_key must be <= 64");
  }
  return Status::OK();
}

/// Parses "wal_<id>.log"; returns false for any other name.
bool ParseWalFileName(const std::string& name, uint64_t* id) {
  const size_t prefix = sizeof(kWalPrefix) - 1;
  const size_t suffix = sizeof(kWalSuffix) - 1;
  if (name.size() <= prefix + suffix) return false;
  if (name.compare(0, prefix, kWalPrefix) != 0) return false;
  if (name.compare(name.size() - suffix, suffix, kWalSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *id = value;
  return true;
}

}  // namespace

SfcTable::SfcTable(std::string dir, std::unique_ptr<SpaceFillingCurve> curve,
                   const SfcTableOptions& options,
                   const SharedResources& shared)
    : dir_(std::move(dir)),
      curve_(std::move(curve)),
      curve_name_(curve_->name()),
      options_(options),
      trace_(shared.trace != nullptr ? shared.trace
                                     : std::make_shared<obs::TraceRing>()),
      memtable_(curve_->num_cells()),
      workers_(shared.workers),
      pool_(shared.pool != nullptr
                ? shared.pool
                : std::make_shared<BufferPool>(options.pool_pages,
                                               options.readahead_pages)) {
  // Resolve every hot-path handle once; recording is pointer-only after
  // this. The names are the catalog in docs/observability.md.
  m_.wal_append_us = metrics_->histogram("wal.append_us");
  m_.wal_fsync_us = metrics_->histogram("wal.fsync_us");
  m_.wal_commit_batch_records =
      metrics_->histogram("wal.commit_batch_records");
  m_.memtable_insert_us = metrics_->histogram("memtable.insert_us");
  m_.write_commit_us = metrics_->histogram("write.commit_us");
  m_.flush_us = metrics_->histogram("flush.us");
  m_.compaction_us = metrics_->histogram("compaction.us");
  m_.cursor_next_us = metrics_->histogram("cursor.next_us");
  m_.flush_bytes = metrics_->counter("flush.bytes");
  m_.flush_entries = metrics_->counter("flush.entries");
  m_.flush_count = metrics_->counter("flush.count");
  m_.compaction_bytes_rewritten =
      metrics_->counter("compaction.bytes_rewritten");
  m_.compaction_entries_gcd = metrics_->counter("compaction.entries_gcd");
  m_.compaction_count = metrics_->counter("compaction.count");
}

WalMetrics SfcTable::TableWalMetrics() const {
  WalMetrics wal_metrics;
  wal_metrics.append_us = m_.wal_append_us;
  wal_metrics.fsync_us = m_.wal_fsync_us;
  wal_metrics.commit_batch_records = m_.wal_commit_batch_records;
  return wal_metrics;
}

SfcTable::~SfcTable() {
  // Deliberately no Flush(): destroying an unclosed table has crash
  // semantics — the WAL is the durable copy of anything unflushed, and
  // Open() will replay it. Call Close() first for a clean shutdown.
  StopWorker();
  // Last chance to collect retired files whose earlier unlink failed.
  for (const std::string& path : garbage_files_) {
    std::remove(path.c_str());
  }
}

std::string SfcTable::SegmentPath(const std::string& file) const {
  return dir_ + "/" + file;
}

std::string SfcTable::WalFileName(uint64_t id) const {
  return kWalPrefix + std::to_string(id) + kWalSuffix;
}

std::string SfcTable::WalPath(uint64_t id) const {
  return dir_ + "/" + WalFileName(id);
}

SegmentWriterOptions SfcTable::WriterOptions() const {
  // options_ and curve_ are immutable after Create/Open, so this needs no
  // lock even though flush and compaction call it from the worker thread.
  SegmentWriterOptions writer_options;
  writer_options.entries_per_page = options_.entries_per_page;
  writer_options.codec = options_.codec;
  writer_options.filter_bits_per_key = options_.filter_bits_per_key;
  writer_options.curve = curve_.get();
  return writer_options;
}

uint64_t SfcTable::EffectiveLevelSegmentEntries() const {
  return options_.level_segment_entries > 0 ? options_.level_segment_entries
                                            : options_.memtable_flush_entries;
}

uint64_t SfcTable::LevelTargetEntries(int level) const {
  uint64_t target = options_.level_base_entries > 0
                        ? options_.level_base_entries
                        : options_.l0_compaction_trigger *
                              options_.memtable_flush_entries;
  for (int i = 1; i < level; ++i) target *= options_.level_growth_factor;
  return target;
}

std::string SfcTable::ManifestTextLocked() const {
  std::string text;
  text += std::string(kManifestFormat) + " " +
          std::to_string(kManifestVersion) + "\n";
  text += "curve " + curve_name_ + "\n";
  text += "dims " + std::to_string(curve_->universe().dims()) + "\n";
  text += "side " + std::to_string(curve_->universe().side()) + "\n";
  text += "entries_per_page " + std::to_string(options_.entries_per_page) +
          "\n";
  text += "codec " + std::string(PageCodecName(options_.codec)) + "\n";
  text += "filter_bits_per_key " +
          std::to_string(options_.filter_bits_per_key) + "\n";
  text += "next_segment_id " + std::to_string(next_segment_id_) + "\n";
  text += "wal_floor " + std::to_string(wal_floor_) + "\n";
  text += "last_sequence " + std::to_string(flushed_seq_) + "\n";
  for (const TableSegment& segment : l0_) {
    text += "segment 0 " + segment.file + "\n";
  }
  for (size_t i = 0; i < levels_.size(); ++i) {
    for (const TableSegment& segment : levels_[i]) {
      text += "segment " + std::to_string(i + 1) + " " + segment.file + "\n";
    }
  }
  return text;
}

Status SfcTable::WriteManifestFile(const std::string& text) const {
  const std::string tmp_path = dir_ + "/" + kManifestName + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("cannot write manifest: " + tmp_path);
  }
  Status status;
  if (std::fwrite(text.data(), 1, text.size(), out) != text.size()) {
    status = Status::Internal("cannot write manifest: " + tmp_path);
  }
  if (status.ok()) status = SyncFile(out, tmp_path);
  std::fclose(out);
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, dir_ + "/" + kManifestName, ec);
  if (ec) {
    return Status::Internal("cannot install manifest: " + ec.message());
  }
  return SyncDir(dir_);
}

Status SfcTable::InstallManifest() {
  // Requires mu_ held on entry and returns with it held, but does the
  // expensive part (tmp write + two fsyncs + rename) WITHOUT it, so
  // queries and inserts are not stalled behind manifest durability.
  //
  // The manifest is a full-state snapshot, so correctness only needs every
  // durable manifest to be a consistent snapshot and renames to happen in
  // snapshot order. manifest_mu_ provides exactly that: it is taken first
  // (with mu_ released, keeping the manifest_mu_ -> mu_ acquisition order
  // deadlock-free), then the text is snapshotted under mu_, then mu_ is
  // dropped for the file I/O. A concurrent installer blocks on
  // manifest_mu_ and will snapshot strictly later state.
  mu_.Unlock();
  const MutexLock manifest_lock(manifest_mu_);
  mu_.Lock();
  const std::string text = ManifestTextLocked();
  mu_.Unlock();
  const Status status = WriteManifestFile(text);
  mu_.Lock();
  return status;
}

void SfcTable::StartWorker() {
  if (workers_ == nullptr) {
    owned_workers_ = std::make_unique<WorkerPool>(1);
    // A standalone table reports its private pool through its own
    // registry; a db-owned table's shared pool reports through the db's.
    owned_workers_->SetMetrics(metrics_->histogram("workers.task_wait_us"),
                               metrics_->counter("workers.tasks_run"));
    workers_ = owned_workers_.get();
  }
  const WorkerPool::ClientId client =
      workers_->Register([this] { return RunBackgroundWork(); });
  // worker_client_ is mu_-guarded: NotifyWorkerLocked and StopWorker read
  // it there, and a table reopened after Close() restarts concurrently
  // with in-flight readers.
  const WriterLock lock(mu_);
  worker_client_ = client;
}

void SfcTable::StopWorker() {
  WorkerPool::ClientId client = 0;
  {
    const WriterLock lock(mu_);
    client = worker_client_;
    worker_client_ = 0;
  }
  // Unregister blocks until in-flight work completes; it must run without
  // mu_ (the worker's callback takes mu_ itself).
  if (client != 0 && workers_ != nullptr) workers_->Unregister(client);
}

void SfcTable::NotifyWorkerLocked() {
  if (workers_ != nullptr && worker_client_ != 0) {
    workers_->Notify(worker_client_);
  }
}

bool SfcTable::RunBackgroundWork() {
  const WriterLock lock(mu_);
  if (!background_error_.ok()) return false;
  if (!pending_.empty()) {
    FlushPendingLocked();
  } else if (compaction_pending_) {
    RunCompactionLocked();
  } else {
    return false;
  }
  return background_error_.ok() &&
         (!pending_.empty() || compaction_pending_);
}

Result<std::unique_ptr<SfcTable>> SfcTable::Create(
    const std::string& dir, const std::string& curve_name,
    const Universe& universe, const SfcTableOptions& options) {
  return CreateWithShared(dir, curve_name, universe, options,
                          SharedResources{});
}

Result<std::unique_ptr<SfcTable>> SfcTable::Open(
    const std::string& dir, const SfcTableOptions& options) {
  return OpenWithShared(dir, options, SharedResources{});
}

Result<std::unique_ptr<SfcTable>> SfcTable::CreateWithShared(
    const std::string& dir, const std::string& curve_name,
    const Universe& universe, const SfcTableOptions& options,
    const SharedResources& shared) {
  const Status valid = ValidateOptions(options);
  if (!valid.ok()) return valid;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create table directory " + dir + ": " +
                            ec.message());
  }
  if (std::filesystem::exists(dir + "/" + kManifestName)) {
    return Status::InvalidArgument("table already exists in " + dir);
  }
  auto curve = MakeCurve(curve_name, universe);
  if (!curve.ok()) return curve.status();
  std::unique_ptr<SfcTable> table(
      new SfcTable(dir, std::move(curve).value(), options, shared));
  Status status;
  {
    const WriterLock lock(table->mu_);
    status = table->InstallManifest();
  }
  if (!status.ok()) return status;
  // The table group-commits fsyncs itself (see Insert), so the writer is
  // always created in flush-to-OS mode.
  auto wal = WalWriter::Create(table->WalPath(0), /*fsync_each_append=*/false);
  if (!wal.ok()) return wal.status();
  table->wal_ = std::move(wal).value();
  table->wal_->set_metrics(table->TableWalMetrics());
  table->wal_files_ = {table->WalFileName(0)};
  table->max_wal_id_ = 0;
  table->next_wal_id_ = 1;
  table->StartWorker();
  return table;
}

Result<std::unique_ptr<SfcTable>> SfcTable::OpenWithShared(
    const std::string& dir, const SfcTableOptions& options,
    const SharedResources& shared) {
  const Status valid = ValidateOptions(options);
  if (!valid.ok()) return valid;
  std::ifstream in(dir + "/" + kManifestName);
  if (!in) {
    return Status::NotFound("no table manifest in " + dir);
  }
  std::string format;
  int version = 0;
  in >> format >> version;
  if (!in || format != kManifestFormat) {
    return Status::InvalidArgument("bad manifest format in " + dir);
  }
  if (version < 1 || version > kManifestVersion) {
    return Status::InvalidArgument("unsupported manifest version " +
                                   std::to_string(version) + " in " + dir);
  }
  std::string curve_name;
  int dims = 0;
  Coord side = 0;
  uint32_t entries_per_page = 0;
  uint64_t next_segment_id = 0;
  uint64_t wal_floor = 0;
  uint64_t last_sequence = 0;
  PageCodec codec = PageCodec::kRaw;
  bool has_codec = false;
  uint32_t filter_bits_per_key = 0;
  bool has_filter_bits = false;
  std::vector<std::pair<int, std::string>> segment_files;  // (level, file)
  std::string field;
  while (in >> field) {
    if (field == "curve") {
      in >> curve_name;
    } else if (field == "dims") {
      in >> dims;
    } else if (field == "side") {
      in >> side;
    } else if (field == "entries_per_page") {
      in >> entries_per_page;
    } else if (field == "codec") {
      std::string codec_name;
      in >> codec_name;
      if (!ParsePageCodec(codec_name, &codec)) {
        return Status::InvalidArgument("unknown manifest codec '" +
                                       codec_name + "' in " + dir);
      }
      has_codec = true;
    } else if (field == "filter_bits_per_key") {
      in >> filter_bits_per_key;
      has_filter_bits = true;
    } else if (field == "next_segment_id") {
      in >> next_segment_id;
    } else if (field == "wal_floor") {
      in >> wal_floor;
    } else if (field == "last_sequence") {
      in >> last_sequence;
    } else if (field == "segment") {
      int level = 0;
      std::string file;
      if (version >= 2) in >> level;
      in >> file;
      if (level < 0) {
        return Status::InvalidArgument("negative segment level in " + dir);
      }
      segment_files.emplace_back(level, file);
    } else {
      return Status::InvalidArgument("unknown manifest field '" + field +
                                     "' in " + dir);
    }
  }
  if (curve_name.empty() || dims < 1 || side < 1 || entries_per_page < 1) {
    return Status::InvalidArgument("incomplete manifest in " + dir);
  }

  auto curve = MakeCurve(curve_name, Universe(dims, side));
  if (!curve.ok()) return curve.status();
  SfcTableOptions effective = options;
  // Page geometry — and, since manifest v3, the codec and filter budget —
  // are properties of the table on disk, not of the caller. Manifests
  // older than v3 lack the codec lines; those tables adopt the caller's
  // options and record them on the next manifest write.
  effective.entries_per_page = entries_per_page;
  if (has_codec) effective.codec = codec;
  if (has_filter_bits) effective.filter_bits_per_key = filter_bits_per_key;
  const Status revalid = ValidateOptions(effective);
  if (!revalid.ok()) return revalid;
  std::unique_ptr<SfcTable> table(
      new SfcTable(dir, std::move(curve).value(), effective, shared));
  table->next_segment_id_ = next_segment_id;
  table->wal_floor_ = wal_floor;
  table->flushed_seq_ = last_sequence;
  for (const auto& [level, file] : segment_files) {
    auto reader = SegmentReader::Open(table->SegmentPath(file));
    if (!reader.ok()) return reader.status();
    TableSegment segment{std::move(reader).value(), file, level};
    if (level == 0) {
      table->l0_.push_back(std::move(segment));
    } else {
      if (static_cast<int>(table->levels_.size()) < level) {
        table->levels_.resize(level);
      }
      table->levels_[level - 1].push_back(std::move(segment));
    }
  }
  for (auto& level_segments : table->levels_) {
    SortByMinKey(&level_segments);
    for (size_t i = 1; i < level_segments.size(); ++i) {
      if (level_segments[i].reader->min_key() <=
          level_segments[i - 1].reader->max_key()) {
        return Status::InvalidArgument(
            "overlapping segments within a level in " + dir);
      }
    }
  }

  // Crash recovery: replay every live WAL file (in id order) into the
  // memtable. Files below the manifest's wal_floor are fenced — their
  // entries are already in segments — and are garbage-collected here.
  std::vector<std::pair<uint64_t, std::string>> wal_files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t id = 0;
    const std::string name = entry.path().filename().string();
    if (ParseWalFileName(name, &id)) wal_files.emplace_back(id, name);
  }
  if (ec) {
    return Status::Internal("cannot list table directory " + dir + ": " +
                            ec.message());
  }
  std::sort(wal_files.begin(), wal_files.end());
  uint64_t max_seen_id = 0;
  // Recovered sequence watermark: starts at the manifest's last_sequence
  // (everything in segments) and advances over replayed WAL ops. Ops of
  // version-1 WALs carry no sequence (they surface as 0) and get fresh
  // ones synthesized in replay order — they predate snapshots, so any
  // assignment preserving order is correct.
  uint64_t recovered_seq = last_sequence;
  for (size_t i = 0; i < wal_files.size(); ++i) {
    const auto& [id, name] = wal_files[i];
    max_seen_id = std::max(max_seen_id, id);
    if (id < wal_floor) {
      std::remove((dir + "/" + name).c_str());  // fenced: pure GC
      continue;
    }
    auto replayed = ReplayWal(
        dir + "/" + name,
        [&](Key key, uint64_t payload, uint64_t sequence, bool tombstone) {
          if (sequence == 0) sequence = recovered_seq + 1;  // synthesized
          recovered_seq = std::max(recovered_seq, sequence);
          table->memtable_.Insert(key, payload, PackSeq(sequence, tombstone));
        });
    if (!replayed.ok()) {
      // A torn header can only happen to the newest WAL (crash during its
      // creation); anywhere else it means real corruption.
      if (i + 1 == wal_files.size()) {
        table->wal_files_.push_back(name);  // fenced off at next flush
        continue;
      }
      return replayed.status();
    }
    table->wal_files_.push_back(name);
  }
  table->max_wal_id_ = max_seen_id;
  table->next_wal_id_ = std::max(wal_floor, max_seen_id + 1);
  table->next_seq_ = recovered_seq + 1;
  table->last_applied_seq_.store(recovered_seq, std::memory_order_release);

  const uint64_t active_id = table->next_wal_id_++;
  auto wal = WalWriter::Create(table->WalPath(active_id),
                               /*fsync_each_append=*/false);
  if (!wal.ok()) return wal.status();
  table->wal_ = std::move(wal).value();
  table->wal_->set_metrics(table->TableWalMetrics());
  table->wal_files_.push_back(table->WalFileName(active_id));
  table->max_wal_id_ = active_id;
  table->StartWorker();
  return table;
}

uint64_t SfcTable::size() const {
  const ReaderLock lock(mu_);
  uint64_t total = memtable_.size();
  for (const PendingMemtable& batch : pending_) {
    if (!batch.installed) total += batch.mem.size();
  }
  for (const TableSegment& segment : l0_) {
    total += segment.reader->num_entries();
  }
  for (const auto& level_segments : levels_) {
    for (const TableSegment& segment : level_segments) {
      total += segment.reader->num_entries();
    }
  }
  return total;
}

size_t SfcTable::num_segments() const {
  const ReaderLock lock(mu_);
  size_t count = l0_.size();
  for (const auto& level_segments : levels_) count += level_segments.size();
  return count;
}

uint64_t SfcTable::memtable_entries() const {
  const ReaderLock lock(mu_);
  uint64_t total = memtable_.size();
  for (const PendingMemtable& batch : pending_) {
    if (!batch.installed) total += batch.mem.size();
  }
  return total;
}

size_t SfcTable::pending_memtables() const {
  const ReaderLock lock(mu_);
  return pending_.size();
}

std::vector<SegmentInfo> SfcTable::SegmentInfos() const {
  const ReaderLock lock(mu_);
  std::vector<SegmentInfo> infos;
  const auto add = [&](const TableSegment& segment) {
    infos.push_back(SegmentInfo{segment.file, segment.level,
                                segment.reader->min_key(),
                                segment.reader->max_key(),
                                segment.reader->num_entries(),
                                segment.reader->file_bytes(),
                                segment.reader->format_version(),
                                segment.reader->codec(),
                                segment.reader->filter_bytes()});
  };
  for (const TableSegment& segment : l0_) add(segment);
  for (const auto& level_segments : levels_) {
    for (const TableSegment& segment : level_segments) add(segment);
  }
  return infos;
}

Status SfcTable::Insert(const Cell& cell, uint64_t payload) {
  if (!curve_->universe().Contains(cell)) {
    return Status::OutOfRange("cell outside the table's universe: " +
                              cell.ToString());
  }
  const WalOp op{curve_->IndexOf(cell), payload, /*tombstone=*/false};
  return WriteOps(&op, 1);
}

Status SfcTable::Delete(const Cell& cell) {
  if (!curve_->universe().Contains(cell)) {
    return Status::OutOfRange("cell outside the table's universe: " +
                              cell.ToString());
  }
  const WalOp op{curve_->IndexOf(cell), 0, /*tombstone=*/true};
  return WriteOps(&op, 1);
}

Status SfcTable::PrecheckWritableWalLocked() {
  const ReaderLock lock(mu_);
  if (closed_) return Status::InvalidArgument("table is closed: " + dir_);
  return background_error_;
}

uint64_t SfcTable::ReserveSequencesWalLocked(uint64_t count) {
  const uint64_t first = next_seq_;
  next_seq_ += count;
  return first;
}

Status SfcTable::ApplyOpsWalLocked(const WalOp* ops, size_t count,
                                   uint64_t first_seq,
                                   std::shared_ptr<WalWriter>* used_wal,
                                   uint64_t* out_record) {
  WriterLock lock(mu_);
  if (closed_) return Status::InvalidArgument("table is closed: " + dir_);
  if (!background_error_.ok()) return background_error_;
  // Rotate BEFORE buffering so a failed WAL append has not retained any
  // entry — callers can retry without creating duplicates. (This
  // retry-safety covers the append path only: with wal_fsync, a failed
  // GROUP-COMMIT fsync later reports an error for entries that are
  // already buffered — see the wal_fsync caveat in sfc_table.h.)
  if (memtable_.size() >= options_.memtable_flush_entries) {
    const Status status =
        RotateMemtableLocked(options_.memtable_flush_entries);
    if (!status.ok()) return status;
  }
  *used_wal = wal_;  // stable: wal_mu_ (held by the caller) excludes rotation
  lock.Unlock();
  // The WAL file I/O runs with mu_ RELEASED — readers are never stalled
  // behind a record's fflush. One record per commit: replay is
  // all-or-nothing for the whole op batch.
  const Status status =
      (*used_wal)->AppendBatch(ops, count, first_seq, out_record);
  if (!status.ok()) return status;  // nothing buffered: retry-safe
  {
    // Buffering needs only SHARED mu_: the memtable is internally
    // synchronized (per-shard mutexes), and its identity cannot change
    // underneath us — rotation runs under wal_mu_, which the caller
    // holds. Writers therefore never exclude readers while buffering.
    const ReaderLock shared(mu_);
    const obs::ScopedTimer insert_timer(m_.memtable_insert_us);
    for (size_t i = 0; i < count; ++i) {
      memtable_.Insert(ops[i].key, ops[i].payload,
                       PackSeq(first_seq + i, ops[i].tombstone));
    }
  }
  // Publish AFTER buffering: a snapshot at sequence S sees every write
  // with sequence <= S, because applies happen in sequence order (the
  // caller holds wal_mu_ from reservation through here). Monotonic:
  // batch-journal recovery re-applies HISTORIC sequences below what WAL
  // replay already published — regressing would let a post-recovery
  // snapshot hide recovered writes. (Safe read-modify-write: wal_mu_
  // serializes every store.)
  const uint64_t last_seq = first_seq + count - 1;
  if (last_seq > last_applied_seq_.load(std::memory_order_relaxed)) {
    last_applied_seq_.store(last_seq, std::memory_order_release);
  }
  return Status::OK();
}

Status SfcTable::WriteOps(const WalOp* ops, size_t count) {
  // End-to-end commit latency: lock wait + WAL append + buffering +
  // (with wal_fsync) the group-commit fsync.
  const obs::ScopedTimer commit_timer(m_.write_commit_us);
  std::shared_ptr<WalWriter> wal;
  uint64_t record = 0;
  {
    // wal_mu_ serializes writers and pins the active WAL for the duration
    // of this commit; sequence order == append order == apply order.
    const MutexLock wal_lock(wal_mu_);
    const Status status = PrecheckWritableWalLocked();
    if (!status.ok()) return status;
    const uint64_t first_seq = ReserveSequencesWalLocked(count);
    const Status applied = ApplyOpsWalLocked(ops, count, first_seq, &wal,
                                             &record);
    if (!applied.ok()) return applied;
  }
  // Group commit OUTSIDE every lock: concurrent committers pile up behind
  // one leader fsync instead of serializing a disk flush each (the shared
  // wal pointer keeps the writer alive across a concurrent rotation).
  if (options_.wal_fsync) return wal->SyncUpTo(record);
  return Status::OK();
}

Status SfcTable::ReplayCommittedOps(const WalOp* ops, size_t count,
                                    uint64_t first_seq) {
  const MutexLock wal_lock(wal_mu_);
  const Status status = PrecheckWritableWalLocked();
  if (!status.ok()) return status;
  // The record's sequences are history — reuse them verbatim and move the
  // allocator past them.
  next_seq_ = std::max(next_seq_, first_seq + count);
  std::shared_ptr<WalWriter> wal;
  uint64_t record = 0;
  return ApplyOpsWalLocked(ops, count, first_seq, &wal, &record);
}

bool SfcTable::RecoveredStateCoversSequence(uint64_t sequence) const {
  const ReaderLock lock(mu_);
  // Flushed generations hold strictly older sequences than anything
  // unflushed, so the manifest fence is authoritative below it. (Residual
  // caveat: a commit that RETURNED AN ERROR mid-batch burns its sequences
  // without applying; once later writes flush past them this test reads
  // "covered" — acceptable, the caller saw the failure.)
  if (sequence <= flushed_seq_) return true;
  if (memtable_.ContainsSequence(sequence)) return true;
  for (const PendingMemtable& batch : pending_) {
    if (batch.mem.ContainsSequence(sequence)) return true;
  }
  return false;
}

Status SfcTable::SyncWalForRecovery() {
  const MutexLock wal_lock(wal_mu_);
  std::shared_ptr<WalWriter> wal;
  {
    // wal_ is mu_-guarded; wal_mu_ (held) is what pins the writer object
    // against rotation for the Sync below.
    const ReaderLock lock(mu_);
    wal = wal_;
  }
  return wal->Sync();
}

std::shared_ptr<const Snapshot> SfcTable::GetSnapshot() {
  auto* snapshot = new Snapshot{};
  snapshot->created_us = obs::NowMicros();
  {
    // Registering in the same hold that reads the sequence keeps the pin
    // list consistent with what compaction may collect.
    const MutexLock lock(snapshots_->mu);
    snapshot->sequence = last_applied_seq_.load(std::memory_order_acquire);
    snapshots_->pins.insert({snapshot->sequence, snapshot->created_us});
  }
  // The deleter owns the REGISTRY, not the table: releasing a pin after
  // the table is closed or even destroyed unregisters safely (reading
  // through such a pin is still invalid, like using any dangling cursor).
  return std::shared_ptr<const Snapshot>(
      snapshot, [registry = snapshots_](const Snapshot* released) {
        {
          const MutexLock lock(registry->mu);
          const auto it = registry->pins.find(
              {released->sequence, released->created_us});
          if (it != registry->pins.end()) registry->pins.erase(it);
        }
        delete released;
      });
}

std::vector<uint64_t> SfcTable::PinnedSnapshotSequences() const {
  const MutexLock lock(snapshots_->mu);
  std::vector<uint64_t> sequences;
  sequences.reserve(snapshots_->pins.size());
  // The multiset orders by (sequence, created_us), so this stays sorted.
  for (const auto& [sequence, created_us] : snapshots_->pins) {
    sequences.push_back(sequence);
  }
  return sequences;
}

uint64_t SfcTable::OldestSnapshotPinAgeUs() const {
  uint64_t oldest = 0;
  {
    const MutexLock lock(snapshots_->mu);
    // Lowest sequence is not necessarily the earliest pin; scan created_us.
    for (const auto& [sequence, created_us] : snapshots_->pins) {
      if (oldest == 0 || created_us < oldest) oldest = created_us;
    }
  }
  if (oldest == 0) return 0;
  const uint64_t now = obs::NowMicros();
  return now > oldest ? now - oldest : 0;
}

Status SfcTable::RotateMemtableLocked(uint64_t min_entries) {
  // Bounded queue: block while max_pending_memtables generations are
  // already waiting for the background flush. (The wait releases mu_ but
  // keeps the caller's wal_mu_, so no other writer can rotate meanwhile;
  // the min_entries recheck below is defense in depth.)
  while (background_error_.ok() &&
         pending_.size() >= options_.max_pending_memtables) {
    cv_.Wait(mu_);
  }
  if (!background_error_.ok()) return background_error_;
  if (memtable_.size() < min_entries) return Status::OK();
  // Open the next WAL first: if that fails, the current generation stays
  // fully intact and writable.
  const uint64_t id = next_wal_id_;
  auto wal = WalWriter::Create(WalPath(id), /*fsync_each_append=*/false);
  if (!wal.ok()) return wal.status();
  ++next_wal_id_;
  PendingMemtable batch;
  batch.mem = std::move(memtable_);
  batch.wal_files = std::move(wal_files_);
  batch.max_wal_id = max_wal_id_;
  pending_.push_back(std::move(batch));
  memtable_ = MemTable(curve_->num_cells());
  wal_ = std::move(wal).value();
  wal_->set_metrics(TableWalMetrics());
  wal_files_ = {WalFileName(id)};
  max_wal_id_ = id;
  NotifyWorkerLocked();
  cv_.NotifyAll();
  return Status::OK();
}

Status SfcTable::Flush() {
  {
    const MutexLock wal_lock(wal_mu_);
    const WriterLock lock(mu_);
    if (!background_error_.ok()) return background_error_;
    if (!memtable_.empty()) {
      const Status status = RotateMemtableLocked(1);
      if (!status.ok()) return status;
    }
  }  // release wal_mu_: writers may proceed while we wait for the barrier
  const WriterLock lock(mu_);
  // Barrier: everything rotated is durable in segments and the level
  // structure has settled before we return.
  while (background_error_.ok() &&
         !(pending_.empty() && !compaction_pending_ &&
           !compaction_inflight_)) {
    cv_.Wait(mu_);
  }
  return background_error_;
}

Status SfcTable::Close() {
  Status rotate_status;
  {
    const MutexLock wal_lock(wal_mu_);
    const WriterLock lock(mu_);
    // No early return when already closed: EVERY Close() call falls
    // through to the quiesce barrier below, so a second (possibly
    // concurrent) Close() cannot report "flushed and stopped" while the
    // first one's final segment/MANIFEST install is still in flight.
    if (!closed_) {
      closed_ = true;  // writers arriving from here on are refused
      if (background_error_.ok() && !memtable_.empty()) {
        rotate_status = RotateMemtableLocked(1);
      }
    }
  }
  {
    const WriterLock lock(mu_);
    // The predicate includes manual_compaction_: a Compact() that passed
    // its closed_ check before we flipped the flag must finish (and any
    // compaction it re-armed must drain) before the worker is stopped,
    // or it would install manifests into a "closed" table.
    while (background_error_.ok() &&
           !(pending_.empty() && !compaction_pending_ &&
             !compaction_inflight_ && !manual_compaction_)) {
      cv_.Wait(mu_);
    }
    if (rotate_status.ok()) rotate_status = background_error_;
  }
  // Quiesced (or failed): stop background processing either way. Reads
  // stay valid; anything unflushed due to an error is still WAL-durable.
  StopWorker();
  return rotate_status;
}

void SfcTable::SetBackgroundErrorLocked(const Status& status) {
  if (background_error_.ok()) background_error_ = status;
  cv_.NotifyAll();
}

void SfcTable::FlushPendingLocked() {
  // The front reference stays valid while unlocked: only one worker runs
  // this table's background work at a time (WorkerPool guarantee), only
  // that worker pops, and deque growth does not invalidate references.
  PendingMemtable& batch = pending_.front();
  const uint64_t flush_start_us = obs::NowMicros();
  const uint64_t flush_entries = batch.mem.size();
  Status status;
  TableSegment installed;
  if (!batch.mem.empty()) {
    const std::string file = SegmentFileName(next_segment_id_++);
    const std::string path = SegmentPath(file);
    std::shared_ptr<SegmentReader> reader;
    mu_.Unlock();
    {
      SegmentWriter writer(path, WriterOptions());
      status = batch.mem.FlushTo(&writer);
      if (status.ok()) status = writer.Finish();  // fsyncs file + directory
    }
    if (status.ok()) {
      auto opened = SegmentReader::Open(path);
      if (opened.ok()) {
        reader = std::move(opened).value();
      } else {
        status = opened.status();
      }
    }
    mu_.Lock();
    if (!status.ok()) {
      // Never entered the in-memory state, so no manifest can name it.
      std::remove(path.c_str());
      SetBackgroundErrorLocked(status);
      return;
    }
    installed = TableSegment{std::move(reader), file, 0};
    // One atomic visibility flip for readers: the segment appears and the
    // batch disappears from the read path in the same lock hold, so a
    // query during the (unlocked) manifest install below can never see
    // the same entries in both.
    l0_.push_back(installed);
    batch.installed = true;
  }
  const uint64_t old_floor = wal_floor_;
  const uint64_t old_flushed = flushed_seq_;
  wal_floor_ = std::max(wal_floor_, batch.max_wal_id + 1);
  // The manifest's last_sequence fence advances with the segment that
  // makes these sequences durable — the same atomic install that fences
  // the WAL files carrying them.
  flushed_seq_ = std::max(flushed_seq_, batch.mem.max_sequence());
  status = InstallManifest();
  if (!status.ok()) {
    if (installed.reader != nullptr) {
      // Remove by identity — the lock was released during the install, so
      // the segment may no longer be l0_.back(). KEEP the file: a manifest
      // written concurrently may already reference it; unreferenced it is
      // a harmless orphan.
      RemoveSegmentsByIdentityLocked({installed});
      batch.installed = false;
    }
    wal_floor_ = old_floor;
    flushed_seq_ = old_flushed;
    SetBackgroundErrorLocked(status);
    return;
  }
  // The manifest's wal_floor now fences these files; deleting them is GC.
  for (const std::string& wal_file : batch.wal_files) {
    std::remove((dir_ + "/" + wal_file).c_str());
  }
  pending_.pop_front();
  if (installed.reader != nullptr) {
    // Flush duration covers segment write + fsyncs + manifest install —
    // the full cost of making this generation durable.
    const uint64_t dur_us = obs::NowMicros() - flush_start_us;
    const uint64_t bytes = installed.reader->file_bytes();
    m_.flush_us->Record(dur_us);
    m_.flush_count->Increment();
    m_.flush_bytes->Add(bytes);
    m_.flush_entries->Add(flush_entries);
    trace_->Add(obs::TraceEvent{trace_->NextId(), obs::TraceKind::kFlush,
                                installed.file, flush_start_us, dur_us, bytes,
                                flush_entries});
  }
  if (!manual_compaction_ && l0_.size() >= options_.l0_compaction_trigger) {
    compaction_pending_ = true;
  }
  cv_.NotifyAll();
}

bool SfcTable::HasAutoCompactionWorkLocked() const {
  if (l0_.size() >= options_.l0_compaction_trigger) return true;
  for (size_t i = 0; i < levels_.size(); ++i) {
    uint64_t total = 0;
    for (const TableSegment& segment : levels_[i]) {
      total += segment.reader->num_entries();
    }
    if (total > LevelTargetEntries(static_cast<int>(i) + 1)) return true;
  }
  return false;
}

void SfcTable::RunCompactionLocked() {
  compaction_pending_ = false;
  if (manual_compaction_) return;

  // Pick the job: all of L0 into level 1, or the lowest-key prefix of the
  // first over-target level into the next one.
  std::vector<TableSegment> inputs;
  int out_level = 0;
  if (l0_.size() >= options_.l0_compaction_trigger) {
    inputs = l0_;
    out_level = 1;
  } else {
    for (size_t i = 0; i < levels_.size(); ++i) {
      uint64_t total = 0;
      for (const TableSegment& segment : levels_[i]) {
        total += segment.reader->num_entries();
      }
      const uint64_t target = LevelTargetEntries(static_cast<int>(i) + 1);
      if (total <= target) continue;
      uint64_t removed = 0;
      size_t take = 0;
      while (take < levels_[i].size() && total - removed > target) {
        removed += levels_[i][take].reader->num_entries();
        ++take;
      }
      inputs.assign(levels_[i].begin(), levels_[i].begin() + take);
      out_level = static_cast<int>(i) + 2;
      break;
    }
  }
  if (inputs.empty() || out_level < 1) return;

  // Pull in the segments of the output level that overlap the inputs' key
  // span — merging with them is what keeps the level non-overlapping.
  Key span_lo = inputs.front().reader->min_key();
  Key span_hi = inputs.front().reader->max_key();
  for (const TableSegment& segment : inputs) {
    span_lo = std::min(span_lo, segment.reader->min_key());
    span_hi = std::max(span_hi, segment.reader->max_key());
  }
  if (static_cast<int>(levels_.size()) >= out_level) {
    for (const TableSegment& segment : levels_[out_level - 1]) {
      if (segment.reader->max_key() >= span_lo &&
          segment.reader->min_key() <= span_hi) {
        inputs.push_back(segment);
      }
    }
  }

  // While compaction_inflight_ is set (through the manifest install, whose
  // lock-free window would otherwise let a manual Compact() interleave),
  // only this worker thread mutates the segment structure, so wholesale
  // backup/restore of the vectors is a sound rollback.
  compaction_inflight_ = true;

  // A single input with nothing to merge against moves between levels as a
  // manifest-only edit — no reason to rewrite identical bytes.
  if (inputs.size() == 1 && out_level >= 2) {
    const std::vector<TableSegment> l0_backup = l0_;
    const std::vector<std::vector<TableSegment>> levels_backup = levels_;
    TableSegment moved = inputs.front();
    moved.level = out_level;
    RemoveSegmentsByIdentityLocked(inputs);
    if (static_cast<int>(levels_.size()) < out_level) {
      levels_.resize(out_level);
    }
    auto& move_dest = levels_[out_level - 1];
    move_dest.push_back(std::move(moved));
    SortByMinKey(&move_dest);
    const Status status = InstallManifest();
    compaction_inflight_ = false;
    if (!status.ok()) {
      l0_ = l0_backup;
      levels_ = levels_backup;
      SetBackgroundErrorLocked(status);
      return;
    }
    if (HasAutoCompactionWorkLocked()) compaction_pending_ = true;
    cv_.NotifyAll();
    return;
  }
  std::vector<const SegmentReader*> raw;
  raw.reserve(inputs.size());
  for (const TableSegment& segment : inputs) {
    raw.push_back(segment.reader.get());
  }
  const uint64_t max_output_entries = EffectiveLevelSegmentEntries();
  // MVCC retention inputs. Bottom-most iff no level deeper than the
  // output holds any segment: within one level key ranges are disjoint
  // and the merge pulls every overlapping output-level segment, so the
  // only place an older version of a merged key could hide is a deeper
  // level. The snapshot list may gain members while the merge runs
  // unlocked — harmless, because a snapshot taken later pins a sequence
  // >= everything in these inputs, which never changes a drop decision.
  const uint64_t comp_start_us = obs::NowMicros();
  CompactionStats merge_stats;
  CompactionOptions gc;
  gc.stats = &merge_stats;
  gc.snapshots = PinnedSnapshotSequences();
  gc.bottom_level = true;
  for (size_t i = static_cast<size_t>(out_level); i < levels_.size(); ++i) {
    if (!levels_[i].empty()) gc.bottom_level = false;
  }
  mu_.Unlock();

  std::vector<std::string> out_files;
  std::vector<std::unique_ptr<SegmentWriter>> outs;
  auto open_output = [&]() {
    uint64_t id = 0;
    {
      const WriterLock id_lock(mu_);
      id = next_segment_id_++;
    }
    out_files.push_back(SegmentFileName(id));
    return std::make_unique<SegmentWriter>(SegmentPath(out_files.back()),
                                           WriterOptions());
  };
  Status status =
      MergeSegmentsLeveled(raw, max_output_entries, open_output, &outs, gc);
  std::vector<TableSegment> new_segments;
  if (status.ok()) {
    for (size_t i = 0; i < outs.size(); ++i) {
      auto opened = SegmentReader::Open(outs[i]->path());
      if (!opened.ok()) {
        status = opened.status();
        break;
      }
      new_segments.push_back(
          TableSegment{std::move(opened).value(), out_files[i], out_level});
    }
  }

  mu_.Lock();
  if (!status.ok()) {
    compaction_inflight_ = false;
    // The outputs never entered the in-memory state; no manifest can name
    // them, so deleting the files is safe.
    for (const std::string& file : out_files) {
      std::remove(SegmentPath(file).c_str());
    }
    SetBackgroundErrorLocked(status);
    return;
  }
  // Install the new generation; a manifest failure rolls everything back
  // so the in-memory state always matches the manifest on disk.
  const std::vector<TableSegment> l0_backup = l0_;
  const std::vector<std::vector<TableSegment>> levels_backup = levels_;
  RemoveSegmentsByIdentityLocked(inputs);
  if (static_cast<int>(levels_.size()) < out_level) levels_.resize(out_level);
  auto& dest = levels_[out_level - 1];
  dest.insert(dest.end(), new_segments.begin(), new_segments.end());
  SortByMinKey(&dest);
  status = InstallManifest();
  if (!status.ok()) {
    compaction_inflight_ = false;
    l0_ = l0_backup;
    levels_ = levels_backup;
    // KEEP the output files: they entered the state during the install
    // window, so a concurrently written manifest may reference them.
    SetBackgroundErrorLocked(status);
    return;
  }
  uint64_t bytes_rewritten = 0;
  for (const TableSegment& segment : new_segments) {
    bytes_rewritten += segment.reader->file_bytes();
  }
  const uint64_t dur_us = obs::NowMicros() - comp_start_us;
  const uint64_t entries_gcd = merge_stats.entries_in - merge_stats.entries_out;
  m_.compaction_us->Record(dur_us);
  m_.compaction_count->Increment();
  m_.compaction_bytes_rewritten->Add(bytes_rewritten);
  m_.compaction_entries_gcd->Add(entries_gcd);
  trace_->Add(obs::TraceEvent{trace_->NextId(), obs::TraceKind::kCompaction,
                              "L" + std::to_string(out_level), comp_start_us,
                              dur_us, bytes_rewritten, entries_gcd});
  const std::vector<std::string> doomed =
      DetachSegmentsLocked(std::move(inputs));
  // Unlink with compaction_inflight_ still set, so the Flush()/Close()
  // barrier cannot release (and a caller cannot start tearing down the
  // table directory) while retired files are mid-deletion.
  RemoveRetiredFiles(doomed);
  compaction_inflight_ = false;
  if (!manual_compaction_ && HasAutoCompactionWorkLocked()) {
    compaction_pending_ = true;
  }
  cv_.NotifyAll();
}

void SfcTable::RemoveSegmentsByIdentityLocked(
    const std::vector<TableSegment>& gone) {
  const auto is_gone = [&](const TableSegment& segment) {
    for (const TableSegment& g : gone) {
      if (g.reader == segment.reader) return true;
    }
    return false;
  };
  l0_.erase(std::remove_if(l0_.begin(), l0_.end(), is_gone), l0_.end());
  for (auto& level_segments : levels_) {
    level_segments.erase(std::remove_if(level_segments.begin(),
                                        level_segments.end(), is_gone),
                         level_segments.end());
  }
}

void SfcTable::SortByMinKey(std::vector<TableSegment>* segments) {
  std::sort(segments->begin(), segments->end(),
            [](const TableSegment& a, const TableSegment& b) {
              return a.reader->min_key() < b.reader->min_key();
            });
}

std::vector<std::string> SfcTable::DetachSegmentsLocked(
    std::vector<TableSegment> retired) {
  // Also retry earlier failed unlinks (their readers are gone by now).
  std::vector<std::string> doomed = std::move(garbage_files_);
  garbage_files_.clear();
  for (TableSegment& segment : retired) {
    pool_->Drop(segment.reader.get());
    doomed.push_back(SegmentPath(segment.file));
    // In-flight queries may still hold the reader via shared_ptr; on POSIX
    // the open descriptor keeps the unlinked data readable until they
    // finish, while platforms that refuse to delete open files land the
    // path back in garbage_files_ for a later retry.
    segment.reader.reset();
  }
  return doomed;
}

void SfcTable::RemoveRetiredFiles(const std::vector<std::string>& doomed) {
  // File I/O with the table unlocked; only the bookkeeping re-locks.
  mu_.Unlock();
  std::vector<std::string> survivors;
  for (const std::string& path : doomed) {
    if (std::remove(path.c_str()) != 0 && std::filesystem::exists(path)) {
      survivors.push_back(path);
    }
  }
  mu_.Lock();
  garbage_files_.insert(garbage_files_.end(), survivors.begin(),
                        survivors.end());
}

std::vector<SfcTable::TableSegment> SfcTable::AllSegmentsLocked() const {
  std::vector<TableSegment> all = l0_;
  for (const auto& level_segments : levels_) {
    all.insert(all.end(), level_segments.begin(), level_segments.end());
  }
  return all;
}

Status SfcTable::Compact() {
  {
    const ReaderLock lock(mu_);
    if (closed_) return Status::InvalidArgument("table is closed: " + dir_);
  }
  Status status = Flush();
  if (!status.ok()) return status;

  WriterLock lock(mu_);
  // Quiesce background compaction AND any other manual Compact() first:
  // two concurrent compactions over the same inputs would install each
  // other's entries twice.
  while (background_error_.ok() &&
         !(!compaction_inflight_ && !compaction_pending_ &&
           !manual_compaction_)) {
    cv_.Wait(mu_);
  }
  if (!background_error_.ok()) return background_error_;
  // Re-check under the exclusive lock: a Close() may have slipped in
  // between the screening check above and here (its barrier would then
  // wait on manual_compaction_, but refusing is the cleaner outcome).
  if (closed_) return Status::InvalidArgument("table is closed: " + dir_);
  const std::vector<TableSegment> inputs = AllSegmentsLocked();
  // A single segment is still rewritten: the manual Compact() is the
  // explicit GC hook, and a just-released snapshot may have left
  // collectable versions inside the one remaining run.
  if (inputs.empty()) return Status::OK();
  // Deep enough that the single output does not overflow its level's size
  // target (which would just make the worker push it further down).
  uint64_t total_entries = 0;
  for (const TableSegment& segment : inputs) {
    total_entries += segment.reader->num_entries();
  }
  int out_level = 1;
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) out_level = static_cast<int>(i) + 1;
  }
  while (LevelTargetEntries(out_level) < total_entries) ++out_level;
  manual_compaction_ = true;  // keeps the worker from scheduling its own
  const uint64_t comp_start_us = obs::NowMicros();
  CompactionStats merge_stats;
  const std::string file = SegmentFileName(next_segment_id_++);
  const std::string path = SegmentPath(file);
  std::vector<const SegmentReader*> raw;
  raw.reserve(inputs.size());
  for (const TableSegment& segment : inputs) {
    raw.push_back(segment.reader.get());
  }
  lock.Unlock();

  std::shared_ptr<SegmentReader> reader;
  {
    // A manual compaction merges EVERY segment, so its output is
    // bottom-most by construction: unpinned shadowed versions and
    // tombstones no snapshot predates are collected here.
    CompactionOptions gc;
    gc.stats = &merge_stats;
    gc.snapshots = PinnedSnapshotSequences();
    gc.bottom_level = true;
    SegmentWriter writer(path, WriterOptions());
    status = MergeSegments(raw, &writer, gc);
    if (status.ok()) status = writer.Finish();
  }
  if (status.ok()) {
    auto opened = SegmentReader::Open(path);
    if (opened.ok()) {
      reader = std::move(opened).value();
    } else {
      status = opened.status();
    }
  }

  lock.Lock();
  if (!status.ok()) {
    manual_compaction_ = false;
    // Never entered the in-memory state, so no manifest can name it.
    std::remove(path.c_str());
    cv_.NotifyAll();
    return status;
  }
  const TableSegment output{std::move(reader), file, out_level};
  RemoveSegmentsByIdentityLocked(inputs);
  if (static_cast<int>(levels_.size()) < out_level) levels_.resize(out_level);
  levels_[out_level - 1].push_back(output);
  SortByMinKey(&levels_[out_level - 1]);
  status = InstallManifest();
  if (!status.ok()) {
    manual_compaction_ = false;
    // Roll back by identity: background flushes may have appended new L0
    // runs during the unlocked install window, so restoring wholesale
    // snapshots of the vectors would clobber them. L0 inputs return to the
    // FRONT (they are older than anything flushed meanwhile); leveled
    // inputs return to their levels, whose disjointness is restored once
    // the output that replaced them is removed again.
    RemoveSegmentsByIdentityLocked({output});
    std::vector<TableSegment> old_l0;
    for (const TableSegment& segment : inputs) {
      if (segment.level == 0) {
        old_l0.push_back(segment);
      } else {
        if (static_cast<int>(levels_.size()) < segment.level) {
          levels_.resize(segment.level);
        }
        levels_[segment.level - 1].push_back(segment);
      }
    }
    l0_.insert(l0_.begin(), old_l0.begin(), old_l0.end());
    for (auto& level_segments : levels_) SortByMinKey(&level_segments);
    // KEEP the output file: a manifest written concurrently by a flush
    // install may already reference it; unreferenced it is an orphan.
    cv_.NotifyAll();
    return status;
  }
  const uint64_t dur_us = obs::NowMicros() - comp_start_us;
  const uint64_t entries_gcd = merge_stats.entries_in - merge_stats.entries_out;
  m_.compaction_us->Record(dur_us);
  m_.compaction_count->Increment();
  m_.compaction_bytes_rewritten->Add(output.reader->file_bytes());
  m_.compaction_entries_gcd->Add(entries_gcd);
  trace_->Add(obs::TraceEvent{trace_->NextId(), obs::TraceKind::kCompaction,
                              file, comp_start_us, dur_us,
                              output.reader->file_bytes(), entries_gcd});
  std::vector<TableSegment> retired = inputs;
  const std::vector<std::string> doomed =
      DetachSegmentsLocked(std::move(retired));
  // Unlink before clearing manual_compaction_ or waking anyone: Compact()
  // must not appear finished while retired files are mid-deletion.
  RemoveRetiredFiles(doomed);
  manual_compaction_ = false;
  // Re-arm background compaction: flushes that arrived during this manual
  // compaction skipped scheduling (manual_compaction_ was set), so L0 may
  // already be over the trigger.
  if (HasAutoCompactionWorkLocked()) {
    compaction_pending_ = true;
    NotifyWorkerLocked();
  }
  cv_.NotifyAll();
  return Status::OK();
}

std::unique_ptr<Cursor> SfcTable::NewBoxCursor(const Box& box,
                                               const ReadOptions& options) {
  if (!curve_->universe().Contains(box)) {
    return NewErrorCursor(Status::InvalidArgument(
        "query box outside the table's universe: " + box.ToString()));
  }
  // DecomposeBox is exact (every key of every range maps into the box),
  // which is the precondition for handing the box to the cursor as a
  // zone-map filter.
  return NewRangesCursor(DecomposeBox(*curve_, box), &box, options);
}

std::unique_ptr<Cursor> SfcTable::NewScanCursor(const ReadOptions& options) {
  const Key num_cells = curve_->universe().num_cells();
  std::vector<KeyRange> ranges;
  if (num_cells > 0) ranges.push_back(KeyRange{0, num_cells - 1});
  return NewRangesCursor(std::move(ranges), nullptr, options);
}

std::unique_ptr<Cursor> SfcTable::NewRangesCursor(std::vector<KeyRange> ranges,
                                                  const Box* query_box,
                                                  const ReadOptions& options) {
  {
    const MutexLock stats_lock(stats_mu_);
    ++read_stats_.queries;
    read_stats_.ranges += ranges.size();
  }

  // Reads above the snapshot sequence are dropped at collection time
  // (cheaper than filtering in the merge); tombstones at or below it are
  // kept — the cursor needs them to hide older segment entries.
  const uint64_t visible_seq = options.snapshot != nullptr
                                   ? options.snapshot->sequence
                                   : kMaxSequence;
  std::vector<Entry> mem_hits;
  SegmentSnapshot snapshot;
  {
    const ReaderLock lock(mu_);
    if (!background_error_.ok()) return NewErrorCursor(background_error_);
    // One pass over each memtable for the whole query (not one per range):
    // the ranges are sorted and disjoint, so membership is a binary search.
    if (!ranges.empty()) {
      const auto scan_memtable = [&](const MemTable& mem) {
        mem.ScanRange(ranges.front().lo, ranges.back().hi,
                      [&](const Entry& entry) {
                        if (SequenceOf(entry.seq) > visible_seq) return;
                        auto it = std::lower_bound(
                            ranges.begin(), ranges.end(), entry.key,
                            [](const KeyRange& range, Key k) {
                              return range.hi < k;
                            });
                        if (it != ranges.end() && it->lo <= entry.key) {
                          mem_hits.push_back(entry);
                        }
                      });
      };
      scan_memtable(memtable_);
      for (const PendingMemtable& batch : pending_) {
        if (!batch.installed) scan_memtable(batch.mem);
      }
    }
    snapshot.l0.reserve(l0_.size());
    for (const TableSegment& segment : l0_) {
      snapshot.l0.push_back(segment.reader);
    }
    snapshot.levels.reserve(levels_.size());
    for (const auto& level_segments : levels_) {
      std::vector<std::shared_ptr<SegmentReader>> level;
      level.reserve(level_segments.size());
      for (const TableSegment& segment : level_segments) {
        level.push_back(segment.reader);
      }
      snapshot.levels.push_back(std::move(level));
    }
  }
  // Everything below runs WITHOUT the table lock: the cursor owns the
  // snapshot and later flushes/compactions cannot disturb it.
  if (!mem_hits.empty()) {
    const MutexLock stats_lock(stats_mu_);
    read_stats_.memtable_entries += mem_hits.size();
  }
  std::sort(mem_hits.begin(), mem_hits.end(),
            [](const Entry& a, const Entry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.payload < b.payload;
            });
  return NewSnapshotCursor(curve_.get(), std::move(ranges), query_box,
                           std::move(mem_hits), std::move(snapshot), pool_,
                           &io_stats_, options, m_.cursor_next_us);
}

Result<std::vector<uint64_t>> SfcTable::Get(const Cell& cell,
                                            const ReadOptions& options) {
  if (!curve_->universe().Contains(cell)) {
    return Status::OutOfRange("cell outside the table's universe: " +
                              cell.ToString());
  }
  const Key key = curve_->IndexOf(cell);
  const auto cursor = NewRangesCursor({KeyRange{key, key}}, nullptr, options);
  std::vector<uint64_t> payloads;
  for (; cursor->Valid(); cursor->Next()) {
    payloads.push_back(cursor->entry().payload);
  }
  if (!cursor->status().ok()) return cursor->status();
  return payloads;
}

std::vector<SpatialEntry> SfcTable::Query(const Box& box) {
  ONION_CHECK(curve_->universe().Contains(box));
  const auto cursor = NewBoxCursor(box, ReadOptions{});
  std::vector<SpatialEntry> results;
  for (; cursor->Valid(); cursor->Next()) {
    results.push_back(cursor->entry());
    ONION_DCHECK(box.Contains(results.back().cell));
  }
  // The merge yields key order but leaves equal-key ties unspecified;
  // restore the historical (key, payload) contract group by group. The
  // curve is a bijection, so equal keys show up as equal cells — no need
  // to recompute any key.
  size_t group_begin = 0;
  for (size_t i = 1; i <= results.size(); ++i) {
    if (i == results.size() || !(results[i].cell == results[group_begin].cell)) {
      std::sort(results.begin() + group_begin, results.begin() + i,
                [](const SpatialEntry& a, const SpatialEntry& b) {
                  return a.payload < b.payload;
                });
      group_begin = i;
    }
  }
  return results;
}

TableReadStats SfcTable::read_stats() const {
  const MutexLock stats_lock(stats_mu_);
  return read_stats_;
}

void SfcTable::ResetStats() {
  {
    const MutexLock stats_lock(stats_mu_);
    read_stats_.Reset();
  }
  io_stats_.Reset();
}

std::string SfcTable::DumpMetrics(obs::MetricsFormat format) const {
  // Refresh the gauges that are derived state rather than event streams,
  // so every dump reflects the structure at dump time.
  {
    const ReaderLock lock(mu_);
    metrics_->gauge("memtable.entries")
        ->Set(static_cast<int64_t>(memtable_.size()));
    metrics_->gauge("memtable.bytes")
        ->Set(static_cast<int64_t>(memtable_.ApproximateBytes()));
    metrics_->gauge("pending.memtables")
        ->Set(static_cast<int64_t>(pending_.size()));
    size_t segments = l0_.size();
    for (const auto& level_segments : levels_) {
      segments += level_segments.size();
    }
    metrics_->gauge("segments.live")->Set(static_cast<int64_t>(segments));
  }
  metrics_->gauge("snapshot.oldest_pin_age_us")
      ->Set(static_cast<int64_t>(OldestSnapshotPinAgeUs()));

  const IoStats io = io_stats_.Snapshot();
  const TableReadStats reads = read_stats();
  const uint64_t pool_touches = io.page_reads + io.cache_hits;
  const double hit_ratio =
      pool_touches > 0 ? static_cast<double>(io.cache_hits) / pool_touches
                       : 0.0;
  const uint64_t candidates = pool_touches + io.pages_skipped_by_filter;
  const double skip_ratio =
      candidates > 0
          ? static_cast<double>(io.pages_skipped_by_filter) / candidates
          : 0.0;
  std::string name = std::filesystem::path(dir_).filename().string();
  if (name.empty()) name = dir_;

  if (format == obs::MetricsFormat::kPrometheus) {
    std::string labels = "table=\"";
    obs::AppendJsonEscaped(&labels, name);  // JSON escapes satisfy Prometheus
    labels += "\"";
    std::string out;
    metrics_->AppendPrometheus(&out, labels);
    io.ForEachField([&](const char* field, uint64_t value) {
      const std::string metric = "onion_io_" + std::string(field);
      out += "# TYPE " + metric + " counter\n";
      out += metric + "{" + labels + "} " + std::to_string(value) + "\n";
    });
    out += "# TYPE onion_pool_hit_ratio gauge\n";
    out += "onion_pool_hit_ratio{" + labels + "} ";
    obs::AppendJsonDouble(&out, hit_ratio);
    out += "\n# TYPE onion_filter_skip_ratio gauge\n";
    out += "onion_filter_skip_ratio{" + labels + "} ";
    obs::AppendJsonDouble(&out, skip_ratio);
    out += "\n";
    return out;
  }

  std::string out = "{\"table\":\"";
  obs::AppendJsonEscaped(&out, name);
  out += "\",";
  metrics_->AppendJsonMembers(&out);
  out += ",\"io\":{";
  bool first = true;
  io.ForEachField([&](const char* field, uint64_t value) {
    if (!first) out += ",";
    first = false;
    out += "\"" + std::string(field) + "\":" + std::to_string(value);
  });
  out += "},\"read\":{\"queries\":" + std::to_string(reads.queries) +
         ",\"ranges\":" + std::to_string(reads.ranges) +
         ",\"memtable_entries\":" + std::to_string(reads.memtable_entries) +
         "},\"derived\":{\"pool_hit_ratio\":";
  obs::AppendJsonDouble(&out, hit_ratio);
  out += ",\"filter_skip_ratio\":";
  obs::AppendJsonDouble(&out, skip_ratio);
  out += "}}";
  return out;
}

}  // namespace onion::storage
