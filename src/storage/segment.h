// Persistent sorted segments: the on-disk unit of the storage engine.
//
// A segment file holds one immutable sorted run of (key, payload, seq)
// entries, packed into pages, so the clustering-number arithmetic of the
// paper carries over unchanged — one key range of a decomposed query is
// one contiguous byte range of the file, and entering it costs one seek.
//
// Format version 3 (the version SegmentWriter emits; byte-level spec in
// docs/storage_format.md):
//
//   offset 0   header, 96 bytes: magic "OSFCSEG1", u32 version (3), page
//              geometry, key bounds, the page codec id
//              (storage/page_codec.h), filter geometry, and a checksum.
//   offset 96  pages, back to back: page i holds the entries
//              [i*entries_per_page, ...) encoded by the segment's codec —
//              now carrying each entry's packed seq (MVCC version stamp +
//              tombstone flag) — followed by a u32 CRC32C block checksum
//              over the encoded page bytes. Variable length, located
//              through the page index.
//   footer     three blocks, in order:
//                filter block  — split-block bloom filter over every key
//                                (storage/filter_block.h); may be absent.
//                zone maps     — per page, per dimension, the (lo, hi)
//                                cell-coordinate bounds of the page's
//                                entries; may be absent (written when the
//                                writer was given a curve).
//                page index    — per page: byte offset, encoded length,
//                                first key, last key. The fence index of
//                                format v1, now carrying offsets too.
//
// The filter block and zone maps are loaded into memory on open and
// answer MayContainKey / PageMayIntersect probes without page I/O: a
// negative bloom probe skips a whole run for a point lookup, a negative
// zone-map probe skips one page of a box query. Both are conservative —
// false never lies.
//
// Older formats open read-only through the same SegmentReader: version 2
// pages (same layout, no seqs, no page checksums) decode with seq 0;
// version 1 (fixed-size raw pages + fence block) loads its fences as a
// page index with computed offsets and decodes through the kRaw codec.
// Unknown versions are rejected with a clear Status. Compaction rewrites
// every segment it touches with the current writer, so old files upgrade
// to v3 on their next compaction. A v3 page whose CRC32C or encoding does
// not validate fails ReadPage with Status::Corruption.
//
// SegmentWriter streams sorted entries to a new file; SegmentReader opens
// and validates an existing file and serves pages through the PageSource
// interface with real positioned reads.

#ifndef ONION_STORAGE_SEGMENT_H_
#define ONION_STORAGE_SEGMENT_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/filter_block.h"
#include "storage/page_codec.h"
#include "storage/page_source.h"

namespace onion {
class SpaceFillingCurve;
}  // namespace onion

namespace onion::storage {

/// How a SegmentWriter encodes pages and filters.
struct SegmentWriterOptions {
  uint32_t entries_per_page = 256;
  PageCodec codec = PageCodec::kRaw;
  /// Bloom filter budget; 0 writes no filter block.
  uint32_t filter_bits_per_key = 10;
  /// When set, per-page zone maps (cell bounding boxes) are computed by
  /// mapping every key back through this curve; must outlive the writer.
  /// When null, no zone maps are written.
  const SpaceFillingCurve* curve = nullptr;
};

/// Streams a sorted run of entries into a new segment file. Usage:
/// construct, Add() entries in nondecreasing key order, Finish().
/// If Finish() is never reached (error or abandonment) the partial file is
/// removed by the destructor.
class SegmentWriter {
 public:
  /// Raw codec, default filter budget, no zone maps — the legacy
  /// convenience constructor.
  SegmentWriter(std::string path, uint32_t entries_per_page);
  SegmentWriter(std::string path, const SegmentWriterOptions& options);
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Appends one entry. Keys must be nondecreasing (checked). `seq` is the
  /// packed MVCC stamp (page_source.h PackSeq); 0 — the default — is the
  /// pre-versioning epoch.
  Status Add(Key key, uint64_t payload, uint64_t seq = 0);

  /// Flushes the last page, writes the footer blocks and header, fsyncs
  /// the file AND its directory, and closes the file. Only after Finish()
  /// returns OK may the segment be referenced by a MANIFEST — the sync
  /// ordering guarantees a crash can never leave a manifest pointing at a
  /// torn or unlinked segment. No further Add() calls are allowed.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  const std::string& path() const { return path_; }

 private:
  struct PageMeta {
    uint64_t offset = 0;
    uint64_t bytes = 0;
    Key first_key = 0;
    Key last_key = 0;
    std::array<Coord, kMaxDims> cell_lo = {};
    std::array<Coord, kMaxDims> cell_hi = {};
  };

  Status WritePage();  // encodes page_buf_ and records its metadata

  std::string path_;
  SegmentWriterOptions options_;
  std::FILE* file_ = nullptr;
  Status status_;  // first error encountered, sticky
  std::vector<Entry> page_buf_;
  std::vector<PageMeta> pages_;
  BloomFilterBuilder bloom_;
  uint64_t next_offset_ = 0;  // where the next page's bytes land
  uint64_t num_entries_ = 0;
  Key min_key_ = 0;
  Key max_key_ = 0;
  Key last_key_ = 0;
  bool finished_ = false;
};

/// Read side of a segment file (format v1 or v2). Validates the header and
/// footer blocks on open, keeps the page index, filter, and zone maps in
/// memory, and reads pages with positioned file I/O on demand. ReadPage()
/// is safe to call from multiple threads (the seek+read pair is serialized
/// internally); all other accessors touch immutable state only.
class SegmentReader final : public PageSource {
 public:
  static Result<std::unique_ptr<SegmentReader>> Open(std::string path);
  ~SegmentReader() override;

  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  uint64_t num_entries() const override { return num_entries_; }
  uint32_t entries_per_page() const override { return entries_per_page_; }
  Key first_key(uint64_t page) const override {
    return pages_[page].first_key;
  }
  Key last_key(uint64_t page) const override { return pages_[page].last_key; }
  /// Reads and decodes one page; Status::Corruption when the page's
  /// CRC32C (format v3) or its encoding does not validate.
  Status ReadPage(uint64_t page, std::vector<Entry>* out) const override;

  /// Batched read: one positioned vectored transfer (PreadvFull) scatters
  /// the whole contiguous run (segment pages are laid back-to-back)
  /// straight into per-page buffers WITHOUT the I/O lock — positioned
  /// reads never move the shared file offset — then per-page CRC + decode.
  /// Platforms without preadv fall back to one locked seek+fread. Per-page
  /// validation failures leave empty slots per the PageSource contract;
  /// only the transfer itself can fail.
  Status ReadPages(uint64_t first_page, uint64_t count,
                   std::vector<std::vector<Entry>>* out) const override;

  /// Encoded size of page `page` on disk — what ReadPage really transfers.
  uint64_t PageDiskBytes(uint64_t page) const override {
    ONION_CHECK_MSG(page < num_pages(), "page out of range");
    return pages_[page].bytes;
  }
  /// Bloom probe; always true for v1 segments (no filter block).
  bool MayContainKey(Key key) const override {
    return BloomMayContain(filter_.data(), filter_.size(), key);
  }
  /// Zone-map probe; always true for segments without zone maps or when
  /// the box dimensionality does not match.
  bool PageMayIntersect(uint64_t page, const Box& box) const override;

  /// Smallest / largest key stored (only meaningful when num_entries() > 0).
  Key min_key() const { return min_key_; }
  Key max_key() const { return max_key_; }
  const std::string& path() const { return path_; }
  /// On-disk format version this file was written with (1, 2, or 3).
  uint32_t format_version() const { return version_; }
  /// Codec its pages are encoded with (kRaw for v1 files).
  PageCodec codec() const { return codec_; }
  /// Bytes of the in-file bloom filter block (0 when absent).
  uint64_t filter_bytes() const { return filter_.size(); }
  /// Total bytes of the file as recorded by the header geometry.
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  struct PageMeta {
    uint64_t offset = 0;
    uint64_t bytes = 0;
    Key first_key = 0;
    Key last_key = 0;
  };

  SegmentReader(std::string path, std::FILE* file);
  /// Validates (v3 CRC32C) and decodes one page's encoded bytes, already
  /// in memory — the shared tail of ReadPage and ReadPages.
  Status DecodePageBytes(uint64_t page, const uint8_t* data, size_t size,
                         std::vector<Entry>* out) const;
  Status LoadV1(const uint8_t* header);
  /// Shared loader for the v2/v3 header layout (identical fields).
  Status LoadV2(const uint8_t* header, uint32_t version);

  std::string path_;
  // The stream position of file_ is the shared state io_mu_ serializes:
  // every post-construction use is ReadPage's seek+read pair under it.
  mutable std::FILE* file_;
  mutable Mutex io_mu_;
  uint32_t version_ = 1;
  PageCodec codec_ = PageCodec::kRaw;
  uint32_t entries_per_page_ = 1;
  uint64_t num_entries_ = 0;
  Key min_key_ = 0;
  Key max_key_ = 0;
  uint64_t file_bytes_ = 0;
  uint32_t zone_dims_ = 0;
  std::vector<PageMeta> pages_;
  std::vector<uint8_t> filter_;
  /// num_pages * zone_dims_ * 2 coords: page-major, per dimension (lo, hi).
  std::vector<Coord> zones_;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_SEGMENT_H_
