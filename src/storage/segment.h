// Persistent sorted segments: the on-disk unit of the storage engine.
//
// A segment file holds one immutable sorted run of (key, payload) entries,
// packed into fixed-size pages exactly like MemPageSource packs its vector,
// so the clustering-number arithmetic of the paper carries over unchanged —
// one key range of a decomposed query is one contiguous byte range of the
// file, and entering it costs one seek.
//
// File layout (all integers little-endian):
//
//   offset 0   header, 64 bytes:
//     [0]  magic "OSFCSEG1"
//     [8]  u32 format version (currently 1)
//     [12] u32 entries_per_page
//     [16] u64 num_entries
//     [24] u64 num_pages
//     [32] u64 min_key
//     [40] u64 max_key
//     [48] u64 fence_offset  (byte offset of the fence block)
//     [56] u64 header checksum (xor-fold of the fields above)
//   offset 64  pages: page i occupies entries_per_page * 16 bytes starting
//              at 64 + i * page_bytes; each entry is key(8) + payload(8);
//              the final page is zero-padded to full size.
//   fence_offset  fence block: num_pages records of (first_key, last_key),
//              16 bytes each — loaded into memory on open so that PageOf()
//              and scan termination never touch page data.
//
// SegmentWriter streams sorted entries to a new file; SegmentReader opens
// and validates an existing file and serves pages through the PageSource
// interface with real positioned reads.

#ifndef ONION_STORAGE_SEGMENT_H_
#define ONION_STORAGE_SEGMENT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/page_source.h"

namespace onion::storage {

/// Streams a sorted run of entries into a new segment file. Usage:
/// construct, Add() entries in nondecreasing key order, Finish().
/// If Finish() is never reached (error or abandonment) the partial file is
/// removed by the destructor.
class SegmentWriter {
 public:
  SegmentWriter(std::string path, uint32_t entries_per_page);
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Appends one entry. Keys must be nondecreasing (checked).
  Status Add(Key key, uint64_t payload);

  /// Flushes the last page, writes the fence block and header, fsyncs the
  /// file AND its directory, and closes the file. Only after Finish()
  /// returns OK may the segment be referenced by a MANIFEST — the sync
  /// ordering guarantees a crash can never leave a manifest pointing at a
  /// torn or unlinked segment. No further Add() calls are allowed.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  const std::string& path() const { return path_; }

 private:
  Status WritePage();  // writes page_buf_ (padded) and records its fences

  std::string path_;
  uint32_t entries_per_page_;
  std::FILE* file_ = nullptr;
  Status status_;  // first error encountered, sticky
  std::vector<Entry> page_buf_;
  std::vector<std::pair<Key, Key>> fences_;
  uint64_t num_entries_ = 0;
  Key min_key_ = 0;
  Key max_key_ = 0;
  Key last_key_ = 0;
  bool finished_ = false;
};

/// Read side of a segment file. Validates the header and fence block on
/// open, keeps the fences in memory, and reads pages with positioned file
/// I/O on demand. ReadPage() is safe to call from multiple threads (the
/// seek+read pair is serialized internally); all other accessors touch
/// immutable state only.
class SegmentReader final : public PageSource {
 public:
  static Result<std::unique_ptr<SegmentReader>> Open(std::string path);
  ~SegmentReader() override;

  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  uint64_t num_entries() const override { return num_entries_; }
  uint32_t entries_per_page() const override { return entries_per_page_; }
  Key first_key(uint64_t page) const override { return fences_[page].first; }
  Key last_key(uint64_t page) const override { return fences_[page].second; }
  void ReadPage(uint64_t page, std::vector<Entry>* out) const override;

  /// Smallest / largest key stored (only meaningful when num_entries() > 0).
  Key min_key() const { return min_key_; }
  Key max_key() const { return max_key_; }
  const std::string& path() const { return path_; }
  /// Total bytes of the file as recorded by the header geometry.
  uint64_t file_bytes() const;

 private:
  SegmentReader(std::string path, std::FILE* file);

  std::string path_;
  mutable std::FILE* file_;
  mutable std::mutex io_mu_;  // serializes the seek+read pair on file_
  uint32_t entries_per_page_ = 1;
  uint64_t num_entries_ = 0;
  Key min_key_ = 0;
  Key max_key_ = 0;
  std::vector<std::pair<Key, Key>> fences_;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_SEGMENT_H_
