// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// block checksum of segment format v3 pages, WAL format v2 records, and
// the SfcDb batch journal. A table-driven software implementation — no
// SSE4.2 dependency — whose output matches the widely deployed CRC32C
// (iSCSI / RocksDB / LevelDB unmasked) bitstream, so fixtures written by
// hand in tests validate the real on-disk rule.

#ifndef ONION_STORAGE_CRC32C_H_
#define ONION_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace onion::storage {

/// CRC of [data, data + n), starting from `crc` (pass 0 for a fresh sum;
/// feed a previous result to extend it over concatenated buffers).
uint32_t Crc32c(uint32_t crc, const uint8_t* data, size_t n);

inline uint32_t Crc32c(const uint8_t* data, size_t n) {
  return Crc32c(0, data, n);
}

}  // namespace onion::storage

#endif  // ONION_STORAGE_CRC32C_H_
