#include "storage/memtable.h"

#include <algorithm>

namespace onion::storage {

Status MemTable::FlushTo(SegmentWriter* writer) {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) { return a.key < b.key; });
  for (const Entry& entry : entries_) {
    const Status status = writer->Add(entry.key, entry.payload);
    if (!status.ok()) return status;
  }
  entries_.clear();
  return Status::OK();
}

}  // namespace onion::storage
