#include "storage/memtable.h"

#include <algorithm>
#include <utility>

namespace onion::storage {

namespace {

/// ceil(log2(ceil(span / kNumShards))): the shift that maps a key to its
/// shard. span 0 means the full 64-bit key space.
int ShardShiftFor(Key key_span) {
  const Key width = key_span == 0 ? (~Key{0} / MemTable::kNumShards) + 1
                                  : (key_span - 1) / MemTable::kNumShards + 1;
  int shift = 0;
  while (shift < 64 && (Key{1} << shift) < width) ++shift;
  return shift;
}

}  // namespace

MemTable::MemTable(Key key_span)
    : shard_shift_(ShardShiftFor(key_span)),
      shards_(std::make_unique<Shard[]>(kNumShards)) {}

MemTable::MemTable(MemTable&& other) noexcept
    : shard_shift_(other.shard_shift_),
      shards_(std::move(other.shards_)),
      size_(other.size_.load(std::memory_order_acquire)),
      max_sequence_(other.max_sequence_.load(std::memory_order_acquire)) {
  other.size_.store(0, std::memory_order_release);
  other.max_sequence_.store(0, std::memory_order_release);
}

MemTable& MemTable::operator=(MemTable&& other) noexcept {
  if (this != &other) {
    shard_shift_ = other.shard_shift_;
    shards_ = std::move(other.shards_);
    size_.store(other.size_.load(std::memory_order_acquire),
                std::memory_order_release);
    max_sequence_.store(other.max_sequence_.load(std::memory_order_acquire),
                        std::memory_order_release);
    other.size_.store(0, std::memory_order_release);
    other.max_sequence_.store(0, std::memory_order_release);
  }
  return *this;
}

void MemTable::Insert(Key key, uint64_t payload, uint64_t seq) {
  Shard& shard = shards_[ShardOf(key)];
  {
    const MutexLock lock(shard.mu);
    *shard.arena.Push() = Entry{key, payload, seq};
  }
  size_.fetch_add(1, std::memory_order_release);
  // CAS-max: concurrent inserters may race, the larger sequence wins.
  const uint64_t sequence = SequenceOf(seq);
  uint64_t seen = max_sequence_.load(std::memory_order_relaxed);
  while (sequence > seen &&
         !max_sequence_.compare_exchange_weak(seen, sequence,
                                              std::memory_order_release,
                                              std::memory_order_relaxed)) {
  }
}

void MemTable::Clear() {
  for (size_t s = 0; s < kNumShards; ++s) {
    const MutexLock lock(shards_[s].mu);
    shards_[s].arena.Clear();
  }
  size_.store(0, std::memory_order_release);
  max_sequence_.store(0, std::memory_order_release);
}

bool MemTable::ContainsSequence(uint64_t sequence) const {
  for (size_t s = 0; s < kNumShards; ++s) {
    const Shard& shard = shards_[s];
    const MutexLock lock(shard.mu);
    bool found = false;
    shard.arena.ForEach([&](const Entry& entry) {
      if (SequenceOf(entry.seq) == sequence) found = true;
    });
    if (found) return true;
  }
  return false;
}

Status MemTable::FlushTo(SegmentWriter* writer) const {
  // Concatenate the shards in key-range order (shard s holds strictly
  // smaller keys than shard s+1), then stable-sort: same-key entries all
  // live in one shard in insertion order, so stability carries sequence
  // order through to the segment.
  std::vector<Entry> sorted;
  sorted.reserve(size());
  for (size_t s = 0; s < kNumShards; ++s) {
    const Shard& shard = shards_[s];
    const MutexLock lock(shard.mu);
    shard.arena.ForEach([&](const Entry& entry) { sorted.push_back(entry); });
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry& a, const Entry& b) { return a.key < b.key; });
  for (const Entry& entry : sorted) {
    const Status status = writer->Add(entry.key, entry.payload, entry.seq);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace onion::storage
