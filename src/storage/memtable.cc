#include "storage/memtable.h"

#include <algorithm>

namespace onion::storage {

Status MemTable::FlushTo(SegmentWriter* writer) const {
  std::vector<Entry> sorted = entries_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry& a, const Entry& b) { return a.key < b.key; });
  for (const Entry& entry : sorted) {
    const Status status = writer->Add(entry.key, entry.payload, entry.seq);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace onion::storage
