// Split-block Bloom filter over the cell keys of one segment.
//
// The layout is the cache-friendly "split" design used by Parquet and
// modern LSM engines: the filter is an array of 256-bit blocks (eight u32
// words); a key hashes to ONE block and sets/tests eight bits inside it,
// one per word, so a probe touches a single cache line instead of k
// scattered ones. False-positive rate at the default 10 bits per key is
// ~1%; there are never false negatives.
//
// Segments build one filter over every key they contain (duplicates are
// harmless) and store the finished byte block in their format-v2 footer
// (see segment.h and docs/storage_format.md). `SegmentReader` keeps it in
// memory and answers `MayContainKey` probes without page I/O, which is
// what lets point lookups skip whole runs — `BufferPool::ProbeFilter`
// turns a negative probe into a skipped page fetch that never allocates a
// frame.

#ifndef ONION_STORAGE_FILTER_BLOCK_H_
#define ONION_STORAGE_FILTER_BLOCK_H_

#include <cstdint>
#include <vector>

#include "sfc/types.h"

namespace onion::storage {

/// Bytes per filter block (eight u32 words, one cache line on most
/// hardware). Finished filters are always a multiple of this size.
inline constexpr size_t kBloomBlockBytes = 32;

/// Accumulates keys, then emits the finished filter bytes. Sizing needs
/// the final key count, so keys are buffered as hashes until Finish().
class BloomFilterBuilder {
 public:
  /// `bits_per_key` sizes the filter; 0 disables it (Finish() returns an
  /// empty vector, which probes as "maybe present").
  explicit BloomFilterBuilder(uint32_t bits_per_key);

  void AddKey(Key key);

  /// The finished filter: empty when disabled or no keys were added,
  /// otherwise a multiple of kBloomBlockBytes.
  std::vector<uint8_t> Finish() const;

 private:
  uint32_t bits_per_key_;
  std::vector<uint64_t> hashes_;
};

/// Probes a finished filter. An empty filter (data == nullptr or
/// size == 0) always returns true — absence of a filter must never hide
/// data. Never returns false for a key that was added.
bool BloomMayContain(const uint8_t* data, size_t size, Key key);

}  // namespace onion::storage

#endif  // ONION_STORAGE_FILTER_BLOCK_H_
