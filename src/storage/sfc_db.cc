#include "storage/sfc_db.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "storage/fs_util.h"

namespace onion::storage {
namespace {

constexpr char kCatalogName[] = "CATALOG";
constexpr char kCatalogFormat[] = "onion-sfc-db";
constexpr int kCatalogVersion = 1;

Status ValidateDbOptions(const SfcDbOptions& options) {
  if (options.pool_pages < 1) {
    return Status::InvalidArgument("pool_pages must be positive");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  return Status::OK();
}

/// Table names double as directory names: letters, digits, '_', '-' only,
/// so they can never escape the database directory or collide with the
/// CATALOG file.
bool ValidTableName(const std::string& name) {
  if (name.empty() || name.size() > 255) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

SfcDb::SfcDb(std::string dir, const SfcDbOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      pool_(std::make_shared<BufferPool>(options.pool_pages)),
      workers_(std::make_unique<WorkerPool>(options.num_workers)) {}

SfcDb::~SfcDb() = default;

std::string SfcDb::TablePath(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string SfcDb::CatalogPath() const { return dir_ + "/" + kCatalogName; }

Status SfcDb::WriteCatalogLocked() const {
  std::string text;
  text += std::string(kCatalogFormat) + " " + std::to_string(kCatalogVersion) +
          "\n";
  for (const std::string& name : catalog_) text += "table " + name + "\n";
  const std::string tmp_path = CatalogPath() + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("cannot write catalog: " + tmp_path);
  }
  Status status;
  if (std::fwrite(text.data(), 1, text.size(), out) != text.size()) {
    status = Status::Internal("cannot write catalog: " + tmp_path);
  }
  if (status.ok()) status = SyncFile(out, tmp_path);
  std::fclose(out);
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, CatalogPath(), ec);
  if (ec) {
    return Status::Internal("cannot install catalog: " + ec.message());
  }
  return SyncDir(dir_);
}

Result<std::unique_ptr<SfcDb>> SfcDb::Open(const std::string& dir,
                                           const SfcDbOptions& options) {
  const Status valid = ValidateDbOptions(options);
  if (!valid.ok()) return valid;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create database directory " + dir + ": " +
                            ec.message());
  }
  std::unique_ptr<SfcDb> db(new SfcDb(dir, options));
  std::ifstream in(db->CatalogPath());
  if (in) {
    std::string format;
    int version = 0;
    in >> format >> version;
    if (!in || format != kCatalogFormat) {
      return Status::InvalidArgument("bad catalog format in " + dir);
    }
    if (version != kCatalogVersion) {
      return Status::InvalidArgument("unsupported catalog version " +
                                     std::to_string(version) + " in " + dir);
    }
    std::string field;
    while (in >> field) {
      if (field != "table") {
        return Status::InvalidArgument("unknown catalog field '" + field +
                                       "' in " + dir);
      }
      std::string name;
      in >> name;
      if (!ValidTableName(name)) {
        return Status::InvalidArgument("invalid table name '" + name +
                                       "' in catalog of " + dir);
      }
      db->catalog_.push_back(name);
    }
    std::sort(db->catalog_.begin(), db->catalog_.end());
    const auto dup =
        std::adjacent_find(db->catalog_.begin(), db->catalog_.end());
    if (dup != db->catalog_.end()) {
      return Status::InvalidArgument("duplicate table '" + *dup +
                                     "' in catalog of " + dir);
    }
  } else {
    const Status status = db->WriteCatalogLocked();  // empty catalog
    if (!status.ok()) return status;
  }
  // GC: a crash between "create table dir" and "catalog it" (or between
  // "uncatalog it" and "delete the dir") leaves an orphaned table
  // directory. The catalog is the source of truth, so any directory
  // holding a table MANIFEST but missing from the catalog is dead.
  // Collect first, delete after — removing entries mid-iteration is
  // unspecified — and keep the removal error separate so one stubborn
  // orphan cannot silently abort the sweep (survivors are retried on the
  // next Open anyway).
  std::vector<std::filesystem::path> orphans;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (std::binary_search(db->catalog_.begin(), db->catalog_.end(), name)) {
      continue;
    }
    if (std::filesystem::exists(entry.path() / "MANIFEST")) {
      orphans.push_back(entry.path());
    }
  }
  for (const auto& orphan : orphans) {
    std::error_code remove_ec;
    std::filesystem::remove_all(orphan, remove_ec);
  }
  return db;
}

Result<SfcTable*> SfcDb::CreateTable(const std::string& name,
                                     const std::string& curve_name,
                                     const Universe& universe) {
  return CreateTable(name, curve_name, universe, options_.table_options);
}

Result<SfcTable*> SfcDb::CreateTable(const std::string& name,
                                     const std::string& curve_name,
                                     const Universe& universe,
                                     const SfcTableOptions& options) {
  std::lock_guard<std::mutex> lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  if (!ValidTableName(name)) {
    return Status::InvalidArgument("invalid table name '" + name +
                                   "' (use letters, digits, '_', '-')");
  }
  if (std::binary_search(catalog_.begin(), catalog_.end(), name)) {
    return Status::InvalidArgument("table '" + name + "' already exists in " +
                                   dir_);
  }
  auto table = SfcTable::CreateWithShared(
      TablePath(name), curve_name, universe, options,
      SfcTable::SharedResources{pool_, workers_.get()});
  if (!table.ok()) return table.status();
  catalog_.insert(
      std::upper_bound(catalog_.begin(), catalog_.end(), name), name);
  const Status status = WriteCatalogLocked();
  if (!status.ok()) {
    // Roll back: uncatalog and remove the just-created directory (the
    // durable catalog still has the old list, so this directory is an
    // orphan either way).
    catalog_.erase(std::find(catalog_.begin(), catalog_.end(), name));
    table = Status::Internal("rollback");  // destroy the table object first
    std::error_code ec;
    std::filesystem::remove_all(TablePath(name), ec);
    return status;
  }
  SfcTable* raw = table.value().get();
  open_tables_[name] = std::move(table).value();
  return raw;
}

Result<SfcTable*> SfcDb::OpenTable(const std::string& name) {
  return OpenTable(name, options_.table_options);
}

Result<SfcTable*> SfcDb::OpenTable(const std::string& name,
                                   const SfcTableOptions& options) {
  std::lock_guard<std::mutex> lock(db_mu_);
  return OpenTableLocked(name, options);
}

Result<SfcTable*> SfcDb::OpenTableLocked(const std::string& name,
                                         const SfcTableOptions& options) {
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  const auto it = open_tables_.find(name);
  if (it != open_tables_.end()) return it->second.get();
  if (!std::binary_search(catalog_.begin(), catalog_.end(), name)) {
    return Status::NotFound("no table '" + name + "' in " + dir_);
  }
  auto table =
      SfcTable::OpenWithShared(TablePath(name), options,
                               SfcTable::SharedResources{pool_, workers_.get()});
  if (!table.ok()) return table.status();
  SfcTable* raw = table.value().get();
  open_tables_[name] = std::move(table).value();
  return raw;
}

SfcTable* SfcDb::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(db_mu_);
  const auto it = open_tables_.find(name);
  return it != open_tables_.end() ? it->second.get() : nullptr;
}

Status SfcDb::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  const auto catalog_it =
      std::lower_bound(catalog_.begin(), catalog_.end(), name);
  if (catalog_it == catalog_.end() || *catalog_it != name) {
    return Status::NotFound("no table '" + name + "' in " + dir_);
  }
  // Quiesce and destroy the open handle first so no background work (or
  // caller, per the handle-lifetime contract) touches files mid-delete.
  const auto open_it = open_tables_.find(name);
  if (open_it != open_tables_.end()) {
    open_it->second->Close();  // drop discards data; a close error is moot
    open_tables_.erase(open_it);
  }
  catalog_.erase(catalog_it);
  const Status status = WriteCatalogLocked();
  if (!status.ok()) {
    // Catalog unchanged on disk: re-catalog in memory; the table can be
    // reopened via OpenTable.
    catalog_.insert(std::upper_bound(catalog_.begin(), catalog_.end(), name),
                    name);
    return status;
  }
  std::error_code ec;
  std::filesystem::remove_all(TablePath(name), ec);
  if (ec) {
    return Status::Internal("table '" + name + "' uncataloged but its " +
                            "directory could not be removed: " + ec.message());
  }
  return Status::OK();
}

std::vector<std::string> SfcDb::ListTables() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return catalog_;
}

Status SfcDb::Close() {
  std::lock_guard<std::mutex> lock(db_mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  Status first;
  for (auto& [name, table] : open_tables_) {
    const Status status = table->Close();
    if (first.ok() && !status.ok()) first = status;
  }
  open_tables_.clear();  // destroy handles while workers_ is still alive
  workers_.reset();      // join the shared background threads
  return first;
}

}  // namespace onion::storage
