#include "storage/sfc_db.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>
#include <vector>

#include "sfc/registry.h"
#include "storage/codec.h"
#include "storage/crc32c.h"
#include "storage/fs_util.h"

namespace onion::storage {
namespace {

constexpr char kCatalogName[] = "CATALOG";
constexpr char kCatalogFormat[] = "onion-sfc-db";
/// Version 2 added `index` lines (secondary indexes); version-1 catalogs
/// (no indexes) still open and are upgraded by the next rewrite.
constexpr int kCatalogVersion = 2;
constexpr int kMinCatalogVersion = 1;

/// Infix separating a base table name from an index name in a hidden
/// index directory ("<table>__idx__<index>[__g<N>]"). User table and
/// index names must not contain it, so hidden directories can never
/// collide with cataloged tables.
constexpr char kHiddenIndexInfix[] = "__idx__";

/// Capacity of each index's observed-query-box ring (the AdviseCurve
/// workload sample).
constexpr size_t kObservedBoxRingCapacity = 128;

/// Ops per WriteOps call when backfilling an index from a base scan.
constexpr size_t kBackfillBatchOps = 1024;

// Batch journal (BATCHLOG) geometry; byte spec in docs/storage_format.md.
constexpr char kBatchLogName[] = "BATCHLOG";
constexpr char kBatchLogMagic[8] = {'O', 'S', 'F', 'C', 'D', 'B', 'W', '1'};
constexpr uint32_t kBatchLogVersion = 1;
constexpr uint64_t kBatchLogHeaderBytes = 16;
/// Sanity cap on one record's body, validated BEFORE committing (an
/// oversized record on disk reads as a torn tail, which must never
/// happen to an acknowledged commit).
constexpr uint32_t kMaxBatchRecordBytes = 64u << 20;
/// The journal is truncated (all records are known-applied once their
/// table WAL appends returned) whenever it grows past this between
/// commits, bounding its size without a background job.
constexpr uint64_t kBatchLogTruncateBytes = 1u << 20;

/// Encoded size of one per-table journal section: u16 name length, the
/// name, u64 first_sequence, u32 num_ops, the ops. The single source for
/// both the phase-1 size validation and the phase-2 encoder of
/// SfcDb::Write, so the two cannot drift.
uint64_t JournalSectionBytes(const std::string& name, size_t num_ops) {
  return 2 + name.size() + 12 + num_ops * kWalOpBytes;
}

Status ValidateDbOptions(const SfcDbOptions& options) {
  if (options.pool_pages < 1) {
    return Status::InvalidArgument("pool_pages must be positive");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  return Status::OK();
}

/// Table names double as directory names: letters, digits, '_', '-' only,
/// so they can never escape the database directory or collide with the
/// CATALOG file.
bool ValidTableName(const std::string& name) {
  if (name.empty() || name.size() > 255) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Hidden index directory names are composed of two validated names plus
/// fixed infixes, so they use the same character set but may exceed the
/// 255-char table-name cap.
bool ValidIndexDirName(const std::string& name) {
  if (name.empty() || name.size() > 600) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return name.find(kHiddenIndexInfix) != std::string::npos;
}

}  // namespace

SfcDb::SfcDb(std::string dir, const SfcDbOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      pool_(std::make_shared<BufferPool>(options.pool_pages,
                                         options.readahead_pages)),
      workers_(std::make_unique<WorkerPool>(options.num_workers)) {
  batch_commit_us_ = metrics_->histogram("db.batch_commit_us");
  workers_->SetMetrics(metrics_->histogram("workers.task_wait_us"),
                       metrics_->counter("workers.tasks_run"));
  index_queries_ = metrics_->counter("index.queries");
  index_dangling_ = metrics_->counter("index.dangling_entries");
  index_rows_resolved_ = metrics_->counter("index.rows_resolved");
}

SfcDb::~SfcDb() {
  if (batch_log_ != nullptr) std::fclose(batch_log_);
}

std::string SfcDb::TablePath(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string SfcDb::CatalogPath() const { return dir_ + "/" + kCatalogName; }

std::string SfcDb::BatchLogPath() const { return dir_ + "/" + kBatchLogName; }

Status SfcDb::ResetBatchLogLocked() {
  if (batch_log_ != nullptr) {
    std::fclose(batch_log_);
    batch_log_ = nullptr;
  }
  std::FILE* file = std::fopen(BatchLogPath().c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create batch journal: " + BatchLogPath());
  }
  uint8_t header[kBatchLogHeaderBytes] = {};
  std::memcpy(header, kBatchLogMagic, sizeof(kBatchLogMagic));
  PutU32(header + 8, kBatchLogVersion);
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header) ||
      std::fflush(file) != 0) {
    std::fclose(file);
    return Status::Internal("cannot write batch journal header: " +
                            BatchLogPath());
  }
  batch_log_ = file;
  batch_log_bytes_ = kBatchLogHeaderBytes;
  return Status::OK();
}

Status SfcDb::WriteCatalogLocked() const {
  std::string text;
  text += std::string(kCatalogFormat) + " " + std::to_string(kCatalogVersion) +
          "\n";
  for (const std::string& name : catalog_) text += "table " + name + "\n";
  for (const auto& [table, infos] : indexes_) {
    for (const IndexInfo& info : infos) {
      text += "index " + table + " " + info.spec.name + " " +
              info.spec.extractor + " " + info.spec.curve + " " + info.dir +
              "\n";
    }
  }
  const std::string tmp_path = CatalogPath() + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("cannot write catalog: " + tmp_path);
  }
  Status status;
  if (std::fwrite(text.data(), 1, text.size(), out) != text.size()) {
    status = Status::Internal("cannot write catalog: " + tmp_path);
  }
  if (status.ok()) status = SyncFile(out, tmp_path);
  std::fclose(out);
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, CatalogPath(), ec);
  if (ec) {
    return Status::Internal("cannot install catalog: " + ec.message());
  }
  return SyncDir(dir_);
}

Result<std::unique_ptr<SfcDb>> SfcDb::Open(const std::string& dir,
                                           const SfcDbOptions& options) {
  const Status valid = ValidateDbOptions(options);
  if (!valid.ok()) return valid;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create database directory " + dir + ": " +
                            ec.message());
  }
  std::unique_ptr<SfcDb> db(new SfcDb(dir, options));
  // catalog_/indexes_ are db_mu_-guarded even though the db is still
  // private to this thread; live_dirs snapshots the live directory set
  // for the lock-free GC sweep below.
  std::vector<std::string> live_dirs;
  {
    const MutexLock lock(db->db_mu_);
    std::ifstream in(db->CatalogPath());
    if (in) {
      std::string format;
      int version = 0;
      in >> format >> version;
      if (!in || format != kCatalogFormat) {
        return Status::InvalidArgument("bad catalog format in " + dir);
      }
      if (version < kMinCatalogVersion || version > kCatalogVersion) {
        return Status::InvalidArgument("unsupported catalog version " +
                                       std::to_string(version) + " in " + dir);
      }
      std::string field;
      while (in >> field) {
        if (field == "table") {
          std::string name;
          in >> name;
          if (!ValidTableName(name)) {
            return Status::InvalidArgument("invalid table name '" + name +
                                           "' in catalog of " + dir);
          }
          db->catalog_.push_back(name);
        } else if (field == "index" && version >= 2) {
          std::string table, index, extractor, curve, index_dir;
          if (!(in >> table >> index >> extractor >> curve >> index_dir)) {
            return Status::InvalidArgument("truncated index line in catalog of " +
                                           dir);
          }
          if (!ValidTableName(table) || !ValidTableName(index) ||
              !ValidIndexDirName(index_dir)) {
            return Status::InvalidArgument("invalid index line '" + table + " " +
                                           index + " " + index_dir +
                                           "' in catalog of " + dir);
          }
          IndexInfo info;
          info.spec.name = index;
          info.spec.extractor = extractor;
          info.spec.curve = curve;
          info.dir = index_dir;
          info.extractor = FindIndexExtractor(extractor);
          if (info.extractor == nullptr) {
            return Status::InvalidArgument("unknown index extractor '" +
                                           extractor + "' in catalog of " + dir);
          }
          db->indexes_[table].push_back(std::move(info));
        } else {
          return Status::InvalidArgument("unknown catalog field '" + field +
                                         "' in " + dir);
        }
      }
      std::sort(db->catalog_.begin(), db->catalog_.end());
      const auto dup =
          std::adjacent_find(db->catalog_.begin(), db->catalog_.end());
      if (dup != db->catalog_.end()) {
        return Status::InvalidArgument("duplicate table '" + *dup +
                                       "' in catalog of " + dir);
      }
      // Every index line must reference a cataloged table, and index names
      // must be unique per table.
      for (const auto& [table, infos] : db->indexes_) {
        if (!std::binary_search(db->catalog_.begin(), db->catalog_.end(),
                                table)) {
          return Status::InvalidArgument("index on uncataloged table '" + table +
                                         "' in catalog of " + dir);
        }
        for (size_t i = 0; i < infos.size(); ++i) {
          for (size_t j = i + 1; j < infos.size(); ++j) {
            if (infos[i].spec.name == infos[j].spec.name) {
              return Status::InvalidArgument("duplicate index '" +
                                             infos[i].spec.name + "' on table '" +
                                             table + "' in catalog of " + dir);
            }
          }
        }
      }
    } else {
      const Status status = db->WriteCatalogLocked();  // empty catalog
      if (!status.ok()) return status;
    }
    live_dirs = db->catalog_;
    for (const auto& [table, infos] : db->indexes_) {
      for (const IndexInfo& info : infos) live_dirs.push_back(info.dir);
    }
    std::sort(live_dirs.begin(), live_dirs.end());
  }
  // GC: a crash between "create table dir" and "catalog it" (or between
  // "uncatalog it" and "delete the dir") leaves an orphaned table
  // directory. The catalog is the source of truth, so any directory
  // holding a table MANIFEST but missing from the catalog is dead.
  // Collect first, delete after — removing entries mid-iteration is
  // unspecified — and keep the removal error separate so one stubborn
  // orphan cannot silently abort the sweep (survivors are retried on the
  // next Open anyway).
  // The live set is the cataloged tables PLUS every cataloged index's
  // hidden directory — so a crash mid-CreateIndex (directory built,
  // catalog not yet rewritten) or mid-migration (new generation built,
  // swap not yet durable) leaves a directory this sweep collects.
  const auto is_live_dir = [&live_dirs](const std::string& name) {
    return std::binary_search(live_dirs.begin(), live_dirs.end(), name);
  };
  std::vector<std::filesystem::path> orphans;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (is_live_dir(name)) continue;
    if (std::filesystem::exists(entry.path() / "MANIFEST")) {
      orphans.push_back(entry.path());
    }
  }
  for (const auto& orphan : orphans) {
    std::error_code remove_ec;
    std::filesystem::remove_all(orphan, remove_ec);
  }
  // Crash recovery for multi-table WriteBatches: re-apply any journaled
  // batch slice a table's own WAL did not durably receive before the
  // crash — this is what makes a batch atomic ACROSS tables.
  const Status replayed = db->ReplayBatchLog();
  if (!replayed.ok()) return replayed;
  return db;
}

Status SfcDb::ReplayBatchLog() {
  // Held for the whole replay: ResetBatchLogLocked (both the torn-header
  // path and the final truncation) writes the journal handle, and no
  // commit may interleave with recovery.
  const MutexLock batch_lock(batch_mu_);
  std::FILE* file = std::fopen(BatchLogPath().c_str(), "rb");
  if (file == nullptr) return Status::OK();  // no journal: nothing pending
  uint8_t header[kBatchLogHeaderBytes];
  if (std::fread(header, 1, sizeof(header), file) != sizeof(header) ||
      std::memcmp(header, kBatchLogMagic, sizeof(kBatchLogMagic)) != 0 ||
      GetU32(header + 8) != kBatchLogVersion) {
    // A torn header can only mean a crash during journal creation, before
    // any record existed — nothing to recover.
    std::fclose(file);
    return ResetBatchLogLocked();
  }
  std::vector<uint8_t> body;
  std::vector<SfcTable*> repaired;  // tables that received journal ops
  Status status;
  for (;;) {
    uint8_t frame[4];
    if (std::fread(frame, 1, 4, file) != 4) break;  // clean EOF / torn
    const uint32_t body_bytes = GetU32(frame);
    if (body_bytes < 4 || body_bytes > kMaxBatchRecordBytes) break;  // torn
    body.resize(body_bytes + 4);  // + trailing crc
    if (std::fread(body.data(), 1, body.size(), file) != body.size()) break;
    if (GetU32(body.data() + body_bytes) != Crc32c(body.data(), body_bytes)) {
      break;  // torn tail: this commit was never acknowledged
    }
    // The record is whole, so the commit may have been acknowledged and
    // partially applied — walk its per-table sections and re-apply every
    // slice the table does not already have (sequence comparison; each
    // slice is one atomic WAL record, so it is wholly present or wholly
    // absent).
    const uint8_t* p = body.data();
    const uint8_t* const end = body.data() + body_bytes;
    const uint32_t num_tables = GetU32(p);
    p += 4;
    for (uint32_t t = 0; t < num_tables && status.ok(); ++t) {
      if (end - p < 2) {
        status = Status::Corruption("batch journal section");
        break;
      }
      const uint16_t name_len = static_cast<uint16_t>(p[0] | p[1] << 8);
      p += 2;
      if (end - p < name_len + 12) {
        status = Status::Corruption("batch journal section");
        break;
      }
      const std::string name(reinterpret_cast<const char*>(p), name_len);
      p += name_len;
      const uint64_t first_seq = GetU64(p);
      p += 8;
      const uint32_t num_ops = GetU32(p);
      p += 4;
      if (num_ops > kMaxWalRecordOps ||
          end - p < static_cast<ptrdiff_t>(num_ops * kWalOpBytes)) {
        status = Status::Corruption("batch journal section");
        break;
      }
      std::vector<WalOp> ops(num_ops);
      for (uint32_t i = 0; i < num_ops; ++i) {
        ops[i] = DecodeWalOp(p);
        p += kWalOpBytes;
      }
      Result<SfcTable*> table = Status::Internal("unresolved");
      {
        const MutexLock lock(db_mu_);
        // OpenAny: journal sections may name hidden index directories
        // (index slices of an expanded batch).
        table = OpenAnyTableLocked(name, options_.table_options);
      }
      if (!table.ok()) {
        // A dropped table's (or dropped index's) slice is moot; any other
        // failure means we cannot prove the batch applied — refuse to
        // open the database half-recovered.
        if (table.status().code() == StatusCode::kNotFound) continue;
        status = table.status();
        break;
      }
      if (num_ops == 0) continue;
      // Idempotency: skip only when the slice PROVABLY survived — in
      // segments or the replayed memtable. (A bare last_sequence
      // comparison would be fooled by a power loss that tore this slice's
      // WAL record while a later record in a rotated WAL survived.)
      if (table.value()->RecoveredStateCoversSequence(first_seq + num_ops -
                                                      1)) {
        continue;
      }
      status = table.value()->ReplayCommittedOps(ops.data(), num_ops,
                                                 first_seq);
      if (status.ok()) repaired.push_back(table.value());
    }
    if (!status.ok()) break;
  }
  std::fclose(file);
  if (!status.ok()) return status;
  // Before the journal — the only copy that could repair these slices
  // again — is truncated, force the re-applied WAL records to stable
  // storage (an fflush alone would not survive a power loss right after
  // this Open).
  std::sort(repaired.begin(), repaired.end());
  repaired.erase(std::unique(repaired.begin(), repaired.end()),
                 repaired.end());
  for (SfcTable* table : repaired) {
    const Status synced = table->SyncWalForRecovery();
    if (!synced.ok()) return synced;
  }
  // Everything journaled is now durable in the tables' own WALs, so the
  // journal restarts empty.
  return ResetBatchLogLocked();
}

Result<SfcTable*> SfcDb::CreateTable(const std::string& name,
                                     const std::string& curve_name,
                                     const Universe& universe) {
  return CreateTable(name, curve_name, universe, options_.table_options);
}

Result<SfcTable*> SfcDb::CreateTable(const std::string& name,
                                     const std::string& curve_name,
                                     const Universe& universe,
                                     const SfcTableOptions& options) {
  const MutexLock lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  if (!ValidTableName(name)) {
    return Status::InvalidArgument("invalid table name '" + name +
                                   "' (use letters, digits, '_', '-')");
  }
  if (name.find(kHiddenIndexInfix) != std::string::npos) {
    return Status::InvalidArgument("invalid table name '" + name + "' ('" +
                                   kHiddenIndexInfix +
                                   "' is reserved for index directories)");
  }
  if (std::binary_search(catalog_.begin(), catalog_.end(), name)) {
    return Status::InvalidArgument("table '" + name + "' already exists in " +
                                   dir_);
  }
  auto table = SfcTable::CreateWithShared(
      TablePath(name), curve_name, universe, options,
      SfcTable::SharedResources{pool_, workers_.get(), trace_});
  if (!table.ok()) return table.status();
  catalog_.insert(
      std::upper_bound(catalog_.begin(), catalog_.end(), name), name);
  const Status status = WriteCatalogLocked();
  if (!status.ok()) {
    // Roll back: uncatalog and remove the just-created directory (the
    // durable catalog still has the old list, so this directory is an
    // orphan either way).
    catalog_.erase(std::find(catalog_.begin(), catalog_.end(), name));
    table = Status::Internal("rollback");  // destroy the table object first
    std::error_code ec;
    std::filesystem::remove_all(TablePath(name), ec);
    return status;
  }
  SfcTable* raw = table.value().get();
  open_tables_[name] = std::move(table).value();
  return raw;
}

Result<SfcTable*> SfcDb::OpenTable(const std::string& name) {
  return OpenTable(name, options_.table_options);
}

Result<SfcTable*> SfcDb::OpenTable(const std::string& name,
                                   const SfcTableOptions& options) {
  // Hidden index directories are never cataloged tables; refuse them here
  // so they can only be reached through IndexTable.
  if (name.find(kHiddenIndexInfix) != std::string::npos) {
    return Status::NotFound("no table '" + name + "' in " + dir_);
  }
  const MutexLock lock(db_mu_);
  return OpenTableLocked(name, options);
}

Result<SfcTable*> SfcDb::OpenTableLocked(const std::string& name,
                                         const SfcTableOptions& options) {
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  const auto it = open_tables_.find(name);
  if (it != open_tables_.end()) return it->second.get();
  if (!std::binary_search(catalog_.begin(), catalog_.end(), name)) {
    return Status::NotFound("no table '" + name + "' in " + dir_);
  }
  auto table = SfcTable::OpenWithShared(
      TablePath(name), options,
      SfcTable::SharedResources{pool_, workers_.get(), trace_});
  if (!table.ok()) return table.status();
  SfcTable* raw = table.value().get();
  open_tables_[name] = std::move(table).value();
  // Open the table's index tables eagerly: a DbSnapshot taken from now on
  // must pin them alongside the base (NewIndexCursor's consistency), and
  // Write's index expansion needs their curves anyway.
  const auto idx_it = indexes_.find(name);
  if (idx_it != indexes_.end()) {
    for (const IndexInfo& info : idx_it->second) {
      auto index_table = OpenAnyTableLocked(info.dir, options_.table_options);
      if (!index_table.ok()) return index_table.status();
    }
  }
  return raw;
}

Result<SfcTable*> SfcDb::OpenAnyTableLocked(const std::string& name,
                                            const SfcTableOptions& options) {
  const auto it = open_tables_.find(name);
  if (it != open_tables_.end()) return it->second.get();
  if (std::binary_search(catalog_.begin(), catalog_.end(), name)) {
    return OpenTableLocked(name, options);
  }
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  bool is_index_dir = false;
  for (const auto& [table, infos] : indexes_) {
    for (const IndexInfo& info : infos) {
      if (info.dir == name) is_index_dir = true;
    }
  }
  if (!is_index_dir) {
    return Status::NotFound("no table '" + name + "' in " + dir_);
  }
  auto table = SfcTable::OpenWithShared(
      TablePath(name), options,
      SfcTable::SharedResources{pool_, workers_.get(), trace_});
  if (!table.ok()) return table.status();
  SfcTable* raw = table.value().get();
  open_tables_[name] = std::move(table).value();
  return raw;
}

SfcDb::IndexInfo* SfcDb::FindIndexLocked(const std::string& table,
                                         const std::string& index) {
  const auto it = indexes_.find(table);
  if (it == indexes_.end()) return nullptr;
  for (IndexInfo& info : it->second) {
    if (info.spec.name == index) return &info;
  }
  return nullptr;
}

Status SfcDb::Write(WriteBatch&& batch) {
  if (batch.empty()) return Status::OK();
  // Commit latency end to end: validation, the journal append, every
  // per-table WAL record, and (under wal_fsync) the fsyncs. Failed
  // commits are recorded too — their latency is just as real.
  const obs::ScopedTimer commit_timer(batch_commit_us_);
  const uint64_t num_ops = batch.ops().size();
  uint64_t journal_bytes = 0;
  // Phase 1 — resolve and validate under db_mu_, before anything is
  // logged: group the ops per table (preserving each table's op order),
  // open tables on demand, map cells to curve keys. Any error here
  // applies nothing. Dropping an involved table concurrently with this
  // Write is caller error, exactly like using any dropped handle.
  std::vector<TableSlice> slices;
  {
    const MutexLock lock(db_mu_);
    if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
    const auto slice_for = [&slices](SfcTable* table,
                                     const std::string& name) -> TableSlice* {
      for (TableSlice& candidate : slices) {
        if (candidate.table == table) return &candidate;
      }
      slices.push_back(TableSlice{});
      slices.back().table = table;
      slices.back().name = name;
      return &slices.back();
    };
    for (const WriteBatch::Op& op : batch.ops()) {
      auto table = OpenTableLocked(op.table, options_.table_options);
      if (!table.ok()) return table.status();
      if (!table.value()->curve().universe().Contains(op.cell)) {
        return Status::OutOfRange("cell outside universe of table '" +
                                  op.table + "': " + op.cell.ToString());
      }
      const Key base_key = table.value()->curve().IndexOf(op.cell);
      slice_for(table.value(), op.table)
          ->ops.push_back(
              WalOp{base_key, op.tombstone ? 0 : op.payload, op.tombstone});
      // Index expansion: one index op per secondary index of the table —
      // a Put adds the index entry (index key -> base key), a Delete
      // tombstones the index cell (sound because extractors are
      // injective: that cell holds exactly the base cell's entries). The
      // expanded ops ride the SAME batch, so the BATCHLOG journal makes
      // base and index atomic under any crash.
      const auto idx_it = indexes_.find(op.table);
      if (idx_it == indexes_.end()) continue;
      const Universe& base_universe = table.value()->curve().universe();
      for (const IndexInfo& info : idx_it->second) {
        auto index_table = OpenAnyTableLocked(info.dir, options_.table_options);
        if (!index_table.ok()) return index_table.status();
        const Cell index_cell = info.extractor->map(op.cell, base_universe);
        const SpaceFillingCurve& index_curve = index_table.value()->curve();
        if (!index_curve.universe().Contains(index_cell)) {
          return Status::Internal("extractor '" + info.spec.extractor +
                                  "' mapped " + op.cell.ToString() +
                                  " outside the universe of index '" +
                                  info.spec.name + "'");
        }
        slice_for(index_table.value(), info.dir)
            ->ops.push_back(WalOp{index_curve.IndexOf(index_cell),
                                  op.tombstone ? 0 : base_key, op.tombstone});
      }
    }
    // Size limits are validated here, where an error still applies
    // NOTHING: a slice must fit one WAL record, and the whole journal
    // record must stay under the replay-side sanity cap (an oversized
    // record on disk would read back as a torn tail).
    uint64_t body_bytes = 4;
    for (const TableSlice& slice : slices) {
      if (slice.ops.size() > kMaxWalRecordOps) {
        return Status::InvalidArgument(
            "WriteBatch has too many ops for table '" + slice.name + "' (" +
            std::to_string(slice.ops.size()) + " > " +
            std::to_string(kMaxWalRecordOps) + ")");
      }
      body_bytes += JournalSectionBytes(slice.name, slice.ops.size());
    }
    if (slices.size() > 1 && body_bytes > kMaxBatchRecordBytes) {
      return Status::InvalidArgument(
          "WriteBatch journal record would exceed " +
          std::to_string(kMaxBatchRecordBytes) + " bytes");
    }
  }
  // Phase 2 — commit under batch_mu_ (serializes multi-table commits and
  // excludes GetSnapshot) with every involved table's writer lock held in
  // a canonical order, so per-table sequence order equals WAL append
  // order — the invariant the journal's idempotent replay stands on.
  std::sort(slices.begin(), slices.end(),
            [](const TableSlice& a, const TableSlice& b) {
              return a.table < b.table;
            });
  bool want_fsync = false;
  for (const TableSlice& slice : slices) {
    want_fsync = want_fsync || slice.table->options_.wal_fsync;
  }
  const MutexLock batch_lock(batch_mu_);
  const Status status =
      CommitSlicesLocked(&slices, want_fsync, &journal_bytes);
  if (!status.ok()) return status;
  // Power-loss durability on request: CommitSlicesLocked already
  // fsynced the journal record (before any table append); finish with
  // each table's WAL via group commit, outside the writer locks.
  if (want_fsync) {
    for (const TableSlice& slice : slices) {
      const Status synced = slice.wal->SyncUpTo(slice.record);
      if (!synced.ok()) return synced;
    }
  }
  trace_->Add(obs::TraceEvent{
      trace_->NextId(), obs::TraceKind::kBatchCommit,
      slices.size() > 1 ? "multi" : slices.front().name,
      commit_timer.start_us(), obs::NowMicros() - commit_timer.start_us(),
      journal_bytes, num_ops});
  return Status::OK();
}

Status SfcDb::CommitSlicesLocked(std::vector<TableSlice>* slices,
                                 bool want_fsync, uint64_t* journal_bytes) {
  // Lock tracking is opted out here (the declaration carries
  // ONION_NO_THREAD_SAFETY_ANALYSIS): the involved tables' writer locks
  // form a DYNAMIC set — one LockWal per slice, in the caller's
  // sorted-pointer order — which the static analysis cannot express.
  // batch_mu_ is still enforced at every call site via ONION_REQUIRES.
  if (slices->size() > 1 && batch_log_poisoned_) {
    // A journal append failed while an earlier record was still
    // un-applied: the torn tail blocks new records from ever being
    // replayable, and truncating would lose the un-applied one. Only a
    // reopen (which replays and resets the journal) can recover.
    return Status::Internal(
        "batch journal needs recovery (reopen the database): " +
        BatchLogPath());
  }
  for (TableSlice& slice : *slices) slice.table->LockWal();
  Status status;
  for (TableSlice& slice : *slices) {
    status = slice.table->PrecheckWritableWalLocked();
    if (!status.ok()) break;
  }
  if (status.ok()) {
    for (TableSlice& slice : *slices) {
      slice.first_seq =
          slice.table->ReserveSequencesWalLocked(slice.ops.size());
    }
    // The journal record is the cross-table commit point: written (and
    // OS-flushed) BEFORE any table sees the batch, so a crash between the
    // per-table applies is repaired by replay. A single-table batch needs
    // no journal — its one WAL record is already atomic.
    if (slices->size() > 1) {
      std::vector<uint8_t> body;
      body.resize(4);
      PutU32(body.data(), static_cast<uint32_t>(slices->size()));
      for (const TableSlice& slice : *slices) {
        const size_t at = body.size();
        body.resize(at + JournalSectionBytes(slice.name, slice.ops.size()));
        uint8_t* p = body.data() + at;
        p[0] = static_cast<uint8_t>(slice.name.size() & 0xFF);
        p[1] = static_cast<uint8_t>(slice.name.size() >> 8);
        p += 2;
        std::memcpy(p, slice.name.data(), slice.name.size());
        p += slice.name.size();
        PutU64(p, slice.first_seq);
        p += 8;
        PutU32(p, static_cast<uint32_t>(slice.ops.size()));
        p += 4;
        for (const WalOp& op : slice.ops) {
          EncodeWalOp(op, p);
          p += kWalOpBytes;
        }
      }
      // Bound the journal: every record already on disk is known-applied
      // (its table WAL appends returned before its commit was
      // acknowledged), so truncating between commits loses nothing —
      // UNLESS a mid-batch apply failure left a journaled record
      // un-applied, in which case that record is the only repair copy
      // and truncation must wait for the next Open's replay.
      if (batch_log_ != nullptr && !batch_log_needs_replay_ &&
          batch_log_bytes_ > kBatchLogTruncateBytes) {
        status = ResetBatchLogLocked();
      }
      if (status.ok() && batch_log_ == nullptr) {
        status = ResetBatchLogLocked();
      }
      if (status.ok()) {
        uint8_t frame[4];
        PutU32(frame, static_cast<uint32_t>(body.size()));
        uint8_t crc[4];
        PutU32(crc, Crc32c(body.data(), body.size()));
        if (std::fwrite(frame, 1, 4, batch_log_) != 4 ||
            std::fwrite(body.data(), 1, body.size(), batch_log_) !=
                body.size() ||
            std::fwrite(crc, 1, 4, batch_log_) != 4 ||
            std::fflush(batch_log_) != 0) {
          status = Status::Internal("batch journal append failed: " +
                                    BatchLogPath());
          // The failed write may have left a torn record at the tail; a
          // later acknowledged commit appended after it would be
          // unreachable at recovery (replay stops at the first torn
          // record). With every earlier record known-applied, dropping
          // the handle is enough — the next commit re-creates the
          // journal, truncating the torn tail. With an un-applied record
          // present the journal must be preserved: poison multi-table
          // commits until a reopen replays it.
          if (batch_log_needs_replay_) {
            batch_log_poisoned_ = true;
          } else {
            std::fclose(batch_log_);
            batch_log_ = nullptr;
          }
        } else {
          batch_log_bytes_ += 8 + body.size();
          *journal_bytes = 8 + body.size();
          // The cross-table commit point must not be able to reach disk
          // AFTER a table slice it repairs: under wal_fsync (power-loss
          // durability) sync the journal record BEFORE any table WAL
          // append — a concurrent committer's group fsync could
          // otherwise persist a slice first.
          if (want_fsync) status = SyncFile(batch_log_, BatchLogPath());
        }
      }
    }
  }
  if (status.ok()) {
    for (TableSlice& slice : *slices) {
      status = slice.table->ApplyOpsWalLocked(slice.ops.data(),
                                              slice.ops.size(),
                                              slice.first_seq, &slice.wal,
                                              &slice.record);
      // On a mid-batch failure the journal record (multi-table case)
      // repairs the already-applied slices' counterparts on the next
      // Open; the commit itself is reported failed. Until that replay,
      // the record must survive every truncation path.
      if (!status.ok()) {
        if (slices->size() > 1) batch_log_needs_replay_ = true;
        break;
      }
    }
  }
  for (auto it = slices->rbegin(); it != slices->rend(); ++it) {
    it->table->UnlockWal();
  }
  return status;
}

Result<std::shared_ptr<const DbSnapshot>> SfcDb::GetSnapshot() {
  // batch_mu_ first: no WriteBatch can commit between two tables' pins,
  // so the per-table sequences agree on every batch (all or nothing).
  const MutexLock batch_lock(batch_mu_);
  const MutexLock lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  auto snapshot = std::make_shared<DbSnapshot>();
  for (auto& [name, table] : open_tables_) {
    snapshot->pins_[table.get()] = table->GetSnapshot();
  }
  return std::shared_ptr<const DbSnapshot>(std::move(snapshot));
}

SfcTable* SfcDb::GetTable(const std::string& name) const {
  if (name.find(kHiddenIndexInfix) != std::string::npos) return nullptr;
  const MutexLock lock(db_mu_);
  const auto it = open_tables_.find(name);
  return it != open_tables_.end() ? it->second.get() : nullptr;
}

Status SfcDb::DropTable(const std::string& name) {
  // batch_mu_ first (global order): no Write may be expanding ops against
  // this table's indexes while they are being destroyed.
  const MutexLock batch_lock(batch_mu_);
  const MutexLock lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  const auto catalog_it =
      std::lower_bound(catalog_.begin(), catalog_.end(), name);
  if (catalog_it == catalog_.end() || *catalog_it != name) {
    return Status::NotFound("no table '" + name + "' in " + dir_);
  }
  // Quiesce and destroy the open handle first so no background work (or
  // caller, per the handle-lifetime contract) touches files mid-delete.
  const auto open_it = open_tables_.find(name);
  if (open_it != open_tables_.end()) {
    // Drop discards data anyway; a close error is moot.
    (void)open_it->second->Close();
    open_tables_.erase(open_it);
  }
  // The table's secondary indexes die with it: uncatalog them in the same
  // atomic rewrite, delete their hidden directories after.
  std::vector<IndexInfo> dropped_indexes;
  const auto idx_it = indexes_.find(name);
  if (idx_it != indexes_.end()) {
    dropped_indexes = std::move(idx_it->second);
    indexes_.erase(idx_it);
  }
  catalog_.erase(catalog_it);
  const Status status = WriteCatalogLocked();
  if (!status.ok()) {
    // Catalog unchanged on disk: re-catalog in memory; the table can be
    // reopened via OpenTable.
    catalog_.insert(std::upper_bound(catalog_.begin(), catalog_.end(), name),
                    name);
    if (!dropped_indexes.empty()) indexes_[name] = std::move(dropped_indexes);
    return status;
  }
  std::error_code ec;
  for (const IndexInfo& info : dropped_indexes) {
    const auto open_index_it = open_tables_.find(info.dir);
    if (open_index_it != open_tables_.end()) {
      // The index dies with its table; a close error is moot.
      (void)open_index_it->second->Close();
      open_tables_.erase(open_index_it);
    }
    std::filesystem::remove_all(TablePath(info.dir), ec);
  }
  std::filesystem::remove_all(TablePath(name), ec);
  if (ec) {
    return Status::Internal("table '" + name + "' uncataloged but its " +
                            "directory could not be removed: " + ec.message());
  }
  return Status::OK();
}

std::vector<std::string> SfcDb::ListTables() const {
  const MutexLock lock(db_mu_);
  return catalog_;
}

Result<std::unique_ptr<SfcTable>> SfcDb::BuildIndexTableLocked(
    SfcTable* base, const IndexExtractor& extractor,
    const std::string& curve_name, const std::string& dir_name) {
  const Universe base_universe = base->curve().universe();
  const Universe index_universe = extractor.index_universe(base_universe);
  auto table = SfcTable::CreateWithShared(
      TablePath(dir_name), curve_name, index_universe, options_.table_options,
      SfcTable::SharedResources{pool_, workers_.get(), trace_});
  if (!table.ok()) return table.status();
  // Backfill: one index entry per live base row, batched through the
  // hidden table's own single-table (WAL-atomic) write path. batch_mu_ is
  // held, so the base cannot move underneath the scan; a crash anywhere
  // in here leaves an uncataloged directory the next Open() collects.
  Status status;
  {
    const auto cursor = base->NewScanCursor();
    const SpaceFillingCurve& index_curve = table.value()->curve();
    std::vector<WalOp> ops;
    ops.reserve(kBackfillBatchOps);
    for (; cursor->Valid(); cursor->Next()) {
      const SpatialEntry& row = cursor->entry();
      const Cell index_cell = extractor.map(row.cell, base_universe);
      if (!index_universe.Contains(index_cell)) {
        status = Status::Internal(
            "extractor '" + std::string(extractor.name) + "' mapped " +
            row.cell.ToString() + " outside the index universe");
        break;
      }
      ops.push_back(WalOp{index_curve.IndexOf(index_cell),
                          base->curve().IndexOf(row.cell), false});
      if (ops.size() >= kBackfillBatchOps) {
        status = table.value()->WriteOps(ops.data(), ops.size());
        ops.clear();
        if (!status.ok()) break;
      }
    }
    if (status.ok()) status = cursor->status();
    if (status.ok() && !ops.empty()) {
      status = table.value()->WriteOps(ops.data(), ops.size());
    }
  }
  if (!status.ok()) {
    table = Status::Internal("rollback");  // destroy the handle first
    std::error_code ec;
    std::filesystem::remove_all(TablePath(dir_name), ec);
    return status;
  }
  return table;
}

Status SfcDb::CreateIndex(const std::string& table,
                          const SecondaryIndexSpec& spec) {
  // batch_mu_ first: the backfill must see a base no Write can move, and
  // the catalog flip must not interleave with an expanding commit.
  const MutexLock batch_lock(batch_mu_);
  const MutexLock lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  if (!ValidTableName(spec.name) ||
      spec.name.find(kHiddenIndexInfix) != std::string::npos) {
    return Status::InvalidArgument("invalid index name '" + spec.name +
                                   "' (use letters, digits, '_', '-')");
  }
  if (!ValidTableName(spec.curve)) {
    return Status::InvalidArgument("invalid curve name '" + spec.curve + "'");
  }
  if (!std::binary_search(catalog_.begin(), catalog_.end(), table)) {
    return Status::NotFound("no table '" + table + "' in " + dir_);
  }
  if (FindIndexLocked(table, spec.name) != nullptr) {
    return Status::InvalidArgument("index '" + spec.name +
                                   "' already exists on table '" + table +
                                   "'");
  }
  const IndexExtractor* extractor = FindIndexExtractor(spec.extractor);
  if (extractor == nullptr) {
    std::string known;
    for (const std::string& name : KnownIndexExtractorNames()) {
      known += (known.empty() ? "" : ", ") + name;
    }
    return Status::InvalidArgument("unknown index extractor '" +
                                   spec.extractor + "' (known: " + known +
                                   ")");
  }
  auto base = OpenTableLocked(table, options_.table_options);
  if (!base.ok()) return base.status();
  if (base.value()->curve().universe().dims() < extractor->min_dims) {
    return Status::InvalidArgument(
        "extractor '" + spec.extractor + "' needs at least " +
        std::to_string(extractor->min_dims) + " dimensions; table '" + table +
        "' has " + std::to_string(base.value()->curve().universe().dims()));
  }
  // Probe the curve now so an unknown name (or a curve/universe mismatch,
  // e.g. zorder over a non-power-of-two side) is InvalidArgument before
  // anything touches disk.
  if (auto probe = MakeCurve(spec.curve,
                             extractor->index_universe(
                                 base.value()->curve().universe()));
      !probe.ok()) {
    return Status::InvalidArgument("curve '" + spec.curve +
                                   "' is not usable for index '" + spec.name +
                                   "': " + probe.status().message());
  }
  const std::string dir_name = table + kHiddenIndexInfix + spec.name;
  auto built =
      BuildIndexTableLocked(base.value(), *extractor, spec.curve, dir_name);
  if (!built.ok()) return built.status();
  IndexInfo info;
  info.spec = spec;
  info.dir = dir_name;
  info.extractor = extractor;
  indexes_[table].push_back(std::move(info));
  const Status status = WriteCatalogLocked();
  if (!status.ok()) {
    indexes_[table].pop_back();
    if (indexes_[table].empty()) indexes_.erase(table);
    built = Status::Internal("rollback");  // destroy the handle first
    std::error_code ec;
    std::filesystem::remove_all(TablePath(dir_name), ec);
    return status;
  }
  open_tables_[dir_name] = std::move(built).value();
  return Status::OK();
}

Status SfcDb::DropIndex(const std::string& table, const std::string& index) {
  const MutexLock batch_lock(batch_mu_);
  const MutexLock lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  const auto it = indexes_.find(table);
  if (it == indexes_.end()) {
    return Status::NotFound("no index '" + index + "' on table '" + table +
                            "' in " + dir_);
  }
  const auto pos = std::find_if(
      it->second.begin(), it->second.end(),
      [&index](const IndexInfo& info) { return info.spec.name == index; });
  if (pos == it->second.end()) {
    return Status::NotFound("no index '" + index + "' on table '" + table +
                            "' in " + dir_);
  }
  const size_t at = static_cast<size_t>(pos - it->second.begin());
  IndexInfo removed = std::move(*pos);
  it->second.erase(pos);
  const bool was_last = it->second.empty();
  if (was_last) indexes_.erase(it);
  const Status status = WriteCatalogLocked();
  if (!status.ok()) {
    auto& infos = indexes_[table];  // re-creates the entry if was_last
    infos.insert(infos.begin() + static_cast<ptrdiff_t>(at),
                 std::move(removed));
    return status;
  }
  const auto open_it = open_tables_.find(removed.dir);
  if (open_it != open_tables_.end()) {
    // Drop discards data anyway; a close error is moot.
    (void)open_it->second->Close();
    open_tables_.erase(open_it);
  }
  std::error_code ec;
  std::filesystem::remove_all(TablePath(removed.dir), ec);
  if (ec) {
    return Status::Internal("index '" + index + "' uncataloged but its " +
                            "directory could not be removed: " + ec.message());
  }
  return Status::OK();
}

std::vector<SecondaryIndexSpec> SfcDb::ListIndexes(
    const std::string& table) const {
  const MutexLock lock(db_mu_);
  std::vector<SecondaryIndexSpec> specs;
  const auto it = indexes_.find(table);
  if (it == indexes_.end()) return specs;
  for (const IndexInfo& info : it->second) specs.push_back(info.spec);
  return specs;
}

Result<SfcTable*> SfcDb::IndexTable(const std::string& table,
                                    const std::string& index) {
  const MutexLock lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  IndexInfo* info = FindIndexLocked(table, index);
  if (info == nullptr) {
    return Status::NotFound("no index '" + index + "' on table '" + table +
                            "' in " + dir_);
  }
  return OpenAnyTableLocked(info->dir, options_.table_options);
}

std::unique_ptr<Cursor> SfcDb::NewIndexCursor(const std::string& table,
                                              const std::string& index,
                                              const Box& box,
                                              const IndexReadOptions& options) {
  SfcTable* base = nullptr;
  SfcTable* index_table = nullptr;
  {
    const MutexLock lock(db_mu_);
    if (closed_) {
      return NewErrorCursor(
          Status::InvalidArgument("database is closed: " + dir_));
    }
    IndexInfo* info = FindIndexLocked(table, index);
    if (info == nullptr) {
      return NewErrorCursor(Status::NotFound("no index '" + index +
                                             "' on table '" + table +
                                             "' in " + dir_));
    }
    auto base_result = OpenTableLocked(table, options_.table_options);
    if (!base_result.ok()) return NewErrorCursor(base_result.status());
    auto index_result = OpenAnyTableLocked(info->dir, options_.table_options);
    if (!index_result.ok()) return NewErrorCursor(index_result.status());
    base = base_result.value();
    index_table = index_result.value();
    // Record the served box into the index's observed-workload ring (the
    // AdviseCurve default input). Invalid boxes are not a workload.
    if (index_table->curve().universe().Contains(box)) {
      if (info->observed_boxes.size() < kObservedBoxRingCapacity) {
        info->observed_boxes.push_back(box);
      } else {
        info->observed_boxes[info->observed_next] = box;
        info->observed_next =
            (info->observed_next + 1) % kObservedBoxRingCapacity;
      }
    }
  }
  index_queries_->Increment();
  // One consistent cross-table pin for the index scan AND the base
  // resolution — the caller's, or a fresh one the cursor keeps alive.
  std::shared_ptr<const DbSnapshot> pin = options.snapshot;
  if (pin == nullptr) {
    auto snapshot = GetSnapshot();
    if (!snapshot.ok()) return NewErrorCursor(snapshot.status());
    pin = std::move(snapshot).value();
  }
  ReadOptions index_read;
  index_read.max_pages = options.max_pages;
  index_read.max_bytes = options.max_bytes;
  index_read.snapshot = pin->ForTable(index_table);
  auto inner = index_table->NewBoxCursor(box, index_read);
  return NewIndexResolveCursor(std::move(inner), base, pin->ForTable(base),
                               pin, options.limit, index_dangling_,
                               index_rows_resolved_);
}

Result<CurveAdvice> SfcDb::AdviseCurve(const std::string& table,
                                       const std::string& index,
                                       const std::vector<Box>& boxes,
                                       const DiskModel& model) {
  std::vector<Box> workload = boxes;
  std::optional<Universe> universe;
  {
    const MutexLock lock(db_mu_);
    if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
    IndexInfo* info = FindIndexLocked(table, index);
    if (info == nullptr) {
      return Status::NotFound("no index '" + index + "' on table '" + table +
                              "' in " + dir_);
    }
    auto index_table = OpenAnyTableLocked(info->dir, options_.table_options);
    if (!index_table.ok()) return index_table.status();
    universe = index_table.value()->curve().universe();
    if (workload.empty()) workload = info->observed_boxes;
  }
  if (workload.empty()) {
    return Status::InvalidArgument(
        "no observed query boxes for index '" + index + "' on table '" +
        table + "' — pass boxes explicitly or run NewIndexCursor queries "
        "first");
  }
  // The exact clustering evaluation is CPU-heavy (O(n) per candidate
  // curve); it runs on copies, outside every database lock.
  return ::onion::AdviseCurve(*universe, workload, model);
}

Status SfcDb::MigrateIndexCurve(const std::string& table,
                                const std::string& index,
                                const std::string& new_curve) {
  // Offline rebuild: hold batch_mu_ so no Write lands between the
  // backfill scan and the catalog swap (the new generation would miss
  // it).
  const MutexLock batch_lock(batch_mu_);
  const MutexLock lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  if (!ValidTableName(new_curve)) {
    return Status::InvalidArgument("invalid curve name '" + new_curve + "'");
  }
  IndexInfo* info = FindIndexLocked(table, index);
  if (info == nullptr) {
    return Status::NotFound("no index '" + index + "' on table '" + table +
                            "' in " + dir_);
  }
  if (info->spec.curve == new_curve) return Status::OK();
  auto base = OpenTableLocked(table, options_.table_options);
  if (!base.ok()) return base.status();
  if (auto probe = MakeCurve(new_curve,
                             info->extractor->index_universe(
                                 base.value()->curve().universe()));
      !probe.ok()) {
    return Status::InvalidArgument("curve '" + new_curve +
                                   "' is not usable for index '" + index +
                                   "': " + probe.status().message());
  }
  // Each rebuild gets a fresh generation-suffixed directory, so the old
  // and new generations coexist until the atomic catalog rewrite picks
  // the winner; whichever loses (crash included) is an orphan.
  const std::string stem = table + kHiddenIndexInfix + info->spec.name;
  const std::string generation_prefix = stem + "__g";
  uint64_t generation = 2;
  if (info->dir.compare(0, generation_prefix.size(), generation_prefix) == 0) {
    generation =
        std::strtoull(info->dir.c_str() + generation_prefix.size(), nullptr,
                      10) +
        1;
  }
  const std::string new_dir =
      generation_prefix + std::to_string(generation);
  auto built =
      BuildIndexTableLocked(base.value(), *info->extractor, new_curve, new_dir);
  if (!built.ok()) return built.status();
  const std::string old_dir = info->dir;
  const std::string old_curve = info->spec.curve;
  info->dir = new_dir;
  info->spec.curve = new_curve;
  const Status status = WriteCatalogLocked();
  if (!status.ok()) {
    info->dir = old_dir;
    info->spec.curve = old_curve;
    built = Status::Internal("rollback");  // destroy the handle first
    std::error_code ec;
    std::filesystem::remove_all(TablePath(new_dir), ec);
    return status;
  }
  open_tables_[new_dir] = std::move(built).value();
  const auto open_it = open_tables_.find(old_dir);
  if (open_it != open_tables_.end()) {
    // The old generation is deleted right below; a close error is moot.
    (void)open_it->second->Close();
    open_tables_.erase(open_it);
  }
  std::error_code ec;
  std::filesystem::remove_all(TablePath(old_dir), ec);
  if (ec) {
    return Status::Internal("index '" + index + "' migrated to '" + new_curve +
                            "' but the old generation could not be removed: " +
                            ec.message());
  }
  return Status::OK();
}

std::string SfcDb::DumpMetrics(obs::MetricsFormat format) const {
  // Refresh the dump-time gauges. batch_mu_ before db_mu_, per the
  // global lock order.
  {
    const MutexLock batch_lock(batch_mu_);
    metrics_->gauge("batchlog.bytes")
        ->Set(static_cast<int64_t>(batch_log_bytes_));
  }
  metrics_->gauge("pool.resident_pages")
      ->Set(static_cast<int64_t>(pool_->resident_pages()));
  metrics_->gauge("pool.evictions")
      ->Set(static_cast<int64_t>(pool_->evictions()));
  const IoStats pool_io = pool_->stats();
  const uint64_t touches = pool_io.page_reads + pool_io.cache_hits;
  const double hit_ratio =
      touches > 0 ? static_cast<double>(pool_io.cache_hits) / touches : 0.0;

  const MutexLock lock(db_mu_);
  metrics_->gauge("workers.queue_depth")
      ->Set(workers_ != nullptr
                ? static_cast<int64_t>(workers_->queue_depth())
                : 0);
  uint64_t oldest_pin_us = 0;
  for (const auto& [name, table] : open_tables_) {
    oldest_pin_us = std::max(oldest_pin_us, table->OldestSnapshotPinAgeUs());
  }
  metrics_->gauge("snapshot.oldest_pin_age_us")
      ->Set(static_cast<int64_t>(oldest_pin_us));

  if (format == obs::MetricsFormat::kPrometheus) {
    std::string out;
    metrics_->AppendPrometheus(&out, "");
    pool_io.ForEachField([&](const char* field, uint64_t value) {
      const std::string metric = "onion_pool_io_" + std::string(field);
      out += "# TYPE " + metric + " counter\n";
      out += metric + " " + std::to_string(value) + "\n";
    });
    out += "# TYPE onion_pool_hit_ratio gauge\nonion_pool_hit_ratio ";
    obs::AppendJsonDouble(&out, hit_ratio);
    out += "\n";
    for (const auto& [name, table] : open_tables_) {
      out += table->DumpMetrics(format);
    }
    return out;
  }

  std::string out = "{\"db\":{";
  metrics_->AppendJsonMembers(&out);
  out += "},\"pool\":{";
  pool_io.ForEachField([&](const char* field, uint64_t value) {
    out += "\"" + std::string(field) + "\":" + std::to_string(value) + ",";
  });
  out += "\"hit_ratio\":";
  obs::AppendJsonDouble(&out, hit_ratio);
  out += "},\"tables\":{";
  bool first = true;
  for (const auto& [name, table] : open_tables_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    obs::AppendJsonEscaped(&out, name);
    out += "\":" + table->DumpMetrics(format);
  }
  out += "}}";
  return out;
}

Status SfcDb::Close() {
  // batch_mu_ before db_mu_ (the global order): no Write or GetSnapshot
  // can be mid-commit while the tables shut down.
  const MutexLock batch_lock(batch_mu_);
  const MutexLock lock(db_mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  Status first;
  for (auto& [name, table] : open_tables_) {
    const Status status = table->Close();
    if (first.ok() && !status.ok()) first = status;
  }
  open_tables_.clear();  // destroy handles while workers_ is still alive
  workers_.reset();      // join the shared background threads
  if (batch_log_ != nullptr) {
    std::fclose(batch_log_);
    batch_log_ = nullptr;
  }
  return first;
}

}  // namespace onion::storage
