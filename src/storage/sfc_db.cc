#include "storage/sfc_db.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "storage/codec.h"
#include "storage/crc32c.h"
#include "storage/fs_util.h"

namespace onion::storage {
namespace {

constexpr char kCatalogName[] = "CATALOG";
constexpr char kCatalogFormat[] = "onion-sfc-db";
constexpr int kCatalogVersion = 1;

// Batch journal (BATCHLOG) geometry; byte spec in docs/storage_format.md.
constexpr char kBatchLogName[] = "BATCHLOG";
constexpr char kBatchLogMagic[8] = {'O', 'S', 'F', 'C', 'D', 'B', 'W', '1'};
constexpr uint32_t kBatchLogVersion = 1;
constexpr uint64_t kBatchLogHeaderBytes = 16;
/// Sanity cap on one record's body, validated BEFORE committing (an
/// oversized record on disk reads as a torn tail, which must never
/// happen to an acknowledged commit).
constexpr uint32_t kMaxBatchRecordBytes = 64u << 20;
/// The journal is truncated (all records are known-applied once their
/// table WAL appends returned) whenever it grows past this between
/// commits, bounding its size without a background job.
constexpr uint64_t kBatchLogTruncateBytes = 1u << 20;

/// Encoded size of one per-table journal section: u16 name length, the
/// name, u64 first_sequence, u32 num_ops, the ops. The single source for
/// both the phase-1 size validation and the phase-2 encoder of
/// SfcDb::Write, so the two cannot drift.
uint64_t JournalSectionBytes(const std::string& name, size_t num_ops) {
  return 2 + name.size() + 12 + num_ops * kWalOpBytes;
}

Status ValidateDbOptions(const SfcDbOptions& options) {
  if (options.pool_pages < 1) {
    return Status::InvalidArgument("pool_pages must be positive");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  return Status::OK();
}

/// Table names double as directory names: letters, digits, '_', '-' only,
/// so they can never escape the database directory or collide with the
/// CATALOG file.
bool ValidTableName(const std::string& name) {
  if (name.empty() || name.size() > 255) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

SfcDb::SfcDb(std::string dir, const SfcDbOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      pool_(std::make_shared<BufferPool>(options.pool_pages)),
      workers_(std::make_unique<WorkerPool>(options.num_workers)) {
  batch_commit_us_ = metrics_->histogram("db.batch_commit_us");
  workers_->SetMetrics(metrics_->histogram("workers.task_wait_us"),
                       metrics_->counter("workers.tasks_run"));
}

SfcDb::~SfcDb() {
  if (batch_log_ != nullptr) std::fclose(batch_log_);
}

std::string SfcDb::TablePath(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string SfcDb::CatalogPath() const { return dir_ + "/" + kCatalogName; }

std::string SfcDb::BatchLogPath() const { return dir_ + "/" + kBatchLogName; }

Status SfcDb::ResetBatchLogLocked() {
  if (batch_log_ != nullptr) {
    std::fclose(batch_log_);
    batch_log_ = nullptr;
  }
  std::FILE* file = std::fopen(BatchLogPath().c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create batch journal: " + BatchLogPath());
  }
  uint8_t header[kBatchLogHeaderBytes] = {};
  std::memcpy(header, kBatchLogMagic, sizeof(kBatchLogMagic));
  PutU32(header + 8, kBatchLogVersion);
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header) ||
      std::fflush(file) != 0) {
    std::fclose(file);
    return Status::Internal("cannot write batch journal header: " +
                            BatchLogPath());
  }
  batch_log_ = file;
  batch_log_bytes_ = kBatchLogHeaderBytes;
  return Status::OK();
}

Status SfcDb::WriteCatalogLocked() const {
  std::string text;
  text += std::string(kCatalogFormat) + " " + std::to_string(kCatalogVersion) +
          "\n";
  for (const std::string& name : catalog_) text += "table " + name + "\n";
  const std::string tmp_path = CatalogPath() + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("cannot write catalog: " + tmp_path);
  }
  Status status;
  if (std::fwrite(text.data(), 1, text.size(), out) != text.size()) {
    status = Status::Internal("cannot write catalog: " + tmp_path);
  }
  if (status.ok()) status = SyncFile(out, tmp_path);
  std::fclose(out);
  if (!status.ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, CatalogPath(), ec);
  if (ec) {
    return Status::Internal("cannot install catalog: " + ec.message());
  }
  return SyncDir(dir_);
}

Result<std::unique_ptr<SfcDb>> SfcDb::Open(const std::string& dir,
                                           const SfcDbOptions& options) {
  const Status valid = ValidateDbOptions(options);
  if (!valid.ok()) return valid;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create database directory " + dir + ": " +
                            ec.message());
  }
  std::unique_ptr<SfcDb> db(new SfcDb(dir, options));
  std::ifstream in(db->CatalogPath());
  if (in) {
    std::string format;
    int version = 0;
    in >> format >> version;
    if (!in || format != kCatalogFormat) {
      return Status::InvalidArgument("bad catalog format in " + dir);
    }
    if (version != kCatalogVersion) {
      return Status::InvalidArgument("unsupported catalog version " +
                                     std::to_string(version) + " in " + dir);
    }
    std::string field;
    while (in >> field) {
      if (field != "table") {
        return Status::InvalidArgument("unknown catalog field '" + field +
                                       "' in " + dir);
      }
      std::string name;
      in >> name;
      if (!ValidTableName(name)) {
        return Status::InvalidArgument("invalid table name '" + name +
                                       "' in catalog of " + dir);
      }
      db->catalog_.push_back(name);
    }
    std::sort(db->catalog_.begin(), db->catalog_.end());
    const auto dup =
        std::adjacent_find(db->catalog_.begin(), db->catalog_.end());
    if (dup != db->catalog_.end()) {
      return Status::InvalidArgument("duplicate table '" + *dup +
                                     "' in catalog of " + dir);
    }
  } else {
    const Status status = db->WriteCatalogLocked();  // empty catalog
    if (!status.ok()) return status;
  }
  // GC: a crash between "create table dir" and "catalog it" (or between
  // "uncatalog it" and "delete the dir") leaves an orphaned table
  // directory. The catalog is the source of truth, so any directory
  // holding a table MANIFEST but missing from the catalog is dead.
  // Collect first, delete after — removing entries mid-iteration is
  // unspecified — and keep the removal error separate so one stubborn
  // orphan cannot silently abort the sweep (survivors are retried on the
  // next Open anyway).
  std::vector<std::filesystem::path> orphans;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (std::binary_search(db->catalog_.begin(), db->catalog_.end(), name)) {
      continue;
    }
    if (std::filesystem::exists(entry.path() / "MANIFEST")) {
      orphans.push_back(entry.path());
    }
  }
  for (const auto& orphan : orphans) {
    std::error_code remove_ec;
    std::filesystem::remove_all(orphan, remove_ec);
  }
  // Crash recovery for multi-table WriteBatches: re-apply any journaled
  // batch slice a table's own WAL did not durably receive before the
  // crash — this is what makes a batch atomic ACROSS tables.
  const Status replayed = db->ReplayBatchLog();
  if (!replayed.ok()) return replayed;
  return db;
}

Status SfcDb::ReplayBatchLog() {
  std::FILE* file = std::fopen(BatchLogPath().c_str(), "rb");
  if (file == nullptr) return Status::OK();  // no journal: nothing pending
  uint8_t header[kBatchLogHeaderBytes];
  if (std::fread(header, 1, sizeof(header), file) != sizeof(header) ||
      std::memcmp(header, kBatchLogMagic, sizeof(kBatchLogMagic)) != 0 ||
      GetU32(header + 8) != kBatchLogVersion) {
    // A torn header can only mean a crash during journal creation, before
    // any record existed — nothing to recover.
    std::fclose(file);
    return ResetBatchLogLocked();
  }
  std::vector<uint8_t> body;
  std::vector<SfcTable*> repaired;  // tables that received journal ops
  Status status;
  for (;;) {
    uint8_t frame[4];
    if (std::fread(frame, 1, 4, file) != 4) break;  // clean EOF / torn
    const uint32_t body_bytes = GetU32(frame);
    if (body_bytes < 4 || body_bytes > kMaxBatchRecordBytes) break;  // torn
    body.resize(body_bytes + 4);  // + trailing crc
    if (std::fread(body.data(), 1, body.size(), file) != body.size()) break;
    if (GetU32(body.data() + body_bytes) != Crc32c(body.data(), body_bytes)) {
      break;  // torn tail: this commit was never acknowledged
    }
    // The record is whole, so the commit may have been acknowledged and
    // partially applied — walk its per-table sections and re-apply every
    // slice the table does not already have (sequence comparison; each
    // slice is one atomic WAL record, so it is wholly present or wholly
    // absent).
    const uint8_t* p = body.data();
    const uint8_t* const end = body.data() + body_bytes;
    const uint32_t num_tables = GetU32(p);
    p += 4;
    for (uint32_t t = 0; t < num_tables && status.ok(); ++t) {
      if (end - p < 2) {
        status = Status::Corruption("batch journal section");
        break;
      }
      const uint16_t name_len = static_cast<uint16_t>(p[0] | p[1] << 8);
      p += 2;
      if (end - p < name_len + 12) {
        status = Status::Corruption("batch journal section");
        break;
      }
      const std::string name(reinterpret_cast<const char*>(p), name_len);
      p += name_len;
      const uint64_t first_seq = GetU64(p);
      p += 8;
      const uint32_t num_ops = GetU32(p);
      p += 4;
      if (num_ops > kMaxWalRecordOps ||
          end - p < static_cast<ptrdiff_t>(num_ops * kWalOpBytes)) {
        status = Status::Corruption("batch journal section");
        break;
      }
      std::vector<WalOp> ops(num_ops);
      for (uint32_t i = 0; i < num_ops; ++i) {
        ops[i] = DecodeWalOp(p);
        p += kWalOpBytes;
      }
      Result<SfcTable*> table = Status::Internal("unresolved");
      {
        std::lock_guard<std::mutex> lock(db_mu_);
        table = OpenTableLocked(name, options_.table_options);
      }
      if (!table.ok()) {
        // A dropped table's slice is moot; any other failure means we
        // cannot prove the batch applied — refuse to open the database
        // half-recovered.
        if (table.status().code() == StatusCode::kNotFound) continue;
        status = table.status();
        break;
      }
      if (num_ops == 0) continue;
      // Idempotency: skip only when the slice PROVABLY survived — in
      // segments or the replayed memtable. (A bare last_sequence
      // comparison would be fooled by a power loss that tore this slice's
      // WAL record while a later record in a rotated WAL survived.)
      if (table.value()->RecoveredStateCoversSequence(first_seq + num_ops -
                                                      1)) {
        continue;
      }
      status = table.value()->ReplayCommittedOps(ops.data(), num_ops,
                                                 first_seq);
      if (status.ok()) repaired.push_back(table.value());
    }
    if (!status.ok()) break;
  }
  std::fclose(file);
  if (!status.ok()) return status;
  // Before the journal — the only copy that could repair these slices
  // again — is truncated, force the re-applied WAL records to stable
  // storage (an fflush alone would not survive a power loss right after
  // this Open).
  std::sort(repaired.begin(), repaired.end());
  repaired.erase(std::unique(repaired.begin(), repaired.end()),
                 repaired.end());
  for (SfcTable* table : repaired) {
    const Status synced = table->SyncWalForRecovery();
    if (!synced.ok()) return synced;
  }
  // Everything journaled is now durable in the tables' own WALs, so the
  // journal restarts empty.
  return ResetBatchLogLocked();
}

Result<SfcTable*> SfcDb::CreateTable(const std::string& name,
                                     const std::string& curve_name,
                                     const Universe& universe) {
  return CreateTable(name, curve_name, universe, options_.table_options);
}

Result<SfcTable*> SfcDb::CreateTable(const std::string& name,
                                     const std::string& curve_name,
                                     const Universe& universe,
                                     const SfcTableOptions& options) {
  std::lock_guard<std::mutex> lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  if (!ValidTableName(name)) {
    return Status::InvalidArgument("invalid table name '" + name +
                                   "' (use letters, digits, '_', '-')");
  }
  if (std::binary_search(catalog_.begin(), catalog_.end(), name)) {
    return Status::InvalidArgument("table '" + name + "' already exists in " +
                                   dir_);
  }
  auto table = SfcTable::CreateWithShared(
      TablePath(name), curve_name, universe, options,
      SfcTable::SharedResources{pool_, workers_.get(), trace_});
  if (!table.ok()) return table.status();
  catalog_.insert(
      std::upper_bound(catalog_.begin(), catalog_.end(), name), name);
  const Status status = WriteCatalogLocked();
  if (!status.ok()) {
    // Roll back: uncatalog and remove the just-created directory (the
    // durable catalog still has the old list, so this directory is an
    // orphan either way).
    catalog_.erase(std::find(catalog_.begin(), catalog_.end(), name));
    table = Status::Internal("rollback");  // destroy the table object first
    std::error_code ec;
    std::filesystem::remove_all(TablePath(name), ec);
    return status;
  }
  SfcTable* raw = table.value().get();
  open_tables_[name] = std::move(table).value();
  return raw;
}

Result<SfcTable*> SfcDb::OpenTable(const std::string& name) {
  return OpenTable(name, options_.table_options);
}

Result<SfcTable*> SfcDb::OpenTable(const std::string& name,
                                   const SfcTableOptions& options) {
  std::lock_guard<std::mutex> lock(db_mu_);
  return OpenTableLocked(name, options);
}

Result<SfcTable*> SfcDb::OpenTableLocked(const std::string& name,
                                         const SfcTableOptions& options) {
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  const auto it = open_tables_.find(name);
  if (it != open_tables_.end()) return it->second.get();
  if (!std::binary_search(catalog_.begin(), catalog_.end(), name)) {
    return Status::NotFound("no table '" + name + "' in " + dir_);
  }
  auto table = SfcTable::OpenWithShared(
      TablePath(name), options,
      SfcTable::SharedResources{pool_, workers_.get(), trace_});
  if (!table.ok()) return table.status();
  SfcTable* raw = table.value().get();
  open_tables_[name] = std::move(table).value();
  return raw;
}

Status SfcDb::Write(WriteBatch&& batch) {
  if (batch.empty()) return Status::OK();
  // Commit latency end to end: validation, the journal append, every
  // per-table WAL record, and (under wal_fsync) the fsyncs. Failed
  // commits are recorded too — their latency is just as real.
  const obs::ScopedTimer commit_timer(batch_commit_us_);
  const uint64_t num_ops = batch.ops().size();
  uint64_t journal_bytes = 0;
  // Phase 1 — resolve and validate under db_mu_, before anything is
  // logged: group the ops per table (preserving each table's op order),
  // open tables on demand, map cells to curve keys. Any error here
  // applies nothing. Dropping an involved table concurrently with this
  // Write is caller error, exactly like using any dropped handle.
  struct TableSlice {
    SfcTable* table = nullptr;
    std::string name;
    std::vector<WalOp> ops;
    uint64_t first_seq = 0;
    std::shared_ptr<WalWriter> wal;
    uint64_t record = 0;
  };
  std::vector<TableSlice> slices;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
    for (const WriteBatch::Op& op : batch.ops()) {
      auto table = OpenTableLocked(op.table, options_.table_options);
      if (!table.ok()) return table.status();
      if (!table.value()->curve().universe().Contains(op.cell)) {
        return Status::OutOfRange("cell outside universe of table '" +
                                  op.table + "': " + op.cell.ToString());
      }
      TableSlice* slice = nullptr;
      for (TableSlice& candidate : slices) {
        if (candidate.table == table.value()) {
          slice = &candidate;
          break;
        }
      }
      if (slice == nullptr) {
        slices.push_back(TableSlice{});
        slice = &slices.back();
        slice->table = table.value();
        slice->name = op.table;
      }
      slice->ops.push_back(WalOp{table.value()->curve().IndexOf(op.cell),
                                 op.tombstone ? 0 : op.payload,
                                 op.tombstone});
    }
    // Size limits are validated here, where an error still applies
    // NOTHING: a slice must fit one WAL record, and the whole journal
    // record must stay under the replay-side sanity cap (an oversized
    // record on disk would read back as a torn tail).
    uint64_t body_bytes = 4;
    for (const TableSlice& slice : slices) {
      if (slice.ops.size() > kMaxWalRecordOps) {
        return Status::InvalidArgument(
            "WriteBatch has too many ops for table '" + slice.name + "' (" +
            std::to_string(slice.ops.size()) + " > " +
            std::to_string(kMaxWalRecordOps) + ")");
      }
      body_bytes += JournalSectionBytes(slice.name, slice.ops.size());
    }
    if (slices.size() > 1 && body_bytes > kMaxBatchRecordBytes) {
      return Status::InvalidArgument(
          "WriteBatch journal record would exceed " +
          std::to_string(kMaxBatchRecordBytes) + " bytes");
    }
  }
  // Phase 2 — commit under batch_mu_ (serializes multi-table commits and
  // excludes GetSnapshot) with every involved table's writer lock held in
  // a canonical order, so per-table sequence order equals WAL append
  // order — the invariant the journal's idempotent replay stands on.
  std::sort(slices.begin(), slices.end(),
            [](const TableSlice& a, const TableSlice& b) {
              return a.table < b.table;
            });
  bool want_fsync = false;
  for (const TableSlice& slice : slices) {
    want_fsync = want_fsync || slice.table->options_.wal_fsync;
  }
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  if (slices.size() > 1 && batch_log_poisoned_) {
    // A journal append failed while an earlier record was still
    // un-applied: the torn tail blocks new records from ever being
    // replayable, and truncating would lose the un-applied one. Only a
    // reopen (which replays and resets the journal) can recover.
    return Status::Internal(
        "batch journal needs recovery (reopen the database): " +
        BatchLogPath());
  }
  for (TableSlice& slice : slices) slice.table->LockWal();
  Status status;
  for (TableSlice& slice : slices) {
    status = slice.table->PrecheckWritableWalLocked();
    if (!status.ok()) break;
  }
  if (status.ok()) {
    for (TableSlice& slice : slices) {
      slice.first_seq =
          slice.table->ReserveSequencesWalLocked(slice.ops.size());
    }
    // The journal record is the cross-table commit point: written (and
    // OS-flushed) BEFORE any table sees the batch, so a crash between the
    // per-table applies is repaired by replay. A single-table batch needs
    // no journal — its one WAL record is already atomic.
    if (slices.size() > 1) {
      std::vector<uint8_t> body;
      body.resize(4);
      PutU32(body.data(), static_cast<uint32_t>(slices.size()));
      for (const TableSlice& slice : slices) {
        const size_t at = body.size();
        body.resize(at + JournalSectionBytes(slice.name, slice.ops.size()));
        uint8_t* p = body.data() + at;
        p[0] = static_cast<uint8_t>(slice.name.size() & 0xFF);
        p[1] = static_cast<uint8_t>(slice.name.size() >> 8);
        p += 2;
        std::memcpy(p, slice.name.data(), slice.name.size());
        p += slice.name.size();
        PutU64(p, slice.first_seq);
        p += 8;
        PutU32(p, static_cast<uint32_t>(slice.ops.size()));
        p += 4;
        for (const WalOp& op : slice.ops) {
          EncodeWalOp(op, p);
          p += kWalOpBytes;
        }
      }
      // Bound the journal: every record already on disk is known-applied
      // (its table WAL appends returned before its commit was
      // acknowledged), so truncating between commits loses nothing —
      // UNLESS a mid-batch apply failure left a journaled record
      // un-applied, in which case that record is the only repair copy
      // and truncation must wait for the next Open's replay.
      if (batch_log_ != nullptr && !batch_log_needs_replay_ &&
          batch_log_bytes_ > kBatchLogTruncateBytes) {
        status = ResetBatchLogLocked();
      }
      if (status.ok() && batch_log_ == nullptr) {
        status = ResetBatchLogLocked();
      }
      if (status.ok()) {
        uint8_t frame[4];
        PutU32(frame, static_cast<uint32_t>(body.size()));
        uint8_t crc[4];
        PutU32(crc, Crc32c(body.data(), body.size()));
        if (std::fwrite(frame, 1, 4, batch_log_) != 4 ||
            std::fwrite(body.data(), 1, body.size(), batch_log_) !=
                body.size() ||
            std::fwrite(crc, 1, 4, batch_log_) != 4 ||
            std::fflush(batch_log_) != 0) {
          status = Status::Internal("batch journal append failed: " +
                                    BatchLogPath());
          // The failed write may have left a torn record at the tail; a
          // later acknowledged commit appended after it would be
          // unreachable at recovery (replay stops at the first torn
          // record). With every earlier record known-applied, dropping
          // the handle is enough — the next commit re-creates the
          // journal, truncating the torn tail. With an un-applied record
          // present the journal must be preserved: poison multi-table
          // commits until a reopen replays it.
          if (batch_log_needs_replay_) {
            batch_log_poisoned_ = true;
          } else {
            std::fclose(batch_log_);
            batch_log_ = nullptr;
          }
        } else {
          batch_log_bytes_ += 8 + body.size();
          journal_bytes = 8 + body.size();
          // The cross-table commit point must not be able to reach disk
          // AFTER a table slice it repairs: under wal_fsync (power-loss
          // durability) sync the journal record BEFORE any table WAL
          // append — a concurrent committer's group fsync could
          // otherwise persist a slice first.
          if (want_fsync) status = SyncFile(batch_log_, BatchLogPath());
        }
      }
    }
  }
  if (status.ok()) {
    for (TableSlice& slice : slices) {
      status = slice.table->ApplyOpsWalLocked(slice.ops.data(),
                                              slice.ops.size(),
                                              slice.first_seq, &slice.wal,
                                              &slice.record);
      // On a mid-batch failure the journal record (multi-table case)
      // repairs the already-applied slices' counterparts on the next
      // Open; the commit itself is reported failed. Until that replay,
      // the record must survive every truncation path.
      if (!status.ok()) {
        if (slices.size() > 1) batch_log_needs_replay_ = true;
        break;
      }
    }
  }
  for (auto it = slices.rbegin(); it != slices.rend(); ++it) {
    it->table->UnlockWal();
  }
  if (!status.ok()) return status;
  // Power-loss durability on request: the journal record was already
  // fsynced above (before any table append); finish with each table's
  // WAL via group commit, outside the writer locks.
  if (want_fsync) {
    for (const TableSlice& slice : slices) {
      const Status synced = slice.wal->SyncUpTo(slice.record);
      if (!synced.ok()) return synced;
    }
  }
  trace_->Add(obs::TraceEvent{
      trace_->NextId(), obs::TraceKind::kBatchCommit,
      slices.size() > 1 ? "multi" : slices.front().name,
      commit_timer.start_us(), obs::NowMicros() - commit_timer.start_us(),
      journal_bytes, num_ops});
  return Status::OK();
}

Result<std::shared_ptr<const DbSnapshot>> SfcDb::GetSnapshot() {
  // batch_mu_ first: no WriteBatch can commit between two tables' pins,
  // so the per-table sequences agree on every batch (all or nothing).
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  std::lock_guard<std::mutex> lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  auto snapshot = std::make_shared<DbSnapshot>();
  for (auto& [name, table] : open_tables_) {
    snapshot->pins_[table.get()] = table->GetSnapshot();
  }
  return std::shared_ptr<const DbSnapshot>(std::move(snapshot));
}

SfcTable* SfcDb::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(db_mu_);
  const auto it = open_tables_.find(name);
  return it != open_tables_.end() ? it->second.get() : nullptr;
}

Status SfcDb::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(db_mu_);
  if (closed_) return Status::InvalidArgument("database is closed: " + dir_);
  const auto catalog_it =
      std::lower_bound(catalog_.begin(), catalog_.end(), name);
  if (catalog_it == catalog_.end() || *catalog_it != name) {
    return Status::NotFound("no table '" + name + "' in " + dir_);
  }
  // Quiesce and destroy the open handle first so no background work (or
  // caller, per the handle-lifetime contract) touches files mid-delete.
  const auto open_it = open_tables_.find(name);
  if (open_it != open_tables_.end()) {
    open_it->second->Close();  // drop discards data; a close error is moot
    open_tables_.erase(open_it);
  }
  catalog_.erase(catalog_it);
  const Status status = WriteCatalogLocked();
  if (!status.ok()) {
    // Catalog unchanged on disk: re-catalog in memory; the table can be
    // reopened via OpenTable.
    catalog_.insert(std::upper_bound(catalog_.begin(), catalog_.end(), name),
                    name);
    return status;
  }
  std::error_code ec;
  std::filesystem::remove_all(TablePath(name), ec);
  if (ec) {
    return Status::Internal("table '" + name + "' uncataloged but its " +
                            "directory could not be removed: " + ec.message());
  }
  return Status::OK();
}

std::vector<std::string> SfcDb::ListTables() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return catalog_;
}

std::string SfcDb::DumpMetrics(obs::MetricsFormat format) const {
  // Refresh the dump-time gauges. batch_mu_ before db_mu_, per the
  // global lock order.
  {
    std::lock_guard<std::mutex> batch_lock(batch_mu_);
    metrics_->gauge("batchlog.bytes")
        ->Set(static_cast<int64_t>(batch_log_bytes_));
  }
  metrics_->gauge("pool.resident_pages")
      ->Set(static_cast<int64_t>(pool_->resident_pages()));
  metrics_->gauge("pool.evictions")
      ->Set(static_cast<int64_t>(pool_->evictions()));
  const IoStats pool_io = pool_->stats();
  const uint64_t touches = pool_io.page_reads + pool_io.cache_hits;
  const double hit_ratio =
      touches > 0 ? static_cast<double>(pool_io.cache_hits) / touches : 0.0;

  std::lock_guard<std::mutex> lock(db_mu_);
  metrics_->gauge("workers.queue_depth")
      ->Set(workers_ != nullptr
                ? static_cast<int64_t>(workers_->queue_depth())
                : 0);
  uint64_t oldest_pin_us = 0;
  for (const auto& [name, table] : open_tables_) {
    oldest_pin_us = std::max(oldest_pin_us, table->OldestSnapshotPinAgeUs());
  }
  metrics_->gauge("snapshot.oldest_pin_age_us")
      ->Set(static_cast<int64_t>(oldest_pin_us));

  if (format == obs::MetricsFormat::kPrometheus) {
    std::string out;
    metrics_->AppendPrometheus(&out, "");
    pool_io.ForEachField([&](const char* field, uint64_t value) {
      const std::string metric = "onion_pool_io_" + std::string(field);
      out += "# TYPE " + metric + " counter\n";
      out += metric + " " + std::to_string(value) + "\n";
    });
    out += "# TYPE onion_pool_hit_ratio gauge\nonion_pool_hit_ratio ";
    obs::AppendJsonDouble(&out, hit_ratio);
    out += "\n";
    for (const auto& [name, table] : open_tables_) {
      out += table->DumpMetrics(format);
    }
    return out;
  }

  std::string out = "{\"db\":{";
  metrics_->AppendJsonMembers(&out);
  out += "},\"pool\":{";
  pool_io.ForEachField([&](const char* field, uint64_t value) {
    out += "\"" + std::string(field) + "\":" + std::to_string(value) + ",";
  });
  out += "\"hit_ratio\":";
  obs::AppendJsonDouble(&out, hit_ratio);
  out += "},\"tables\":{";
  bool first = true;
  for (const auto& [name, table] : open_tables_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    obs::AppendJsonEscaped(&out, name);
    out += "\":" + table->DumpMetrics(format);
  }
  out += "}}";
  return out;
}

Status SfcDb::Close() {
  // batch_mu_ before db_mu_ (the global order): no Write or GetSnapshot
  // can be mid-commit while the tables shut down.
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  std::lock_guard<std::mutex> lock(db_mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  Status first;
  for (auto& [name, table] : open_tables_) {
    const Status status = table->Close();
    if (first.ok() && !status.ok()) first = status;
  }
  open_tables_.clear();  // destroy handles while workers_ is still alive
  workers_.reset();      // join the shared background threads
  if (batch_log_ != nullptr) {
    std::fclose(batch_log_);
    batch_log_ = nullptr;
  }
  return first;
}

}  // namespace onion::storage
