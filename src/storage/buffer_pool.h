// A buffer pool shared by every open run of the storage engine.
//
// Generalizes the single-run LRU pool from index/pager.h: frames are keyed
// by (source, page) so one pool arbitrates memory across the memtable's
// flushed segments, a compacted run, and any in-memory sources at once.
// Accounting keeps the paper's sequential-vs-seek distinction: a disk read
// is sequential only when it targets the page immediately after the
// previous disk read *of the same source* — switching runs always seeks,
// which is exactly why compaction into fewer runs pays off.
//
// Range scans consult only the fence index to decide which pages to fetch
// and when to stop; entry data is touched strictly after Fetch(), so the
// counters are honest even when pages live in a file.
//
// Thread safety: the pool is fully thread-safe. A shared_mutex guards the
// LRU structures — Fetch() and Drop() mutate them under the exclusive
// lock (the underlying page read itself is serialized by the source), while
// observers (stats(), resident_pages()) take the shared lock, so any number
// of threads may introspect concurrently with scans. Fetched page data is
// returned as a shared_ptr, so a frame evicted or Drop()ped by another
// thread stays valid for as long as a caller still holds it.

#ifndef ONION_STORAGE_BUFFER_POOL_H_
#define ONION_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/page_source.h"

namespace onion::storage {

class BufferPool {
 public:
  /// `readahead_pages` is the maximum number of EXTRA pages a miss may
  /// pull in beyond the demanded one (0 disables readahead entirely and
  /// reproduces the historical one-page-per-miss behavior byte for byte).
  explicit BufferPool(uint64_t capacity_pages, uint64_t readahead_pages = 0);

  /// Ensures the page is resident and returns its entries. The returned
  /// data stays valid for as long as the caller holds the pointer, even if
  /// the frame is evicted or its source is Drop()ped meanwhile. When
  /// `attribution` is non-null the same counter increments land there too
  /// (relaxed atomics), attributing the I/O to one client of a shared pool.
  /// A failed page read (e.g. Status::Corruption from a checksum mismatch)
  /// returns nullptr with the error in `*status` when given; with no
  /// status sink the failure is fatal (CHECK), preserving the legacy
  /// simulation contract.
  ///
  /// With readahead enabled, a miss extends into ONE batched read over the
  /// run of pages following `page` (stopping at the source's end, at an
  /// already-resident page, and at the readahead budget). When `box` is
  /// non-null the run also stops at the first page whose zone map proves
  /// it cannot intersect `box` — a filtered page is never prefetched.
  /// Prefetched frames are inserted BEHIND the demanded page in LRU order;
  /// their first touch counts readahead_hits, eviction or Drop() before
  /// any touch counts readahead_wasted.
  std::shared_ptr<const std::vector<Entry>> Fetch(
      const PageSource& source, uint64_t page,
      AtomicIoStats* attribution = nullptr, Status* status = nullptr,
      const Box* box = nullptr);

  /// Filter fast path: returns false when `source`'s filter proves no
  /// entry has key `key` — the page fetch a point probe would have done is
  /// skipped WITHOUT allocating or touching any frame, and counted as
  /// pages_skipped_by_filter. Returns true ("maybe present", including for
  /// sources without a filter) otherwise, counting nothing.
  bool ProbeFilter(const PageSource& source, Key key,
                   AtomicIoStats* attribution = nullptr);

  /// Scans all entries of `source` with lo <= key <= hi through the pool,
  /// invoking fn(key, payload). Page selection and loop termination use the
  /// fence index only; pages are read exclusively via Fetch().
  template <typename Fn>
  void ScanRange(const PageSource& source, Key lo, Key hi, Fn&& fn,
                 AtomicIoStats* attribution = nullptr) {
    const uint64_t pages = source.num_pages();
    uint64_t delivered = 0;
    for (uint64_t page = source.PageOf(lo); page < pages; ++page) {
      // Fence test: this page starts past the range, so neither it nor any
      // later page can contribute — stop without I/O.
      if (source.first_key(page) > hi) break;
      const auto data = Fetch(source, page, attribution);  // CHECKs on error
      for (const Entry& entry : *data) {
        if (entry.key < lo) continue;
        if (entry.key > hi) break;
        ++delivered;
        fn(entry.key, entry.payload);
      }
    }
    AddEntriesRead(delivered, attribution);
  }

  /// Credits entries delivered to a caller that fetches pages itself (the
  /// streaming cursor does) so `entries_read` stays comparable between the
  /// scan and cursor paths.
  void AddEntriesRead(uint64_t count, AtomicIoStats* attribution = nullptr);

  /// Credits page fetches a caller avoided through zone-map checks of its
  /// own (the cursor consults PageMayIntersect before scheduling fetches),
  /// keeping pages_skipped_by_filter complete in the pool aggregate.
  void AddFilterSkips(uint64_t count, AtomicIoStats* attribution = nullptr);

  /// Discards all frames of `source` (used when a segment is retired by
  /// compaction). Does not count as I/O.
  void Drop(const PageSource* source);

  IoStats stats() const;
  void ResetStats();
  uint64_t resident_pages() const;
  /// Frames discarded to make room since construction (not reset by
  /// ResetStats — eviction pressure is a property of the pool, not of a
  /// measurement window).
  uint64_t evictions() const;
  uint64_t capacity() const { return capacity_; }

 private:
  // Frames are keyed by the source's never-reused id, not its address: a
  // retired segment's lingering frames can therefore never alias a newer
  // source that the allocator placed at the same address.
  struct Frame {
    uint64_t source_id;
    uint64_t page;
    std::shared_ptr<std::vector<Entry>> data;
    // Readahead brought this frame in and nothing has touched it yet:
    // cleared (and counted as a readahead hit) on first Fetch, counted as
    // readahead_wasted if evicted or dropped still set.
    bool prefetched = false;
  };
  using FrameKey = std::pair<uint64_t, uint64_t>;  // (source_id, page)
  struct FrameKeyHash {
    size_t operator()(const FrameKey& key) const {
      const auto h1 = std::hash<uint64_t>()(key.first);
      const auto h2 = std::hash<uint64_t>()(key.second);
      return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
    }
  };

  /// Evicts LRU-tail frames until the pool fits its capacity, counting
  /// never-touched prefetched victims as readahead_wasted.
  void EvictOverflowLocked() ONION_REQUIRES(mu_);

  const uint64_t capacity_;
  const uint64_t readahead_;
  mutable SharedMutex mu_;
  // LRU list of resident frames, most recent at front, with an index.
  std::list<Frame> lru_ ONION_GUARDED_BY(mu_);
  std::unordered_map<FrameKey, std::list<Frame>::iterator, FrameKeyHash>
      resident_ ONION_GUARDED_BY(mu_);
  // Position of the disk head: last source/page actually read from disk.
  // Source id 0 is never assigned; the sentinel page is chosen so
  // sentinel + 1 can't match a real page.
  uint64_t last_disk_source_ ONION_GUARDED_BY(mu_) = 0;
  uint64_t last_disk_page_ ONION_GUARDED_BY(mu_) = ~0ull - 1;
  IoStats stats_ ONION_GUARDED_BY(mu_);
  uint64_t evictions_ ONION_GUARDED_BY(mu_) = 0;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_BUFFER_POOL_H_
