// Write-ahead log: crash durability for the memtable.
//
// Every write into an SfcTable — a single Insert/Delete or one table's
// slice of an SfcDb::Write batch — is appended to the table's active WAL
// file as ONE record before it is buffered in memory, so a process crash
// loses nothing and a multi-op record is all-or-nothing: on Open(), the
// table replays every live WAL file back into the memtable, and a torn
// record at the tail is discarded whole. A WAL file is paired with one
// memtable generation — when the memtable rotates, the WAL rotates with
// it, and once that generation's segment is durably on disk and
// referenced by the MANIFEST, the WAL file is obsolete (the MANIFEST's
// `wal_floor` fences it off) and is deleted.
//
// File layout (all integers little-endian; see docs/storage_format.md):
//
//   offset 0   header, 16 bytes:
//     [0]  magic "OSFCWAL1"
//     [8]  u32 format version (currently 2)
//     [12] u32 reserved (zero)
//   offset 16  variable-length records, appended in commit order:
//     [0]  u32 num_ops (>= 1)
//     [4]  u64 first_sequence   — op i carries sequence first_sequence + i
//     [12] num_ops ops, 17 bytes each:
//            u8 type (0 = put, 1 = delete), u64 key, u64 payload
//     [..] u32 CRC32C over everything above (num_ops through the last op)
//
// Version-1 files (fixed 24-byte single-put records, xor-rotate checksum,
// no sequence numbers) remain replayable forever: their ops surface with
// sequence 0 and the caller synthesizes fresh sequences in replay order.
//
// Replay validates each record's checksum and treats the first short or
// corrupt record as the torn tail of an interrupted append: everything
// before it is recovered, everything from it on is discarded — which is
// exactly what makes a multi-op record an atomic commit. Appends are
// fflush()ed to the OS on every record (survives process death); fsync
// (survives power loss) is either per-append (`fsync_each_append`) or —
// the path SfcTable uses under SfcTableOptions::wal_fsync —
// group-committed via SyncUpTo(): concurrent committers pile up behind
// one leader whose single fsync covers every record appended so far, so N
// threads pay ~1 fsync instead of N.

#ifndef ONION_STORAGE_WAL_H_
#define ONION_STORAGE_WAL_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "sfc/types.h"

namespace onion::storage {

/// One logical write of a WAL record (and of a WriteBatch): a put of
/// (key, payload) or a tombstone deleting every older version of `key`.
struct WalOp {
  Key key = 0;
  uint64_t payload = 0;  // 0 for tombstones
  bool tombstone = false;
};

/// On-disk size of one encoded op: u8 type + u64 key + u64 payload. The
/// SAME layout is used by WAL v2 records and the SfcDb batch journal —
/// both go through the two helpers below, so the formats cannot drift.
inline constexpr uint64_t kWalOpBytes = 17;
/// Sanity cap on ops per record/journal slice; larger counts on disk are
/// treated as torn records, so writers must refuse them up front.
inline constexpr uint32_t kMaxWalRecordOps = 1u << 22;

/// Encodes `op` into `out[0..kWalOpBytes)`. Tombstones store payload 0.
void EncodeWalOp(const WalOp& op, uint8_t* out);
/// Decodes one op from `in[0..kWalOpBytes)`.
WalOp DecodeWalOp(const uint8_t* in);

/// Optional latency/throughput sinks (see docs/observability.md). Null
/// members record nothing; the pointed-to histograms must outlive every
/// writer they are wired into (SfcTable wires its own registry's, which
/// lives as long as the table).
struct WalMetrics {
  /// AppendBatch duration (encode + fwrite + fflush), microseconds.
  obs::Histogram* append_us = nullptr;
  /// Physical fsync duration, microseconds (SyncUpTo leader fsyncs,
  /// Sync(), and per-append fsyncs alike).
  obs::Histogram* fsync_us = nullptr;
  /// Records covered per group-commit fsync — the group-commit win: with
  /// concurrent committers the p50 climbs above 1.
  obs::Histogram* commit_batch_records = nullptr;
};

class WalWriter {
 public:
  /// Creates a new WAL file at `path` (truncating any stale one) and writes
  /// the header. When `fsync_each_append` is set every append is fsynced
  /// inline (simple, but serializes committers; prefer AppendBatch +
  /// SyncUpTo for concurrent writers).
  static Result<std::unique_ptr<WalWriter>> Create(std::string path,
                                                   bool fsync_each_append);

  /// Wires the latency sinks. Call before the first append (the table
  /// does it right after Create, while the writer is still private).
  void set_metrics(const WalMetrics& metrics) { metrics_ = metrics; }

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends `count` ops as ONE record — the atomic commit unit: replay
  /// surfaces all of them or none — and flushes it to the OS (plus fsync
  /// when configured). Op i carries sequence number `first_sequence + i`.
  /// The record is replayable as soon as this returns OK. Callers must
  /// serialize appends externally (SfcTable uses its writer mutex);
  /// `out_record`, when non-null, receives the record's 1-based index for
  /// a later SyncUpTo().
  /// A failed append poisons the writer: every later append fails too.
  /// A partial record may now sit at the file's tail, so acknowledging
  /// anything written after it would be unrecoverable — replay stops at
  /// the first torn record.
  Status AppendBatch(const WalOp* ops, size_t count, uint64_t first_sequence,
                     uint64_t* out_record = nullptr);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Group commit: returns once record `record` (from AppendBatch) is
  /// fsynced. One caller at a time becomes the leader and fsyncs
  /// everything appended so far; the rest wait and usually find their
  /// record already covered by the leader's fsync. Safe to call
  /// concurrently from any number of threads, and concurrently with
  /// further appends. A failed fsync is sticky: the writer refuses all
  /// later syncs (the tail's durability would be unknown).
  Status SyncUpTo(uint64_t record);

  /// Records appended AND published so far. Reads the atomic AppendBatch
  /// publishes after each record (num_records_ itself is protected only by
  /// the callers' external append serialization, so an observer thread
  /// reading it directly would race with an in-flight append).
  uint64_t num_records() const {
    return appended_record_.load(std::memory_order_acquire);
  }
  /// Physical fsyncs performed by SyncUpTo (group commit observability:
  /// with concurrent committers this stays well below num_records()).
  uint64_t num_syncs() const {
    return num_syncs_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, std::FILE* file, bool fsync_each_append);

  std::string path_;
  // file_, num_records_, status_, and record_scratch_ are mutated only by
  // AppendBatch, whose callers serialize externally (SfcTable's writer
  // mutex) — no mutex of this class guards them, which is WHY observers
  // must go through the published atomics below. file_ is additionally
  // read by SyncUpTo's leader fsync: fsync(fd) is kernel-serialized
  // against concurrent appends, and the fd itself is set once in Create.
  std::FILE* file_;
  bool fsync_each_append_;
  WalMetrics metrics_;  // set once before the first append
  uint64_t num_records_ = 0;
  Status status_;  // first append error, sticky
  // Reused record buffer (appends are externally serialized), so a
  // steady-state append allocates nothing.
  std::vector<uint8_t> record_scratch_;

  // Group-commit state (SyncUpTo). appended_record_ is published by
  // AppendBatch (externally serialized); the rest is guarded by sync_mu_.
  std::atomic<uint64_t> appended_record_{0};
  std::atomic<uint64_t> num_syncs_{0};
  Mutex sync_mu_;
  CondVar sync_cv_;
  uint64_t synced_record_ ONION_GUARDED_BY(sync_mu_) = 0;
  bool sync_inflight_ ONION_GUARDED_BY(sync_mu_) = false;
  Status sync_status_ ONION_GUARDED_BY(sync_mu_);  // first fsync error, sticky
};

/// Replays the complete records of the WAL at `path` into `fn` — invoked
/// once per op as fn(key, payload, sequence, tombstone), in append order —
/// stopping silently at a torn tail. Ops of version-1 files carry
/// sequence 0 (the caller synthesizes). Returns the number of OPS
/// replayed, or an error if the file is missing or its header is invalid.
Result<uint64_t> ReplayWal(
    const std::string& path,
    const std::function<void(Key, uint64_t, uint64_t, bool)>& fn);

}  // namespace onion::storage

#endif  // ONION_STORAGE_WAL_H_
