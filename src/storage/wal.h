// Write-ahead log: crash durability for the memtable.
//
// Every Insert() into an SfcTable is appended to the table's active WAL
// file before it is buffered in memory, so a process crash loses nothing:
// on Open(), the table replays every live WAL file back into the memtable.
// A WAL file is paired with one memtable generation — when the memtable
// rotates, the WAL rotates with it, and once that generation's segment is
// durably on disk and referenced by the MANIFEST, the WAL file is obsolete
// (the MANIFEST's `wal_floor` fences it off) and is deleted.
//
// File layout (all integers little-endian; see docs/storage_format.md):
//
//   offset 0   header, 16 bytes:
//     [0]  magic "OSFCWAL1"
//     [8]  u32 format version (currently 1)
//     [12] u32 reserved (zero)
//   offset 16  records, 24 bytes each, appended in insert order:
//     [0]  u64 key
//     [8]  u64 payload
//     [16] u64 checksum (salted xor-rotate mix of key and payload)
//
// Replay validates each record's checksum and treats the first short or
// corrupt record as the torn tail of an interrupted append: everything
// before it is recovered, everything from it on is discarded. Appends are
// fflush()ed to the OS on every record (survives process death); fsync
// (survives power loss) is either per-append (`fsync_each_append`) or — the
// path SfcTable uses under SfcTableOptions::wal_fsync — group-committed
// via SyncUpTo(): concurrent committers pile up behind one leader whose
// single fsync covers every record appended so far, so N threads pay ~1
// fsync instead of N.

#ifndef ONION_STORAGE_WAL_H_
#define ONION_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "sfc/types.h"

namespace onion::storage {

class WalWriter {
 public:
  /// Creates a new WAL file at `path` (truncating any stale one) and writes
  /// the header. When `fsync_each_append` is set every Append() is fsynced
  /// inline (simple, but serializes committers; prefer Append + SyncUpTo
  /// for concurrent writers).
  static Result<std::unique_ptr<WalWriter>> Create(std::string path,
                                                   bool fsync_each_append);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and flushes it to the OS (plus fsync when
  /// configured). The record is replayable as soon as this returns OK.
  /// Callers must serialize Append() externally (SfcTable uses its writer
  /// mutex); `out_seq`, when non-null, receives the record's 1-based
  /// sequence number for a later SyncUpTo().
  /// A failed append poisons the writer: every later Append() fails too.
  /// A partial record may now sit at the file's tail, so acknowledging
  /// anything written after it would be unrecoverable — replay stops at
  /// the first torn record.
  Status Append(Key key, uint64_t payload, uint64_t* out_seq = nullptr);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Group commit: returns once record `seq` (from Append) is fsynced.
  /// One caller at a time becomes the leader and fsyncs everything
  /// appended so far; the rest wait and usually find their record already
  /// covered by the leader's fsync. Safe to call concurrently from any
  /// number of threads, and concurrently with further Append()s. A failed
  /// fsync is sticky: the writer refuses all later syncs (the tail's
  /// durability would be unknown).
  Status SyncUpTo(uint64_t seq);

  uint64_t num_records() const { return num_records_; }
  /// Physical fsyncs performed by SyncUpTo (group commit observability:
  /// with concurrent committers this stays well below num_records()).
  uint64_t num_syncs() const {
    return num_syncs_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, std::FILE* file, bool fsync_each_append);

  std::string path_;
  std::FILE* file_;
  bool fsync_each_append_;
  uint64_t num_records_ = 0;
  Status status_;  // first append error, sticky

  // Group-commit state (SyncUpTo). appended_seq_ is published by Append
  // (externally serialized); the rest is guarded by sync_mu_.
  std::atomic<uint64_t> appended_seq_{0};
  std::atomic<uint64_t> num_syncs_{0};
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  uint64_t synced_seq_ = 0;
  bool sync_inflight_ = false;
  Status sync_status_;  // first fsync error, sticky
};

/// Replays the complete records of the WAL at `path` into `fn`, in append
/// order, stopping silently at a torn tail. Returns the number of records
/// replayed, or an error if the file is missing or its header is invalid.
Result<uint64_t> ReplayWal(const std::string& path,
                           const std::function<void(Key, uint64_t)>& fn);

}  // namespace onion::storage

#endif  // ONION_STORAGE_WAL_H_
