#include "storage/crc32c.h"

#include <array>

namespace onion::storage {
namespace {

constexpr uint32_t kPolyReflected = 0x82F63B78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const uint8_t* data, size_t n) {
  // Built once, thread-safe per the C++ static-initialization rules.
  static const std::array<uint32_t, 256> table = BuildTable();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace onion::storage
