// Physical I/O counters shared by every page-serving component (the legacy
// single-run pager in index/pager.h, the multi-segment buffer pool, and the
// SfcTable facade). Kept in the top-level onion namespace because the
// counters predate the storage subsystem and are part of its public
// benchmark vocabulary.

#ifndef ONION_STORAGE_IO_STATS_H_
#define ONION_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace onion {

/// Physical I/O counters.
///
/// Byte accounting rule: `disk_bytes` counts ON-DISK (encoded) bytes —
/// exactly what a page read transfers from the file, after compression —
/// and is the unit of ReadOptions::max_bytes budgets. `decoded_bytes`
/// counts the decoded entry bytes those same reads materialized in the
/// buffer pool. For uncompressed pages the two are equal (modulo format-v1
/// padding); for compressed codecs disk_bytes < decoded_bytes, and the
/// ratio is the measured compression win.
struct IoStats {
  uint64_t page_reads = 0;   ///< pages fetched from disk (or the simulated one)
  uint64_t cache_hits = 0;   ///< pages served by the buffer pool
  uint64_t seeks = 0;        ///< non-sequential disk reads
  uint64_t entries_read = 0; ///< entries delivered to the caller
  uint64_t disk_bytes = 0;   ///< on-disk (encoded) bytes fetched
  uint64_t decoded_bytes = 0;  ///< decoded page bytes those fetches produced
  /// Page fetches avoided by a segment filter: bloom-negative point probes
  /// and zone-map-excluded pages. These cost neither I/O nor a pool frame.
  uint64_t pages_skipped_by_filter = 0;

  void Reset() { *this = IoStats{}; }
};

/// Lock-free I/O counters for per-table attribution on a SHARED buffer
/// pool: every table passes its own AtomicIoStats into the pool's
/// Fetch/ScanRange calls, so "who caused this I/O" survives many tables
/// sharing one pool (the pool's own IoStats stays the physical aggregate).
/// All updates are relaxed — the counters are statistics, not
/// synchronization.
struct AtomicIoStats {
  std::atomic<uint64_t> page_reads{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> seeks{0};
  std::atomic<uint64_t> entries_read{0};
  std::atomic<uint64_t> disk_bytes{0};
  std::atomic<uint64_t> decoded_bytes{0};
  std::atomic<uint64_t> pages_skipped_by_filter{0};

  IoStats Snapshot() const {
    IoStats out;
    out.page_reads = page_reads.load(std::memory_order_relaxed);
    out.cache_hits = cache_hits.load(std::memory_order_relaxed);
    out.seeks = seeks.load(std::memory_order_relaxed);
    out.entries_read = entries_read.load(std::memory_order_relaxed);
    out.disk_bytes = disk_bytes.load(std::memory_order_relaxed);
    out.decoded_bytes = decoded_bytes.load(std::memory_order_relaxed);
    out.pages_skipped_by_filter =
        pages_skipped_by_filter.load(std::memory_order_relaxed);
    return out;
  }

  void Reset() {
    page_reads.store(0, std::memory_order_relaxed);
    cache_hits.store(0, std::memory_order_relaxed);
    seeks.store(0, std::memory_order_relaxed);
    entries_read.store(0, std::memory_order_relaxed);
    disk_bytes.store(0, std::memory_order_relaxed);
    decoded_bytes.store(0, std::memory_order_relaxed);
    pages_skipped_by_filter.store(0, std::memory_order_relaxed);
  }
};

}  // namespace onion

#endif  // ONION_STORAGE_IO_STATS_H_
