// Physical I/O counters shared by every page-serving component (the legacy
// single-run pager in index/pager.h, the multi-segment buffer pool, and the
// SfcTable facade). Kept in the top-level onion namespace because the
// counters predate the storage subsystem and are part of its public
// benchmark vocabulary.

#ifndef ONION_STORAGE_IO_STATS_H_
#define ONION_STORAGE_IO_STATS_H_

#include <cstdint>

namespace onion {

/// Physical I/O counters.
struct IoStats {
  uint64_t page_reads = 0;   ///< pages fetched from disk (or the simulated one)
  uint64_t cache_hits = 0;   ///< pages served by the buffer pool
  uint64_t seeks = 0;        ///< non-sequential disk reads
  uint64_t entries_read = 0; ///< entries delivered to the caller

  void Reset() { *this = IoStats{}; }
};

}  // namespace onion

#endif  // ONION_STORAGE_IO_STATS_H_
