// Physical I/O counters shared by every page-serving component (the legacy
// single-run pager in index/pager.h, the multi-segment buffer pool, and the
// SfcTable facade). Kept in the top-level onion namespace because the
// counters predate the storage subsystem and are part of its public
// benchmark vocabulary.

#ifndef ONION_STORAGE_IO_STATS_H_
#define ONION_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace onion {

/// Physical I/O counters.
struct IoStats {
  uint64_t page_reads = 0;   ///< pages fetched from disk (or the simulated one)
  uint64_t cache_hits = 0;   ///< pages served by the buffer pool
  uint64_t seeks = 0;        ///< non-sequential disk reads
  uint64_t entries_read = 0; ///< entries delivered to the caller

  void Reset() { *this = IoStats{}; }
};

/// Lock-free I/O counters for per-table attribution on a SHARED buffer
/// pool: every table passes its own AtomicIoStats into the pool's
/// Fetch/ScanRange calls, so "who caused this I/O" survives many tables
/// sharing one pool (the pool's own IoStats stays the physical aggregate).
/// All updates are relaxed — the counters are statistics, not
/// synchronization.
struct AtomicIoStats {
  std::atomic<uint64_t> page_reads{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> seeks{0};
  std::atomic<uint64_t> entries_read{0};

  IoStats Snapshot() const {
    IoStats out;
    out.page_reads = page_reads.load(std::memory_order_relaxed);
    out.cache_hits = cache_hits.load(std::memory_order_relaxed);
    out.seeks = seeks.load(std::memory_order_relaxed);
    out.entries_read = entries_read.load(std::memory_order_relaxed);
    return out;
  }

  void Reset() {
    page_reads.store(0, std::memory_order_relaxed);
    cache_hits.store(0, std::memory_order_relaxed);
    seeks.store(0, std::memory_order_relaxed);
    entries_read.store(0, std::memory_order_relaxed);
  }
};

}  // namespace onion

#endif  // ONION_STORAGE_IO_STATS_H_
