// Physical I/O counters shared by every page-serving component (the legacy
// single-run pager in index/pager.h, the multi-segment buffer pool, and the
// SfcTable facade). Kept in the top-level onion namespace because the
// counters predate the storage subsystem and are part of its public
// benchmark vocabulary.

#ifndef ONION_STORAGE_IO_STATS_H_
#define ONION_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace onion {

/// The single source of truth for the counter set: every IoStats /
/// AtomicIoStats member, Snapshot(), Reset(), operator+, and the metric
/// exporters' field iteration are generated from this list, so adding a
/// counter is ONE line here (a forgotten field in a hand-written copy
/// loop is a silent accounting bug).
///
/// Field semantics:
///   page_reads               pages fetched from disk (or the simulated one)
///   cache_hits               pages served by the buffer pool
///   seeks                    non-sequential disk reads
///   entries_read             entries delivered to the caller
///   disk_bytes               on-disk (encoded) bytes fetched
///   decoded_bytes            decoded page bytes those fetches produced
///   pages_skipped_by_filter  page fetches avoided by a segment filter
///                            (bloom-negative point probes and
///                            zone-map-excluded pages); these cost neither
///                            I/O nor a pool frame
///   readahead_batched_reads  physical reads that covered a run of more
///                            than one page (one seek+transfer instead of
///                            run-length of them)
///   readahead_pages          pages fetched beyond the demanded one by
///                            those batched reads (counted in page_reads
///                            too — readahead widens a read, it is still
///                            a page read)
///   readahead_hits           first-touch pool hits on a prefetched page:
///                            readahead that actually saved a disk read
///   readahead_wasted         prefetched pages evicted or dropped without
///                            ever being touched: readahead that paid
///                            transfer for nothing
#define ONION_IO_STAT_FIELDS(V) \
  V(page_reads)                 \
  V(cache_hits)                 \
  V(seeks)                      \
  V(entries_read)               \
  V(disk_bytes)                 \
  V(decoded_bytes)              \
  V(pages_skipped_by_filter)    \
  V(readahead_batched_reads)    \
  V(readahead_pages)            \
  V(readahead_hits)             \
  V(readahead_wasted)

/// Physical I/O counters.
///
/// Byte accounting rule: `disk_bytes` counts ON-DISK (encoded) bytes —
/// exactly what a page read transfers from the file, after compression —
/// and is the unit of ReadOptions::max_bytes budgets. `decoded_bytes`
/// counts the decoded entry bytes those same reads materialized in the
/// buffer pool. For uncompressed pages the two are equal (modulo format-v1
/// padding); for compressed codecs disk_bytes < decoded_bytes, and the
/// ratio is the measured compression win.
struct IoStats {
#define ONION_IO_STAT_DECL(name) uint64_t name = 0;
  ONION_IO_STAT_FIELDS(ONION_IO_STAT_DECL)
#undef ONION_IO_STAT_DECL

  void Reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& other) {
#define ONION_IO_STAT_ADD(name) name += other.name;
    ONION_IO_STAT_FIELDS(ONION_IO_STAT_ADD)
#undef ONION_IO_STAT_ADD
    return *this;
  }

  friend IoStats operator+(IoStats lhs, const IoStats& rhs) {
    lhs += rhs;
    return lhs;
  }

  /// Invokes fn("field_name", value) for every counter, in declaration
  /// order — what the JSON/Prometheus exporters iterate, so a new field
  /// shows up in every dump automatically.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
#define ONION_IO_STAT_VISIT(name) fn(#name, name);
    ONION_IO_STAT_FIELDS(ONION_IO_STAT_VISIT)
#undef ONION_IO_STAT_VISIT
  }
};

/// Lock-free I/O counters for per-table attribution on a SHARED buffer
/// pool: every table passes its own AtomicIoStats into the pool's
/// Fetch/ScanRange calls, so "who caused this I/O" survives many tables
/// sharing one pool (the pool's own IoStats stays the physical aggregate).
/// All updates are relaxed — the counters are statistics, not
/// synchronization.
struct AtomicIoStats {
#define ONION_IO_STAT_DECL(name) std::atomic<uint64_t> name{0};
  ONION_IO_STAT_FIELDS(ONION_IO_STAT_DECL)
#undef ONION_IO_STAT_DECL

  IoStats Snapshot() const {
    IoStats out;
#define ONION_IO_STAT_LOAD(name) \
  out.name = name.load(std::memory_order_relaxed);
    ONION_IO_STAT_FIELDS(ONION_IO_STAT_LOAD)
#undef ONION_IO_STAT_LOAD
    return out;
  }

  void Reset() {
#define ONION_IO_STAT_ZERO(name) name.store(0, std::memory_order_relaxed);
    ONION_IO_STAT_FIELDS(ONION_IO_STAT_ZERO)
#undef ONION_IO_STAT_ZERO
  }
};

}  // namespace onion

#endif  // ONION_STORAGE_IO_STATS_H_
