// The streaming query primitive shared by the in-memory SpatialIndex and
// the persistent SfcTable.
//
// A Cursor is a pull-based iterator over the entries of one box query (or a
// full scan): the caller drives it with Valid()/Next()/entry() and may stop
// at any point, so a query over a huge region no longer materializes its
// whole result set before the first entry is seen. Both engines hand out
// the same interface — SfcTable::NewBoxCursor() streams from a consistent
// snapshot of segment files and frozen memtables through the buffer pool,
// SpatialIndex::NewBoxCursor() streams from the B+-tree — so callers can
// swap the in-memory and on-disk paths without code changes.
//
// Errors travel through status() instead of silently-empty results: a
// cursor over an invalid box (or a table with a background error) is
// !Valid() with a non-OK status from the start.
//
// ReadOptions bound the work a cursor may do: `limit` caps delivered
// entries, `max_pages` and `max_bytes` cap page fetches (storage cursors
// only). A cursor that stops because a bound was hit reports
// hit_read_budget() == true with an OK status — truncation is not an
// error, but it is observable.
//
// SpatialEntry and the cursor vocabulary live in the top-level onion
// namespace (like IoStats) because they are shared between src/index and
// src/storage; the storage-snapshot cursor factory lives in onion::storage.
// This header deliberately stays lightweight — the storage machinery
// (SegmentReader, BufferPool, the curve) is only forward-declared, so the
// purely in-memory index layer does not transitively include the disk
// engine's headers.
//
// Lifetime: a cursor snapshots immutable state (segment readers are kept
// alive via shared_ptr even across compaction; matching memtable entries
// are copied at creation), but it borrows its engine's curve, buffer pool,
// and stats sinks — a cursor must not outlive the SfcTable / SpatialIndex
// that produced it.

#ifndef ONION_STORAGE_CURSOR_H_
#define ONION_STORAGE_CURSOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "sfc/types.h"
#include "storage/io_stats.h"

namespace onion::obs {
class Counter;    // obs/metrics.h — kept out of this lightweight header
class Histogram;
}  // namespace onion::obs

namespace onion {

class SpaceFillingCurve;
struct KeyRange;

/// A spatial point with an opaque payload id (the unit every query
/// interface returns; historically defined in index/spatial_index.h).
/// `seq` is the sequence number the write carried (0 for pre-versioning
/// data and for the in-memory SpatialIndex, which has no versions).
struct SpatialEntry {
  Cell cell;
  uint64_t payload = 0;
  uint64_t seq = 0;
};

/// A pinned read view of an SfcTable: every entry whose sequence number is
/// <= `sequence` is visible, everything written later is not. Obtain one
/// via SfcTable::GetSnapshot() / SfcDb::GetSnapshot() — the returned
/// shared_ptr is the pin; while it lives, compaction retains the versions
/// the snapshot can see. A Snapshot must not outlive the table that
/// produced it.
struct Snapshot {
  uint64_t sequence = 0;
  /// When the pin was taken (obs::NowMicros clock) — lets the engine report
  /// how long its oldest snapshot has been holding back compaction GC.
  uint64_t created_us = 0;
};

/// Per-read knobs honored by every cursor. Zero means "unbounded".
struct ReadOptions {
  /// Stop after this many entries have been delivered.
  uint64_t limit = 0;
  /// Stop before touching more than this many pages (buffer-pool fetches,
  /// resident or not). Storage cursors only; ignored in memory.
  uint64_t max_pages = 0;
  /// Stop before fetching more than this many bytes of page data, counted
  /// in ON-DISK (encoded) bytes — the same unit as IoStats::disk_bytes, so
  /// the budget bounds real I/O regardless of the segment codec.
  /// Storage cursors only; ignored in memory.
  uint64_t max_bytes = 0;
  /// Read at this pinned sequence instead of "latest": entries (and
  /// tombstones) with a higher sequence are invisible, so any number of
  /// cursors created with the same snapshot see byte-identical data no
  /// matter how many inserts, deletes, flushes, or compactions run in
  /// between (repeatable reads). Null reads the latest state. The
  /// snapshot must stay pinned (its shared_ptr alive) while this read
  /// runs. Ignored by the in-memory SpatialIndex, which is unversioned.
  const Snapshot* snapshot = nullptr;
};

/// Pull-based streaming iterator over query results, delivered in
/// nondecreasing curve-key order (ties between equal keys are in
/// unspecified order; sort by (key, payload) if you need the historical
/// Query() ordering).
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// True while a current entry exists. A cursor that starts in an error
  /// state, exhausts its data, hits a ReadOptions bound, or fails mid-read
  /// becomes permanently invalid.
  virtual bool Valid() const = 0;

  /// Advances to the next entry. Requires Valid().
  virtual void Next() = 0;

  /// The current entry. Requires Valid(); the reference is stable until
  /// the next Next() call.
  virtual const SpatialEntry& entry() const = 0;

  /// OK unless the cursor failed (invalid box, background error, ...).
  /// Check after the cursor goes !Valid() to distinguish exhaustion from
  /// failure.
  virtual Status status() const = 0;

  /// True when iteration stopped early because a ReadOptions bound
  /// (limit / max_pages / max_bytes) was reached, not because the data ran
  /// out. status() stays OK in that case.
  virtual bool hit_read_budget() const { return false; }

  /// Page fetches this cursor avoided through segment filters: bloom
  /// negatives on point ranges and zone-map-excluded pages. 0 for
  /// in-memory cursors (nothing to skip).
  virtual uint64_t pages_skipped_by_filter() const { return 0; }
};

/// Drains `cursor` into a vector (entries in cursor order). A convenience
/// for callers that do want full materialization.
std::vector<SpatialEntry> DrainCursor(Cursor* cursor);

/// A cursor over an already-materialized result vector (sorted by the
/// producer); honors options.limit. The in-memory SpatialIndex uses this.
std::unique_ptr<Cursor> NewVectorCursor(std::vector<SpatialEntry> entries,
                                        const ReadOptions& options);

/// An immediately-invalid cursor carrying `status` (must not be OK).
std::unique_ptr<Cursor> NewErrorCursor(Status status);

namespace storage {

class BufferPool;
class SegmentReader;
struct Entry;

/// A consistent read snapshot of an SfcTable's segment structure, taken
/// under the table lock. The shared_ptrs keep retired segments readable
/// for as long as the cursor lives, even across compaction.
struct SegmentSnapshot {
  /// Level-0 runs, oldest first; key ranges may overlap.
  std::vector<std::shared_ptr<SegmentReader>> l0;
  /// levels[i] is level i+1: sorted by min_key, pairwise disjoint.
  std::vector<std::vector<std::shared_ptr<SegmentReader>>> levels;
};

/// Streaming k-way-merge cursor over one query's decomposed key ranges:
/// for each range (in order) it lazily merges the memtable hits with every
/// overlapping L0 run and at most one contiguous group of segments per
/// deeper level, fetching pages through `pool` one at a time and
/// attributing the I/O to `io_stats` (may be null). `memtable_entries`
/// are the snapshot-time matches from the active + pending memtables,
/// sorted by (key, payload). `curve` maps keys back to cells and must
/// outlive the cursor.
///
/// `query_box` (may be null) is the spatial box the ranges decompose —
/// when given, it must be the EXACT decomposition source (every key in
/// every range maps into the box), which is what makes zone-map page
/// skipping lossless: a page whose cell bounding box misses the box can
/// hold no key of any range. Point ranges (lo == hi) additionally probe
/// each candidate segment's bloom filter through the pool before touching
/// any page.
/// `next_latency_us` (may be null) receives the duration of every
/// positioning step — the initial seek and each Next() — in microseconds,
/// feeding the table's cursor.next_us histogram.
std::unique_ptr<Cursor> NewSnapshotCursor(
    const SpaceFillingCurve* curve, std::vector<KeyRange> ranges,
    const Box* query_box, std::vector<Entry> memtable_entries,
    SegmentSnapshot segments, std::shared_ptr<BufferPool> pool,
    AtomicIoStats* io_stats, const ReadOptions& options,
    obs::Histogram* next_latency_us = nullptr);

class SfcTable;

/// The resolution half of a secondary-index query (SfcDb::NewIndexCursor's
/// engine): wraps a cursor over the hidden index table — whose entries
/// carry the BASE table's curve key as payload — and emits the base rows.
/// Each distinct index cell is resolved once (maintenance writes one index
/// entry per base put, so an index cell holds one entry per live base
/// version — injective extractors make them all identical) via a
/// point Get on `base_table` at `base_snapshot`, and every payload stored
/// at the base cell is emitted (ascending per cell), in nondecreasing
/// INDEX-curve-key order overall. Emitted entries carry seq 0 — the point
/// Get returns the visible payload multiset, not per-version stamps.
///
/// An index entry whose base row no longer exists (possible only when
/// writes bypassed SfcDb::Write) is skipped and counted in
/// `dangling_entries`; `resolved_rows` counts emitted base rows (both
/// counters may be null). A base key outside the base universe is
/// Corruption. `limit` caps emitted entries (hit_read_budget() == true
/// when it stops iteration early); the inner cursor's own page/byte
/// budgets and status propagate. `pin` (type-erased, may be null) keeps
/// the snapshot that `base_snapshot` points into alive for the cursor's
/// lifetime. The cursor must not outlive `base_table`.
std::unique_ptr<Cursor> NewIndexResolveCursor(
    std::unique_ptr<Cursor> index_cursor, SfcTable* base_table,
    const Snapshot* base_snapshot, std::shared_ptr<const void> pin,
    uint64_t limit, obs::Counter* dangling_entries = nullptr,
    obs::Counter* resolved_rows = nullptr);

}  // namespace storage
}  // namespace onion

#endif  // ONION_STORAGE_CURSOR_H_
