// K-way merge compaction: folds several sorted segments into fewer. Fewer
// overlapping runs means fewer per-query seeks (every extra run a range
// scan touches costs at least one seek in the buffer-pool accounting), so
// compaction is how the engine converges back to the paper's one-run model
// where a query's seek count equals its clustering number.
//
// Two entry points:
//   MergeSegments        — everything into ONE output (major compaction).
//   MergeSegmentsLeveled — into a sequence of bounded, key-disjoint
//                          outputs, the unit of leveled compaction: L0's
//                          overlapping flush runs are folded (together with
//                          the overlapping part of the next level) into
//                          non-overlapping level segments, so a box query
//                          probes at most one segment of that level per
//                          decomposed key range.

#ifndef ONION_STORAGE_COMPACTION_H_
#define ONION_STORAGE_COMPACTION_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/segment.h"

namespace onion::storage {

/// Merges the sorted inputs into `out` (which must be fresh). Reads every
/// input sequentially page by page; ties between inputs are broken by input
/// order, so earlier inputs' entries come first among equal keys. The
/// caller still owns out->Finish().
Status MergeSegments(const std::vector<const SegmentReader*>& inputs,
                     SegmentWriter* out);

/// Merges the sorted inputs into one or more key-disjoint outputs. A new
/// output is started once the current one holds at least
/// `max_output_entries` entries AND the next key is strictly greater than
/// the last written key (so a run of duplicate keys never straddles two
/// outputs — the outputs' [min_key, max_key] ranges stay disjoint).
/// `open_output` must return a fresh writer each time it is called; every
/// writer is Finish()ed (and therefore durably synced) here and appended to
/// `*outputs`. With all-empty inputs no output is opened at all.
Status MergeSegmentsLeveled(
    const std::vector<const SegmentReader*>& inputs,
    uint64_t max_output_entries,
    const std::function<std::unique_ptr<SegmentWriter>()>& open_output,
    std::vector<std::unique_ptr<SegmentWriter>>* outputs);

}  // namespace onion::storage

#endif  // ONION_STORAGE_COMPACTION_H_
