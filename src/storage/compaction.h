// K-way merge compaction: folds several sorted segments into one. Fewer
// runs means fewer per-query seeks (every extra run a range scan touches
// costs at least one seek in the buffer-pool accounting), so compaction is
// how the engine converges back to the paper's one-run model where a
// query's seek count equals its clustering number.

#ifndef ONION_STORAGE_COMPACTION_H_
#define ONION_STORAGE_COMPACTION_H_

#include <vector>

#include "common/status.h"
#include "storage/segment.h"

namespace onion::storage {

/// Merges the sorted inputs into `out` (which must be fresh). Reads every
/// input sequentially page by page; ties between inputs are broken by input
/// order, so earlier inputs' entries come first among equal keys. The
/// caller still owns out->Finish().
Status MergeSegments(const std::vector<const SegmentReader*>& inputs,
                     SegmentWriter* out);

}  // namespace onion::storage

#endif  // ONION_STORAGE_COMPACTION_H_
