// K-way merge compaction: folds several sorted segments into fewer. Fewer
// overlapping runs means fewer per-query seeks (every extra run a range
// scan touches costs at least one seek in the buffer-pool accounting), so
// compaction is how the engine converges back to the paper's one-run model
// where a query's seek count equals its clustering number.
//
// The merge is also where MVCC garbage collection happens: entries
// shadowed by a tombstone are dropped unless a live snapshot still pins
// the shadowed version, and tombstones themselves are dropped once the
// merge is bottom-most (no older data for the key below the output) and
// no snapshot predates them. The rules are conservative — when in doubt an
// entry is kept, and a later compaction collects it.
//
// Two entry points:
//   MergeSegments        — everything into ONE output (major compaction).
//   MergeSegmentsLeveled — into a sequence of bounded, key-disjoint
//                          outputs, the unit of leveled compaction: L0's
//                          overlapping flush runs are folded (together with
//                          the overlapping part of the next level) into
//                          non-overlapping level segments, so a box query
//                          probes at most one segment of that level per
//                          decomposed key range.

#ifndef ONION_STORAGE_COMPACTION_H_
#define ONION_STORAGE_COMPACTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/segment.h"

namespace onion::storage {

/// What one merge did, for the compaction metrics (entries GC'd =
/// entries_in - entries_out; bytes rewritten come from the finished
/// output segments, which the caller owns).
struct CompactionStats {
  uint64_t entries_in = 0;   ///< entries read from the inputs
  uint64_t entries_out = 0;  ///< entries surviving into the outputs
};

/// MVCC inputs of a merge: which versions may be garbage-collected.
struct CompactionOptions {
  /// Sequence numbers of every live snapshot, sorted ascending. A put
  /// shadowed by a tombstone survives while any snapshot falls between
  /// the put and the tombstone (that snapshot still sees the put).
  std::vector<uint64_t> snapshots;
  /// True when no data older than these inputs exists below the output
  /// (the merge covers the deepest level holding its key range). Only
  /// then may tombstones be dropped — and only those no snapshot
  /// predates — because everything they shadow dies in the same merge.
  bool bottom_level = false;
  /// When non-null, receives the merge's entry accounting (added to, not
  /// reset — a caller can aggregate several merges).
  CompactionStats* stats = nullptr;
};

/// Merges the sorted inputs into `out` (which must be fresh), applying the
/// MVCC retention rules of `options`. Reads every input sequentially page
/// by page; ties between equal keys keep each version (versions are
/// distinct entries), so nothing is lost that a snapshot or latest read
/// could still see. The caller still owns out->Finish().
Status MergeSegments(const std::vector<const SegmentReader*>& inputs,
                     SegmentWriter* out,
                     const CompactionOptions& options = {});

/// Merges the sorted inputs into one or more key-disjoint outputs under
/// the same MVCC retention rules. A new output is started once the current
/// one holds at least `max_output_entries` entries AND the next key is
/// strictly greater than the last written key (so a run of equal keys
/// never straddles two outputs — the outputs' [min_key, max_key] ranges
/// stay disjoint). `open_output` must return a fresh writer each time it
/// is called; every writer is Finish()ed (and therefore durably synced)
/// here and appended to `*outputs`. With all-empty (or fully collected)
/// inputs no output is opened at all.
Status MergeSegmentsLeveled(
    const std::vector<const SegmentReader*>& inputs,
    uint64_t max_output_entries,
    const std::function<std::unique_ptr<SegmentWriter>()>& open_output,
    std::vector<std::unique_ptr<SegmentWriter>>* outputs,
    const CompactionOptions& options = {});

}  // namespace onion::storage

#endif  // ONION_STORAGE_COMPACTION_H_
