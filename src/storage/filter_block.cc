#include "storage/filter_block.h"

#include "storage/codec.h"

namespace onion::storage {
namespace {

/// Odd multipliers that spread the low hash bits across the eight words of
/// a block (the constants popularized by Parquet's split-block filter).
constexpr uint32_t kBlockSalts[8] = {
    0x47b6137bU, 0x44974d91U, 0x8824ad5bU, 0xa2b7289dU,
    0x705495c7U, 0x2df1424bU, 0x9efc4947U, 0x5c6bfb31U,
};

/// splitmix64 finalizer: a full-avalanche 64-bit mix of the key.
uint64_t HashKey(Key key) {
  uint64_t h = key + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Block index for a hash: multiply-shift of the high 32 bits, uniform
/// over [0, num_blocks) without a modulo.
size_t BlockOf(uint64_t hash, size_t num_blocks) {
  return static_cast<size_t>(
      ((hash >> 32) * static_cast<uint64_t>(num_blocks)) >> 32);
}

/// Bit position of word `w` for the low 32 hash bits: top 5 bits of a
/// salted multiply.
uint32_t BitOf(uint32_t hash32, int w) {
  return (hash32 * kBlockSalts[w]) >> 27;
}

}  // namespace

BloomFilterBuilder::BloomFilterBuilder(uint32_t bits_per_key)
    : bits_per_key_(bits_per_key) {}

void BloomFilterBuilder::AddKey(Key key) {
  if (bits_per_key_ == 0) return;
  hashes_.push_back(HashKey(key));
}

std::vector<uint8_t> BloomFilterBuilder::Finish() const {
  if (bits_per_key_ == 0 || hashes_.empty()) return {};
  const uint64_t bits =
      static_cast<uint64_t>(hashes_.size()) * bits_per_key_;
  uint64_t bytes = (bits + 7) / 8;
  bytes = ((bytes + kBloomBlockBytes - 1) / kBloomBlockBytes) *
          kBloomBlockBytes;
  if (bytes < kBloomBlockBytes) bytes = kBloomBlockBytes;
  std::vector<uint8_t> out(bytes, 0);
  const size_t num_blocks = bytes / kBloomBlockBytes;
  for (const uint64_t hash : hashes_) {
    uint8_t* block = out.data() + BlockOf(hash, num_blocks) * kBloomBlockBytes;
    const auto hash32 = static_cast<uint32_t>(hash);
    for (int w = 0; w < 8; ++w) {
      const uint32_t word = GetU32(block + w * 4);
      PutU32(block + w * 4, word | (1U << BitOf(hash32, w)));
    }
  }
  return out;
}

bool BloomMayContain(const uint8_t* data, size_t size, Key key) {
  if (data == nullptr || size == 0) return true;
  const size_t num_blocks = size / kBloomBlockBytes;
  if (num_blocks == 0) return true;
  const uint64_t hash = HashKey(key);
  const uint8_t* block = data + BlockOf(hash, num_blocks) * kBloomBlockBytes;
  const auto hash32 = static_cast<uint32_t>(hash);
  for (int w = 0; w < 8; ++w) {
    const uint32_t word = GetU32(block + w * 4);
    if ((word & (1U << BitOf(hash32, w))) == 0) return false;
  }
  return true;
}

}  // namespace onion::storage
