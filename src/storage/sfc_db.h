// SfcDb: a catalog of named SfcTables sharing one buffer pool and one
// background worker pool — the multi-table face of the storage engine.
//
// One process serving many spatial tables should not pay one page cache
// and one background thread PER table: SfcDb owns a single BufferPool
// (sized by SfcDbOptions::pool_pages, arbitrating memory across every
// table's segments — frames are keyed by process-unique source ids, so
// tables can never alias each other's pages) and a single WorkerPool of
// `num_workers` threads draining all tables' flush/compaction work with
// per-table fairness (storage/worker_pool.h). Per-table I/O attribution
// survives the sharing: each table's io_stats() counts only its own
// fetches (AtomicIoStats plumbed through every pool call), while
// pool_stats() reports the physical aggregate.
//
// On-disk layout of a database directory:
//   CATALOG         text file: format line ("onion-sfc-db 2") followed by
//                   one "table <name>" line per table, sorted by name,
//                   then one "index <table> <index> <extractor> <curve>
//                   <dir>" line per secondary index
//   BATCHLOG        the batch journal: one checksummed record per
//                   multi-table WriteBatch commit, the bridge that makes
//                   a batch atomic ACROSS tables (within one table its
//                   ops are a single WAL record already). Replayed —
//                   idempotently, by per-table sequence comparison — and
//                   truncated on Open.
//   <name>/         one SfcTable directory per cataloged table (MANIFEST,
//                   seg_*.sfc, wal_*.log — see docs/storage_format.md)
//   <t>__idx__<i>/  one hidden SfcTable directory per secondary index
//                   (possibly generation-suffixed after a curve
//                   migration); live only while a catalog `index` line
//                   names it
//
// Secondary indexes (storage/index_spec.h): CreateIndex(table, spec)
// re-keys the table's cells through spec.extractor and spec.curve into a
// hidden index table. From then on every Put/Delete the table receives
// through Write() is EXPANDED with the matching index ops, turning even a
// single-table batch into a journaled multi-table one — so the BATCHLOG
// guarantees recovery can never observe a base row without its index
// entry, or vice versa. (The flip side: writes to an indexed table MUST
// go through SfcDb::Write — direct SfcTable::Insert/Delete on the base
// handle would silently bypass index maintenance.) NewIndexCursor scans
// the index by box and resolves base rows snapshot-consistently;
// AdviseCurve ranks every registry curve on the boxes those scans
// actually served (or caller-provided ones), and MigrateIndexCurve
// rebuilds the index under the recommendation offline — crash-safe via
// the same orphan-GC rule as table creation.
//
// Versioned writes and reads: Write(WriteBatch&&) commits any mix of
// Put/Delete ops spanning any number of tables atomically — recovery
// after a crash at any instant replays all of the batch or none of it.
// GetSnapshot() pins every open table at its current sequence in one
// atomic step (no batch can land in between), so a set of cursors over
// several tables reads one consistent cross-table version.
//
// The CATALOG is rewritten atomically (tmp + fsync + rename + dir fsync)
// on every CreateTable/DropTable, and is the source of truth: a table
// directory is live only while the catalog names it. Creation writes the
// table directory FIRST and the catalog second; a crash in between leaves
// an orphan directory that the next Open() garbage-collects. Dropping
// rewrites the catalog FIRST and deletes the directory second; a crash in
// between leaves the same kind of orphan. Either way Open() converges to
// exactly the cataloged tables.
//
// Thread safety: all catalog operations (Create/Open/Drop/List/Close) are
// serialized by an internal mutex. The SfcTable* handles returned remain
// valid until that table is dropped or the database is closed/destroyed;
// table operations themselves (Insert/cursors/Flush/...) are concurrent
// as documented in storage/sfc_table.h. Destroying an SfcDb without
// Close() has crash semantics, exactly like destroying an unclosed
// SfcTable: nothing is flushed, WALs keep unflushed data recoverable.

#ifndef ONION_STORAGE_SFC_DB_H_
#define ONION_STORAGE_SFC_DB_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/advisor.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/disk_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/index_spec.h"
#include "storage/sfc_table.h"
#include "storage/worker_pool.h"
#include "storage/write_batch.h"

namespace onion::storage {

/// A consistent cross-table read pin: one per-table Snapshot for every
/// table open at GetSnapshot() time, all taken with multi-table commits
/// excluded, so the views agree on every WriteBatch (all-or-nothing).
/// Feed ForTable() into ReadOptions::snapshot. Must not outlive the db.
class DbSnapshot {
 public:
  /// The pin of `table`, or nullptr when the table was not open at
  /// snapshot time (reads of such a table see latest state).
  const Snapshot* ForTable(const SfcTable* table) const {
    const auto it = pins_.find(table);
    return it != pins_.end() ? it->second.get() : nullptr;
  }

 private:
  friend class SfcDb;
  std::map<const SfcTable*, std::shared_ptr<const Snapshot>> pins_;
};

struct SfcDbOptions {
  /// Capacity of the SHARED buffer pool, in pages, arbitrating cache
  /// memory across all tables (SfcTableOptions::pool_pages is ignored for
  /// tables served by a db).
  uint64_t pool_pages = 4096;
  /// Readahead budget of the shared pool: maximum EXTRA pages one miss
  /// may pull in with a single batched read (0 = disabled; see
  /// storage/buffer_pool.h). SfcTableOptions::readahead_pages is likewise
  /// ignored for tables served by a db.
  uint64_t readahead_pages = 0;
  /// Background worker threads shared by all tables' flushes and
  /// compactions (round-robin per-table fairness).
  size_t num_workers = 2;
  /// Defaults applied by CreateTable/OpenTable overloads that take no
  /// per-table options.
  SfcTableOptions table_options;
};

/// Read knobs of NewIndexCursor. Zero / null means "unbounded" / "pin a
/// fresh snapshot".
struct IndexReadOptions {
  /// Stop after this many BASE rows have been delivered.
  uint64_t limit = 0;
  /// Page/byte budgets applied to the index-table scan (the base-row
  /// point Gets are not budgeted — each touches O(1) pages).
  uint64_t max_pages = 0;
  uint64_t max_bytes = 0;
  /// Read index and base at this consistent cross-table pin. Null pins a
  /// fresh snapshot internally (kept alive by the cursor). A caller-
  /// provided snapshot must have been taken while both the base table and
  /// the index were open, or the read degrades to latest state for the
  /// uncovered side.
  std::shared_ptr<const DbSnapshot> snapshot;
};

class SfcDb {
 public:
  /// Opens the database at `dir`, creating the directory and an empty
  /// CATALOG when absent. Orphaned table directories (from a crash
  /// between a catalog rewrite and the matching directory create/delete)
  /// are garbage-collected here. Tables are NOT opened eagerly — use
  /// OpenTable.
  static Result<std::unique_ptr<SfcDb>> Open(const std::string& dir,
                                             const SfcDbOptions& options = {});

  /// Crash semantics when Close() was not called first: stops background
  /// work without flushing (WALs keep unflushed entries recoverable).
  ~SfcDb();

  SfcDb(const SfcDb&) = delete;
  SfcDb& operator=(const SfcDb&) = delete;

  /// Creates a table named `name` (letters, digits, '_', '-') keyed by the
  /// named curve over `universe`, catalogs it, and returns the open
  /// handle. The handle stays valid until DropTable(name) or Close().
  Result<SfcTable*> CreateTable(const std::string& name,
                                const std::string& curve_name,
                                const Universe& universe);
  Result<SfcTable*> CreateTable(const std::string& name,
                                const std::string& curve_name,
                                const Universe& universe,
                                const SfcTableOptions& options);

  /// Opens a cataloged table (WAL replay included), or returns the
  /// already-open handle. NotFound for names not in the catalog.
  Result<SfcTable*> OpenTable(const std::string& name);
  Result<SfcTable*> OpenTable(const std::string& name,
                              const SfcTableOptions& options);

  /// The open handle for `name`, or nullptr when the table is not
  /// currently open (or not cataloged).
  SfcTable* GetTable(const std::string& name) const;

  /// Commits every op of `batch` atomically: per table the ops land as
  /// one WAL record, and a batch spanning several tables is journaled in
  /// BATCHLOG first, so crash recovery replays all of it or none of it.
  /// Ops are validated (cataloged table, cell inside its universe) before
  /// anything is written — a validation error applies nothing. Tables the
  /// batch names are opened on demand. Concurrent Write calls are
  /// serialized with each other and with GetSnapshot (single-table
  /// Insert/Delete stay concurrent). When any involved table was opened
  /// with wal_fsync, the journal and every table record are fsynced
  /// before the commit is acknowledged.
  Status Write(WriteBatch&& batch);

  /// Pins every open table at its current sequence, atomically with
  /// respect to Write (a WriteBatch is visible in all pins or in none).
  /// Tables opened after the snapshot are not covered. The pins release
  /// when the returned shared_ptr drops.
  Result<std::shared_ptr<const DbSnapshot>> GetSnapshot();

  /// Uncatalogs `name` (atomic CATALOG rewrite), closes its open handle
  /// if any, and deletes the table directory — together with every
  /// secondary index registered on it. NotFound for unknown names.
  Status DropTable(const std::string& name);

  /// Cataloged table names, sorted.
  std::vector<std::string> ListTables() const;

  // --- Secondary indexes (storage/index_spec.h; see the file comment for
  // the atomicity rule and the write-path contract).

  /// Registers a secondary index on cataloged table `table`: creates the
  /// hidden index table keyed by spec.curve over the extractor's index
  /// universe, BACKFILLS it from the base table's current contents
  /// (offline: blocks Write/GetSnapshot for the duration), and catalogs
  /// it. From the moment this returns OK, Write() maintains the index
  /// atomically with the base. Crash-safe: the hidden directory becomes
  /// live only with the catalog rewrite; a crash mid-backfill leaves an
  /// orphan the next Open() collects. InvalidArgument for bad names,
  /// unknown extractors/curves, extractor/universe mismatches, or a
  /// duplicate index name; NotFound for an uncataloged table.
  Status CreateIndex(const std::string& table, const SecondaryIndexSpec& spec);

  /// Unregisters the index (atomic catalog rewrite) and deletes its hidden
  /// directory. NotFound when the table or index does not exist.
  Status DropIndex(const std::string& table, const std::string& index);

  /// The registered index specs of `table`, in creation order (empty for
  /// unknown tables).
  std::vector<SecondaryIndexSpec> ListIndexes(const std::string& table) const;

  /// The hidden index table behind (table, index) — introspection for
  /// tests, benches, and metrics tooling. Opens it if needed. Do NOT
  /// write through this handle; index contents are maintained by Write().
  Result<SfcTable*> IndexTable(const std::string& table,
                               const std::string& index);

  /// Streams the base rows whose INDEX cells fall inside `box` (a box in
  /// index-cell space, i.e. post-extractor coordinates), in nondecreasing
  /// index-curve-key order; each delivered entry is a base row (base
  /// cell + payload). Index and base are read at one consistent
  /// DbSnapshot — options.snapshot, or a fresh pin taken here and held by
  /// the cursor. The box is also recorded in the index's observed-query
  /// ring, the workload AdviseCurve consumes. Errors (unknown table or
  /// index, out-of-universe box, closed db) arrive as an error cursor.
  /// The cursor must not outlive the database.
  std::unique_ptr<Cursor> NewIndexCursor(const std::string& table,
                                         const std::string& index,
                                         const Box& box,
                                         const IndexReadOptions& options = {});

  /// Ranks every registry curve on `boxes` (empty: the index's recorded
  /// observed-query ring) under `model` and returns the cheapest —
  /// analysis/advisor.h wired to this index's universe. InvalidArgument
  /// when no boxes are available. Pure analysis: no index state changes;
  /// pass the recommendation to MigrateIndexCurve to act on it.
  Result<CurveAdvice> AdviseCurve(const std::string& table,
                                  const std::string& index,
                                  const std::vector<Box>& boxes = {},
                                  const DiskModel& model = DiskModel::Hdd());

  /// Rebuilds the index under `new_curve` (offline: blocks Write and
  /// GetSnapshot for the duration): backfills a fresh generation of the
  /// hidden table from the base, then atomically swaps the catalog to it
  /// and deletes the old generation. A crash at any instant leaves
  /// exactly one cataloged, complete index directory (the other
  /// generation is an orphan for the next Open). No-op when the index
  /// already uses `new_curve`.
  Status MigrateIndexCurve(const std::string& table, const std::string& index,
                           const std::string& new_curve);

  /// Clean shutdown: Close()s every open table (flush + quiesce), then
  /// stops the shared workers. Idempotent; returns the first table error.
  /// After Close() every catalog operation fails and previously returned
  /// SfcTable* handles are invalid.
  Status Close();

  const std::string& dir() const { return dir_; }
  size_t num_workers() const { return options_.num_workers; }
  /// Physical aggregate over all tables (per-table shares live in each
  /// table's io_stats()).
  IoStats pool_stats() const { return pool_->stats(); }
  uint64_t pool_resident_pages() const { return pool_->resident_pages(); }

  /// One dump of the whole engine: the db-level registry (batch-commit
  /// latency, worker queue/wait, pool gauges), the shared pool's physical
  /// I/O aggregate with its hit ratio, and every open table's DumpMetrics
  /// — as one JSON object or Prometheus text (per-table series carry a
  /// table="name" label). Metric catalog in docs/observability.md.
  std::string DumpMetrics(
      obs::MetricsFormat format = obs::MetricsFormat::kJson) const;
  /// The shared trace ring (flush/compaction/batch-commit events of ALL
  /// tables, one interleaved timeline) as a JSON array.
  std::string DumpTrace() const { return trace_->ToJson(); }
  /// The shared trace ring itself — layers above the engine (the net
  /// server's session-expiry sweep) deposit their events into the same
  /// timeline.
  obs::TraceRing& trace() const { return *trace_; }
  /// The db-level metric registry (tests; tables have their own).
  obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  SfcDb(std::string dir, const SfcDbOptions& options);

  /// One registered secondary index (in-memory face of a catalog `index`
  /// line). Guarded by db_mu_.
  struct IndexInfo {
    SecondaryIndexSpec spec;
    /// Hidden table directory name (also its open_tables_ key):
    /// "<table>__idx__<index>", generation-suffixed after migrations.
    std::string dir;
    const IndexExtractor* extractor = nullptr;
    /// Bounded ring of the boxes NewIndexCursor served — the observed
    /// workload AdviseCurve evaluates by default.
    std::vector<Box> observed_boxes;
    size_t observed_next = 0;
  };

  std::string TablePath(const std::string& name) const;
  std::string CatalogPath() const;
  std::string BatchLogPath() const;
  /// Atomically rewrites CATALOG from catalog_ + indexes_.
  Status WriteCatalogLocked() const ONION_REQUIRES(db_mu_);
  Result<SfcTable*> OpenTableLocked(const std::string& name,
                                    const SfcTableOptions& options)
      ONION_REQUIRES(db_mu_);
  /// OpenTableLocked for cataloged tables OR hidden index directories
  /// (which the public OpenTable deliberately refuses).
  Result<SfcTable*> OpenAnyTableLocked(const std::string& name,
                                       const SfcTableOptions& options)
      ONION_REQUIRES(db_mu_);
  IndexInfo* FindIndexLocked(const std::string& table,
                             const std::string& index)
      ONION_REQUIRES(db_mu_);
  /// Builds (creates + backfills from the base's current contents) one
  /// hidden index table directory. Requires batch_mu_ + db_mu_ held (no
  /// concurrent writes). On failure the directory is removed.
  Result<std::unique_ptr<SfcTable>> BuildIndexTableLocked(
      SfcTable* base, const IndexExtractor& extractor,
      const std::string& curve_name, const std::string& dir_name)
      ONION_REQUIRES(batch_mu_, db_mu_);
  /// (Re)creates an empty BATCHLOG (header only).
  Status ResetBatchLogLocked() ONION_REQUIRES(batch_mu_);
  /// Open-time recovery: applies every journaled batch op a table's own
  /// WAL does not already cover (idempotent via per-table last_sequence),
  /// then truncates the journal. Tolerates a torn tail.
  Status ReplayBatchLog() ONION_EXCLUDES(batch_mu_, db_mu_);
  /// One table's share of a WriteBatch commit: its validated ops, the
  /// sequence range reserved for them, and the WAL handles pinned while
  /// the table's writer lock is held. Built by Write() under db_mu_,
  /// consumed by CommitSlicesLocked under batch_mu_.
  struct TableSlice {
    SfcTable* table = nullptr;
    std::string name;
    std::vector<WalOp> ops;
    uint64_t first_seq = 0;
    std::shared_ptr<WalWriter> wal;
    uint64_t record = 0;
  };
  /// The commit fan-out of Write(): journals a multi-table batch and
  /// applies every table's slice while holding ALL involved tables' writer
  /// locks (a dynamic, sorted set — see the definition for why the body's
  /// lock tracking is opted out while call sites still check batch_mu_).
  /// `journal_bytes` receives the bytes appended to BATCHLOG (0 for
  /// single-table batches, which skip the journal).
  Status CommitSlicesLocked(std::vector<TableSlice>* slices, bool want_fsync,
                            uint64_t* journal_bytes)
      ONION_REQUIRES(batch_mu_) ONION_NO_THREAD_SAFETY_ANALYSIS;

  const std::string dir_;
  const SfcDbOptions options_;

  // Observability (declared before pool_/workers_ so worker threads
  // recording into the registry never outlive it). The trace ring is
  // shared with every table (SharedResources::trace).
  const std::shared_ptr<obs::MetricsRegistry> metrics_ =
      std::make_shared<obs::MetricsRegistry>();
  const std::shared_ptr<obs::TraceRing> trace_ =
      std::make_shared<obs::TraceRing>();
  obs::Histogram* batch_commit_us_ = nullptr;  // resolved in the ctor

  std::shared_ptr<BufferPool> pool_;
  std::unique_ptr<WorkerPool> workers_;

  // Serializes multi-table commits (and GetSnapshot against them) and
  // guards the batch journal. Acquisition order: batch_mu_ strictly
  // before db_mu_ and before any table's writer lock. Mutable so the
  // const DumpMetrics can read batch_log_bytes_.
  mutable Mutex batch_mu_ ONION_ACQUIRED_BEFORE(db_mu_);
  // Lazily created on first use.
  std::FILE* batch_log_ ONION_GUARDED_BY(batch_mu_) = nullptr;
  uint64_t batch_log_bytes_ ONION_GUARDED_BY(batch_mu_) = 0;
  // A journaled record failed to apply to every table: it is the only
  // repair copy, so truncation is disabled until the next Open replays
  // it. If the journal ALSO suffers an append failure in that state,
  // multi-table commits are refused entirely (poisoned) until reopen.
  bool batch_log_needs_replay_ ONION_GUARDED_BY(batch_mu_) = false;
  bool batch_log_poisoned_ ONION_GUARDED_BY(batch_mu_) = false;

  mutable Mutex db_mu_;
  // Sorted table names.
  std::vector<std::string> catalog_ ONION_GUARDED_BY(db_mu_);
  /// Secondary indexes per base table, in creation order. An entry's
  /// hidden table may or may not be open; its directory is live on disk
  /// exactly while the entry exists (catalog `index` lines mirror this).
  std::map<std::string, std::vector<IndexInfo>> indexes_
      ONION_GUARDED_BY(db_mu_);
  // Declared after workers_/pool_ so tables are destroyed first (their
  // destructors unregister from the worker pool).
  std::map<std::string, std::unique_ptr<SfcTable>> open_tables_
      ONION_GUARDED_BY(db_mu_);
  bool closed_ ONION_GUARDED_BY(db_mu_) = false;
  // Index read-path metric handles (resolved in the ctor).
  obs::Counter* index_queries_ = nullptr;
  obs::Counter* index_dangling_ = nullptr;
  obs::Counter* index_rows_resolved_ = nullptr;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_SFC_DB_H_
