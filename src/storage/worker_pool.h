// A shared pool of background worker threads with per-client fairness.
//
// One SfcDb owns one WorkerPool; every table it serves registers as a
// client with a `run_one` callback that performs ONE unit of background
// work (one memtable flush or one compaction round) and returns whether
// more work remains. Workers pick armed clients round-robin, so a table
// with a deep backlog cannot starve its neighbors: each pass over the ring
// gives every armed table at most one unit. A standalone SfcTable owns a
// private single-thread pool, so the table code has exactly one
// background-execution path.
//
// Guarantees:
//   * at most one worker runs a given client's callback at a time (table
//     background work is internally single-threaded by design);
//   * Notify() is cheap and may be called with arbitrary other locks held
//     (the pool never calls back into a client while holding its own
//     mutex);
//   * Unregister() blocks until the client's callback is not running and
//     never will run again — after it returns the client may be destroyed.

#ifndef ONION_STORAGE_WORKER_POOL_H_
#define ONION_STORAGE_WORKER_POOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace onion::storage {

class WorkerPool {
 public:
  using ClientId = uint64_t;

  /// Starts `num_threads` workers (clamped to >= 1).
  explicit WorkerPool(size_t num_threads);

  /// Stops and joins all workers. Clients should already be unregistered;
  /// any that are not will simply never run again.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Registers a client. `run_one` performs one unit of work and returns
  /// true when more work may remain (the client is then re-armed
  /// immediately). The client starts un-armed; call Notify() when work
  /// appears.
  ClientId Register(std::function<bool()> run_one);

  /// Blocks until `id`'s callback is not executing, then removes it. After
  /// this returns the callback will never be invoked again. No-op for
  /// unknown ids.
  void Unregister(ClientId id);

  /// Arms `id`: some worker will call its run_one soon. No-op for unknown
  /// or unregistering ids. Safe to call from inside the client's own
  /// run_one.
  void Notify(ClientId id);

  size_t num_threads() const { return threads_.size(); }

  /// Wires latency sinks (null members record nothing; the sinks must
  /// outlive the pool). `wait_us` gets the arm-to-run delay of every unit
  /// of work — how long a table's flush/compaction queued behind other
  /// clients — and `tasks_run` counts completed units. Call before
  /// clients start arming (the owner does it right after construction).
  void SetMetrics(obs::Histogram* wait_us, obs::Counter* tasks_run);

  /// Clients currently armed and waiting for a worker (the queue depth a
  /// gauge exporter samples).
  size_t queue_depth() const;

 private:
  struct Client {
    std::function<bool()> run_one;
    bool armed = false;
    bool running = false;
    bool removed = false;  // Unregister() in progress: stop scheduling
    uint64_t armed_at_us = 0;  // NowMicros() when armed (wait-time start)
  };

  void WorkerMain();

  // Metric sinks (may stay null). Written once by SetMetrics before the
  // clients arm; read by workers under mu_.
  obs::Histogram* wait_us_ ONION_GUARDED_BY(mu_) = nullptr;
  obs::Counter* tasks_run_ ONION_GUARDED_BY(mu_) = nullptr;

  mutable Mutex mu_;
  CondVar work_cv_;  // workers wait for armed clients
  CondVar idle_cv_;  // Unregister waits for !running
  // Client STATE is guarded by mu_; a client's map node is stable, and
  // WorkerMain calls run_one() through its iterator with mu_ released
  // (Unregister blocks on `running`, so the node cannot die mid-call).
  std::map<ClientId, Client> clients_ ONION_GUARDED_BY(mu_);
  ClientId next_id_ ONION_GUARDED_BY(mu_) = 1;
  // Last client id scheduled (the round-robin fairness point).
  ClientId rr_cursor_ ONION_GUARDED_BY(mu_) = 0;
  bool stop_ ONION_GUARDED_BY(mu_) = false;
  // Started in the constructor, joined in the destructor; never touched
  // in between except num_threads()'s size() read — unguarded by design.
  std::vector<std::thread> threads_;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_WORKER_POOL_H_
