#include "storage/page_codec.h"

#include <algorithm>

#include "common/macros.h"
#include "storage/codec.h"

namespace onion::storage {
namespace {

void PutVarint64(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Advances *p past one varint; false on truncation or a value that would
/// not fit in 64 bits.
bool GetVarint64(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*p == end) return false;
    const uint8_t byte = *(*p)++;
    // The 10th byte carries bits 63.. only; more than one payload bit there
    // means the value overflows a u64.
    if (shift == 63 && byte > 1) return false;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = value;
      return true;
    }
  }
  return false;
}

// ---- kBitpack helpers --------------------------------------------------

/// Bits needed to represent v (0 for v == 0).
int BitWidth(uint64_t v) {
  int width = 0;
  while (v != 0) {
    ++width;
    v >>= 1;
  }
  return width;
}

/// LSB-first bit packer; values must already fit `width` bits.
class BitWriter {
 public:
  explicit BitWriter(std::vector<uint8_t>* out) : out_(out) {}

  void Put(uint64_t v, int width) {
    int filled = 0;
    while (filled < width) {
      const int take = std::min(8 - used_, width - filled);
      cur_ |= static_cast<uint8_t>(((v >> filled) & ((1u << take) - 1))
                                   << used_);
      used_ += take;
      filled += take;
      if (used_ == 8) {
        out_->push_back(cur_);
        cur_ = 0;
        used_ = 0;
      }
    }
  }

  /// Pads the current byte with zeros — column streams are byte-aligned
  /// so their lengths are computable from (count, width) alone.
  void AlignByte() {
    if (used_ != 0) {
      out_->push_back(cur_);
      cur_ = 0;
      used_ = 0;
    }
  }

 private:
  std::vector<uint8_t>* out_;
  uint8_t cur_ = 0;
  int used_ = 0;
};

/// LSB-first reader over [p, end); false on underrun.
class BitReader {
 public:
  BitReader(const uint8_t* p, const uint8_t* end) : p_(p), end_(end) {}

  bool Get(int width, uint64_t* v) {
    uint64_t value = 0;
    int filled = 0;
    while (filled < width) {
      if (p_ == end_) return false;
      const int take = std::min(8 - used_, width - filled);
      value |= static_cast<uint64_t>((*p_ >> used_) & ((1u << take) - 1))
               << filled;
      used_ += take;
      filled += take;
      if (used_ == 8) {
        ++p_;
        used_ = 0;
      }
    }
    *v = value;
    return true;
  }

  void AlignByte() {
    if (used_ != 0) {
      ++p_;
      used_ = 0;
    }
  }

  const uint8_t* pos() const { return p_; }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
  int used_ = 0;
};

/// Bytes of one byte-aligned packed column.
uint64_t PackedColumnBytes(uint64_t count, int width) {
  return (count * static_cast<uint64_t>(width) + 7) / 8;
}

}  // namespace

bool PageCodecValid(uint32_t id) {
  return id == static_cast<uint32_t>(PageCodec::kRaw) ||
         id == static_cast<uint32_t>(PageCodec::kDeltaVarint) ||
         id == static_cast<uint32_t>(PageCodec::kBitpack);
}

const char* PageCodecName(PageCodec codec) {
  switch (codec) {
    case PageCodec::kRaw:
      return "raw";
    case PageCodec::kDeltaVarint:
      return "delta_varint";
    case PageCodec::kBitpack:
      return "bitpack";
  }
  return "unknown";
}

bool ParsePageCodec(const std::string& name, PageCodec* out) {
  if (name == "raw") {
    *out = PageCodec::kRaw;
    return true;
  }
  if (name == "delta_varint") {
    *out = PageCodec::kDeltaVarint;
    return true;
  }
  if (name == "bitpack") {
    *out = PageCodec::kBitpack;
    return true;
  }
  return false;
}

void EncodePage(PageCodec codec, const std::vector<Entry>& entries,
                bool with_seqs, std::vector<uint8_t>* out) {
  switch (codec) {
    case PageCodec::kRaw: {
      const uint64_t stride = with_seqs ? kEntryBytesV3 : kEntryBytes;
      const size_t base = out->size();
      out->resize(base + entries.size() * stride);
      for (size_t i = 0; i < entries.size(); ++i) {
        uint8_t* at = out->data() + base + i * stride;
        PutU64(at, entries[i].key);
        PutU64(at + 8, entries[i].payload);
        if (with_seqs) PutU64(at + 16, entries[i].seq);
      }
      return;
    }
    case PageCodec::kDeltaVarint: {
      Key prev = 0;
      for (size_t i = 0; i < entries.size(); ++i) {
        if (i == 0) {
          PutVarint64(out, entries[i].key);
        } else {
          ONION_CHECK_MSG(entries[i].key >= prev,
                          "delta codec requires sorted keys");
          PutVarint64(out, entries[i].key - prev);
        }
        PutVarint64(out, entries[i].payload);
        if (with_seqs) PutVarint64(out, entries[i].seq);
        prev = entries[i].key;
      }
      return;
    }
    case PageCodec::kBitpack: {
      if (entries.empty()) return;
      // Frame of reference per column: minimum as the base, every value as
      // a base-relative delta at the column's exact bit width. Keys are
      // sorted (checked), so their base is the first entry.
      Key key_base = entries.front().key;
      uint64_t payload_base = entries.front().payload;
      uint64_t seq_base = entries.front().seq;
      Key prev = entries.front().key;
      for (const Entry& entry : entries) {
        ONION_CHECK_MSG(entry.key >= prev, "bitpack codec requires sorted keys");
        prev = entry.key;
        payload_base = std::min(payload_base, entry.payload);
        seq_base = std::min(seq_base, entry.seq);
      }
      uint64_t key_span = 0;
      uint64_t payload_span = 0;
      uint64_t seq_span = 0;
      for (const Entry& entry : entries) {
        key_span = std::max(key_span, entry.key - key_base);
        payload_span = std::max(payload_span, entry.payload - payload_base);
        seq_span = std::max(seq_span, entry.seq - seq_base);
      }
      const int key_width = BitWidth(key_span);
      const int payload_width = BitWidth(payload_span);
      const int seq_width = BitWidth(seq_span);
      out->push_back(static_cast<uint8_t>(key_width));
      out->push_back(static_cast<uint8_t>(payload_width));
      if (with_seqs) out->push_back(static_cast<uint8_t>(seq_width));
      const size_t base_at = out->size();
      out->resize(base_at + (with_seqs ? 24 : 16));
      PutU64(out->data() + base_at, key_base);
      PutU64(out->data() + base_at + 8, payload_base);
      if (with_seqs) PutU64(out->data() + base_at + 16, seq_base);
      BitWriter writer(out);
      for (const Entry& entry : entries) writer.Put(entry.key - key_base, key_width);
      writer.AlignByte();
      for (const Entry& entry : entries) {
        writer.Put(entry.payload - payload_base, payload_width);
      }
      writer.AlignByte();
      if (with_seqs) {
        for (const Entry& entry : entries) writer.Put(entry.seq - seq_base, seq_width);
        writer.AlignByte();
      }
      return;
    }
  }
  ONION_CHECK_MSG(false, "unknown page codec");
}

bool DecodePage(PageCodec codec, const uint8_t* data, size_t size,
                uint64_t count, bool with_seqs, std::vector<Entry>* out) {
  out->clear();
  out->reserve(count);
  switch (codec) {
    case PageCodec::kRaw: {
      // Tolerates trailing bytes: format-v1 pages are zero-padded to a
      // fixed length but hold exactly `count` live entries.
      const uint64_t stride = with_seqs ? kEntryBytesV3 : kEntryBytes;
      if (size < count * stride) return false;
      for (uint64_t i = 0; i < count; ++i) {
        const uint8_t* at = data + i * stride;
        out->push_back(Entry{GetU64(at), GetU64(at + 8),
                             with_seqs ? GetU64(at + 16) : 0});
      }
      return true;
    }
    case PageCodec::kDeltaVarint: {
      const uint8_t* p = data;
      const uint8_t* const end = data + size;
      Key key = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t delta = 0;
        uint64_t payload = 0;
        uint64_t seq = 0;
        if (!GetVarint64(&p, end, &delta) || !GetVarint64(&p, end, &payload)) {
          return false;
        }
        if (with_seqs && !GetVarint64(&p, end, &seq)) return false;
        if (i == 0) {
          key = delta;
        } else {
          if (delta > ~key) return false;  // key would wrap past 2^64
          key += delta;
        }
        out->push_back(Entry{key, payload, seq});
      }
      return p == end;  // trailing garbage means corruption
    }
    case PageCodec::kBitpack: {
      if (count == 0) return size == 0;
      const size_t header = (with_seqs ? 3 : 2) + (with_seqs ? 24u : 16u);
      if (size < header) return false;
      const int key_width = data[0];
      const int payload_width = data[1];
      const int seq_width = with_seqs ? data[2] : 0;
      if (key_width > 64 || payload_width > 64 || seq_width > 64) return false;
      const uint8_t* bases = data + (with_seqs ? 3 : 2);
      const Key key_base = GetU64(bases);
      const uint64_t payload_base = GetU64(bases + 8);
      const uint64_t seq_base = with_seqs ? GetU64(bases + 16) : 0;
      // Exact-size check: the three byte-aligned streams follow the header
      // back to back; anything else is corruption.
      const uint64_t expect = header + PackedColumnBytes(count, key_width) +
                              PackedColumnBytes(count, payload_width) +
                              (with_seqs ? PackedColumnBytes(count, seq_width)
                                         : 0);
      if (size != expect) return false;
      BitReader reader(data + header, data + size);
      std::vector<uint64_t> key_deltas(count);
      for (uint64_t i = 0; i < count; ++i) {
        if (!reader.Get(key_width, &key_deltas[i])) return false;
        if (key_deltas[i] > ~key_base) return false;  // key would wrap 2^64
      }
      reader.AlignByte();
      std::vector<uint64_t> payloads(count);
      for (uint64_t i = 0; i < count; ++i) {
        if (!reader.Get(payload_width, &payloads[i])) return false;
      }
      reader.AlignByte();
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t seq_delta = 0;
        if (with_seqs && !reader.Get(seq_width, &seq_delta)) return false;
        out->push_back(Entry{key_base + key_deltas[i],
                             payload_base + payloads[i],
                             with_seqs ? seq_base + seq_delta : 0});
      }
      return true;
    }
  }
  return false;
}

}  // namespace onion::storage
