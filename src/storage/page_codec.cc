#include "storage/page_codec.h"

#include "common/macros.h"
#include "storage/codec.h"

namespace onion::storage {
namespace {

void PutVarint64(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Advances *p past one varint; false on truncation or a value that would
/// not fit in 64 bits.
bool GetVarint64(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*p == end) return false;
    const uint8_t byte = *(*p)++;
    // The 10th byte carries bits 63.. only; more than one payload bit there
    // means the value overflows a u64.
    if (shift == 63 && byte > 1) return false;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = value;
      return true;
    }
  }
  return false;
}

}  // namespace

bool PageCodecValid(uint32_t id) {
  return id == static_cast<uint32_t>(PageCodec::kRaw) ||
         id == static_cast<uint32_t>(PageCodec::kDeltaVarint);
}

const char* PageCodecName(PageCodec codec) {
  switch (codec) {
    case PageCodec::kRaw:
      return "raw";
    case PageCodec::kDeltaVarint:
      return "delta_varint";
  }
  return "unknown";
}

bool ParsePageCodec(const std::string& name, PageCodec* out) {
  if (name == "raw") {
    *out = PageCodec::kRaw;
    return true;
  }
  if (name == "delta_varint") {
    *out = PageCodec::kDeltaVarint;
    return true;
  }
  return false;
}

void EncodePage(PageCodec codec, const std::vector<Entry>& entries,
                bool with_seqs, std::vector<uint8_t>* out) {
  switch (codec) {
    case PageCodec::kRaw: {
      const uint64_t stride = with_seqs ? kEntryBytesV3 : kEntryBytes;
      const size_t base = out->size();
      out->resize(base + entries.size() * stride);
      for (size_t i = 0; i < entries.size(); ++i) {
        uint8_t* at = out->data() + base + i * stride;
        PutU64(at, entries[i].key);
        PutU64(at + 8, entries[i].payload);
        if (with_seqs) PutU64(at + 16, entries[i].seq);
      }
      return;
    }
    case PageCodec::kDeltaVarint: {
      Key prev = 0;
      for (size_t i = 0; i < entries.size(); ++i) {
        if (i == 0) {
          PutVarint64(out, entries[i].key);
        } else {
          ONION_CHECK_MSG(entries[i].key >= prev,
                          "delta codec requires sorted keys");
          PutVarint64(out, entries[i].key - prev);
        }
        PutVarint64(out, entries[i].payload);
        if (with_seqs) PutVarint64(out, entries[i].seq);
        prev = entries[i].key;
      }
      return;
    }
  }
  ONION_CHECK_MSG(false, "unknown page codec");
}

bool DecodePage(PageCodec codec, const uint8_t* data, size_t size,
                uint64_t count, bool with_seqs, std::vector<Entry>* out) {
  out->clear();
  out->reserve(count);
  switch (codec) {
    case PageCodec::kRaw: {
      // Tolerates trailing bytes: format-v1 pages are zero-padded to a
      // fixed length but hold exactly `count` live entries.
      const uint64_t stride = with_seqs ? kEntryBytesV3 : kEntryBytes;
      if (size < count * stride) return false;
      for (uint64_t i = 0; i < count; ++i) {
        const uint8_t* at = data + i * stride;
        out->push_back(Entry{GetU64(at), GetU64(at + 8),
                             with_seqs ? GetU64(at + 16) : 0});
      }
      return true;
    }
    case PageCodec::kDeltaVarint: {
      const uint8_t* p = data;
      const uint8_t* const end = data + size;
      Key key = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t delta = 0;
        uint64_t payload = 0;
        uint64_t seq = 0;
        if (!GetVarint64(&p, end, &delta) || !GetVarint64(&p, end, &payload)) {
          return false;
        }
        if (with_seqs && !GetVarint64(&p, end, &seq)) return false;
        if (i == 0) {
          key = delta;
        } else {
          if (delta > ~key) return false;  // key would wrap past 2^64
          key += delta;
        }
        out->push_back(Entry{key, payload, seq});
      }
      return p == end;  // trailing garbage means corruption
    }
  }
  return false;
}

}  // namespace onion::storage
