// SfcTable: the end-to-end persistent spatial table.
//
// The disk-backed twin of SpatialIndex (index/spatial_index.h): points are
// mapped to keys by any registered space-filling curve, buffered in a
// memtable, flushed to sorted segment files, optionally compacted into a
// single run, and queried by decomposing a box into exact curve-key ranges
// (index/decompose.h) that are scanned through a shared buffer pool. Every
// query's cost is observable: the pool counts real page reads, cache hits,
// and seeks, and DiskModel converts them to estimated latency — turning
// the paper's "clustering number == seeks" claim into a measurement
// against actual files.
//
// On-disk layout of a table directory:
//   MANIFEST        text file: format line, curve name, universe geometry,
//                   page size, next segment id, and the live segment list
//   seg_<id>.sfc    immutable sorted segments (storage/segment.h)
//
// The manifest is rewritten (atomically, via rename) after every flush and
// compaction, so a table can be closed and reopened at any point with
// identical query results.

#ifndef ONION_STORAGE_SFC_TABLE_H_
#define ONION_STORAGE_SFC_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/disk_model.h"
#include "index/spatial_index.h"
#include "sfc/curve.h"
#include "storage/buffer_pool.h"
#include "storage/memtable.h"
#include "storage/segment.h"

namespace onion::storage {

struct SfcTableOptions {
  /// Entries per page of every segment written by this table.
  uint32_t entries_per_page = 256;
  /// Capacity of the table's buffer pool, in pages.
  uint64_t pool_pages = 256;
  /// Inserts accumulate in the memtable until it reaches this size, then
  /// flush automatically into a new segment.
  uint64_t memtable_flush_entries = 64 * 1024;
};

/// Logical read statistics (the physical side lives in IoStats).
struct TableReadStats {
  uint64_t queries = 0;
  uint64_t ranges = 0;            ///< decomposed key ranges (== clusters)
  uint64_t memtable_entries = 0;  ///< results served from unflushed data

  void Reset() { *this = TableReadStats{}; }
};

class SfcTable {
 public:
  /// Creates a new table directory (made if absent; must not already hold a
  /// table) keyed by the named curve (sfc/registry.h) over `universe`.
  static Result<std::unique_ptr<SfcTable>> Create(
      const std::string& dir, const std::string& curve_name,
      const Universe& universe, const SfcTableOptions& options = {});

  /// Opens an existing table directory from its MANIFEST.
  static Result<std::unique_ptr<SfcTable>> Open(
      const std::string& dir, const SfcTableOptions& options = {});

  const SpaceFillingCurve& curve() const { return *curve_; }
  const std::string& dir() const { return dir_; }
  uint64_t size() const;
  size_t num_segments() const { return segments_.size(); }
  uint64_t memtable_entries() const { return memtable_.size(); }

  /// Buffers a point; flushes to a new segment at the memtable threshold.
  Status Insert(const Cell& cell, uint64_t payload);

  /// Persists buffered entries as a new segment (no-op when empty) and
  /// rewrites the manifest.
  Status Flush();

  /// Flushes, then merges all segments into a single sorted run, retiring
  /// and deleting the inputs.
  Status Compact();

  /// All entries inside `box`, sorted by (curve key, payload). Serves
  /// flushed data through the buffer pool and unflushed data from the
  /// memtable; updates read_stats() and io_stats().
  std::vector<SpatialEntry> Query(const Box& box);

  /// Flushes buffered writes; the table remains usable afterwards.
  Status Close() { return Flush(); }

  const TableReadStats& read_stats() const { return read_stats_; }
  const IoStats& io_stats() const { return pool_.stats(); }
  void ResetStats();

  /// Estimated latency of the I/O accumulated since the last ResetStats().
  double EstimateCostMs(const DiskModel& model) const {
    return model.EstimateMs(io_stats().seeks, io_stats().entries_read);
  }

 private:
  SfcTable(std::string dir, std::unique_ptr<SpaceFillingCurve> curve,
           const SfcTableOptions& options);

  std::string SegmentPath(const std::string& file) const;
  Status WriteManifest() const;

  std::string dir_;
  std::unique_ptr<SpaceFillingCurve> curve_;
  std::string curve_name_;
  SfcTableOptions options_;
  MemTable memtable_;
  std::vector<std::unique_ptr<SegmentReader>> segments_;
  std::vector<std::string> segment_files_;  // basenames, parallel to segments_
  uint64_t next_segment_id_ = 0;
  BufferPool pool_;
  TableReadStats read_stats_;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_SFC_TABLE_H_
