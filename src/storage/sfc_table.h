// SfcTable: the end-to-end persistent spatial table — crash-safe and
// concurrent.
//
// The disk-backed twin of SpatialIndex (index/spatial_index.h): points are
// mapped to keys by any registered space-filling curve, logged to a
// write-ahead log (storage/wal.h), buffered in a memtable, flushed by a
// background worker into sorted level-0 segment files, and leveled by
// background compaction into non-overlapping runs per level. Queries
// decompose a box into exact curve-key ranges (index/decompose.h) that are
// streamed through a buffer pool by pull-based cursors (storage/cursor.h).
// Every query's cost is observable: the pool counts real page reads, cache
// hits, and seeks per table, and DiskModel converts them to estimated
// latency — turning the paper's "clustering number == seeks" claim into a
// measurement against actual files.
//
// On-disk layout of a table directory (byte-level spec in
// docs/storage_format.md):
//   MANIFEST        text file: format line, curve name, universe geometry,
//                   page size, next segment id, WAL floor, and the live
//                   segment list with per-segment levels
//   seg_<id>.sfc    immutable sorted segments (storage/segment.h)
//   wal_<id>.log    write-ahead logs, one per memtable generation
//
// Crash safety: every write — Insert(), Delete(), or one table's slice of
// an SfcDb::Write batch — is appended to the active WAL as one atomic
// record before it is buffered, and a WAL file is deleted only after its
// memtable generation is durably flushed (segment fsynced, directory
// fsynced, MANIFEST renamed in place and fenced via `wal_floor`). Open()
// replays live WAL files, so a process crash at ANY point loses nothing
// and duplicates nothing. The manifest is rewritten atomically (write +
// fsync + rename + directory fsync) after every flush and compaction.
//
// Versioned reads (MVCC): every write is stamped with a monotonically
// increasing per-table sequence number (persisted as the MANIFEST's
// `last_sequence`, carried by WAL records and segment-v3 pages).
// GetSnapshot() pins the current sequence: cursors and Gets given that
// snapshot (ReadOptions::snapshot) see exactly the state as of the pin —
// repeatable reads across any number of cursors, undisturbed by later
// inserts, deletes, flushes, or compactions, because compaction consults
// the live-snapshot list and retains every version a pin can still see.
// Delete(cell) writes a tombstone that hides all older versions of the
// cell; tombstones are garbage-collected by bottom-level compaction once
// no snapshot predates them.
//
// Concurrency: background flushing and compaction run on a WorkerPool
// (storage/worker_pool.h) — a private single-thread pool for a standalone
// table, or the owning SfcDb's shared pool (storage/sfc_db.h), which also
// supplies a shared BufferPool; per-table I/O attribution survives the
// sharing via AtomicIoStats. A shared_mutex guards the table's in-memory
// state — writers and state changes take it exclusively, queries take it
// only long enough to scan the (immutable while shared-locked) memtables
// and snapshot the segment list; segment I/O then proceeds WITHOUT the
// table lock, so readers keep reading while a flush writes the next
// segment or a compaction merges runs. Retired segments stay alive
// (shared_ptr) until the last in-flight query or cursor drops them.
// Insert() blocks only when `max_pending_memtables` generations are
// already waiting to flush (bounded queue backpressure). Flush() is a
// barrier: it returns once all buffered data is durable and background
// work has quiesced. Close() is Flush() plus shutdown: it additionally
// stops the table's background processing and refuses further writes
// (idempotent; reads stay valid).
//
// Leveling: freshly flushed segments form level 0 (overlapping, newest
// last). When L0 reaches `l0_compaction_trigger` runs, the worker merges
// them (plus the overlapping part of level 1) into level 1, whose segments
// are non-overlapping and at most `level_segment_entries` entries each;
// levels overflowing their size target spill into the next level the same
// way. A box query therefore probes every L0 run but at most one
// contiguous group of segments per deeper level and key range.
//
// A table may also serve as the HIDDEN half of an SfcDb secondary index
// ("<table>__idx__<index>" directories, storage/index_spec.h): same
// machinery, but its entries are (index key -> base curve key) pointers
// maintained exclusively by SfcDb::Write — never write to such a table
// directly. Its io_stats()/DumpMetrics() are the per-index seek/pages
// counters surfaced through SfcDb::DumpMetrics.

#ifndef ONION_STORAGE_SFC_TABLE_H_
#define ONION_STORAGE_SFC_TABLE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/disk_model.h"
#include "index/spatial_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sfc/curve.h"
#include "storage/buffer_pool.h"
#include "storage/cursor.h"
#include "storage/memtable.h"
#include "storage/segment.h"
#include "storage/wal.h"
#include "storage/worker_pool.h"

namespace onion::storage {

struct SfcTableOptions {
  /// Entries per page of every segment written by this table.
  uint32_t entries_per_page = 256;
  /// Page codec of every segment this table writes (storage/page_codec.h).
  /// Recorded in the MANIFEST at Create; reopening uses the recorded codec
  /// regardless of what the caller passes. Segments always decode with the
  /// codec in their own header, so flipping this (at Create time) never
  /// affects readability.
  PageCodec codec = PageCodec::kRaw;
  /// Bloom-filter budget of every segment this table writes; 0 disables
  /// filter blocks (zone maps are always written — they cost 8 bytes per
  /// page per dimension). Recorded in the MANIFEST like `codec`.
  uint32_t filter_bits_per_key = 10;
  /// Capacity of the table's private buffer pool, in pages. Ignored when
  /// the table is served by an SfcDb, whose shared pool is sized by
  /// SfcDbOptions::pool_pages instead.
  uint64_t pool_pages = 256;
  /// Maximum EXTRA pages a buffer-pool miss may pull in with one batched
  /// read beyond the demanded page (storage/buffer_pool.h). 0 disables
  /// readahead — the historical one-page-per-miss behavior. Ignored (like
  /// pool_pages) when the table is served by an SfcDb's shared pool.
  uint64_t readahead_pages = 0;
  /// Inserts accumulate in the memtable until it reaches this size, then
  /// rotate to the background flush queue automatically.
  uint64_t memtable_flush_entries = 64 * 1024;
  /// Backpressure bound: Insert() blocks while this many rotated memtables
  /// are still waiting for the background flush.
  size_t max_pending_memtables = 2;
  /// Number of level-0 runs that triggers a background compaction into
  /// level 1.
  size_t l0_compaction_trigger = 4;
  /// Maximum entries per segment on levels >= 1 (0 = memtable_flush_entries).
  uint64_t level_segment_entries = 0;
  /// Size target of level 1 in entries (0 = l0_compaction_trigger *
  /// memtable_flush_entries); level i's target is this times
  /// level_growth_factor^(i-1). A level over target spills into the next.
  uint64_t level_base_entries = 0;
  /// Geometric growth of per-level size targets.
  uint64_t level_growth_factor = 8;
  /// Fsync the WAL before acknowledging every Insert (power-loss
  /// durability). Concurrent inserters group-commit: they share one
  /// leader fsync (WalWriter::SyncUpTo) instead of paying one each. Off
  /// by default: appends are still flushed to the OS per record, which
  /// already survives any process crash. An fsync failure is sticky — the
  /// affected insert is acknowledged to have FAILED but its entry may
  /// still surface in queries (and after recovery) like any other
  /// unacknowledged write; do NOT blindly retry such a failure (unlike an
  /// append failure, which is retry-safe), or the entry may be stored
  /// twice.
  bool wal_fsync = false;
};

/// Logical read statistics (the physical side lives in IoStats).
struct TableReadStats {
  uint64_t queries = 0;
  uint64_t ranges = 0;            ///< decomposed key ranges (== clusters)
  uint64_t memtable_entries = 0;  ///< results served from unflushed data

  void Reset() { *this = TableReadStats{}; }
};

/// Introspection record for one live segment (tests, benches, tooling).
struct SegmentInfo {
  std::string file;
  int level = 0;
  Key min_key = 0;
  Key max_key = 0;
  uint64_t num_entries = 0;
  /// Real on-disk footprint and format of the segment file, so space
  /// savings from the page codec are observable per segment.
  uint64_t disk_bytes = 0;
  uint32_t format_version = 0;
  PageCodec codec = PageCodec::kRaw;
  uint64_t filter_bytes = 0;
};

class SfcTable {
 public:
  /// Creates a new table directory (made if absent; must not already hold a
  /// table) keyed by the named curve (sfc/registry.h) over `universe`.
  static Result<std::unique_ptr<SfcTable>> Create(
      const std::string& dir, const std::string& curve_name,
      const Universe& universe, const SfcTableOptions& options = {});

  /// Opens an existing table directory from its MANIFEST and replays any
  /// live WAL files into the memtable (crash recovery).
  static Result<std::unique_ptr<SfcTable>> Open(
      const std::string& dir, const SfcTableOptions& options = {});

  /// Stops background processing WITHOUT flushing: buffered entries stay
  /// recoverable from the WAL, exactly as after a crash. This is the
  /// deliberate "crash semantics" path — call Close() first when you want
  /// a clean, fully-flushed shutdown.
  ~SfcTable();

  SfcTable(const SfcTable&) = delete;
  SfcTable& operator=(const SfcTable&) = delete;

  const SpaceFillingCurve& curve() const { return *curve_; }
  const std::string& dir() const { return dir_; }
  uint64_t size() const;
  size_t num_segments() const;
  /// Entries not yet in any segment (active memtable + pending flushes).
  uint64_t memtable_entries() const;
  /// Memtable generations queued for the background flush.
  size_t pending_memtables() const;
  /// Level/key-range/size of every live segment, L0 first (oldest to
  /// newest), then each deeper level in key order.
  std::vector<SegmentInfo> SegmentInfos() const;

  /// Logs and buffers a point; rotates the memtable to the background
  /// flush queue at the threshold (blocking only on queue backpressure).
  /// Fails with InvalidArgument after Close().
  Status Insert(const Cell& cell, uint64_t payload);

  /// Logs and buffers a tombstone that deletes EVERY payload stored at
  /// `cell` (all older versions become invisible to reads at or after this
  /// write's sequence; snapshots taken earlier still see them). A later
  /// Insert at the same cell is visible again. Same failure modes as
  /// Insert.
  Status Delete(const Cell& cell);

  /// Pins the current state for repeatable reads: pass the result via
  /// ReadOptions::snapshot to Get/NewBoxCursor/NewScanCursor and every
  /// such read sees exactly the entries visible now, no matter what is
  /// written, flushed, or compacted in between (compaction keeps the
  /// pinned versions alive). The returned shared_ptr is the pin — release
  /// it (drop all copies) to let compaction collect. Must not outlive the
  /// table.
  std::shared_ptr<const Snapshot> GetSnapshot();

  /// Sequence number of the most recent applied write (0 for a fresh
  /// table). A snapshot taken now pins exactly this sequence.
  uint64_t last_sequence() const {
    return last_applied_seq_.load(std::memory_order_acquire);
  }

  /// Barrier: rotates any buffered entries and returns once every pending
  /// memtable is durably flushed and background compaction has quiesced.
  Status Flush();

  /// Flushes, then merges ALL segments into a single sorted run, retiring
  /// and deleting the inputs; versions shadowed by tombstones (and the
  /// tombstones themselves) are garbage-collected unless a live snapshot
  /// still pins them. Readers proceed throughout. Fails with
  /// InvalidArgument after Close().
  Status Compact();

  /// Streams every entry inside `box` in nondecreasing curve-key order
  /// from a consistent snapshot (segment list + frozen memtable contents
  /// taken now; later inserts/flushes/compactions do not affect it).
  /// `options` bounds the work (see storage/cursor.h); errors — an
  /// out-of-universe box, a table background error — arrive as a cursor
  /// whose status() is not OK. The cursor must not outlive this table.
  std::unique_ptr<Cursor> NewBoxCursor(const Box& box,
                                       const ReadOptions& options = {});

  /// Streams the whole table in curve-key order (same semantics as
  /// NewBoxCursor over the full universe, without the decomposition cost).
  std::unique_ptr<Cursor> NewScanCursor(const ReadOptions& options = {});

  /// Point lookup: payloads stored exactly at `cell` (post-delete state;
  /// `options.snapshot` reads a pinned version), in unspecified order.
  /// OutOfRange if the cell lies outside the universe.
  Result<std::vector<uint64_t>> Get(const Cell& cell,
                                    const ReadOptions& options);
  Result<std::vector<uint64_t>> Get(const Cell& cell) {
    return Get(cell, ReadOptions{});
  }

  /// DEPRECATED: materializing wrapper over NewBoxCursor(), kept for
  /// callers that want the full result set as a vector sorted by
  /// (curve key, payload). Aborts on an out-of-universe box and returns
  /// an empty vector on background errors — prefer the cursor API, which
  /// reports both through Status (and supports snapshots). Safe to call
  /// from any number of threads, concurrently with Insert/Flush/Compact.
  [[deprecated(
      "materializes the whole result and swallows errors; use "
      "NewBoxCursor")]]
  std::vector<SpatialEntry> Query(const Box& box);

  /// Clean shutdown: Flush() barrier, then stops the table's background
  /// processing and marks the table closed — further Insert/Compact calls
  /// fail with InvalidArgument while reads (cursors, Query, Get) remain
  /// valid. Idempotent: repeated calls return OK. Contrast with the
  /// destructor, which deliberately does NOT flush (crash semantics).
  Status Close();

  TableReadStats read_stats() const;
  IoStats io_stats() const { return io_stats_.Snapshot(); }
  void ResetStats();

  /// One dump of every table-level metric — the obs registry (latency
  /// histograms, counters, gauges), the I/O counters, the logical read
  /// stats, and derived ratios (pool hit ratio, filter skip ratio) — as a
  /// JSON object or Prometheus text exposition (metric catalog in
  /// docs/observability.md). Safe to call concurrently with everything.
  std::string DumpMetrics(
      obs::MetricsFormat format = obs::MetricsFormat::kJson) const;
  /// The retained trace events (flush/compaction completions) as a JSON
  /// array — see obs/trace.h.
  std::string DumpTrace() const { return trace_->ToJson(); }
  /// The table's metric registry (tests and the owning SfcDb's exporter;
  /// hot paths use handles resolved at construction instead).
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  /// Age of the oldest live snapshot pin in microseconds (0 when no
  /// snapshot is pinned) — how long compaction GC has been held back.
  uint64_t OldestSnapshotPinAgeUs() const;

  /// Estimated latency of the I/O accumulated since the last ResetStats().
  double EstimateCostMs(const DiskModel& model) const {
    const IoStats io = io_stats();
    return model.EstimateMs(io.seeks, io.entries_read);
  }

 private:
  friend class SfcDb;  // uses the *WithShared factories below

  /// Resources provided by an owning SfcDb; default-constructed means the
  /// table provisions its own (private pool, private 1-thread worker).
  struct SharedResources {
    std::shared_ptr<BufferPool> pool;
    WorkerPool* workers = nullptr;
    /// Shared trace ring (the db's, so flush/compaction/commit events of
    /// all tables interleave in one timeline); null means private.
    std::shared_ptr<obs::TraceRing> trace;
  };

  static Result<std::unique_ptr<SfcTable>> CreateWithShared(
      const std::string& dir, const std::string& curve_name,
      const Universe& universe, const SfcTableOptions& options,
      const SharedResources& shared);
  static Result<std::unique_ptr<SfcTable>> OpenWithShared(
      const std::string& dir, const SfcTableOptions& options,
      const SharedResources& shared);

  /// One live segment and its placement in the level structure.
  struct TableSegment {
    std::shared_ptr<SegmentReader> reader;
    std::string file;  // basename inside dir_
    int level = 0;
  };

  /// A rotated memtable generation waiting for the background flush,
  /// together with the WAL files that make it durable meanwhile. Once its
  /// segment is visible in l0_ the batch is flagged `installed` (in the
  /// same exclusive-lock hold) and read paths skip it — it merely awaits
  /// manifest durability before it can be popped and its WALs deleted.
  struct PendingMemtable {
    MemTable mem;
    std::vector<std::string> wal_files;  // basenames
    uint64_t max_wal_id = 0;
    bool installed = false;
  };

  SfcTable(std::string dir, std::unique_ptr<SpaceFillingCurve> curve,
           const SfcTableOptions& options, const SharedResources& shared);

  // --- Versioned write path (SfcDb::Write drives these as a friend; the
  // table's own Insert/Delete go through WriteOps). All three *WalLocked
  // helpers REQUIRE wal_mu_ held; holding it from reservation through
  // apply is what makes per-table sequence order equal WAL append order,
  // which the batch journal's idempotent replay depends on.
  void LockWal() ONION_ACQUIRE(wal_mu_) { wal_mu_.Lock(); }
  void UnlockWal() ONION_RELEASE(wal_mu_) { wal_mu_.Unlock(); }
  /// Refuses writes on a closed or failed table (takes mu_ briefly).
  Status PrecheckWritableWalLocked() ONION_REQUIRES(wal_mu_)
      ONION_EXCLUDES(mu_);
  /// Allocates `count` consecutive sequence numbers; returns the first.
  uint64_t ReserveSequencesWalLocked(uint64_t count) ONION_REQUIRES(wal_mu_);
  /// Appends `ops` as ONE WAL record stamped first_seq.., buffers them in
  /// the memtable, and publishes last_sequence. Rotates the memtable
  /// first when full (so a failed WAL append retains nothing and is
  /// retry-safe). `used_wal`/`out_record` feed a later group-commit
  /// SyncUpTo outside all locks.
  Status ApplyOpsWalLocked(const WalOp* ops, size_t count, uint64_t first_seq,
                           std::shared_ptr<WalWriter>* used_wal,
                           uint64_t* out_record) ONION_REQUIRES(wal_mu_)
      ONION_EXCLUDES(mu_);
  /// The single-table commit: reserve + apply + (optionally) group-commit
  /// fsync. Insert and Delete are one-op wrappers; SfcDb's secondary-index
  /// backfill (CreateIndex/MigrateIndexCurve) batches through here too.
  Status WriteOps(const WalOp* ops, size_t count)
      ONION_EXCLUDES(wal_mu_, mu_);
  /// Open-time only (no concurrent writers): re-applies a batch-journal
  /// record slice with its ORIGINAL sequences after a crash lost this
  /// table's own WAL record of it; bumps the sequence allocator past it.
  Status ReplayCommittedOps(const WalOp* ops, size_t count, uint64_t first_seq)
      ONION_EXCLUDES(wal_mu_, mu_);
  /// Open-time only: whether the recovered state provably contains the
  /// write stamped `sequence` — durably flushed into segments (covered by
  /// the manifest's last_sequence fence) or sitting in the replayed
  /// memtable. This is the batch-journal idempotency test: it stays
  /// correct even when a LATER write's WAL record survived a power loss
  /// that tore this one, because flushed generations hold strictly older
  /// sequences than anything unflushed.
  bool RecoveredStateCoversSequence(uint64_t sequence) const
      ONION_EXCLUDES(mu_);
  /// Open-time only: fsyncs the active WAL, making journal-replayed ops
  /// power-loss durable before the journal that could repair them is
  /// truncated.
  Status SyncWalForRecovery() ONION_EXCLUDES(wal_mu_, mu_);
  /// Sequences of every live snapshot pin, sorted ascending.
  std::vector<uint64_t> PinnedSnapshotSequences() const;

  std::string SegmentPath(const std::string& file) const;
  std::string WalFileName(uint64_t id) const;
  std::string WalPath(uint64_t id) const;
  uint64_t EffectiveLevelSegmentEntries() const;
  uint64_t LevelTargetEntries(int level) const;

  void StartWorker() ONION_EXCLUDES(mu_);
  /// Unregisters from the worker pool, blocking until in-flight background
  /// work finishes. Safe to call repeatedly; never called with mu_ held.
  void StopWorker() ONION_EXCLUDES(mu_);
  /// One unit of background work (a flush or a compaction round); returns
  /// whether more work remains. Runs on a WorkerPool thread.
  bool RunBackgroundWork() ONION_EXCLUDES(mu_);
  void NotifyWorkerLocked() ONION_REQUIRES(mu_);

  /// Shared cursor factory: counts the query, snapshots memtables and
  /// segments, and hands off to the streaming merge cursor. `query_box`
  /// (may be null) is the exact box the ranges decompose — it enables
  /// zone-map page skipping in the cursor.
  std::unique_ptr<Cursor> NewRangesCursor(std::vector<KeyRange> ranges,
                                          const Box* query_box,
                                          const ReadOptions& options);
  /// Segment-writer knobs derived from the table options (codec, filter
  /// budget, zone-map curve); used by flush and every compaction path.
  SegmentWriterOptions WriterOptions() const;

  // All *Locked methods require mu_ held exclusively (the annotations make
  // the compiler enforce it); several release mu_ around file I/O and
  // reacquire it before returning — the REQUIRES contract is "held on
  // entry and on exit", and the analysis tracks the window in between.
  // RotateMemtableLocked additionally requires wal_mu_ held (it swaps the
  // active WAL). `min_entries` is rechecked after the backpressure wait so
  // a waiter whose rotation was performed by another writer meanwhile does
  // not rotate a fresh, near-empty memtable.
  Status RotateMemtableLocked(uint64_t min_entries)
      ONION_REQUIRES(wal_mu_, mu_);
  void FlushPendingLocked() ONION_REQUIRES(mu_);
  void RunCompactionLocked() ONION_REQUIRES(mu_);
  bool HasAutoCompactionWorkLocked() const ONION_REQUIRES_SHARED(mu_);
  std::string ManifestTextLocked() const ONION_REQUIRES_SHARED(mu_);
  Status WriteManifestFile(const std::string& text) const ONION_EXCLUDES(mu_);
  Status InstallManifest() ONION_REQUIRES(mu_) ONION_EXCLUDES(manifest_mu_);
  void SetBackgroundErrorLocked(const Status& status) ONION_REQUIRES(mu_);
  /// Drops retired readers/pool frames and returns the file paths to
  /// unlink — deletion itself happens outside the lock via
  /// RemoveRetiredFiles (which re-locks only to stash failed unlinks in
  /// garbage_files_ for a later retry).
  std::vector<std::string> DetachSegmentsLocked(
      std::vector<TableSegment> retired) ONION_REQUIRES(mu_);
  void RemoveRetiredFiles(const std::vector<std::string>& doomed)
      ONION_REQUIRES(mu_);
  std::vector<TableSegment> AllSegmentsLocked() const
      ONION_REQUIRES_SHARED(mu_);
  void RemoveSegmentsByIdentityLocked(const std::vector<TableSegment>& gone)
      ONION_REQUIRES(mu_);
  static void SortByMinKey(std::vector<TableSegment>* segments);

  const std::string dir_;
  const std::unique_ptr<SpaceFillingCurve> curve_;
  const std::string curve_name_;
  SfcTableOptions options_;

  // Observability. The registry owns every named metric for the table's
  // lifetime; `m_` caches the hot-path handles (the registry hands out
  // stable addresses) so recording a sample is a relaxed atomic add, never
  // a name lookup. Declared before all engine state so background threads
  // recording into the handles never outlive them.
  const std::shared_ptr<obs::MetricsRegistry> metrics_ =
      std::make_shared<obs::MetricsRegistry>();
  std::shared_ptr<obs::TraceRing> trace_;
  struct MetricHandles {
    obs::Histogram* wal_append_us = nullptr;
    obs::Histogram* wal_fsync_us = nullptr;
    obs::Histogram* wal_commit_batch_records = nullptr;
    obs::Histogram* memtable_insert_us = nullptr;
    obs::Histogram* write_commit_us = nullptr;
    obs::Histogram* flush_us = nullptr;
    obs::Histogram* compaction_us = nullptr;
    obs::Histogram* cursor_next_us = nullptr;
    obs::Counter* flush_bytes = nullptr;
    obs::Counter* flush_entries = nullptr;
    obs::Counter* flush_count = nullptr;
    obs::Counter* compaction_bytes_rewritten = nullptr;
    obs::Counter* compaction_entries_gcd = nullptr;
    obs::Counter* compaction_count = nullptr;
  } m_;
  /// The WAL-facing slice of `m_` (every WalWriter this table creates gets
  /// the same three handles).
  WalMetrics TableWalMetrics() const;

  // Serializes writers (Insert / the rotation step of Flush) and pins the
  // active WAL, so the per-record WAL I/O can run with mu_ RELEASED —
  // readers snapshot state between any two inserts instead of stalling
  // behind disk latency. Acquisition order: wal_mu_ strictly before mu_.
  Mutex wal_mu_ ONION_ACQUIRED_BEFORE(mu_);

  // Sequence state. next_seq_ is the allocator, guarded by wal_mu_ (the
  // writer lock); last_applied_seq_ publishes the newest buffered write
  // (stored under mu_, read lock-free by GetSnapshot/last_sequence);
  // flushed_seq_ is the newest sequence durably in segments, guarded by
  // mu_ and persisted as the MANIFEST's `last_sequence`.
  uint64_t next_seq_ ONION_GUARDED_BY(wal_mu_) = 1;
  std::atomic<uint64_t> last_applied_seq_{0};
  uint64_t flushed_seq_ ONION_GUARDED_BY(mu_) = 0;

  // Live snapshot pins, consulted by compaction's garbage collection.
  // Held behind a shared_ptr so a pin's release (which must unregister
  // its sequence) stays safe even when the pin outlives the table — the
  // deleter owns the registry, never the table.
  struct SnapshotRegistry {
    Mutex mu;
    /// (sequence, created_us) per live pin — ordered by sequence for the
    /// compaction GC list; created_us feeds the oldest-pin-age gauge.
    std::multiset<std::pair<uint64_t, uint64_t>> pins ONION_GUARDED_BY(mu);
  };
  const std::shared_ptr<SnapshotRegistry> snapshots_ =
      std::make_shared<SnapshotRegistry>();

  mutable SharedMutex mu_;
  CondVarAny cv_;  // waited on with mu_ held exclusively
  MemTable memtable_ ONION_GUARDED_BY(mu_);
  // shared_ptr so a group-commit fsync (outside all locks) can outlive a
  // concurrent rotation that retires this writer object.
  std::shared_ptr<WalWriter> wal_ ONION_GUARDED_BY(mu_);
  // WAL file basenames backing the active memtable.
  std::vector<std::string> wal_files_ ONION_GUARDED_BY(mu_);
  uint64_t max_wal_id_ ONION_GUARDED_BY(mu_) = 0;
  uint64_t next_wal_id_ ONION_GUARDED_BY(mu_) = 0;
  // WAL ids below this are dead (fenced off by the MANIFEST).
  uint64_t wal_floor_ ONION_GUARDED_BY(mu_) = 0;
  std::deque<PendingMemtable> pending_ ONION_GUARDED_BY(mu_);
  // Level 0, oldest first; key ranges may overlap.
  std::vector<TableSegment> l0_ ONION_GUARDED_BY(mu_);
  // levels_[i] holds level i+1, sorted by min_key, pairwise disjoint.
  std::vector<std::vector<TableSegment>> levels_ ONION_GUARDED_BY(mu_);
  // Retired segment files whose unlink failed (e.g. still open on
  // platforms that refuse to delete open files); retried on later
  // retirements and in the destructor.
  std::vector<std::string> garbage_files_ ONION_GUARDED_BY(mu_);
  uint64_t next_segment_id_ ONION_GUARDED_BY(mu_) = 0;
  bool closed_ ONION_GUARDED_BY(mu_) = false;
  bool compaction_pending_ ONION_GUARDED_BY(mu_) = false;
  bool compaction_inflight_ ONION_GUARDED_BY(mu_) = false;
  bool manual_compaction_ ONION_GUARDED_BY(mu_) = false;
  Status background_error_ ONION_GUARDED_BY(mu_);

  // Serializes manifest installs so snapshot order equals rename order;
  // always acquired while mu_ is NOT held (see InstallManifest).
  Mutex manifest_mu_ ONION_ACQUIRED_BEFORE(mu_);

  // Background execution: either the private pool below or an SfcDb's.
  // Both pointers are set once by StartWorker (during Create/Open, before
  // the table is visible to any other thread) and are immutable after —
  // StopWorker and the destructor read them without a lock by design.
  std::unique_ptr<WorkerPool> owned_workers_;
  WorkerPool* workers_ = nullptr;
  WorkerPool::ClientId worker_client_ ONION_GUARDED_BY(mu_) = 0;

  // Page cache: private, or shared across an SfcDb's tables. Per-table
  // I/O attribution flows into io_stats_ on every pool call.
  std::shared_ptr<BufferPool> pool_;
  mutable AtomicIoStats io_stats_;

  mutable Mutex stats_mu_;
  TableReadStats read_stats_ ONION_GUARDED_BY(stats_mu_);
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_SFC_TABLE_H_
