// Secondary-index vocabulary: the per-table SecondaryIndexSpec and the
// registry of index extractors.
//
// A secondary index re-keys a table's cells through a different
// space-filling curve (paper, Sec. I: the curve choice determines the
// clustering cost of a query distribution — so one physical table can
// serve several query distributions by carrying one index per curve). An
// index is a hidden SfcTable whose entries are
//
//   key     = index_curve.IndexOf(extractor(base_cell))
//   payload = base_curve.IndexOf(base_cell)        (the base row address)
//
// maintained atomically with the base table by SfcDb::Write (see
// storage/sfc_db.h for the atomicity rule) and queried through
// SfcDb::NewIndexCursor, which resolves each index entry back to its base
// row snapshot-consistently.
//
// Extractors are INJECTIVE cell-to-cell transforms chosen from a fixed,
// named registry (names are persisted in the CATALOG, so the set can only
// grow). Injectivity is load-bearing: a base Delete(cell) expands into an
// index tombstone at extractor(cell), which deletes EVERY index entry at
// that index cell — exactly the entries of the base cell if and only if
// no other base cell maps there. Registered extractors:
//
//   "cell"      identity — index the base cell under another curve
//   "swap_xy"   transpose axes 0 and 1 (dims >= 2)
//   "mirror_x"  reflect axis 0: x -> side-1-x
//
// All three are bijections of the base universe onto itself, so the index
// universe equals the base universe.

#ifndef ONION_STORAGE_INDEX_SPEC_H_
#define ONION_STORAGE_INDEX_SPEC_H_

#include <string>
#include <vector>

#include "sfc/types.h"

namespace onion::storage {

/// The registration record of one secondary index on a table: a name
/// (same character rules as table names), an extractor from the registry
/// below, and any curve name sfc/registry.h accepts over the extractor's
/// index universe. Persisted in the database CATALOG.
struct SecondaryIndexSpec {
  std::string name;
  std::string extractor = "cell";
  std::string curve;
};

/// One registered extractor: an injective cell transform plus the derived
/// index universe. Function pointers (not std::function) so the registry
/// is a flat constant table with no initialization order hazards.
struct IndexExtractor {
  const char* name;
  /// Minimum dimensionality of the base universe this extractor accepts.
  int min_dims;
  /// Maps a base cell to its index cell. The cell must lie in `base`;
  /// the result lies in IndexUniverse(base).
  Cell (*map)(const Cell& cell, const Universe& base);
  /// The universe the mapped cells live in (the index table's universe).
  Universe (*index_universe)(const Universe& base);
};

/// The registered extractor named `name`, or nullptr when unknown.
const IndexExtractor* FindIndexExtractor(const std::string& name);

/// Names of every registered extractor, in registration order.
std::vector<std::string> KnownIndexExtractorNames();

}  // namespace onion::storage

#endif  // ONION_STORAGE_INDEX_SPEC_H_
