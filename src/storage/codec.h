// Little-endian integer codec shared by every on-disk format of the
// storage engine (segment files, the WAL). One definition keeps the byte
// order in lockstep with docs/storage_format.md for all writers/readers.

#ifndef ONION_STORAGE_CODEC_H_
#define ONION_STORAGE_CODEC_H_

#include <cstdint>

namespace onion::storage {

inline void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

inline uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Left-rotate, the mixing step of the header/record checksums. Each
/// format keeps its own salt and rotation schedule (see segment.cc and
/// wal.cc) so a segment header can never validate as a WAL record.
inline uint64_t Rotl64(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace onion::storage

#endif  // ONION_STORAGE_CODEC_H_
