#include "storage/segment.h"

#include <cstring>

#include "common/macros.h"
#include "sfc/curve.h"
#include "storage/codec.h"
#include "storage/crc32c.h"
#include "storage/fs_util.h"

namespace onion::storage {
namespace {

constexpr char kMagic[8] = {'O', 'S', 'F', 'C', 'S', 'E', 'G', '1'};
constexpr uint32_t kFormatVersion = 3;     // what SegmentWriter emits
constexpr uint64_t kHeaderBytesV1 = 64;
constexpr uint64_t kHeaderBytesV2 = 96;    // v3 shares the v2 layout
constexpr uint64_t kPageIndexRecordBytes = 32;
/// Trailing CRC32C of every v3 page's encoded bytes.
constexpr uint64_t kPageCrcBytes = 4;
/// Bytes one page contributes to the zone-map block: (lo, hi) u32 per dim.
constexpr uint64_t kZoneBytesPerDim = 8;

uint64_t HeaderChecksum(uint32_t version, uint32_t entries_per_page,
                        uint64_t num_entries, uint64_t num_pages,
                        uint64_t min_key, uint64_t max_key,
                        uint64_t index_offset, uint32_t codec_id,
                        uint32_t filter_bits, uint64_t filter_offset,
                        uint64_t filter_bytes, uint32_t zone_dims) {
  // xor-fold with distinct rotations so field swaps change the sum. The
  // v2-only fields are zero for version-1 headers, which keeps this
  // function byte-compatible with the checksums already on disk.
  uint64_t sum = 0x0410105fc5e671ULL;  // salt
  sum ^= Rotl64(static_cast<uint64_t>(version) << 32 | entries_per_page, 1);
  sum ^= Rotl64(num_entries, 7);
  sum ^= Rotl64(num_pages, 13);
  sum ^= Rotl64(min_key, 19);
  sum ^= Rotl64(max_key, 29);
  sum ^= Rotl64(index_offset, 37);
  sum ^= Rotl64(static_cast<uint64_t>(codec_id) << 32 | filter_bits, 43);
  sum ^= Rotl64(filter_offset, 47);
  sum ^= Rotl64(filter_bytes, 53);
  sum ^= Rotl64(zone_dims, 59);
  return sum;
}

Status IoError(const std::string& path, const char* what) {
  return Status::Internal(std::string(what) + ": " + path);
}

Status CorruptError(const std::string& path, const char* what) {
  return Status::InvalidArgument(std::string(what) + ": " + path);
}

/// 64-bit-safe absolute seek (plain fseek takes a long, which is 32 bits on
/// some platforms — segments can exceed 2 GiB).
bool SeekTo(std::FILE* file, uint64_t offset) {
#if defined(_WIN32)
  return _fseeki64(file, static_cast<long long>(offset), SEEK_SET) == 0;
#else
  return ::fseeko(file, static_cast<off_t>(offset), SEEK_SET) == 0;
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// SegmentWriter

SegmentWriter::SegmentWriter(std::string path, uint32_t entries_per_page)
    : SegmentWriter(std::move(path),
                    SegmentWriterOptions{entries_per_page, PageCodec::kRaw,
                                         /*filter_bits_per_key=*/10,
                                         /*curve=*/nullptr}) {}

SegmentWriter::SegmentWriter(std::string path,
                             const SegmentWriterOptions& options)
    : path_(std::move(path)),
      options_(options),
      bloom_(options.filter_bits_per_key) {
  ONION_CHECK_MSG(options_.entries_per_page >= 1,
                  "page size must be positive");
  ONION_CHECK_MSG(PageCodecValid(static_cast<uint32_t>(options_.codec)),
                  "unknown page codec");
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = IoError(path_, "cannot create segment file");
    return;
  }
  // Header placeholder, overwritten by Finish().
  const std::vector<uint8_t> zeros(kHeaderBytesV2, 0);
  if (std::fwrite(zeros.data(), 1, zeros.size(), file_) != zeros.size()) {
    status_ = IoError(path_, "write failed");
  }
  next_offset_ = kHeaderBytesV2;
  page_buf_.reserve(options_.entries_per_page);
}

SegmentWriter::~SegmentWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!finished_) std::remove(path_.c_str());
}

Status SegmentWriter::WritePage() {
  std::vector<uint8_t> bytes;
  EncodePage(options_.codec, page_buf_, /*with_seqs=*/true, &bytes);
  // Per-page block checksum: decoders verify it before touching the
  // encoding, so a flipped bit surfaces as Status::Corruption instead of
  // silently wrong entries.
  const uint32_t crc = Crc32c(bytes.data(), bytes.size());
  bytes.resize(bytes.size() + kPageCrcBytes);
  PutU32(bytes.data() + bytes.size() - kPageCrcBytes, crc);
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return IoError(path_, "write failed");
  }
  PageMeta meta;
  meta.offset = next_offset_;
  meta.bytes = bytes.size();
  meta.first_key = page_buf_.front().key;
  meta.last_key = page_buf_.back().key;
  if (options_.curve != nullptr) {
    const int dims = options_.curve->universe().dims();
    for (size_t i = 0; i < page_buf_.size(); ++i) {
      const Cell cell = options_.curve->CellAt(page_buf_[i].key);
      for (int d = 0; d < dims; ++d) {
        if (i == 0 || cell[d] < meta.cell_lo[static_cast<size_t>(d)]) {
          meta.cell_lo[static_cast<size_t>(d)] = cell[d];
        }
        if (i == 0 || cell[d] > meta.cell_hi[static_cast<size_t>(d)]) {
          meta.cell_hi[static_cast<size_t>(d)] = cell[d];
        }
      }
    }
  }
  next_offset_ += meta.bytes;
  pages_.push_back(meta);
  page_buf_.clear();
  return Status::OK();
}

Status SegmentWriter::Add(Key key, uint64_t payload, uint64_t seq) {
  if (!status_.ok()) return status_;
  ONION_CHECK_MSG(!finished_, "Add after Finish");
  ONION_CHECK_MSG(num_entries_ == 0 || key >= last_key_,
                  "segment entries must be added in sorted key order");
  if (num_entries_ == 0) min_key_ = key;
  max_key_ = key;
  last_key_ = key;
  ++num_entries_;
  bloom_.AddKey(key);
  page_buf_.push_back(Entry{key, payload, seq});
  if (page_buf_.size() == options_.entries_per_page) status_ = WritePage();
  return status_;
}

Status SegmentWriter::Finish() {
  if (!status_.ok()) return status_;
  ONION_CHECK_MSG(!finished_, "Finish called twice");
  if (!page_buf_.empty()) {
    status_ = WritePage();
    if (!status_.ok()) return status_;
  }
  const uint64_t num_pages = pages_.size();

  // Footer block 1: the bloom filter (may be empty).
  const std::vector<uint8_t> filter = bloom_.Finish();
  const uint64_t filter_offset = filter.empty() ? 0 : next_offset_;
  if (!filter.empty() &&
      std::fwrite(filter.data(), 1, filter.size(), file_) != filter.size()) {
    return status_ = IoError(path_, "write failed");
  }

  // Footer block 2: zone maps, page-major, (lo, hi) u32 per dimension.
  const uint32_t zone_dims =
      options_.curve != nullptr && num_pages > 0
          ? static_cast<uint32_t>(options_.curve->universe().dims())
          : 0;
  if (zone_dims > 0) {
    std::vector<uint8_t> zone_bytes(num_pages * zone_dims * kZoneBytesPerDim);
    for (uint64_t i = 0; i < num_pages; ++i) {
      uint8_t* record = &zone_bytes[i * zone_dims * kZoneBytesPerDim];
      for (uint32_t d = 0; d < zone_dims; ++d) {
        PutU32(record + d * 8, pages_[i].cell_lo[d]);
        PutU32(record + d * 8 + 4, pages_[i].cell_hi[d]);
      }
    }
    if (std::fwrite(zone_bytes.data(), 1, zone_bytes.size(), file_) !=
        zone_bytes.size()) {
      return status_ = IoError(path_, "write failed");
    }
  }

  // Footer block 3: the page index.
  const uint64_t index_offset = next_offset_ + filter.size() +
                                num_pages * zone_dims * kZoneBytesPerDim;
  std::vector<uint8_t> index_bytes(num_pages * kPageIndexRecordBytes);
  for (uint64_t i = 0; i < num_pages; ++i) {
    uint8_t* record = &index_bytes[i * kPageIndexRecordBytes];
    PutU64(record, pages_[i].offset);
    PutU64(record + 8, pages_[i].bytes);
    PutU64(record + 16, pages_[i].first_key);
    PutU64(record + 24, pages_[i].last_key);
  }
  if (!index_bytes.empty() &&
      std::fwrite(index_bytes.data(), 1, index_bytes.size(), file_) !=
          index_bytes.size()) {
    return status_ = IoError(path_, "write failed");
  }

  const auto codec_id = static_cast<uint32_t>(options_.codec);
  uint8_t header[kHeaderBytesV2] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutU32(header + 8, kFormatVersion);
  PutU32(header + 12, options_.entries_per_page);
  PutU64(header + 16, num_entries_);
  PutU64(header + 24, num_pages);
  PutU64(header + 32, min_key_);
  PutU64(header + 40, max_key_);
  PutU64(header + 48, index_offset);
  PutU32(header + 56, codec_id);
  PutU32(header + 60, options_.filter_bits_per_key);
  PutU64(header + 64, filter_offset);
  PutU64(header + 72, filter.size());
  PutU32(header + 80, zone_dims);
  PutU32(header + 84, 0);  // reserved
  PutU64(header + 88,
         HeaderChecksum(kFormatVersion, options_.entries_per_page,
                        num_entries_, num_pages, min_key_, max_key_,
                        index_offset, codec_id, options_.filter_bits_per_key,
                        filter_offset, filter.size(), zone_dims));
  if (!SeekTo(file_, 0) ||
      std::fwrite(header, 1, kHeaderBytesV2, file_) != kHeaderBytesV2) {
    return status_ = IoError(path_, "write failed");
  }
  // Durability before publication: fsync the data, then the directory
  // entry, BEFORE the caller may reference this segment from a MANIFEST.
  // Without the second sync a crash could durably install a manifest whose
  // directory never durably contained the segment it names.
  status_ = SyncFile(file_, path_);
  if (!status_.ok()) return status_;
  status_ = SyncDir(DirOf(path_));
  if (!status_.ok()) return status_;
  std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SegmentReader

SegmentReader::SegmentReader(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

SegmentReader::~SegmentReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<SegmentReader>> SegmentReader::Open(std::string path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open segment file: " + path);
  }
  std::unique_ptr<SegmentReader> reader(
      new SegmentReader(std::move(path), file));

  // All versions share the first 64 bytes of header layout; versions 2
  // and 3 extend it to 96. Read the common prefix, dispatch on the
  // version.
  uint8_t header[kHeaderBytesV2];
  if (std::fread(header, 1, kHeaderBytesV1, file) != kHeaderBytesV1) {
    return CorruptError(reader->path_, "segment too short");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return CorruptError(reader->path_, "bad segment magic");
  }
  const uint32_t version = GetU32(header + 8);
  Status status;
  if (version == 1) {
    status = reader->LoadV1(header);
  } else if (version == 2 || version == 3) {
    if (std::fread(header + kHeaderBytesV1, 1,
                   kHeaderBytesV2 - kHeaderBytesV1,
                   file) != kHeaderBytesV2 - kHeaderBytesV1) {
      return CorruptError(reader->path_, "segment too short");
    }
    status = reader->LoadV2(header, version);
  } else {
    return Status::InvalidArgument(
        "unsupported segment format version " + std::to_string(version) +
        " (this build reads versions 1 through 3): " + reader->path_);
  }
  if (!status.ok()) return status;
  return reader;
}

Status SegmentReader::LoadV1(const uint8_t* header) {
  version_ = 1;
  codec_ = PageCodec::kRaw;
  entries_per_page_ = GetU32(header + 12);
  num_entries_ = GetU64(header + 16);
  const uint64_t num_pages = GetU64(header + 24);
  min_key_ = GetU64(header + 32);
  max_key_ = GetU64(header + 40);
  const uint64_t fence_offset = GetU64(header + 48);
  const uint64_t checksum = GetU64(header + 56);
  if (entries_per_page_ < 1) {
    return CorruptError(path_, "segment page size is zero");
  }
  if (checksum != HeaderChecksum(1, entries_per_page_, num_entries_,
                                 num_pages, min_key_, max_key_, fence_offset,
                                 0, 0, 0, 0, 0)) {
    return CorruptError(path_, "segment header checksum mismatch");
  }
  const uint64_t page_bytes =
      static_cast<uint64_t>(entries_per_page_) * kEntryBytes;
  const uint64_t expected_pages =
      (num_entries_ + entries_per_page_ - 1) / entries_per_page_;
  const uint64_t expected_fence_offset =
      kHeaderBytesV1 + num_pages * page_bytes;
  if (num_pages != expected_pages || fence_offset != expected_fence_offset) {
    return CorruptError(path_, "segment geometry corrupt");
  }

  std::vector<uint8_t> fence_bytes(num_pages * kEntryBytes);
  if (!SeekTo(file_, fence_offset) ||
      (!fence_bytes.empty() &&
       std::fread(fence_bytes.data(), 1, fence_bytes.size(), file_) !=
           fence_bytes.size())) {
    return CorruptError(path_, "segment fence block truncated");
  }
  pages_.reserve(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    PageMeta meta;
    meta.offset = kHeaderBytesV1 + i * page_bytes;
    meta.bytes = page_bytes;  // v1 pages are fixed-size (zero-padded)
    meta.first_key = GetU64(&fence_bytes[i * kEntryBytes]);
    meta.last_key = GetU64(&fence_bytes[i * kEntryBytes + 8]);
    if (meta.first_key > meta.last_key ||
        (i > 0 && meta.first_key < pages_.back().last_key)) {
      return CorruptError(path_, "segment fence index not sorted");
    }
    pages_.push_back(meta);
  }
  file_bytes_ = kHeaderBytesV1 + num_pages * (page_bytes + kEntryBytes);
  return Status::OK();
}

Status SegmentReader::LoadV2(const uint8_t* header, uint32_t version) {
  version_ = version;
  entries_per_page_ = GetU32(header + 12);
  num_entries_ = GetU64(header + 16);
  const uint64_t num_pages = GetU64(header + 24);
  min_key_ = GetU64(header + 32);
  max_key_ = GetU64(header + 40);
  const uint64_t index_offset = GetU64(header + 48);
  const uint32_t codec_id = GetU32(header + 56);
  const uint32_t filter_bits = GetU32(header + 60);
  const uint64_t filter_offset = GetU64(header + 64);
  const uint64_t filter_bytes = GetU64(header + 72);
  zone_dims_ = GetU32(header + 80);
  const uint64_t checksum = GetU64(header + 88);
  if (entries_per_page_ < 1) {
    return CorruptError(path_, "segment page size is zero");
  }
  if (!PageCodecValid(codec_id)) {
    return Status::InvalidArgument("unknown segment page codec id " +
                                   std::to_string(codec_id) + ": " + path_);
  }
  codec_ = static_cast<PageCodec>(codec_id);
  if (checksum != HeaderChecksum(version, entries_per_page_, num_entries_,
                                 num_pages, min_key_, max_key_, index_offset,
                                 codec_id, filter_bits, filter_offset,
                                 filter_bytes, zone_dims_)) {
    return CorruptError(path_, "segment header checksum mismatch");
  }
  const uint64_t expected_pages =
      (num_entries_ + entries_per_page_ - 1) / entries_per_page_;
  if (num_pages != expected_pages || zone_dims_ > kMaxDims ||
      (filter_bytes == 0) != (filter_offset == 0) ||
      filter_bytes % kBloomBlockBytes != 0) {
    return CorruptError(path_, "segment geometry corrupt");
  }

  std::vector<uint8_t> index_bytes(num_pages * kPageIndexRecordBytes);
  if (!SeekTo(file_, index_offset) ||
      (!index_bytes.empty() &&
       std::fread(index_bytes.data(), 1, index_bytes.size(), file_) !=
           index_bytes.size())) {
    return CorruptError(path_, "segment page index truncated");
  }
  pages_.reserve(num_pages);
  uint64_t expected_offset = kHeaderBytesV2;
  for (uint64_t i = 0; i < num_pages; ++i) {
    const uint8_t* record = &index_bytes[i * kPageIndexRecordBytes];
    PageMeta meta;
    meta.offset = GetU64(record);
    meta.bytes = GetU64(record + 8);
    meta.first_key = GetU64(record + 16);
    meta.last_key = GetU64(record + 24);
    // Pages are written back to back, so the index offsets are fully
    // determined — any deviation is corruption.
    if (meta.offset != expected_offset || meta.bytes == 0) {
      return CorruptError(path_, "segment page index not contiguous");
    }
    expected_offset += meta.bytes;
    if (meta.first_key > meta.last_key ||
        (i > 0 && meta.first_key < pages_.back().last_key)) {
      return CorruptError(path_, "segment fence index not sorted");
    }
    pages_.push_back(meta);
  }
  const uint64_t data_end = expected_offset;
  if (filter_bytes > 0 && filter_offset != data_end) {
    return CorruptError(path_, "segment filter block misplaced");
  }
  const uint64_t zone_offset = data_end + filter_bytes;
  const uint64_t zone_bytes = num_pages * zone_dims_ * kZoneBytesPerDim;
  if (index_offset != zone_offset + zone_bytes) {
    return CorruptError(path_, "segment footer geometry corrupt");
  }

  if (filter_bytes > 0) {
    filter_.resize(filter_bytes);
    if (!SeekTo(file_, filter_offset) ||
        std::fread(filter_.data(), 1, filter_.size(), file_) !=
            filter_.size()) {
      return CorruptError(path_, "segment filter block truncated");
    }
  }
  if (zone_bytes > 0) {
    std::vector<uint8_t> raw(zone_bytes);
    if (!SeekTo(file_, zone_offset) ||
        std::fread(raw.data(), 1, raw.size(), file_) != raw.size()) {
      return CorruptError(path_, "segment zone maps truncated");
    }
    zones_.resize(num_pages * zone_dims_ * 2);
    for (size_t i = 0; i < zones_.size(); ++i) {
      zones_[i] = GetU32(&raw[i * 4]);
    }
  }
  file_bytes_ = index_offset + num_pages * kPageIndexRecordBytes;
  return Status::OK();
}

Status SegmentReader::ReadPage(uint64_t page, std::vector<Entry>* out) const {
  ONION_CHECK_MSG(page < num_pages(), "page out of range");
  const PageMeta& meta = pages_[page];
  std::vector<uint8_t> bytes(meta.bytes);
  {
    // The seek+read pair must be atomic: concurrent readers (queries
    // through the buffer pool, a background compaction cursor) share file_.
    const MutexLock lock(io_mu_);
    if (!SeekTo(file_, meta.offset) ||
        std::fread(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      return Status::Corruption("segment page read truncated: page " +
                                std::to_string(page) + " of " + path_);
    }
  }
  return DecodePageBytes(page, bytes.data(), bytes.size(), out);
}

Status SegmentReader::DecodePageBytes(uint64_t page, const uint8_t* data,
                                      size_t size,
                                      std::vector<Entry>* out) const {
  size_t encoded_size = size;
  if (version_ >= 3) {
    // v3 pages end in a CRC32C over the encoded bytes; verify before
    // decoding so a flipped bit can never produce silently wrong entries.
    if (encoded_size < kPageCrcBytes) {
      return Status::Corruption("segment page shorter than its checksum: " +
                                path_);
    }
    encoded_size -= kPageCrcBytes;
    const uint32_t stored = GetU32(data + encoded_size);
    if (stored != Crc32c(data, encoded_size)) {
      return Status::Corruption("segment page checksum mismatch: page " +
                                std::to_string(page) + " of " + path_);
    }
  }
  const uint64_t count = PageEnd(page) - PageBegin(page);
  if (!DecodePage(codec_, data, encoded_size, count,
                  /*with_seqs=*/version_ >= 3, out)) {
    return Status::Corruption("segment page decode failed: page " +
                              std::to_string(page) + " of " + path_);
  }
  return Status::OK();
}

Status SegmentReader::ReadPages(uint64_t first_page, uint64_t count,
                                std::vector<std::vector<Entry>>* out) const {
  ONION_CHECK_MSG(count > 0 && first_page < num_pages() &&
                      count <= num_pages() - first_page,
                  "page run out of range");
  // The writer lays pages back-to-back, so a run of pages is one
  // contiguous byte span. Verify rather than assume — if a foreign layout
  // ever interleaves other blocks, fall back to the per-page loop.
  const uint64_t base = pages_[first_page].offset;
  uint64_t span = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (pages_[first_page + i].offset != base + span) {
      return PageSource::ReadPages(first_page, count, out);
    }
    span += pages_[first_page + i].bytes;
  }
  out->clear();
  out->resize(count);
  (void)span;
#if defined(ONION_HAVE_PREADV)
  // One positioned vectored read for the whole run, scattered straight
  // into one buffer per page. preadv never touches the descriptor's file
  // offset, so — unlike the seek+fread pairs above — this path runs
  // WITHOUT io_mu_ and never serializes against concurrent page reads.
  std::vector<std::vector<uint8_t>> buffers(count);
  std::vector<struct iovec> iov(count);
  for (uint64_t i = 0; i < count; ++i) {
    buffers[i].resize(pages_[first_page + i].bytes);
    iov[i].iov_base = buffers[i].data();
    iov[i].iov_len = buffers[i].size();
  }
  // The stdio stream may still hold buffered state from open-time header
  // reads; positioned reads bypass it, which is fine because segments are
  // immutable once opened.
  const Status read_status = PreadvFull(::fileno(file_), base, iov.data(),
                                        iov.size(), path_);
  if (!read_status.ok()) {
    return Status::Corruption("segment batched page read truncated: pages " +
                              std::to_string(first_page) + "+" +
                              std::to_string(count) + " of " + path_ + " (" +
                              read_status.message() + ")");
  }
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t page = first_page + i;
    // Per the PageSource contract a page that fails validation leaves an
    // empty slot; the demanding caller re-reads it alone for the error.
    if (!DecodePageBytes(page, buffers[i].data(), buffers[i].size(),
                         &(*out)[i])
             .ok()) {
      (*out)[i].clear();
    }
  }
#else
  std::vector<uint8_t> bytes(span);
  {
    // One seek + one transfer for the whole run; this is the entire point
    // of the batched path.
    const MutexLock lock(io_mu_);
    if (!SeekTo(file_, base) ||
        std::fread(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      return Status::Corruption(
          "segment batched page read truncated: pages " +
          std::to_string(first_page) + "+" + std::to_string(count) + " of " +
          path_);
    }
  }
  uint64_t at = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t page = first_page + i;
    // Per the PageSource contract a page that fails validation leaves an
    // empty slot; the demanding caller re-reads it alone for the error.
    if (!DecodePageBytes(page, bytes.data() + at, pages_[page].bytes,
                         &(*out)[i])
             .ok()) {
      (*out)[i].clear();
    }
    at += pages_[page].bytes;
  }
#endif
  return Status::OK();
}

bool SegmentReader::PageMayIntersect(uint64_t page, const Box& box) const {
  ONION_CHECK_MSG(page < num_pages(), "page out of range");
  if (zone_dims_ == 0) return true;
  if (box.dims() != static_cast<int>(zone_dims_)) return true;
  const Coord* record = &zones_[page * zone_dims_ * 2];
  for (uint32_t d = 0; d < zone_dims_; ++d) {
    const int axis = static_cast<int>(d);
    if (record[2 * d] > box.hi[axis] || record[2 * d + 1] < box.lo[axis]) {
      return false;
    }
  }
  return true;
}

}  // namespace onion::storage
