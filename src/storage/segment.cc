#include "storage/segment.h"

#include <cstring>

#include "common/macros.h"
#include "storage/codec.h"
#include "storage/fs_util.h"

namespace onion::storage {
namespace {

constexpr char kMagic[8] = {'O', 'S', 'F', 'C', 'S', 'E', 'G', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint64_t kHeaderBytes = 64;

uint64_t HeaderChecksum(uint32_t entries_per_page, uint64_t num_entries,
                        uint64_t num_pages, uint64_t min_key, uint64_t max_key,
                        uint64_t fence_offset) {
  // xor-fold with distinct rotations so field swaps change the sum.
  uint64_t sum = 0x0410105fc5e671ULL;  // salt
  sum ^= Rotl64(
      static_cast<uint64_t>(kFormatVersion) << 32 | entries_per_page, 1);
  sum ^= Rotl64(num_entries, 7);
  sum ^= Rotl64(num_pages, 13);
  sum ^= Rotl64(min_key, 19);
  sum ^= Rotl64(max_key, 29);
  sum ^= Rotl64(fence_offset, 37);
  return sum;
}

Status IoError(const std::string& path, const char* what) {
  return Status::Internal(std::string(what) + ": " + path);
}

/// 64-bit-safe absolute seek (plain fseek takes a long, which is 32 bits on
/// some platforms — segments can exceed 2 GiB).
bool SeekTo(std::FILE* file, uint64_t offset) {
#if defined(_WIN32)
  return _fseeki64(file, static_cast<long long>(offset), SEEK_SET) == 0;
#else
  return ::fseeko(file, static_cast<off_t>(offset), SEEK_SET) == 0;
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// SegmentWriter

SegmentWriter::SegmentWriter(std::string path, uint32_t entries_per_page)
    : path_(std::move(path)), entries_per_page_(entries_per_page) {
  ONION_CHECK_MSG(entries_per_page_ >= 1, "page size must be positive");
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = IoError(path_, "cannot create segment file");
    return;
  }
  // Header placeholder, overwritten by Finish().
  const std::vector<uint8_t> zeros(kHeaderBytes, 0);
  if (std::fwrite(zeros.data(), 1, zeros.size(), file_) != zeros.size()) {
    status_ = IoError(path_, "write failed");
  }
  page_buf_.reserve(entries_per_page_);
}

SegmentWriter::~SegmentWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!finished_) std::remove(path_.c_str());
}

Status SegmentWriter::WritePage() {
  std::vector<uint8_t> bytes(static_cast<size_t>(entries_per_page_) *
                             kEntryBytes, 0);
  for (size_t i = 0; i < page_buf_.size(); ++i) {
    PutU64(&bytes[i * kEntryBytes], page_buf_[i].key);
    PutU64(&bytes[i * kEntryBytes + 8], page_buf_[i].payload);
  }
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return IoError(path_, "write failed");
  }
  fences_.emplace_back(page_buf_.front().key, page_buf_.back().key);
  page_buf_.clear();
  return Status::OK();
}

Status SegmentWriter::Add(Key key, uint64_t payload) {
  if (!status_.ok()) return status_;
  ONION_CHECK_MSG(!finished_, "Add after Finish");
  ONION_CHECK_MSG(num_entries_ == 0 || key >= last_key_,
                  "segment entries must be added in sorted key order");
  if (num_entries_ == 0) min_key_ = key;
  max_key_ = key;
  last_key_ = key;
  ++num_entries_;
  page_buf_.push_back(Entry{key, payload});
  if (page_buf_.size() == entries_per_page_) status_ = WritePage();
  return status_;
}

Status SegmentWriter::Finish() {
  if (!status_.ok()) return status_;
  ONION_CHECK_MSG(!finished_, "Finish called twice");
  if (!page_buf_.empty()) {
    status_ = WritePage();
    if (!status_.ok()) return status_;
  }
  const uint64_t num_pages = fences_.size();
  const uint64_t fence_offset =
      kHeaderBytes + num_pages * entries_per_page_ * kEntryBytes;
  std::vector<uint8_t> fence_bytes(num_pages * kEntryBytes);
  for (uint64_t i = 0; i < num_pages; ++i) {
    PutU64(&fence_bytes[i * kEntryBytes], fences_[i].first);
    PutU64(&fence_bytes[i * kEntryBytes + 8], fences_[i].second);
  }
  if (!fence_bytes.empty() &&
      std::fwrite(fence_bytes.data(), 1, fence_bytes.size(), file_) !=
          fence_bytes.size()) {
    return status_ = IoError(path_, "write failed");
  }

  uint8_t header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutU32(header + 8, kFormatVersion);
  PutU32(header + 12, entries_per_page_);
  PutU64(header + 16, num_entries_);
  PutU64(header + 24, num_pages);
  PutU64(header + 32, min_key_);
  PutU64(header + 40, max_key_);
  PutU64(header + 48, fence_offset);
  PutU64(header + 56, HeaderChecksum(entries_per_page_, num_entries_,
                                     num_pages, min_key_, max_key_,
                                     fence_offset));
  if (!SeekTo(file_, 0) ||
      std::fwrite(header, 1, kHeaderBytes, file_) != kHeaderBytes) {
    return status_ = IoError(path_, "write failed");
  }
  // Durability before publication: fsync the data, then the directory
  // entry, BEFORE the caller may reference this segment from a MANIFEST.
  // Without the second sync a crash could durably install a manifest whose
  // directory never durably contained the segment it names.
  status_ = SyncFile(file_, path_);
  if (!status_.ok()) return status_;
  status_ = SyncDir(DirOf(path_));
  if (!status_.ok()) return status_;
  std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SegmentReader

SegmentReader::SegmentReader(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

SegmentReader::~SegmentReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<SegmentReader>> SegmentReader::Open(std::string path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open segment file: " + path);
  }
  std::unique_ptr<SegmentReader> reader(
      new SegmentReader(std::move(path), file));

  uint8_t header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, file) != kHeaderBytes) {
    return Status::InvalidArgument("segment too short: " + reader->path_);
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad segment magic: " + reader->path_);
  }
  const uint32_t version = GetU32(header + 8);
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported segment version " +
                                   std::to_string(version) + ": " +
                                   reader->path_);
  }
  reader->entries_per_page_ = GetU32(header + 12);
  reader->num_entries_ = GetU64(header + 16);
  const uint64_t num_pages = GetU64(header + 24);
  reader->min_key_ = GetU64(header + 32);
  reader->max_key_ = GetU64(header + 40);
  const uint64_t fence_offset = GetU64(header + 48);
  const uint64_t checksum = GetU64(header + 56);
  if (reader->entries_per_page_ < 1) {
    return Status::InvalidArgument("segment page size is zero: " +
                                   reader->path_);
  }
  if (checksum != HeaderChecksum(reader->entries_per_page_,
                                 reader->num_entries_, num_pages,
                                 reader->min_key_, reader->max_key_,
                                 fence_offset)) {
    return Status::InvalidArgument("segment header checksum mismatch: " +
                                   reader->path_);
  }
  const uint64_t expected_pages =
      (reader->num_entries_ + reader->entries_per_page_ - 1) /
      reader->entries_per_page_;
  const uint64_t expected_fence_offset =
      kHeaderBytes + num_pages * reader->entries_per_page_ * kEntryBytes;
  if (num_pages != expected_pages || fence_offset != expected_fence_offset) {
    return Status::InvalidArgument("segment geometry corrupt: " +
                                   reader->path_);
  }

  std::vector<uint8_t> fence_bytes(num_pages * kEntryBytes);
  if (!SeekTo(file, fence_offset) ||
      (!fence_bytes.empty() &&
       std::fread(fence_bytes.data(), 1, fence_bytes.size(), file) !=
           fence_bytes.size())) {
    return Status::InvalidArgument("segment fence block truncated: " +
                                   reader->path_);
  }
  reader->fences_.reserve(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    const Key first = GetU64(&fence_bytes[i * kEntryBytes]);
    const Key last = GetU64(&fence_bytes[i * kEntryBytes + 8]);
    if (first > last ||
        (i > 0 && first < reader->fences_.back().second)) {
      return Status::InvalidArgument("segment fence index not sorted: " +
                                     reader->path_);
    }
    reader->fences_.emplace_back(first, last);
  }
  return reader;
}

void SegmentReader::ReadPage(uint64_t page, std::vector<Entry>* out) const {
  ONION_CHECK_MSG(page < num_pages(), "page out of range");
  const uint64_t page_bytes =
      static_cast<uint64_t>(entries_per_page_) * kEntryBytes;
  const uint64_t offset = kHeaderBytes + page * page_bytes;
  std::vector<uint8_t> bytes(page_bytes);
  {
    // The seek+read pair must be atomic: concurrent readers (queries
    // through the buffer pool, a background compaction cursor) share file_.
    std::lock_guard<std::mutex> lock(io_mu_);
    ONION_CHECK_MSG(SeekTo(file_, offset), "segment seek failed");
    ONION_CHECK_MSG(
        std::fread(bytes.data(), 1, bytes.size(), file_) == bytes.size(),
        "segment page read truncated");
  }
  const uint64_t count = PageEnd(page) - PageBegin(page);
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out->push_back(Entry{GetU64(&bytes[i * kEntryBytes]),
                         GetU64(&bytes[i * kEntryBytes + 8])});
  }
}

uint64_t SegmentReader::file_bytes() const {
  const uint64_t page_bytes =
      static_cast<uint64_t>(entries_per_page_) * kEntryBytes;
  return kHeaderBytes + num_pages() * (page_bytes + kEntryBytes);
}

}  // namespace onion::storage
