// The in-memory PageSource backend: a sorted std::vector of entries packed
// into logical pages. This is the original "simulated disk" from
// index/pager.h, now one interchangeable backend of the storage engine —
// useful for tests, for modeling layouts before persisting them, and as
// the reference implementation the file-backed SegmentReader must agree
// with.

#ifndef ONION_STORAGE_MEM_SOURCE_H_
#define ONION_STORAGE_MEM_SOURCE_H_

#include <cstdint>
#include <vector>

#include "storage/page_source.h"

namespace onion::storage {

class MemPageSource : public PageSource {
 public:
  /// Builds a source from entries sorted by key (checked) packed into pages
  /// of `entries_per_page` entries.
  MemPageSource(std::vector<Entry> entries, uint32_t entries_per_page);

  uint64_t num_entries() const override { return entries_.size(); }
  uint32_t entries_per_page() const override { return entries_per_page_; }
  Key first_key(uint64_t page) const override {
    return entries_[PageBegin(page)].key;
  }
  Key last_key(uint64_t page) const override {
    return entries_[PageEnd(page) - 1].key;
  }
  Status ReadPage(uint64_t page, std::vector<Entry>* out) const override;

  /// Direct entry access (memory-resident data only; disk-backed sources
  /// intentionally have no equivalent).
  const Entry& entry(uint64_t index) const { return entries_[index]; }

 private:
  std::vector<Entry> entries_;
  uint32_t entries_per_page_;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_MEM_SOURCE_H_
