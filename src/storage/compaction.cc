#include "storage/compaction.h"

#include <queue>

#include "common/macros.h"

namespace onion::storage {
namespace {

/// Sequential page-at-a-time cursor over one segment.
struct Cursor {
  const SegmentReader* reader;
  uint64_t page = 0;
  size_t offset = 0;
  std::vector<Entry> buf;

  bool LoadPage() {
    if (page >= reader->num_pages()) return false;
    reader->ReadPage(page, &buf);
    offset = 0;
    return true;
  }

  const Entry& Current() const { return buf[offset]; }

  /// Advances to the next entry; returns false at end of segment.
  bool Advance() {
    if (++offset < buf.size()) return true;
    ++page;
    return LoadPage();
  }
};

struct HeapItem {
  Key key;
  size_t input;  // tie-break: earlier inputs first among equal keys

  bool operator>(const HeapItem& other) const {
    if (key != other.key) return key > other.key;
    return input > other.input;
  }
};

using MergeHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>;

/// Seeds cursors and the heap from the non-empty inputs.
void InitMerge(const std::vector<const SegmentReader*>& inputs,
               std::vector<Cursor>* cursors, MergeHeap* heap) {
  cursors->reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    ONION_CHECK(inputs[i] != nullptr);
    cursors->push_back(Cursor{inputs[i], 0, 0, {}});
    if (cursors->back().LoadPage()) {
      heap->push(HeapItem{cursors->back().Current().key, i});
    }
  }
}

}  // namespace

Status MergeSegments(const std::vector<const SegmentReader*>& inputs,
                     SegmentWriter* out) {
  std::vector<Cursor> cursors;
  MergeHeap heap;
  InitMerge(inputs, &cursors, &heap);
  while (!heap.empty()) {
    const HeapItem top = heap.top();
    heap.pop();
    Cursor& cursor = cursors[top.input];
    const Entry& entry = cursor.Current();
    const Status status = out->Add(entry.key, entry.payload);
    if (!status.ok()) return status;
    if (cursor.Advance()) {
      heap.push(HeapItem{cursor.Current().key, top.input});
    }
  }
  return Status::OK();
}

Status MergeSegmentsLeveled(
    const std::vector<const SegmentReader*>& inputs,
    uint64_t max_output_entries,
    const std::function<std::unique_ptr<SegmentWriter>()>& open_output,
    std::vector<std::unique_ptr<SegmentWriter>>* outputs) {
  ONION_CHECK_MSG(max_output_entries >= 1, "output size must be positive");
  std::vector<Cursor> cursors;
  MergeHeap heap;
  InitMerge(inputs, &cursors, &heap);

  SegmentWriter* out = nullptr;
  Key last_written = 0;
  while (!heap.empty()) {
    const HeapItem top = heap.top();
    heap.pop();
    Cursor& cursor = cursors[top.input];
    const Entry& entry = cursor.Current();
    // Cut only between strictly increasing keys: equal keys split across
    // two outputs would make their fence ranges touch, and the level would
    // no longer be probe-one-segment-per-range.
    if (out != nullptr && out->num_entries() >= max_output_entries &&
        entry.key > last_written) {
      const Status status = out->Finish();
      if (!status.ok()) return status;
      out = nullptr;
    }
    if (out == nullptr) {
      outputs->push_back(open_output());
      out = outputs->back().get();
    }
    const Status status = out->Add(entry.key, entry.payload);
    if (!status.ok()) return status;
    last_written = entry.key;
    if (cursor.Advance()) {
      heap.push(HeapItem{cursor.Current().key, top.input});
    }
  }
  if (out != nullptr) {
    const Status status = out->Finish();
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace onion::storage
