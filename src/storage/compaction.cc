#include "storage/compaction.h"

#include <queue>

#include "common/macros.h"

namespace onion::storage {
namespace {

/// Sequential page-at-a-time cursor over one segment.
struct Cursor {
  const SegmentReader* reader;
  uint64_t page = 0;
  size_t offset = 0;
  std::vector<Entry> buf;

  bool LoadPage() {
    if (page >= reader->num_pages()) return false;
    reader->ReadPage(page, &buf);
    offset = 0;
    return true;
  }

  const Entry& Current() const { return buf[offset]; }

  /// Advances to the next entry; returns false at end of segment.
  bool Advance() {
    if (++offset < buf.size()) return true;
    ++page;
    return LoadPage();
  }
};

struct HeapItem {
  Key key;
  size_t input;  // tie-break: earlier inputs first among equal keys

  bool operator>(const HeapItem& other) const {
    if (key != other.key) return key > other.key;
    return input > other.input;
  }
};

}  // namespace

Status MergeSegments(const std::vector<const SegmentReader*>& inputs,
                     SegmentWriter* out) {
  std::vector<Cursor> cursors;
  cursors.reserve(inputs.size());
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap;
  for (size_t i = 0; i < inputs.size(); ++i) {
    ONION_CHECK(inputs[i] != nullptr);
    cursors.push_back(Cursor{inputs[i], 0, 0, {}});
    if (cursors.back().LoadPage()) {
      heap.push(HeapItem{cursors.back().Current().key, i});
    }
  }
  while (!heap.empty()) {
    const HeapItem top = heap.top();
    heap.pop();
    Cursor& cursor = cursors[top.input];
    const Entry& entry = cursor.Current();
    const Status status = out->Add(entry.key, entry.payload);
    if (!status.ok()) return status;
    if (cursor.Advance()) {
      heap.push(HeapItem{cursor.Current().key, top.input});
    }
  }
  return Status::OK();
}

}  // namespace onion::storage
