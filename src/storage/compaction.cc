#include "storage/compaction.h"

#include <algorithm>
#include <queue>

#include "common/macros.h"

namespace onion::storage {
namespace {

/// Sequential page-at-a-time cursor over one segment. A failed page read
/// (e.g. a checksum mismatch) parks its error in `status` and ends the
/// cursor; the merge loop surfaces it.
struct Cursor {
  const SegmentReader* reader;
  uint64_t page = 0;
  size_t offset = 0;
  std::vector<Entry> buf;
  Status status;

  bool LoadPage() {
    if (page >= reader->num_pages()) return false;
    status = reader->ReadPage(page, &buf);
    if (!status.ok()) return false;
    offset = 0;
    return true;
  }

  const Entry& Current() const { return buf[offset]; }

  /// Advances to the next entry; returns false at end of segment (or on a
  /// read error — check `status`).
  bool Advance() {
    if (++offset < buf.size()) return true;
    ++page;
    return LoadPage();
  }
};

struct HeapItem {
  Key key;
  size_t input;  // tie-break: earlier inputs first among equal keys

  bool operator>(const HeapItem& other) const {
    if (key != other.key) return key > other.key;
    return input > other.input;
  }
};

using MergeHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>;

/// Seeds cursors and the heap from the non-empty inputs.
Status InitMerge(const std::vector<const SegmentReader*>& inputs,
                 std::vector<Cursor>* cursors, MergeHeap* heap) {
  cursors->reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    ONION_CHECK(inputs[i] != nullptr);
    cursors->push_back(Cursor{inputs[i], 0, 0, {}, Status::OK()});
    if (cursors->back().LoadPage()) {
      heap->push(HeapItem{cursors->back().Current().key, i});
    } else if (!cursors->back().status.ok()) {
      return cursors->back().status;
    }
  }
  return Status::OK();
}

/// Pops every entry of the smallest pending key into `*group`, in input
/// order (so same-key versions keep a deterministic order). Returns false
/// when the heap is empty; a read error surfaces through `*status`.
bool NextKeyGroup(std::vector<Cursor>* cursors, MergeHeap* heap,
                  std::vector<Entry>* group, Status* status) {
  group->clear();
  if (heap->empty()) return false;
  const Key key = heap->top().key;
  while (!heap->empty() && heap->top().key == key) {
    const HeapItem top = heap->top();
    heap->pop();
    Cursor& cursor = (*cursors)[top.input];
    group->push_back(cursor.Current());
    if (cursor.Advance()) {
      heap->push(HeapItem{cursor.Current().key, top.input});
    } else if (!cursor.status.ok()) {
      *status = cursor.status;
      return false;
    }
  }
  return true;
}

/// True when no snapshot sequence S satisfies lo <= S < hi — i.e. the two
/// versions sit in the same snapshot stratum and the newer one fully
/// shadows the older.
bool NoSnapshotIn(const std::vector<uint64_t>& snapshots, uint64_t lo,
                  uint64_t hi) {
  const auto it = std::lower_bound(snapshots.begin(), snapshots.end(), lo);
  return it == snapshots.end() || *it >= hi;
}

/// MVCC garbage collection over one key's versions: removes puts shadowed
/// by a tombstone with no snapshot in between, tombstones shadowed by a
/// newer tombstone the same way, and — at the bottom level only —
/// tombstones that no snapshot predates (everything they shadow dies in
/// this same merge, so nothing can resurrect).
void CollectKeyGroup(std::vector<Entry>* group,
                     const CompactionOptions& options) {
  std::vector<uint64_t> tombstones;
  for (const Entry& entry : *group) {
    if (IsTombstone(entry.seq)) tombstones.push_back(SequenceOf(entry.seq));
  }
  if (tombstones.empty()) return;
  std::sort(tombstones.begin(), tombstones.end());
  const auto shadowed = [&](uint64_t sequence) {
    // Any in-merge tombstone newer than `sequence` with no snapshot
    // between them makes this version unreachable by every reader.
    const auto it = std::upper_bound(tombstones.begin(), tombstones.end(),
                                     sequence);
    for (auto t = it; t != tombstones.end(); ++t) {
      if (NoSnapshotIn(options.snapshots, sequence, *t)) return true;
    }
    return false;
  };
  group->erase(
      std::remove_if(group->begin(), group->end(),
                     [&](const Entry& entry) {
                       const uint64_t sequence = SequenceOf(entry.seq);
                       if (shadowed(sequence)) return true;
                       if (!IsTombstone(entry.seq)) return false;
                       // A surviving tombstone can itself be dropped only
                       // at the bottom level, and only when no snapshot
                       // predates it (otherwise a pinned older put could
                       // resurrect for latest reads).
                       return options.bottom_level &&
                              (options.snapshots.empty() ||
                               options.snapshots.front() >= sequence);
                     }),
      group->end());
}

}  // namespace

Status MergeSegments(const std::vector<const SegmentReader*>& inputs,
                     SegmentWriter* out, const CompactionOptions& options) {
  std::vector<Cursor> cursors;
  MergeHeap heap;
  Status status = InitMerge(inputs, &cursors, &heap);
  if (!status.ok()) return status;
  std::vector<Entry> group;
  while (NextKeyGroup(&cursors, &heap, &group, &status)) {
    if (options.stats != nullptr) options.stats->entries_in += group.size();
    CollectKeyGroup(&group, options);
    if (options.stats != nullptr) options.stats->entries_out += group.size();
    for (const Entry& entry : group) {
      status = out->Add(entry.key, entry.payload, entry.seq);
      if (!status.ok()) return status;
    }
  }
  return status;
}

Status MergeSegmentsLeveled(
    const std::vector<const SegmentReader*>& inputs,
    uint64_t max_output_entries,
    const std::function<std::unique_ptr<SegmentWriter>()>& open_output,
    std::vector<std::unique_ptr<SegmentWriter>>* outputs,
    const CompactionOptions& options) {
  ONION_CHECK_MSG(max_output_entries >= 1, "output size must be positive");
  std::vector<Cursor> cursors;
  MergeHeap heap;
  Status status = InitMerge(inputs, &cursors, &heap);
  if (!status.ok()) return status;

  SegmentWriter* out = nullptr;
  std::vector<Entry> group;
  while (NextKeyGroup(&cursors, &heap, &group, &status)) {
    if (options.stats != nullptr) options.stats->entries_in += group.size();
    CollectKeyGroup(&group, options);
    if (options.stats != nullptr) options.stats->entries_out += group.size();
    if (group.empty()) continue;  // the whole key died in this merge
    // Cut only between key groups: equal keys split across two outputs
    // would make their fence ranges touch, and the level would no longer
    // be probe-one-segment-per-range. The group's key is strictly greater
    // than everything already written.
    if (out != nullptr && out->num_entries() >= max_output_entries) {
      status = out->Finish();
      if (!status.ok()) return status;
      out = nullptr;
    }
    if (out == nullptr) {
      outputs->push_back(open_output());
      out = outputs->back().get();
    }
    for (const Entry& entry : group) {
      status = out->Add(entry.key, entry.payload, entry.seq);
      if (!status.ok()) return status;
    }
  }
  if (!status.ok()) return status;
  if (out != nullptr) {
    status = out->Finish();
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace onion::storage
