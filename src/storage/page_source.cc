#include "storage/page_source.h"

#include <algorithm>
#include <atomic>

namespace onion::storage {
namespace {

uint64_t NextSourceId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;  // ids start at 1
}

}  // namespace

PageSource::PageSource() : source_id_(NextSourceId()) {}

uint64_t PageSource::PageEnd(uint64_t page) const {
  return std::min<uint64_t>(num_entries(), (page + 1) * entries_per_page());
}

uint64_t PageSource::PageOf(Key key) const {
  const uint64_t pages = num_pages();
  if (pages == 0) return 0;
  // First page whose first fence is >= key; the answer can be one page
  // earlier when duplicates of that fence key spill backward.
  uint64_t lo = 0;
  uint64_t hi = pages;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (first_key(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  uint64_t page = lo == 0 ? 0 : lo - 1;
  while (page < pages && last_key(page) < key) ++page;
  return page;
}

}  // namespace onion::storage
