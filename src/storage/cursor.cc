#include "storage/cursor.h"

#include <algorithm>
#include <utility>

#include "analysis/clustering.h"
#include "common/macros.h"
#include "obs/metrics.h"
#include "sfc/curve.h"
#include "storage/buffer_pool.h"
#include "storage/segment.h"
#include "storage/sfc_table.h"

namespace onion {

std::vector<SpatialEntry> DrainCursor(Cursor* cursor) {
  std::vector<SpatialEntry> out;
  for (; cursor->Valid(); cursor->Next()) out.push_back(cursor->entry());
  return out;
}

namespace {

/// Iterates an eagerly-materialized result vector; `limit` is the only
/// ReadOptions bound that applies (there are no pages to budget).
class VectorCursor final : public Cursor {
 public:
  VectorCursor(std::vector<SpatialEntry> entries, const ReadOptions& options)
      : entries_(std::move(entries)), limit_(options.limit) {}

  bool Valid() const override {
    return pos_ < entries_.size() && (limit_ == 0 || pos_ < limit_);
  }
  void Next() override {
    ONION_CHECK(Valid());
    ++pos_;
  }
  const SpatialEntry& entry() const override {
    ONION_CHECK(Valid());
    return entries_[pos_];
  }
  Status status() const override { return Status::OK(); }
  bool hit_read_budget() const override {
    return limit_ != 0 && pos_ >= limit_ && pos_ < entries_.size();
  }

 private:
  const std::vector<SpatialEntry> entries_;
  const uint64_t limit_;
  size_t pos_ = 0;
};

/// Invalid from birth; carries the error that prevented iteration.
class ErrorCursor final : public Cursor {
 public:
  explicit ErrorCursor(Status status) : status_(std::move(status)) {
    ONION_CHECK_MSG(!status_.ok(), "error cursor needs a non-OK status");
  }

  bool Valid() const override { return false; }
  void Next() override { ONION_CHECK_MSG(false, "Next() on an error cursor"); }
  const SpatialEntry& entry() const override {
    ONION_CHECK_MSG(false, "entry() on an error cursor");
    return entry_;  // unreachable
  }
  Status status() const override { return status_; }

 private:
  const Status status_;
  const SpatialEntry entry_{};
};

}  // namespace

std::unique_ptr<Cursor> NewVectorCursor(std::vector<SpatialEntry> entries,
                                        const ReadOptions& options) {
  return std::make_unique<VectorCursor>(std::move(entries), options);
}

std::unique_ptr<Cursor> NewErrorCursor(Status status) {
  return std::make_unique<ErrorCursor>(std::move(status));
}

namespace storage {
namespace {

/// The streaming k-way merge behind SfcTable::NewBoxCursor/NewScanCursor.
///
/// Work proceeds range by range (ranges are sorted and disjoint, so
/// concatenating per-range merges yields global key order). Within a range
/// the merge sources are: the memtable snapshot (one source), every
/// overlapping L0 run (one source each — L0 runs may overlap each other),
/// and per deeper level the contiguous run of disjoint segments the range
/// spans (one source per level, advancing segment to segment). Pages are
/// fetched one at a time through the buffer pool, so stopping the cursor
/// early really does skip the remaining I/O.
///
/// MVCC: the merge works one key-group at a time. All versions of the
/// smallest pending key are drained from every source, entries above the
/// read sequence (ReadOptions::snapshot) are dropped, and the surviving
/// puts are those newer than the newest visible tombstone of the key —
/// Delete hides every older version, a later Put resurrects the key.
class SnapshotCursor final : public Cursor {
 public:
  SnapshotCursor(const SpaceFillingCurve* curve, std::vector<KeyRange> ranges,
                 const Box* query_box, std::vector<Entry> memtable_entries,
                 SegmentSnapshot segments, std::shared_ptr<BufferPool> pool,
                 AtomicIoStats* io_stats, const ReadOptions& options,
                 obs::Histogram* next_latency_us)
      : curve_(curve),
        ranges_(std::move(ranges)),
        has_box_(query_box != nullptr),
        box_(query_box != nullptr ? *query_box : Box{}),
        mem_(std::move(memtable_entries)),
        snapshot_(std::move(segments)),
        pool_(std::move(pool)),
        io_stats_(io_stats),
        options_(options),
        next_us_(next_latency_us),
        visible_seq_(options.snapshot != nullptr ? options.snapshot->sequence
                                                 : kMaxSequence) {
    if (!ranges_.empty()) {
      const obs::ScopedTimer timer(next_us_);  // the initial seek
      if (BeginRange()) FindNext();
    } else {
      valid_ = false;
    }
  }

  ~SnapshotCursor() override {
    // Pool-global entries_read and zone-map skips are batched here
    // (per-event attribution went to io_stats_ immediately); the pool
    // outlives the cursor by contract.
    if (pool_ != nullptr) {
      if (pending_entries_read_ > 0) {
        pool_->AddEntriesRead(pending_entries_read_, nullptr);
      }
      if (pending_filter_skips_ > 0) {
        pool_->AddFilterSkips(pending_filter_skips_, nullptr);
      }
    }
  }

  bool Valid() const override { return valid_; }

  void Next() override {
    ONION_CHECK_MSG(valid_, "Next() on an invalid cursor");
    valid_ = false;
    const obs::ScopedTimer timer(next_us_);
    FindNext();
  }

  const SpatialEntry& entry() const override {
    ONION_CHECK_MSG(valid_, "entry() on an invalid cursor");
    return current_;
  }

  Status status() const override { return status_; }
  bool hit_read_budget() const override { return budget_hit_; }
  uint64_t pages_skipped_by_filter() const override { return skipped_; }

 private:
  /// One merge source of the current range. Either the memtable snapshot
  /// (is_mem, pos indexes mem_) or a chain of segments scanned in order
  /// (a single L0 run, or a level's contiguous overlapping group).
  struct Source {
    std::vector<const SegmentReader*> chain;
    size_t chain_idx = 0;
    std::shared_ptr<const std::vector<Entry>> page;
    uint64_t page_no = 0;
    size_t pos = 0;  // index into *page, or into mem_ for the mem source
    Entry head{};
    bool valid = false;
    bool is_mem = false;
  };

  /// One version of the current key-group, tagged with its origin so
  /// delivered entries from segments (not the memtable) count as
  /// entries_read.
  struct GroupEntry {
    Entry entry;
    bool from_mem = false;
  };

  /// Counts one page fetch avoided by a zone-map check: locally (for the
  /// accessor), per-table (io_stats_, immediate), and pool-global
  /// (batched in the destructor).
  void CountZoneSkip() {
    ++skipped_;
    ++pending_filter_skips_;
    if (io_stats_ != nullptr) {
      io_stats_->pages_skipped_by_filter.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
  }

  /// Zone-map test for one candidate page: true when the page can be
  /// skipped without I/O. Sound only because the ranges are an exact
  /// decomposition of box_ — a page whose cell bounding box misses the box
  /// holds no key of ANY range of this query.
  bool ZoneSkips(const SegmentReader& segment, uint64_t page_no) {
    return has_box_ && !segment.PageMayIntersect(page_no, box_);
  }

  /// Fetches one page through the pool unless a page/byte bound says stop.
  /// Returns false without fetching when a bound is reached (flags
  /// budget_hit_) or when the read fails (status_ carries the corruption
  /// error). The byte budget counts ON-DISK (encoded) page bytes, the
  /// same unit as IoStats::disk_bytes.
  bool FetchPage(const SegmentReader& segment, uint64_t page_no,
                 std::shared_ptr<const std::vector<Entry>>* out) {
    if ((options_.max_pages != 0 && pages_touched_ >= options_.max_pages) ||
        (options_.max_bytes != 0 && bytes_fetched_ >= options_.max_bytes)) {
      budget_hit_ = true;
      return false;
    }
    Status fetch_status;
    // Pass the query box through so pool readahead stops at the first
    // zone-excluded page: a page this cursor would ZoneSkip is never
    // prefetched on its behalf.
    *out = pool_->Fetch(segment, page_no, io_stats_, &fetch_status,
                        has_box_ ? &box_ : nullptr);
    if (*out == nullptr) {
      status_ = fetch_status;  // e.g. a page checksum mismatch
      return false;
    }
    ++pages_touched_;
    bytes_fetched_ += segment.PageDiskBytes(page_no);
    return true;
  }

  /// Positions `s` at its first entry with lo <= key <= hi, starting from
  /// s->chain_idx. Returns false only on a budget stop; otherwise s->valid
  /// says whether an entry was found.
  bool SeekChain(Source* s, Key lo, Key hi) {
    for (; s->chain_idx < s->chain.size(); ++s->chain_idx) {
      const SegmentReader& segment = *s->chain[s->chain_idx];
      if (segment.num_entries() == 0 || segment.max_key() < lo) continue;
      if (segment.min_key() > hi) break;  // chain ascends: nothing further
      // Point probe: one bloom test can rule out the whole segment
      // before any page is scheduled (ProbeFilter counts the skip).
      if (lo == hi && !pool_->ProbeFilter(segment, lo, io_stats_)) {
        ++skipped_;
        continue;
      }
      const uint64_t pages = segment.num_pages();
      bool past_hi = false;
      for (uint64_t page_no = segment.PageOf(lo);
           page_no < pages && segment.first_key(page_no) <= hi; ++page_no) {
        if (ZoneSkips(segment, page_no)) {
          CountZoneSkip();
          continue;
        }
        if (!FetchPage(segment, page_no, &s->page)) return false;
        const auto& data = *s->page;
        const size_t pos = static_cast<size_t>(
            std::lower_bound(data.begin(), data.end(), lo,
                             [](const Entry& e, Key k) { return e.key < k; }) -
            data.begin());
        if (pos == data.size()) continue;  // whole page below lo
        if (data[pos].key > hi) {
          past_hi = true;  // rest of this segment (and the chain) is past hi
          break;
        }
        s->page_no = page_no;
        s->pos = pos;
        s->head = data[pos];
        s->valid = true;
        return true;
      }
      if (past_hi) break;
    }
    s->valid = false;
    return true;
  }

  /// Steps `s` past its current head, staying within key <= hi. Returns
  /// false only on a budget stop.
  bool AdvanceSource(Source* s, Key hi) {
    if (s->is_mem) {
      ++s->pos;
      if (s->pos < mem_.size() && mem_[s->pos].key <= hi) {
        s->head = mem_[s->pos];
      } else {
        s->valid = false;
      }
      return true;
    }
    ++s->pos;
    if (s->pos < s->page->size()) {
      const Entry& e = (*s->page)[s->pos];
      if (e.key <= hi) {
        s->head = e;
        return true;
      }
      s->valid = false;
      return true;
    }
    const SegmentReader& segment = *s->chain[s->chain_idx];
    ++s->page_no;
    // Zone maps may rule out whole pages between here and the next page
    // that can actually contribute — skipped pages cost no I/O.
    while (s->page_no < segment.num_pages() &&
           segment.first_key(s->page_no) <= hi &&
           ZoneSkips(segment, s->page_no)) {
      CountZoneSkip();
      ++s->page_no;
    }
    if (s->page_no < segment.num_pages() &&
        segment.first_key(s->page_no) <= hi) {
      if (!FetchPage(segment, s->page_no, &s->page)) return false;
      s->pos = 0;
      s->head = (*s->page)[0];  // first_key <= hi, and pages are non-empty
      return true;
    }
    // Segment exhausted for this range; the next chain segment (if any)
    // starts strictly above every key consumed so far.
    ++s->chain_idx;
    return SeekChain(s, s->head.key, hi);
  }

  /// Builds the merge sources of ranges_[range_idx_]. Returns false only
  /// on a budget stop.
  bool BeginRange() {
    sources_.clear();
    const KeyRange& range = ranges_[range_idx_];
    if (!mem_.empty()) {
      Source s;
      s.is_mem = true;
      s.pos = static_cast<size_t>(
          std::lower_bound(mem_.begin(), mem_.end(), range.lo,
                           [](const Entry& e, Key k) { return e.key < k; }) -
          mem_.begin());
      if (s.pos < mem_.size() && mem_[s.pos].key <= range.hi) {
        s.head = mem_[s.pos];
        s.valid = true;
        sources_.push_back(std::move(s));
      }
    }
    for (const auto& segment : snapshot_.l0) {
      if (segment->num_entries() == 0 || range.hi < segment->min_key() ||
          range.lo > segment->max_key()) {
        continue;
      }
      Source s;
      s.chain = {segment.get()};
      if (!SeekChain(&s, range.lo, range.hi)) return false;
      if (s.valid) sources_.push_back(std::move(s));
    }
    for (const auto& level : snapshot_.levels) {
      // Disjoint sorted level: binary search to the first segment that can
      // overlap, then take the contiguous overlapping run as one chain.
      auto it = std::lower_bound(
          level.begin(), level.end(), range.lo,
          [](const std::shared_ptr<SegmentReader>& segment, Key lo) {
            return segment->max_key() < lo;
          });
      Source s;
      for (; it != level.end() && (*it)->min_key() <= range.hi; ++it) {
        s.chain.push_back(it->get());
      }
      if (s.chain.empty()) continue;
      if (!SeekChain(&s, range.lo, range.hi)) return false;
      if (s.valid) sources_.push_back(std::move(s));
    }
    return true;
  }

  /// Drains every version of the smallest pending key into group_ and
  /// resolves MVCC visibility: versions above the read sequence are
  /// invisible, and visible puts survive only when newer than the newest
  /// visible tombstone of the key. Survivors are ordered by (payload,
  /// seq) for deterministic equal-key delivery. Returns false when the
  /// current range has no further key, or on a budget/error stop
  /// (budget_hit_ / status_ say which).
  bool BuildNextGroup() {
    group_.clear();
    group_pos_ = 0;
    int first = -1;
    for (size_t i = 0; i < sources_.size(); ++i) {
      if (!sources_[i].valid) continue;
      if (first < 0 || sources_[i].head.key < sources_[first].head.key) {
        first = static_cast<int>(i);
      }
    }
    if (first < 0) return false;  // range exhausted
    const Key group_key = sources_[static_cast<size_t>(first)].head.key;
    const Key hi = ranges_[range_idx_].hi;
    raw_.clear();
    for (Source& source : sources_) {
      while (source.valid && source.head.key == group_key) {
        raw_.push_back(GroupEntry{source.head, source.is_mem});
        if (!AdvanceSource(&source, hi)) return false;  // budget/error stop
      }
    }
    uint64_t max_tombstone = 0;
    bool has_tombstone = false;
    for (const GroupEntry& e : raw_) {
      if (SequenceOf(e.entry.seq) > visible_seq_) continue;
      if (IsTombstone(e.entry.seq)) {
        has_tombstone = true;
        max_tombstone = std::max(max_tombstone, SequenceOf(e.entry.seq));
      }
    }
    for (const GroupEntry& e : raw_) {
      if (SequenceOf(e.entry.seq) > visible_seq_) continue;
      if (IsTombstone(e.entry.seq)) continue;
      if (has_tombstone && SequenceOf(e.entry.seq) <= max_tombstone) continue;
      group_.push_back(e);
    }
    std::sort(group_.begin(), group_.end(),
              [](const GroupEntry& a, const GroupEntry& b) {
                if (a.entry.payload != b.entry.payload) {
                  return a.entry.payload < b.entry.payload;
                }
                return a.entry.seq < b.entry.seq;
              });
    return true;
  }

  /// Establishes the next current entry (the next survivor of the current
  /// key-group, building new groups and advancing through ranges as they
  /// drain) or ends the cursor.
  void FindNext() {
    for (;;) {
      if (budget_hit_ || !status_.ok()) return;  // valid_ stays false
      if (group_pos_ < group_.size()) {
        // The limit check sits where a further entry provably exists: when
        // the data runs out exactly at the limit, the cursor ends as
        // exhausted (hit_read_budget() false), matching the contract that
        // the flag means "stopped early", not "delivered exactly limit".
        if (options_.limit != 0 && delivered_ >= options_.limit) {
          budget_hit_ = true;
          return;
        }
        const GroupEntry& e = group_[group_pos_++];
        current_ = SpatialEntry{curve_->CellAt(e.entry.key), e.entry.payload,
                                SequenceOf(e.entry.seq)};
        ++delivered_;
        if (!e.from_mem) {
          ++pending_entries_read_;
          if (io_stats_ != nullptr) {
            io_stats_->entries_read.fetch_add(1, std::memory_order_relaxed);
          }
        }
        valid_ = true;
        return;
      }
      if (BuildNextGroup()) continue;  // a group (possibly fully hidden)
      if (budget_hit_ || !status_.ok()) return;
      ++range_idx_;
      if (range_idx_ >= ranges_.size()) return;  // exhausted: clean end
      if (!BeginRange()) return;                 // budget/error mid-build
    }
  }

  const SpaceFillingCurve* const curve_;
  const std::vector<KeyRange> ranges_;
  const bool has_box_;  // zone-map skipping needs the originating box
  const Box box_;
  const std::vector<Entry> mem_;  // sorted by (key, payload)
  const SegmentSnapshot snapshot_;
  const std::shared_ptr<BufferPool> pool_;
  AtomicIoStats* const io_stats_;
  const ReadOptions options_;
  obs::Histogram* const next_us_;  // per-step latency sink (may be null)
  const uint64_t visible_seq_;  // read sequence: snapshot or "latest"

  std::vector<Source> sources_;
  std::vector<GroupEntry> raw_;    // scratch: all versions of one key
  std::vector<GroupEntry> group_;  // survivors being delivered
  size_t group_pos_ = 0;
  size_t range_idx_ = 0;
  SpatialEntry current_{};
  bool valid_ = false;
  bool budget_hit_ = false;
  uint64_t delivered_ = 0;
  uint64_t pages_touched_ = 0;
  uint64_t bytes_fetched_ = 0;  // on-disk bytes, the max_bytes unit
  uint64_t pending_entries_read_ = 0;
  uint64_t pending_filter_skips_ = 0;
  uint64_t skipped_ = 0;  // bloom + zone-map page fetches avoided
  Status status_;
};

/// See NewIndexResolveCursor in cursor.h. The inner cursor walks the
/// hidden index table in index-key order; this cursor consumes one index
/// cell group at a time, resolves it to the base cell with a snapshot
/// point Get, and streams the base cell's payload multiset.
class IndexResolveCursor final : public Cursor {
 public:
  IndexResolveCursor(std::unique_ptr<Cursor> index_cursor, SfcTable* base,
                     const Snapshot* base_snapshot,
                     std::shared_ptr<const void> pin, uint64_t limit,
                     obs::Counter* dangling, obs::Counter* resolved)
      : inner_(std::move(index_cursor)),
        base_(base),
        base_snapshot_(base_snapshot),
        pin_(std::move(pin)),
        limit_(limit),
        dangling_(dangling),
        resolved_(resolved) {
    FetchGroup();
    CheckLimit();
  }

  bool Valid() const override { return pos_ < payloads_.size(); }

  void Next() override {
    ONION_CHECK(Valid());
    ++pos_;
    if (pos_ < payloads_.size()) {
      current_.payload = payloads_[pos_];
    } else {
      FetchGroup();
    }
    CheckLimit();
  }

  const SpatialEntry& entry() const override {
    ONION_CHECK(Valid());
    return current_;
  }

  Status status() const override {
    return status_.ok() ? inner_->status() : status_;
  }

  bool hit_read_budget() const override {
    return budget_hit_ || inner_->hit_read_budget();
  }

  uint64_t pages_skipped_by_filter() const override {
    return inner_->pages_skipped_by_filter();
  }

 private:
  /// Advances `inner_` to the next distinct index cell, resolves it, and
  /// loads the base cell's visible payloads (or invalidates on
  /// exhaustion/error). Dangling index cells — base row gone — are
  /// counted and skipped.
  void FetchGroup() {
    payloads_.clear();
    pos_ = 0;
    while (status_.ok() && inner_->Valid()) {
      const SpatialEntry index_entry = inner_->entry();  // copied: Next()
      inner_->Next();                                    // invalidates it
      if (have_group_ && index_entry.cell == group_cell_) continue;
      group_cell_ = index_entry.cell;
      have_group_ = true;
      const Key base_key = index_entry.payload;
      if (base_key >= base_->curve().num_cells()) {
        status_ = Status::Corruption(
            "index entry resolves outside the base universe (key " +
            std::to_string(base_key) + ")");
        return;
      }
      const Cell base_cell = base_->curve().CellAt(base_key);
      ReadOptions base_options;
      base_options.snapshot = base_snapshot_;
      auto rows = base_->Get(base_cell, base_options);
      if (!rows.ok()) {
        status_ = rows.status();
        return;
      }
      if (rows.value().empty()) {
        if (dangling_ != nullptr) dangling_->Increment();
        continue;
      }
      payloads_ = std::move(rows).value();
      std::sort(payloads_.begin(), payloads_.end());
      if (resolved_ != nullptr) resolved_->Add(payloads_.size());
      current_.cell = base_cell;
      current_.payload = payloads_[0];
      current_.seq = 0;
      return;
    }
  }

  /// Counts the entry about to be exposed against `limit_`; at the cap a
  /// ready entry is withheld and reported as a hit budget instead.
  void CheckLimit() {
    if (!Valid() || limit_ == 0) {
      if (Valid()) ++delivered_;
      return;
    }
    if (delivered_ >= limit_) {
      budget_hit_ = true;
      payloads_.clear();
      pos_ = 0;
      return;
    }
    ++delivered_;
  }

  const std::unique_ptr<Cursor> inner_;
  SfcTable* const base_;
  const Snapshot* const base_snapshot_;
  const std::shared_ptr<const void> pin_;  // keeps the snapshot alive
  const uint64_t limit_;
  obs::Counter* const dangling_;
  obs::Counter* const resolved_;

  std::vector<uint64_t> payloads_;  // visible base rows of the group
  size_t pos_ = 0;
  Cell group_cell_{};
  bool have_group_ = false;
  SpatialEntry current_{};
  uint64_t delivered_ = 0;
  bool budget_hit_ = false;
  Status status_;
};

}  // namespace

std::unique_ptr<Cursor> NewIndexResolveCursor(
    std::unique_ptr<Cursor> index_cursor, SfcTable* base_table,
    const Snapshot* base_snapshot, std::shared_ptr<const void> pin,
    uint64_t limit, obs::Counter* dangling_entries,
    obs::Counter* resolved_rows) {
  return std::make_unique<IndexResolveCursor>(
      std::move(index_cursor), base_table, base_snapshot, std::move(pin),
      limit, dangling_entries, resolved_rows);
}

std::unique_ptr<Cursor> NewSnapshotCursor(
    const SpaceFillingCurve* curve, std::vector<KeyRange> ranges,
    const Box* query_box, std::vector<Entry> memtable_entries,
    SegmentSnapshot segments, std::shared_ptr<BufferPool> pool,
    AtomicIoStats* io_stats, const ReadOptions& options,
    obs::Histogram* next_latency_us) {
  return std::make_unique<SnapshotCursor>(
      curve, std::move(ranges), query_box, std::move(memtable_entries),
      std::move(segments), std::move(pool), io_stats, options,
      next_latency_us);
}

}  // namespace storage
}  // namespace onion
