// Small durability helpers shared by the storage engine's writers.
//
// POSIX gives no ordering guarantees between a file's data reaching disk
// and its directory entry reaching disk; a crash can leave a MANIFEST that
// names a segment whose bytes (or whose very directory entry) never made
// it. Every component that persists state therefore follows the same
// discipline, built from these three primitives:
//
//   1. write the new file, SyncFile() it,
//   2. SyncDir() its directory so the entry itself is durable,
//   3. only then publish a reference to it (MANIFEST rename, which is in
//      turn followed by another SyncDir()).
//
// On platforms without directory fsync (Windows) SyncDir is a no-op; the
// rename-based manifest install is still atomic there.

#ifndef ONION_STORAGE_FS_UTIL_H_
#define ONION_STORAGE_FS_UTIL_H_

#include <cstdio>
#include <string>

#include "common/status.h"

namespace onion::storage {

/// Flushes the stdio buffer of `file` and fsyncs it to stable storage.
/// `path` is used only for error messages.
Status SyncFile(std::FILE* file, const std::string& path);

/// Fsyncs the directory `dir` so that entries created, renamed, or removed
/// inside it are durable. No-op on platforms without directory fsync.
Status SyncDir(const std::string& dir);

/// The directory component of `path` ("." when there is none).
std::string DirOf(const std::string& path);

}  // namespace onion::storage

#endif  // ONION_STORAGE_FS_UTIL_H_
