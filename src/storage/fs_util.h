// Small durability helpers shared by the storage engine's writers.
//
// POSIX gives no ordering guarantees between a file's data reaching disk
// and its directory entry reaching disk; a crash can leave a MANIFEST that
// names a segment whose bytes (or whose very directory entry) never made
// it. Every component that persists state therefore follows the same
// discipline, built from these three primitives:
//
//   1. write the new file, SyncFile() it,
//   2. SyncDir() its directory so the entry itself is durable,
//   3. only then publish a reference to it (MANIFEST rename, which is in
//      turn followed by another SyncDir()).
//
// On platforms without directory fsync (Windows) SyncDir is a no-op; the
// rename-based manifest install is still atomic there.

#ifndef ONION_STORAGE_FS_UTIL_H_
#define ONION_STORAGE_FS_UTIL_H_

#include <cstdio>
#include <string>

#include "common/status.h"

#if !defined(_WIN32)
#define ONION_HAVE_PREADV 1
#include <sys/uio.h>
#endif

namespace onion::storage {

/// Flushes the stdio buffer of `file` and fsyncs it to stable storage.
/// `path` is used only for error messages.
Status SyncFile(std::FILE* file, const std::string& path);

/// Fsyncs the directory `dir` so that entries created, renamed, or removed
/// inside it are durable. No-op on platforms without directory fsync.
Status SyncDir(const std::string& dir);

/// The directory component of `path` ("." when there is none).
std::string DirOf(const std::string& path);

#if defined(ONION_HAVE_PREADV)
/// Positioned vectored read: fills every iovec completely, starting at
/// byte `offset` of `fd`, resuming across short reads (preadv may return
/// less than asked at page-cache boundaries, on signals, or near EOF) and
/// capping each call at IOV_MAX iovecs. Positioned reads never move the
/// descriptor's file offset, so concurrent users of the same descriptor
/// need no serialization against this call.
///
/// `max_bytes_per_call` (0 = unlimited) bounds how many bytes one preadv
/// call may return; tests use a small value to force the short-read resume
/// path deterministically. `path` is used only for error messages.
/// Corruption when EOF arrives before the iovecs are full, Internal on
/// I/O errors.
Status PreadvFull(int fd, uint64_t offset, struct iovec* iov, size_t iovcnt,
                  const std::string& path, size_t max_bytes_per_call = 0);
#endif  // ONION_HAVE_PREADV

}  // namespace onion::storage

#endif  // ONION_STORAGE_FS_UTIL_H_
