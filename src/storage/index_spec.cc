#include "storage/index_spec.h"

namespace onion::storage {
namespace {

Cell MapIdentity(const Cell& cell, const Universe&) { return cell; }

Cell MapSwapXy(const Cell& cell, const Universe&) {
  Cell out = cell;
  out[0] = cell[1];
  out[1] = cell[0];
  return out;
}

Cell MapMirrorX(const Cell& cell, const Universe& base) {
  Cell out = cell;
  out[0] = base.side() - 1 - cell[0];
  return out;
}

Universe SameUniverse(const Universe& base) { return base; }

// Registration order is the KnownIndexExtractorNames() order. Every entry
// must be injective on its accepted universes (see header).
constexpr IndexExtractor kExtractors[] = {
    {"cell", 1, &MapIdentity, &SameUniverse},
    {"swap_xy", 2, &MapSwapXy, &SameUniverse},
    {"mirror_x", 1, &MapMirrorX, &SameUniverse},
};

}  // namespace

const IndexExtractor* FindIndexExtractor(const std::string& name) {
  for (const IndexExtractor& extractor : kExtractors) {
    if (name == extractor.name) return &extractor;
  }
  return nullptr;
}

std::vector<std::string> KnownIndexExtractorNames() {
  std::vector<std::string> names;
  for (const IndexExtractor& extractor : kExtractors) {
    names.emplace_back(extractor.name);
  }
  return names;
}

}  // namespace onion::storage
