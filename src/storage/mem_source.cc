#include "storage/mem_source.h"

#include <cstddef>

#include "common/macros.h"

namespace onion::storage {

MemPageSource::MemPageSource(std::vector<Entry> entries,
                             uint32_t entries_per_page)
    : entries_(std::move(entries)), entries_per_page_(entries_per_page) {
  ONION_CHECK_MSG(entries_per_page_ >= 1, "page size must be positive");
  for (size_t i = 1; i < entries_.size(); ++i) {
    ONION_CHECK_MSG(entries_[i - 1].key <= entries_[i].key,
                    "page source input must be sorted by key");
  }
}

Status MemPageSource::ReadPage(uint64_t page, std::vector<Entry>* out) const {
  ONION_CHECK_MSG(page < num_pages(), "page out of range");
  out->assign(entries_.begin() + static_cast<ptrdiff_t>(PageBegin(page)),
              entries_.begin() + static_cast<ptrdiff_t>(PageEnd(page)));
  return Status::OK();
}

}  // namespace onion::storage
