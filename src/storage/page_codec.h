// Pluggable page codecs for segment format version 2.
//
// A codec maps one page of sorted (key, payload) entries to a byte string
// and back. Segments record their codec in the header, so readers always
// decode with the codec the file was written with, and every layer above
// the segment (buffer pool, cursors, compaction) only ever sees decoded
// entries — the codec is invisible outside segment.{h,cc} except as a
// table option and an on-disk byte count.
//
//   kRaw          without seqs (v1/v2 pages): count * 16 bytes — u64 key,
//                 u64 payload per entry, little-endian, no padding. With
//                 seqs (v3 pages): count * 24 bytes — u64 key, u64
//                 payload, u64 packed seq (see page_source.h).
//   kDeltaVarint  exploits the sort order: the first entry is
//                 varint(key) varint(payload); every following entry is
//                 varint(key - previous key) varint(payload). With seqs a
//                 varint(packed seq) follows each payload. Dense key runs
//                 (exactly what a well-clustered curve produces) shrink
//                 to a few bytes per entry.
//   kBitpack      frame-of-reference + bit packing: per page, each of the
//                 three columns (keys, payloads, seqs) stores its minimum
//                 as a u64 base followed by all values as base-relative
//                 deltas packed at the column's exact bit width. Column
//                 widths are data-driven per page, so a clustered key run
//                 costs width(bits of the page's key span) bits per key
//                 and constant columns cost zero bits. Byte layout in
//                 docs/storage_format.md.
//
// Varints are LEB128: 7 payload bits per byte, high bit set on every byte
// but the last, at most 10 bytes for a u64. Whether a page carries seqs is
// a property of the SEGMENT format version (v3 pages do, v1/v2 pages do
// not), passed in by the caller — the codec id alone does not change.

#ifndef ONION_STORAGE_PAGE_CODEC_H_
#define ONION_STORAGE_PAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page_source.h"

namespace onion::storage {

/// On-disk page encoding of a v2 segment. The numeric values are part of
/// the file format (header field `codec_id`) — never renumber.
enum class PageCodec : uint32_t {
  kRaw = 0,
  kDeltaVarint = 1,
  kBitpack = 2,
};

/// True for codec ids this build can decode.
bool PageCodecValid(uint32_t id);

/// Stable lowercase name, used by the table MANIFEST ("raw",
/// "delta_varint", "bitpack").
const char* PageCodecName(PageCodec codec);

/// Inverse of PageCodecName; returns false for unknown names.
bool ParsePageCodec(const std::string& name, PageCodec* out);

/// Appends the encoding of `entries` (sorted by key — checked for
/// kDeltaVarint and kBitpack) to `*out`. `with_seqs` selects the v3
/// triple layout (key, payload, packed seq) over the v1/v2 pair layout.
void EncodePage(PageCodec codec, const std::vector<Entry>& entries,
                bool with_seqs, std::vector<uint8_t>* out);

/// Decodes exactly `count` entries from `[data, data + size)` into `*out`
/// (replacing its contents); entries of a page without seqs decode with
/// seq 0. Returns false on malformed input (truncated buffer, varint
/// overflow, or — for kDeltaVarint — trailing garbage). kRaw tolerates
/// extra trailing bytes so the zero-padded pages of format v1 decode
/// through the same path.
bool DecodePage(PageCodec codec, const uint8_t* data, size_t size,
                uint64_t count, bool with_seqs, std::vector<Entry>* out);

}  // namespace onion::storage

#endif  // ONION_STORAGE_PAGE_CODEC_H_
