// Pluggable page codecs for segment format version 2.
//
// A codec maps one page of sorted (key, payload) entries to a byte string
// and back. Segments record their codec in the header, so readers always
// decode with the codec the file was written with, and every layer above
// the segment (buffer pool, cursors, compaction) only ever sees decoded
// entries — the codec is invisible outside segment.{h,cc} except as a
// table option and an on-disk byte count.
//
//   kRaw          count * 16 bytes: u64 key, u64 payload per entry,
//                 little-endian, no padding (segment v2 pages are
//                 variable-length; the fixed-size padding of format v1 is
//                 gone).
//   kDeltaVarint  exploits the sort order: the first entry is
//                 varint(key) varint(payload); every following entry is
//                 varint(key - previous key) varint(payload). Dense key
//                 runs (exactly what a well-clustered curve produces)
//                 shrink to ~2-3 bytes per entry.
//
// Varints are LEB128: 7 payload bits per byte, high bit set on every byte
// but the last, at most 10 bytes for a u64.

#ifndef ONION_STORAGE_PAGE_CODEC_H_
#define ONION_STORAGE_PAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page_source.h"

namespace onion::storage {

/// On-disk page encoding of a v2 segment. The numeric values are part of
/// the file format (header field `codec_id`) — never renumber.
enum class PageCodec : uint32_t {
  kRaw = 0,
  kDeltaVarint = 1,
};

/// True for codec ids this build can decode.
bool PageCodecValid(uint32_t id);

/// Stable lowercase name, used by the table MANIFEST ("raw",
/// "delta_varint").
const char* PageCodecName(PageCodec codec);

/// Inverse of PageCodecName; returns false for unknown names.
bool ParsePageCodec(const std::string& name, PageCodec* out);

/// Appends the encoding of `entries` (sorted by key — checked for
/// kDeltaVarint) to `*out`.
void EncodePage(PageCodec codec, const std::vector<Entry>& entries,
                std::vector<uint8_t>* out);

/// Decodes exactly `count` entries from `[data, data + size)` into `*out`
/// (replacing its contents). Returns false on malformed input (truncated
/// buffer, varint overflow, or — for kDeltaVarint — trailing garbage).
/// kRaw tolerates extra trailing bytes so the zero-padded pages of format
/// v1 decode through the same path.
bool DecodePage(PageCodec codec, const uint8_t* data, size_t size,
                uint64_t count, std::vector<Entry>* out);

}  // namespace onion::storage

#endif  // ONION_STORAGE_PAGE_CODEC_H_
