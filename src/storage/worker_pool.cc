#include "storage/worker_pool.h"

#include <utility>

namespace onion::storage {

WorkerPool::WorkerPool(size_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back(&WorkerPool::WorkerMain, this);
  }
}

WorkerPool::~WorkerPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

WorkerPool::ClientId WorkerPool::Register(std::function<bool()> run_one) {
  const MutexLock lock(mu_);
  const ClientId id = next_id_++;
  clients_.emplace(id, Client{std::move(run_one), false, false, false});
  return id;
}

void WorkerPool::Unregister(ClientId id) {
  const MutexLock lock(mu_);
  auto it = clients_.find(id);
  if (it == clients_.end()) return;
  it->second.removed = true;  // no worker will pick it from now on
  while (it->second.running) idle_cv_.Wait(mu_);
  clients_.erase(it);
}

void WorkerPool::Notify(ClientId id) {
  {
    const MutexLock lock(mu_);
    auto it = clients_.find(id);
    if (it == clients_.end() || it->second.removed) return;
    if (it->second.armed) return;  // already scheduled
    it->second.armed = true;
    it->second.armed_at_us = obs::NowMicros();
  }
  work_cv_.NotifyOne();
}

void WorkerPool::SetMetrics(obs::Histogram* wait_us, obs::Counter* tasks_run) {
  const MutexLock lock(mu_);
  wait_us_ = wait_us;
  tasks_run_ = tasks_run;
}

size_t WorkerPool::queue_depth() const {
  const MutexLock lock(mu_);
  size_t depth = 0;
  for (const auto& [id, client] : clients_) {
    if (client.armed && !client.removed) ++depth;
  }
  return depth;
}

void WorkerPool::WorkerMain() {
  MutexLock lock(mu_);
  while (!stop_) {
    // Round-robin: first armed schedulable client strictly after the last
    // scheduled id, wrapping around.
    auto runnable = [](const Client& client) {
      return client.armed && !client.running && !client.removed;
    };
    auto it = clients_.upper_bound(rr_cursor_);
    for (size_t step = 0; step < clients_.size(); ++step) {
      if (it == clients_.end()) it = clients_.begin();
      if (runnable(it->second)) break;
      ++it;
    }
    if (it == clients_.end() || !runnable(it->second)) {
      work_cv_.Wait(mu_);
      continue;
    }
    rr_cursor_ = it->first;
    it->second.armed = false;
    it->second.running = true;
    if (wait_us_ != nullptr) {
      const uint64_t now = obs::NowMicros();
      wait_us_->Record(now > it->second.armed_at_us
                           ? now - it->second.armed_at_us
                           : 0);
    }
    lock.Unlock();
    // The map node is stable and Unregister blocks on `running`, so
    // calling through the iterator without the lock is safe.
    const bool more = it->second.run_one();
    lock.Lock();
    if (tasks_run_ != nullptr) tasks_run_->Increment();
    it->second.running = false;
    if (more && !it->second.removed) {
      it->second.armed = true;
      it->second.armed_at_us = obs::NowMicros();
      work_cv_.NotifyOne();  // another worker may take it (or this one)
    }
    idle_cv_.NotifyAll();
  }
}

}  // namespace onion::storage
