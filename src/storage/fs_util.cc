#include "storage/fs_util.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace onion::storage {

Status SyncFile(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::Internal("fflush failed: " + path);
  }
#if defined(_WIN32)
  if (_commit(_fileno(file)) != 0) {
    return Status::Internal("fsync failed: " + path);
  }
#else
  if (::fsync(::fileno(file)) != 0) {
    return Status::Internal("fsync failed: " + path);
  }
#endif
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
#if defined(_WIN32)
  (void)dir;  // directory entries cannot be fsynced on Windows
  return Status::OK();
#else
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("cannot open directory for fsync: " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("directory fsync failed: " + dir);
  }
  return Status::OK();
#endif
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of("/\\");
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace onion::storage
