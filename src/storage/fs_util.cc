#include "storage/fs_util.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <limits.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

namespace onion::storage {

Status SyncFile(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::Internal("fflush failed: " + path);
  }
#if defined(_WIN32)
  if (_commit(_fileno(file)) != 0) {
    return Status::Internal("fsync failed: " + path);
  }
#else
  if (::fsync(::fileno(file)) != 0) {
    return Status::Internal("fsync failed: " + path);
  }
#endif
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
#if defined(_WIN32)
  (void)dir;  // directory entries cannot be fsynced on Windows
  return Status::OK();
#else
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("cannot open directory for fsync: " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("directory fsync failed: " + dir);
  }
  return Status::OK();
#endif
}

#if defined(ONION_HAVE_PREADV)
Status PreadvFull(int fd, uint64_t offset, struct iovec* iov, size_t iovcnt,
                  const std::string& path, size_t max_bytes_per_call) {
  size_t at = 0;          // first iovec not yet completely filled
  size_t first_done = 0;  // bytes of iov[at] already filled
  std::vector<struct iovec> window;
  while (at < iovcnt) {
    // Step over zero-length (or already-completed) iovecs: they absorb no
    // bytes, and a window of only empty entries would misread preadv's 0
    // return as EOF.
    if (iov[at].iov_len <= first_done) {
      ++at;
      first_done = 0;
      continue;
    }
    // One preadv call covers a window of iovecs: at most IOV_MAX of them,
    // the first one trimmed by what a previous short read already filled,
    // the whole window trimmed to max_bytes_per_call when set.
    const size_t want = std::min<size_t>(iovcnt - at, IOV_MAX);
    window.clear();
    size_t window_bytes = 0;
    for (size_t i = 0; i < want; ++i) {
      struct iovec entry = iov[at + i];
      if (i == 0) {
        entry.iov_base = static_cast<uint8_t*>(entry.iov_base) + first_done;
        entry.iov_len -= first_done;
      }
      if (max_bytes_per_call != 0 &&
          window_bytes + entry.iov_len >= max_bytes_per_call) {
        entry.iov_len = max_bytes_per_call - window_bytes;
        if (entry.iov_len > 0) window.push_back(entry);
        window_bytes = max_bytes_per_call;
        break;
      }
      window_bytes += entry.iov_len;
      window.push_back(entry);
    }
    const ssize_t r =
        ::preadv(fd, window.data(), static_cast<int>(window.size()),
                 static_cast<off_t>(offset));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("preadv failed: ") +
                              std::strerror(errno) + ": " + path);
    }
    if (r == 0) {
      return Status::Corruption("preadv hit EOF before filling the request: " +
                                path);
    }
    // Consume r bytes across the original iovecs.
    offset += static_cast<uint64_t>(r);
    size_t remaining = static_cast<size_t>(r);
    while (remaining > 0) {
      const size_t room = iov[at].iov_len - first_done;
      if (remaining < room) {
        first_done += remaining;
        remaining = 0;
      } else {
        remaining -= room;
        ++at;
        first_done = 0;
      }
    }
  }
  return Status::OK();
}
#endif  // ONION_HAVE_PREADV

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of("/\\");
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace onion::storage
