// WriteBatch: an ordered buffer of Put/Delete operations across one or
// more named tables of an SfcDb, committed atomically by SfcDb::Write —
// after a crash at ANY point, recovery replays all of the batch or none
// of it (per table the ops land as one WAL record; across tables the
// database's batch journal closes the gap — see docs/storage_format.md).
//
// The batch itself is a plain value object: building one touches no lock
// and no file. Validation (table exists, cells inside each table's
// universe) happens in SfcDb::Write before anything is logged.
//
// Secondary indexes: ops addressed at a table carrying secondary indexes
// (storage/index_spec.h) are EXPANDED by SfcDb::Write with the matching
// hidden-index-table ops before commit — a Put adds the index entries, a
// Delete tombstones them — so the atomicity guarantee above covers base
// and index together. Batches never name index tables directly.

#ifndef ONION_STORAGE_WRITE_BATCH_H_
#define ONION_STORAGE_WRITE_BATCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sfc/types.h"

namespace onion::storage {

class WriteBatch {
 public:
  /// One buffered operation, in the order it was added.
  struct Op {
    std::string table;
    Cell cell;
    uint64_t payload = 0;
    bool tombstone = false;
  };

  /// Buffers an insert of (cell, payload) into `table`.
  void Put(std::string table, const Cell& cell, uint64_t payload) {
    ops_.push_back(Op{std::move(table), cell, payload, false});
  }

  /// Buffers a delete of every payload stored at `cell` in `table`
  /// (a tombstone; see SfcTable::Delete for the visibility rules).
  void Delete(std::string table, const Cell& cell) {
    ops_.push_back(Op{std::move(table), cell, 0, true});
  }

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void Clear() { ops_.clear(); }
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_WRITE_BATCH_H_
