#include "storage/wal.h"

#include <cstring>

#include "storage/codec.h"
#include "storage/fs_util.h"

namespace onion::storage {
namespace {

constexpr char kWalMagic[8] = {'O', 'S', 'F', 'C', 'W', 'A', 'L', '1'};
constexpr uint32_t kWalVersion = 1;
constexpr uint64_t kWalHeaderBytes = 16;
constexpr uint64_t kWalRecordBytes = 24;

uint64_t RecordChecksum(uint64_t key, uint64_t payload) {
  uint64_t sum = 0x0410105fc5a10ULL;  // salt, distinct from the segment's
  sum ^= Rotl64(key, 17);
  sum ^= Rotl64(payload, 31);
  return sum;
}

}  // namespace

WalWriter::WalWriter(std::string path, std::FILE* file, bool fsync_each_append)
    : path_(std::move(path)), file_(file),
      fsync_each_append_(fsync_each_append) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(std::string path,
                                                     bool fsync_each_append) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create WAL file: " + path);
  }
  uint8_t header[kWalHeaderBytes] = {};
  std::memcpy(header, kWalMagic, sizeof(kWalMagic));
  PutU32(header + 8, kWalVersion);
  if (std::fwrite(header, 1, kWalHeaderBytes, file) != kWalHeaderBytes ||
      std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(path.c_str());
    return Status::Internal("cannot write WAL header: " + path);
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(path), file, fsync_each_append));
}

Status WalWriter::Append(Key key, uint64_t payload, uint64_t* out_seq) {
  // Sticky failure: a failed write may have left a partial record at the
  // tail, and replay stops at the first torn record — so anything appended
  // after it would be acknowledged yet unrecoverable. Refuse instead.
  if (!status_.ok()) return status_;
  uint8_t record[kWalRecordBytes];
  PutU64(record, key);
  PutU64(record + 8, payload);
  PutU64(record + 16, RecordChecksum(key, payload));
  if (std::fwrite(record, 1, kWalRecordBytes, file_) != kWalRecordBytes ||
      std::fflush(file_) != 0) {
    return status_ = Status::Internal("WAL append failed: " + path_);
  }
  if (fsync_each_append_) {
    const Status status = SyncFile(file_, path_);
    if (!status.ok()) return status_ = status;
  }
  ++num_records_;
  // Publish for SyncUpTo: record num_records_ has reached the OS.
  appended_seq_.store(num_records_, std::memory_order_release);
  if (out_seq != nullptr) *out_seq = num_records_;
  return Status::OK();
}

Status WalWriter::Sync() { return SyncFile(file_, path_); }

Status WalWriter::SyncUpTo(uint64_t seq) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  for (;;) {
    // Durability first: a record covered by an earlier successful leader
    // fsync IS durable, even if a later fsync failed — only callers whose
    // records are genuinely not synced see the sticky error.
    if (synced_seq_ >= seq) return Status::OK();
    if (!sync_status_.ok()) return sync_status_;
    if (!sync_inflight_) break;  // become the leader
    sync_cv_.wait(lock);
  }
  sync_inflight_ = true;
  // Everything appended (and stdio-flushed) so far rides this one fsync —
  // including records of followers currently blocking on sync_mu_.
  const uint64_t target = appended_seq_.load(std::memory_order_acquire);
  lock.unlock();
  const Status status = SyncFile(file_, path_);
  lock.lock();
  sync_inflight_ = false;
  if (status.ok()) {
    synced_seq_ = std::max(synced_seq_, target);
    num_syncs_.fetch_add(1, std::memory_order_relaxed);
  } else if (sync_status_.ok()) {
    sync_status_ = status;
  }
  sync_cv_.notify_all();
  return status;
}

Result<uint64_t> ReplayWal(const std::string& path,
                           const std::function<void(Key, uint64_t)>& fn) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open WAL file: " + path);
  }
  uint8_t header[kWalHeaderBytes];
  if (std::fread(header, 1, kWalHeaderBytes, file) != kWalHeaderBytes ||
      std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0) {
    std::fclose(file);
    return Status::InvalidArgument("bad WAL header: " + path);
  }
  const uint32_t version = GetU32(header + 8);
  if (version != kWalVersion) {
    std::fclose(file);
    return Status::InvalidArgument("unsupported WAL version " +
                                   std::to_string(version) + ": " + path);
  }
  uint64_t replayed = 0;
  uint8_t record[kWalRecordBytes];
  while (std::fread(record, 1, kWalRecordBytes, file) == kWalRecordBytes) {
    const uint64_t key = GetU64(record);
    const uint64_t payload = GetU64(record + 8);
    // A checksum mismatch means the record (and everything after it) is the
    // torn tail of an interrupted append — stop, keeping what came before.
    if (GetU64(record + 16) != RecordChecksum(key, payload)) break;
    fn(key, payload);
    ++replayed;
  }
  std::fclose(file);
  return replayed;
}

}  // namespace onion::storage
