#include "storage/wal.h"

#include <cstring>
#include <vector>

#include "storage/codec.h"
#include "storage/crc32c.h"
#include "storage/fs_util.h"

namespace onion::storage {
namespace {

constexpr char kWalMagic[8] = {'O', 'S', 'F', 'C', 'W', 'A', 'L', '1'};
constexpr uint32_t kWalVersion = 2;  // what WalWriter emits
constexpr uint64_t kWalHeaderBytes = 16;

// Version-2 record geometry (per-op layout: kWalOpBytes in wal.h).
constexpr uint64_t kRecordPrefixBytes = 12;  // u32 num_ops + u64 first_seq
constexpr uint64_t kRecordCrcBytes = 4;

// Version-1 record geometry (fixed single-put records).
constexpr uint64_t kV1RecordBytes = 24;

/// The version-1 record checksum, kept verbatim for replay compatibility.
uint64_t V1RecordChecksum(uint64_t key, uint64_t payload) {
  uint64_t sum = 0x0410105fc5a10ULL;  // salt, distinct from the segment's
  sum ^= Rotl64(key, 17);
  sum ^= Rotl64(payload, 31);
  return sum;
}

}  // namespace

void EncodeWalOp(const WalOp& op, uint8_t* out) {
  out[0] = op.tombstone ? 1 : 0;
  PutU64(out + 1, op.key);
  PutU64(out + 9, op.tombstone ? 0 : op.payload);
}

WalOp DecodeWalOp(const uint8_t* in) {
  WalOp op;
  op.tombstone = in[0] != 0;
  op.key = GetU64(in + 1);
  op.payload = GetU64(in + 9);
  return op;
}

WalWriter::WalWriter(std::string path, std::FILE* file, bool fsync_each_append)
    : path_(std::move(path)), file_(file),
      fsync_each_append_(fsync_each_append) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(std::string path,
                                                     bool fsync_each_append) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create WAL file: " + path);
  }
  uint8_t header[kWalHeaderBytes] = {};
  std::memcpy(header, kWalMagic, sizeof(kWalMagic));
  PutU32(header + 8, kWalVersion);
  if (std::fwrite(header, 1, kWalHeaderBytes, file) != kWalHeaderBytes ||
      std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(path.c_str());
    return Status::Internal("cannot write WAL header: " + path);
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(path), file, fsync_each_append));
}

Status WalWriter::AppendBatch(const WalOp* ops, size_t count,
                              uint64_t first_sequence, uint64_t* out_record) {
  // Sticky failure: a failed write may have left a partial record at the
  // tail, and replay stops at the first torn record — so anything appended
  // after it would be acknowledged yet unrecoverable. Refuse instead.
  if (!status_.ok()) return status_;
  if (count == 0 || count > kMaxWalRecordOps) {
    return Status::InvalidArgument("WAL record needs 1.." +
                                   std::to_string(kMaxWalRecordOps) + " ops");
  }
  const obs::ScopedTimer append_timer(metrics_.append_us);
  std::vector<uint8_t>& record = record_scratch_;
  record.resize(kRecordPrefixBytes + count * kWalOpBytes + kRecordCrcBytes);
  PutU32(record.data(), static_cast<uint32_t>(count));
  PutU64(record.data() + 4, first_sequence);
  for (size_t i = 0; i < count; ++i) {
    EncodeWalOp(ops[i], record.data() + kRecordPrefixBytes + i * kWalOpBytes);
  }
  const size_t body = record.size() - kRecordCrcBytes;
  PutU32(record.data() + body, Crc32c(record.data(), body));
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size() ||
      std::fflush(file_) != 0) {
    return status_ = Status::Internal("WAL append failed: " + path_);
  }
  if (fsync_each_append_) {
    const obs::ScopedTimer fsync_timer(metrics_.fsync_us);
    const Status status = SyncFile(file_, path_);
    if (!status.ok()) return status_ = status;
  }
  ++num_records_;
  // Publish for SyncUpTo: record num_records_ has reached the OS.
  appended_record_.store(num_records_, std::memory_order_release);
  if (out_record != nullptr) *out_record = num_records_;
  return Status::OK();
}

Status WalWriter::Sync() {
  const obs::ScopedTimer fsync_timer(metrics_.fsync_us);
  return SyncFile(file_, path_);
}

Status WalWriter::SyncUpTo(uint64_t record) {
  MutexLock lock(sync_mu_);
  for (;;) {
    // Durability first: a record covered by an earlier successful leader
    // fsync IS durable, even if a later fsync failed — only callers whose
    // records are genuinely not synced see the sticky error.
    if (synced_record_ >= record) return Status::OK();
    if (!sync_status_.ok()) return sync_status_;
    if (!sync_inflight_) break;  // become the leader
    sync_cv_.Wait(sync_mu_);
  }
  sync_inflight_ = true;
  // Everything appended (and stdio-flushed) so far rides this one fsync —
  // including records of followers currently blocking on sync_mu_.
  const uint64_t target = appended_record_.load(std::memory_order_acquire);
  const uint64_t synced_before = synced_record_;
  lock.Unlock();  // fsync outside the lock: followers can queue up behind it
  Status status;
  {
    const obs::ScopedTimer fsync_timer(metrics_.fsync_us);
    status = SyncFile(file_, path_);
  }
  lock.Lock();
  sync_inflight_ = false;
  if (status.ok()) {
    synced_record_ = std::max(synced_record_, target);
    num_syncs_.fetch_add(1, std::memory_order_relaxed);
    // The group-commit win, observable: this ONE fsync covered every
    // record appended since the previous one.
    if (metrics_.commit_batch_records != nullptr &&
        synced_record_ > synced_before) {
      metrics_.commit_batch_records->Record(synced_record_ - synced_before);
    }
  } else if (sync_status_.ok()) {
    sync_status_ = status;
  }
  sync_cv_.NotifyAll();
  return status;
}

Result<uint64_t> ReplayWal(
    const std::string& path,
    const std::function<void(Key, uint64_t, uint64_t, bool)>& fn) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open WAL file: " + path);
  }
  uint8_t header[kWalHeaderBytes];
  if (std::fread(header, 1, kWalHeaderBytes, file) != kWalHeaderBytes ||
      std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0) {
    std::fclose(file);
    return Status::InvalidArgument("bad WAL header: " + path);
  }
  const uint32_t version = GetU32(header + 8);
  if (version != 1 && version != 2) {
    std::fclose(file);
    return Status::InvalidArgument("unsupported WAL version " +
                                   std::to_string(version) + ": " + path);
  }
  uint64_t replayed = 0;
  if (version == 1) {
    // Legacy fixed-size single-put records; no sequence on disk — the
    // caller synthesizes them in replay order.
    uint8_t record[kV1RecordBytes];
    while (std::fread(record, 1, kV1RecordBytes, file) == kV1RecordBytes) {
      const uint64_t key = GetU64(record);
      const uint64_t payload = GetU64(record + 8);
      // A checksum mismatch means the record (and everything after it) is
      // the torn tail of an interrupted append — stop, keeping what came
      // before.
      if (GetU64(record + 16) != V1RecordChecksum(key, payload)) break;
      fn(key, payload, /*sequence=*/0, /*tombstone=*/false);
      ++replayed;
    }
    std::fclose(file);
    return replayed;
  }
  std::vector<uint8_t> record;
  for (;;) {
    uint8_t prefix[kRecordPrefixBytes];
    if (std::fread(prefix, 1, kRecordPrefixBytes, file) !=
        kRecordPrefixBytes) {
      break;  // clean EOF or torn prefix
    }
    const uint32_t num_ops = GetU32(prefix);
    if (num_ops == 0 || num_ops > kMaxWalRecordOps) break;  // torn/corrupt
    const uint64_t first_sequence = GetU64(prefix + 4);
    const size_t rest = num_ops * kWalOpBytes + kRecordCrcBytes;
    record.resize(rest);
    if (std::fread(record.data(), 1, rest, file) != rest) break;  // torn
    const uint32_t crc =
        Crc32c(Crc32c(prefix, kRecordPrefixBytes), record.data(),
               rest - kRecordCrcBytes);
    if (GetU32(record.data() + rest - kRecordCrcBytes) != crc) break;
    // The record is whole: surface every op — the all-or-nothing unit.
    for (uint32_t i = 0; i < num_ops; ++i) {
      const WalOp op = DecodeWalOp(record.data() + i * kWalOpBytes);
      fn(op.key, op.payload, first_sequence + i, op.tombstone);
      ++replayed;
    }
  }
  std::fclose(file);
  return replayed;
}

}  // namespace onion::storage
