// The write buffer of the storage engine: an unsorted in-memory batch of
// (key, payload, seq) entries — puts and tombstones alike — that is sorted
// once when flushed into a segment. Reads against unflushed data are a
// linear scan — the memtable is bounded by the flush threshold, so this
// stays cheap, and it keeps inserts O(1).
//
// Thread safety: none of its own. SfcTable mutates the active memtable
// only under its exclusive table lock; once a memtable rotates into the
// immutable flush queue it is never written again, so concurrent readers
// may ScanRange() it (and the background thread may FlushTo() it — const,
// it sorts a copy) under the shared lock. Because the guarding lock
// belongs to the owner, this class carries no ONION_GUARDED_BY
// annotations; the owning pointers in SfcTable are annotated instead
// (see docs/concurrency.md).

#ifndef ONION_STORAGE_MEMTABLE_H_
#define ONION_STORAGE_MEMTABLE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/page_source.h"
#include "storage/segment.h"

namespace onion::storage {

class MemTable {
 public:
  /// Buffers one entry. `seq` is the packed MVCC stamp (page_source.h):
  /// sequence number plus the tombstone flag for Deletes.
  void Insert(Key key, uint64_t payload, uint64_t seq) {
    entries_.push_back(Entry{key, payload, seq});
    max_sequence_ = std::max(max_sequence_, SequenceOf(seq));
  }

  uint64_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// In-memory footprint of the buffered entries (the memtable.bytes
  /// gauge; excludes the vector's slack capacity).
  uint64_t ApproximateBytes() const { return entries_.size() * sizeof(Entry); }
  void Clear() {
    entries_.clear();
    max_sequence_ = 0;
  }

  /// Largest sequence number buffered (0 when empty): the manifest's
  /// `last_sequence` advances to this when the memtable's segment lands.
  uint64_t max_sequence() const { return max_sequence_; }

  /// Whether any buffered entry carries exactly `sequence` (linear; used
  /// by open-time batch-journal recovery, never on a hot path).
  bool ContainsSequence(uint64_t sequence) const {
    for (const Entry& entry : entries_) {
      if (SequenceOf(entry.seq) == sequence) return true;
    }
    return false;
  }

  /// Invokes fn(entry) for every entry with lo <= key <= hi, in insertion
  /// order (not key order). Tombstones are delivered too — visibility and
  /// delete resolution belong to the cursor merge.
  template <typename Fn>
  void ScanRange(Key lo, Key hi, Fn&& fn) const {
    for (const Entry& entry : entries_) {
      if (entry.key >= lo && entry.key <= hi) fn(entry);
    }
  }

  /// Streams the buffered entries into `writer` in key order (stable, so
  /// same-key entries keep insertion order == sequence order). Sorts a
  /// copy — the memtable itself is not modified, so concurrent readers
  /// holding a shared table lock are undisturbed. The caller still owns
  /// writer->Finish().
  Status FlushTo(SegmentWriter* writer) const;

 private:
  std::vector<Entry> entries_;
  uint64_t max_sequence_ = 0;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_MEMTABLE_H_
