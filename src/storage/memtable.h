// The write buffer of the storage engine: an unsorted in-memory batch of
// (key, payload) entries that is sorted once when flushed into a segment.
// Reads against unflushed data are a linear scan — the memtable is bounded
// by the flush threshold, so this stays cheap, and it keeps inserts O(1).
//
// Thread safety: none of its own. SfcTable mutates the active memtable
// only under its exclusive table lock; once a memtable rotates into the
// immutable flush queue it is never written again, so concurrent readers
// may ScanRange() it (and the background thread may FlushTo() it — const,
// it sorts a copy) under the shared lock.

#ifndef ONION_STORAGE_MEMTABLE_H_
#define ONION_STORAGE_MEMTABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/page_source.h"
#include "storage/segment.h"

namespace onion::storage {

class MemTable {
 public:
  void Insert(Key key, uint64_t payload) {
    entries_.push_back(Entry{key, payload});
  }

  uint64_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  /// Invokes fn(key, payload) for every entry with lo <= key <= hi, in
  /// insertion order (not key order).
  template <typename Fn>
  void ScanRange(Key lo, Key hi, Fn&& fn) const {
    for (const Entry& entry : entries_) {
      if (entry.key >= lo && entry.key <= hi) fn(entry.key, entry.payload);
    }
  }

  /// Streams the buffered entries into `writer` in key order (stable, so
  /// same-key entries keep insertion order). Sorts a copy — the memtable
  /// itself is not modified, so concurrent readers holding a shared table
  /// lock are undisturbed. The caller still owns writer->Finish().
  Status FlushTo(SegmentWriter* writer) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_MEMTABLE_H_
