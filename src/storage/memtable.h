// The write buffer of the storage engine: an unsorted in-memory batch of
// (key, payload, seq) entries — puts and tombstones alike — that is sorted
// once when flushed into a segment.
//
// Layout: the key space is split into kNumShards contiguous key ranges
// (shard i covers keys [i*width, (i+1)*width)), each shard holding its own
// Mutex and a bump-pointer arena of fixed-size entry blocks. Two effects:
//
//   - Inserts never relocate entries (a full block just links a new one),
//     so buffering is a pointer bump instead of a vector's amortized
//     realloc-and-copy, and a concurrent ScanRange can walk blocks while
//     an insert appends to the tail block of the same shard (serialized
//     only by that shard's mutex, held for the duration of the push).
//   - Readers touch only the shards whose key range intersects their scan,
//     so a query over a narrow key range never contends with an insert
//     landing elsewhere in the key space.
//
// Sequence ordering for snapshot reads is preserved structurally: a key
// always maps to the same shard, entries within a shard stay in insertion
// order (== sequence order, the writer lock serializes appends), and
// FlushTo concatenates shards in key-range order before a stable sort —
// so same-key entries reach the segment in sequence order exactly as the
// single-vector memtable delivered them.
//
// Thread safety: Insert/ScanRange/ContainsSequence/FlushTo are internally
// synchronized by the per-shard mutexes (annotated; see the lock catalog
// in docs/concurrency.md) and may run concurrently under the owner's
// SHARED table lock. The object's identity — moving a rotated memtable
// into the flush queue, assigning a fresh one — is still the owner's
// business and happens only under its EXCLUSIVE table lock; SfcTable's
// memtable_ member remains ONION_GUARDED_BY(mu_) for exactly that.

#ifndef ONION_STORAGE_MEMTABLE_H_
#define ONION_STORAGE_MEMTABLE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page_source.h"
#include "storage/segment.h"

namespace onion::storage {

class MemTable {
 public:
  /// Number of key-range shards. Fixed: the shard count trades lock
  /// granularity against per-rotation allocation, not correctness.
  static constexpr size_t kNumShards = 8;
  /// Entries per arena block (~12 KiB): small enough that a near-empty
  /// memtable stays cheap, large enough that block links are rare.
  static constexpr size_t kBlockEntries = 512;

  /// A memtable for keys in [0, key_span); keys at or past key_span still
  /// work (they land in the last shard). key_span 0 means "unknown span" —
  /// the full 64-bit key space is split evenly instead.
  explicit MemTable(Key key_span = 0);

  /// Moves transfer the shards wholesale; the moved-from table is empty
  /// and must only be destroyed or assigned to. Owners move a memtable
  /// only under their exclusive lock, never while inserts are in flight.
  MemTable(MemTable&& other) noexcept;
  MemTable& operator=(MemTable&& other) noexcept;
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Buffers one entry. `seq` is the packed MVCC stamp (page_source.h):
  /// sequence number plus the tombstone flag for Deletes. Thread-safe;
  /// concurrent inserts to different shards do not contend.
  void Insert(Key key, uint64_t payload, uint64_t seq);

  uint64_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }
  /// In-memory footprint of the buffered entries (the memtable.bytes
  /// gauge; excludes arena slack in partially filled blocks).
  uint64_t ApproximateBytes() const { return size() * sizeof(Entry); }
  void Clear();

  /// Largest sequence number buffered (0 when empty): the manifest's
  /// `last_sequence` advances to this when the memtable's segment lands.
  uint64_t max_sequence() const {
    return max_sequence_.load(std::memory_order_acquire);
  }

  /// Whether any buffered entry carries exactly `sequence` (linear; used
  /// by open-time batch-journal recovery, never on a hot path).
  bool ContainsSequence(uint64_t sequence) const;

  /// Invokes fn(entry) for every entry with lo <= key <= hi. Within a
  /// shard, entries arrive in insertion order; across shards, in key-range
  /// order — callers needing a global order sort the hits themselves
  /// (the cursor path always has). Tombstones are delivered too —
  /// visibility and delete resolution belong to the cursor merge. Only
  /// shards whose range intersects [lo, hi] are locked and walked.
  template <typename Fn>
  void ScanRange(Key lo, Key hi, Fn&& fn) const {
    const size_t last = ShardOf(hi);
    for (size_t s = ShardOf(lo); s <= last; ++s) {
      const Shard& shard = shards_[s];
      const MutexLock lock(shard.mu);
      shard.arena.ForEach([&](const Entry& entry) {
        if (entry.key >= lo && entry.key <= hi) fn(entry);
      });
    }
  }

  /// Streams the buffered entries into `writer` in key order (stable sort
  /// over the shard concatenation, so same-key entries keep insertion
  /// order == sequence order). Copies the entries out — the memtable
  /// itself is not modified, so concurrent readers are undisturbed. The
  /// caller still owns writer->Finish().
  Status FlushTo(SegmentWriter* writer) const;

 private:
  /// Bump-pointer arena: entries land in fixed-size blocks that never
  /// move, linked in allocation order. Growth allocates one block; no
  /// existing entry is ever copied.
  class EntryArena {
   public:
    Entry* Push() {
      const size_t used = size_ % kBlockEntries;
      if (used == 0) blocks_.push_back(std::make_unique<Block>());
      ++size_;
      return &(*blocks_.back())[used];
    }

    template <typename Fn>
    void ForEach(Fn&& fn) const {
      size_t remaining = size_;
      for (const auto& block : blocks_) {
        const size_t in_block = std::min(remaining, kBlockEntries);
        for (size_t i = 0; i < in_block; ++i) fn((*block)[i]);
        remaining -= in_block;
      }
    }

    void Clear() {
      blocks_.clear();
      size_ = 0;
    }

    size_t size() const { return size_; }

   private:
    using Block = std::array<Entry, kBlockEntries>;
    std::vector<std::unique_ptr<Block>> blocks_;
    size_t size_ = 0;
  };

  struct Shard {
    mutable Mutex mu;
    EntryArena arena ONION_GUARDED_BY(mu);
  };

  // key -> shard is a shift, not a division: the shard width is rounded
  // up to a power of two at construction. Any monotone mapping is correct
  // (inserts and scans share it; only balance is affected, by < 2x), and
  // a shift keeps the per-insert routing cost to a couple of cycles on
  // the hot write path. For power-of-two spans — every curve universe in
  // practice — the rounding is exact and the split is even.
  size_t ShardOf(Key key) const {
    const size_t shard = static_cast<size_t>(key >> shard_shift_);
    return shard < kNumShards ? shard : kNumShards - 1;
  }

  int shard_shift_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> max_sequence_{0};
};

}  // namespace onion::storage

#endif  // ONION_STORAGE_MEMTABLE_H_
