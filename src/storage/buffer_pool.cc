#include "storage/buffer_pool.h"

#include <algorithm>

namespace onion::storage {

BufferPool::BufferPool(uint64_t capacity_pages, uint64_t readahead_pages)
    : capacity_(capacity_pages), readahead_(readahead_pages) {
  ONION_CHECK_MSG(capacity_pages >= 1, "buffer pool needs >= 1 page");
}

std::shared_ptr<const std::vector<Entry>> BufferPool::Fetch(
    const PageSource& source, uint64_t page, AtomicIoStats* attribution,
    Status* status, const Box* box) {
  if (status != nullptr) *status = Status::OK();
  const FrameKey key{source.source_id(), page};
  WriterLock lock(mu_);
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    ++stats_.cache_hits;
    if (attribution != nullptr) {
      attribution->cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    if (it->second->prefetched) {
      // First touch of a page readahead brought in: the prefetch paid off.
      it->second->prefetched = false;
      ++stats_.readahead_hits;
      if (attribution != nullptr) {
        attribution->readahead_hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return lru_.front().data;
  }
  // Miss. Size the read: the demanded page plus (with readahead) the run
  // of pages after it, stopping at the source's end, an already-resident
  // page, a zone-excluded page, the readahead budget, or pool capacity.
  uint64_t run = 1;
  if (readahead_ > 0) {
    const uint64_t pages = source.num_pages();
    const uint64_t budget = std::min(readahead_, capacity_ - 1);
    while (run <= budget && page + run < pages) {
      const uint64_t next = page + run;
      if (resident_.count(FrameKey{source.source_id(), next}) != 0) break;
      if (box != nullptr && !source.PageMayIntersect(next, *box)) break;
      ++run;
    }
  }
  // Account for the read while the decision is still serialized, then
  // release the lock for the actual I/O so concurrent readers of other
  // pages are not held up behind this one. All byte counters are known
  // before the read: encoded sizes from the page index, decoded sizes
  // from the page geometry. The whole run is ONE transfer: one seek
  // (when non-sequential), `run` page reads.
  stats_.page_reads += run;
  const bool seek = source.source_id() != last_disk_source_ ||
                    page != last_disk_page_ + 1;
  if (seek) ++stats_.seeks;
  uint64_t disk_bytes = 0;
  uint64_t decoded_bytes = 0;
  for (uint64_t i = 0; i < run; ++i) {
    disk_bytes += source.PageDiskBytes(page + i);
    decoded_bytes += (source.PageEnd(page + i) - source.PageBegin(page + i)) *
                     kDecodedEntryBytes;
  }
  stats_.disk_bytes += disk_bytes;
  stats_.decoded_bytes += decoded_bytes;
  if (run > 1) {
    ++stats_.readahead_batched_reads;
    stats_.readahead_pages += run - 1;
  }
  if (attribution != nullptr) {
    attribution->page_reads.fetch_add(run, std::memory_order_relaxed);
    if (seek) attribution->seeks.fetch_add(1, std::memory_order_relaxed);
    attribution->disk_bytes.fetch_add(disk_bytes, std::memory_order_relaxed);
    attribution->decoded_bytes.fetch_add(decoded_bytes,
                                         std::memory_order_relaxed);
    if (run > 1) {
      attribution->readahead_batched_reads.fetch_add(
          1, std::memory_order_relaxed);
      attribution->readahead_pages.fetch_add(run - 1,
                                             std::memory_order_relaxed);
    }
  }
  last_disk_source_ = source.source_id();
  last_disk_page_ = page + run - 1;
  lock.Unlock();

  // Slot i holds page+i's data; null means "failed validation, do not
  // insert" (only possible for prefetched slots — a demanded-page failure
  // returns below with the exact error).
  std::vector<std::shared_ptr<std::vector<Entry>>> run_data(run);
  if (run == 1) {
    auto data = std::make_shared<std::vector<Entry>>();
    const Status read_status = source.ReadPage(page, data.get());
    if (!read_status.ok()) {
      // The physical read attempt stays counted (it happened); the page
      // just never becomes resident. Callers with a status sink turn this
      // into a query error, everyone else treats it as fatal.
      ONION_CHECK_MSG(status != nullptr, read_status.ToString().c_str());
      *status = read_status;
      return nullptr;
    }
    run_data[0] = std::move(data);
  } else {
    std::vector<std::vector<Entry>> batch;
    const Status batch_status = source.ReadPages(page, run, &batch);
    if (batch_status.ok() && batch.size() == run && !batch[0].empty()) {
      for (uint64_t i = 0; i < run; ++i) {
        if (batch[i].empty()) continue;  // failed prefetch: stays absent
        run_data[i] =
            std::make_shared<std::vector<Entry>>(std::move(batch[i]));
      }
    } else {
      // The transfer failed or the demanded page did not validate:
      // re-read it alone so the caller gets the exact per-page error.
      auto data = std::make_shared<std::vector<Entry>>();
      const Status read_status = source.ReadPage(page, data.get());
      if (!read_status.ok()) {
        ONION_CHECK_MSG(status != nullptr, read_status.ToString().c_str());
        *status = read_status;
        return nullptr;
      }
      run_data[0] = std::move(data);
    }
  }

  lock.Lock();
  // Insert prefetched frames first so they land BEHIND the demanded page
  // in LRU order (push_front from the farthest page inward), skipping
  // pages another thread raced in and slots that failed validation.
  for (uint64_t i = run; i-- > 1;) {
    if (run_data[i] == nullptr) continue;
    const FrameKey pkey{source.source_id(), page + i};
    if (resident_.find(pkey) != resident_.end()) continue;
    lru_.push_front(
        Frame{source.source_id(), page + i, std::move(run_data[i]), true});
    resident_[pkey] = lru_.begin();
  }
  // Another thread may have read the demanded page while the lock was
  // free; keep its frame (the physical read above already happened and
  // stays counted — the counters report real I/O, not residency).
  it = resident_.find(key);
  if (it != resident_.end()) {
    it->second->prefetched = false;  // we did our own disk read: no hit
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(
        Frame{source.source_id(), page, std::move(run_data[0]), false});
    resident_[key] = lru_.begin();
  }
  auto result = lru_.front().data;
  EvictOverflowLocked();
  return result;
}

void BufferPool::EvictOverflowLocked() {
  while (lru_.size() > capacity_) {
    const Frame& victim = lru_.back();
    if (victim.prefetched) ++stats_.readahead_wasted;
    resident_.erase(FrameKey{victim.source_id, victim.page});
    lru_.pop_back();
    ++evictions_;
  }
}

bool BufferPool::ProbeFilter(const PageSource& source, Key key,
                             AtomicIoStats* attribution) {
  if (source.MayContainKey(key)) return true;
  // Filter hit: the one page a point probe would have fetched never
  // happens — no frame, no I/O, just the skip counter.
  if (attribution != nullptr) {
    attribution->pages_skipped_by_filter.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  WriterLock lock(mu_);
  ++stats_.pages_skipped_by_filter;
  return false;
}

void BufferPool::Drop(const PageSource* source) {
  WriterLock lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->source_id == source->source_id()) {
      // A prefetched page retired before anyone touched it was transfer
      // paid for nothing — same waste as an untouched eviction.
      if (it->prefetched) ++stats_.readahead_wasted;
      resident_.erase(FrameKey{it->source_id, it->page});
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  if (last_disk_source_ == source->source_id()) {
    last_disk_source_ = 0;
    last_disk_page_ = ~0ull - 1;
  }
}

IoStats BufferPool::stats() const {
  const ReaderLock lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  WriterLock lock(mu_);
  stats_.Reset();
}

uint64_t BufferPool::resident_pages() const {
  const ReaderLock lock(mu_);
  return lru_.size();
}

uint64_t BufferPool::evictions() const {
  const ReaderLock lock(mu_);
  return evictions_;
}

void BufferPool::AddEntriesRead(uint64_t count, AtomicIoStats* attribution) {
  if (count == 0) return;
  if (attribution != nullptr) {
    attribution->entries_read.fetch_add(count, std::memory_order_relaxed);
  }
  WriterLock lock(mu_);
  stats_.entries_read += count;
}

void BufferPool::AddFilterSkips(uint64_t count, AtomicIoStats* attribution) {
  if (count == 0) return;
  if (attribution != nullptr) {
    attribution->pages_skipped_by_filter.fetch_add(count,
                                                   std::memory_order_relaxed);
  }
  WriterLock lock(mu_);
  stats_.pages_skipped_by_filter += count;
}

}  // namespace onion::storage
