#include "storage/buffer_pool.h"

namespace onion::storage {

BufferPool::BufferPool(uint64_t capacity_pages) : capacity_(capacity_pages) {
  ONION_CHECK_MSG(capacity_pages >= 1, "buffer pool needs >= 1 page");
}

const std::vector<Entry>& BufferPool::Fetch(const PageSource& source,
                                            uint64_t page) {
  const FrameKey key{&source, page};
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    ++stats_.cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return lru_.front().data;
  }
  // Disk read.
  ++stats_.page_reads;
  if (&source != last_disk_source_ || page != last_disk_page_ + 1) {
    ++stats_.seeks;
  }
  last_disk_source_ = &source;
  last_disk_page_ = page;
  lru_.push_front(Frame{&source, page, {}});
  source.ReadPage(page, &lru_.front().data);
  resident_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    const Frame& victim = lru_.back();
    resident_.erase(FrameKey{victim.source, victim.page});
    lru_.pop_back();
  }
  return lru_.front().data;
}

void BufferPool::Drop(const PageSource* source) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->source == source) {
      resident_.erase(FrameKey{it->source, it->page});
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  if (last_disk_source_ == source) {
    last_disk_source_ = nullptr;
    last_disk_page_ = ~0ull - 1;
  }
}

}  // namespace onion::storage
