#include "storage/buffer_pool.h"

namespace onion::storage {

BufferPool::BufferPool(uint64_t capacity_pages) : capacity_(capacity_pages) {
  ONION_CHECK_MSG(capacity_pages >= 1, "buffer pool needs >= 1 page");
}

std::shared_ptr<const std::vector<Entry>> BufferPool::Fetch(
    const PageSource& source, uint64_t page, AtomicIoStats* attribution,
    Status* status) {
  if (status != nullptr) *status = Status::OK();
  const FrameKey key{source.source_id(), page};
  WriterLock lock(mu_);
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    ++stats_.cache_hits;
    if (attribution != nullptr) {
      attribution->cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return lru_.front().data;
  }
  // Disk read. Account for it while the decision is still serialized, then
  // release the lock for the actual I/O so concurrent readers of other
  // pages are not held up behind this one. Both byte counters are known
  // before the read: encoded size from the page index, decoded size from
  // the page geometry.
  ++stats_.page_reads;
  const bool seek = source.source_id() != last_disk_source_ ||
                    page != last_disk_page_ + 1;
  if (seek) ++stats_.seeks;
  const uint64_t disk_bytes = source.PageDiskBytes(page);
  const uint64_t decoded_bytes =
      (source.PageEnd(page) - source.PageBegin(page)) * kDecodedEntryBytes;
  stats_.disk_bytes += disk_bytes;
  stats_.decoded_bytes += decoded_bytes;
  if (attribution != nullptr) {
    attribution->page_reads.fetch_add(1, std::memory_order_relaxed);
    if (seek) attribution->seeks.fetch_add(1, std::memory_order_relaxed);
    attribution->disk_bytes.fetch_add(disk_bytes, std::memory_order_relaxed);
    attribution->decoded_bytes.fetch_add(decoded_bytes,
                                         std::memory_order_relaxed);
  }
  last_disk_source_ = source.source_id();
  last_disk_page_ = page;
  lock.Unlock();

  auto data = std::make_shared<std::vector<Entry>>();
  const Status read_status = source.ReadPage(page, data.get());
  if (!read_status.ok()) {
    // The physical read attempt stays counted (it happened); the page just
    // never becomes resident. Callers with a status sink turn this into a
    // query error, everyone else treats it as fatal.
    ONION_CHECK_MSG(status != nullptr, read_status.ToString().c_str());
    *status = read_status;
    return nullptr;
  }

  lock.Lock();
  // Another thread may have read the same page while the lock was free;
  // keep its frame (the physical read above already happened and stays
  // counted — the counters report real I/O, not residency).
  it = resident_.find(key);
  if (it != resident_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().data;
  }
  lru_.push_front(Frame{source.source_id(), page, std::move(data)});
  resident_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    const Frame& victim = lru_.back();
    resident_.erase(FrameKey{victim.source_id, victim.page});
    lru_.pop_back();
    ++evictions_;
  }
  return lru_.front().data;
}

bool BufferPool::ProbeFilter(const PageSource& source, Key key,
                             AtomicIoStats* attribution) {
  if (source.MayContainKey(key)) return true;
  // Filter hit: the one page a point probe would have fetched never
  // happens — no frame, no I/O, just the skip counter.
  if (attribution != nullptr) {
    attribution->pages_skipped_by_filter.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  WriterLock lock(mu_);
  ++stats_.pages_skipped_by_filter;
  return false;
}

void BufferPool::Drop(const PageSource* source) {
  WriterLock lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->source_id == source->source_id()) {
      resident_.erase(FrameKey{it->source_id, it->page});
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  if (last_disk_source_ == source->source_id()) {
    last_disk_source_ = 0;
    last_disk_page_ = ~0ull - 1;
  }
}

IoStats BufferPool::stats() const {
  const ReaderLock lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  WriterLock lock(mu_);
  stats_.Reset();
}

uint64_t BufferPool::resident_pages() const {
  const ReaderLock lock(mu_);
  return lru_.size();
}

uint64_t BufferPool::evictions() const {
  const ReaderLock lock(mu_);
  return evictions_;
}

void BufferPool::AddEntriesRead(uint64_t count, AtomicIoStats* attribution) {
  if (count == 0) return;
  if (attribution != nullptr) {
    attribution->entries_read.fetch_add(count, std::memory_order_relaxed);
  }
  WriterLock lock(mu_);
  stats_.entries_read += count;
}

void BufferPool::AddFilterSkips(uint64_t count, AtomicIoStats* attribution) {
  if (count == 0) return;
  if (attribution != nullptr) {
    attribution->pages_skipped_by_filter.fetch_add(count,
                                                   std::memory_order_relaxed);
  }
  WriterLock lock(mu_);
  stats_.pages_skipped_by_filter += count;
}

}  // namespace onion::storage
