#include "workloads/generators.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace onion {

namespace {

// Uniform corner for a box with the given lengths.
Cell RandomCorner(const Universe& universe,
                  const std::array<Coord, kMaxDims>& lengths, Rng* rng) {
  Cell corner = Cell::Filled(universe.dims(), 0);
  for (int axis = 0; axis < universe.dims(); ++axis) {
    const Coord len = lengths[static_cast<size_t>(axis)];
    corner[axis] =
        static_cast<Coord>(rng->UniformInclusive(universe.side() - len));
  }
  return corner;
}

}  // namespace

std::vector<Box> RandomCubes(const Universe& universe, Coord len,
                             size_t count, uint64_t seed) {
  std::vector<Coord> lengths(static_cast<size_t>(universe.dims()), len);
  return RandomBoxes(universe, lengths, count, seed);
}

std::vector<Box> RandomBoxes(const Universe& universe,
                             const std::vector<Coord>& lengths, size_t count,
                             uint64_t seed) {
  ONION_CHECK(static_cast<int>(lengths.size()) == universe.dims());
  std::array<Coord, kMaxDims> len_array = {};
  for (int axis = 0; axis < universe.dims(); ++axis) {
    const Coord len = lengths[static_cast<size_t>(axis)];
    ONION_CHECK(len >= 1 && len <= universe.side());
    len_array[static_cast<size_t>(axis)] = len;
  }
  Rng rng(seed);
  std::vector<Box> boxes;
  boxes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    boxes.push_back(Box::FromCornerAndLengths(
        RandomCorner(universe, len_array, &rng), len_array));
  }
  return boxes;
}

std::vector<Box> FixedRatioBoxes(const Universe& universe, double rho,
                                 Coord step, size_t per_step, uint64_t seed) {
  ONION_CHECK(rho > 0);
  ONION_CHECK(step >= 1);
  Rng rng(seed);
  std::vector<Box> boxes;
  // Algorithm 1: l2 walks down from the full side; l1 = floor(l2 / rho).
  // l2 = 1 is appended so that extreme aspect ratios (rho < step/side),
  // which are only feasible at l2 = 1, still produce the paper's
  // column-like rectangles.
  std::vector<int64_t> l2_values;
  for (int64_t l2 = universe.side(); l2 >= 1;
       l2 -= static_cast<int64_t>(step)) {
    l2_values.push_back(l2);
  }
  if (l2_values.empty() || l2_values.back() != 1) l2_values.push_back(1);
  for (const int64_t l2 : l2_values) {
    const auto l1 = static_cast<int64_t>(
        std::floor(static_cast<double>(l2) / rho));
    if (l1 < 1 || l1 > static_cast<int64_t>(universe.side())) continue;
    std::array<Coord, kMaxDims> lengths = {};
    lengths[0] = static_cast<Coord>(l1);
    for (int axis = 1; axis < universe.dims(); ++axis) {
      lengths[static_cast<size_t>(axis)] = static_cast<Coord>(l2);
    }
    for (size_t i = 0; i < per_step; ++i) {
      boxes.push_back(Box::FromCornerAndLengths(
          RandomCorner(universe, lengths, &rng), lengths));
    }
  }
  return boxes;
}

std::vector<Box> RandomCornerBoxes(const Universe& universe, size_t count,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<Box> boxes;
  boxes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Cell lo = Cell::Filled(universe.dims(), 0);
    Cell hi = Cell::Filled(universe.dims(), 0);
    for (int axis = 0; axis < universe.dims(); ++axis) {
      auto a = static_cast<Coord>(rng.UniformInclusive(universe.side() - 1));
      auto b = static_cast<Coord>(rng.UniformInclusive(universe.side() - 1));
      lo[axis] = std::min(a, b);
      hi[axis] = std::max(a, b);
    }
    boxes.push_back(Box(lo, hi));
  }
  return boxes;
}

std::vector<Cell> RandomPoints(const Universe& universe, size_t count,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<Cell> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Cell cell = Cell::Filled(universe.dims(), 0);
    for (int axis = 0; axis < universe.dims(); ++axis) {
      cell[axis] = static_cast<Coord>(rng.UniformInclusive(universe.side() - 1));
    }
    points.push_back(cell);
  }
  return points;
}

std::vector<Cell> ClusteredPoints(const Universe& universe, size_t count,
                                  size_t num_clusters, Coord spread,
                                  uint64_t seed) {
  ONION_CHECK(num_clusters >= 1);
  Rng rng(seed);
  std::vector<Cell> centers =
      RandomPoints(universe, num_clusters, SplitMix64(&seed));
  std::vector<Cell> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const Cell& center = centers[rng.UniformInclusive(num_clusters - 1)];
    Cell cell = Cell::Filled(universe.dims(), 0);
    for (int axis = 0; axis < universe.dims(); ++axis) {
      const int64_t offset =
          static_cast<int64_t>(rng.UniformInclusive(2 * spread)) - spread;
      int64_t coord = static_cast<int64_t>(center[axis]) + offset;
      coord = std::clamp<int64_t>(coord, 0, universe.side() - 1);
      cell[axis] = static_cast<Coord>(coord);
    }
    points.push_back(cell);
  }
  return points;
}

}  // namespace onion
