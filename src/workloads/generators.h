// Query-workload generators reproducing the paper's experimental setup
// (Sec. VII). All generators are deterministic given a seed.

#ifndef ONION_WORKLOADS_GENERATORS_H_
#define ONION_WORKLOADS_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "sfc/types.h"

namespace onion {

/// Sec. VII-A: `count` random cubes of side `len`, lower corner uniform
/// among all feasible positions.
std::vector<Box> RandomCubes(const Universe& universe, Coord len,
                             size_t count, uint64_t seed);

/// Random boxes with the given per-axis side lengths, corner uniform.
std::vector<Box> RandomBoxes(const Universe& universe,
                             const std::vector<Coord>& lengths, size_t count,
                             uint64_t seed);

/// Sec. VII-B, Algorithm 1: rectangles with fixed side-length ratio rho.
/// Starting from l2 = side and stepping down by `step`, sets
/// l1 = floor(l2 / rho); whenever 1 <= l1 <= side, samples `per_step`
/// random placements. In d = 3 the second and third axes share l2.
std::vector<Box> FixedRatioBoxes(const Universe& universe, double rho,
                                 Coord step, size_t per_step, uint64_t seed);

/// Sec. VII-C: rectangles whose two corners are chosen uniformly at random
/// in the universe (the box is the smallest box containing both corners).
std::vector<Box> RandomCornerBoxes(const Universe& universe, size_t count,
                                   uint64_t seed);

/// Uniformly random points of the universe (for populating indexes).
std::vector<Cell> RandomPoints(const Universe& universe, size_t count,
                               uint64_t seed);

/// Points clustered around `num_clusters` random centers with a boxy spread
/// of +/- `spread` per axis (clipped to the universe). Models skewed
/// spatial data (e.g. GPS points around cities).
std::vector<Cell> ClusteredPoints(const Universe& universe, size_t count,
                                  size_t num_clusters, Coord spread,
                                  uint64_t seed);

}  // namespace onion

#endif  // ONION_WORKLOADS_GENERATORS_H_
