#include "obs/metrics.h"

#include <chrono>
#include <cstdio>

namespace onion::obs {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // floor(log2(value)) + 1, clamped to the last bucket.
  size_t bits = 64 - static_cast<size_t>(__builtin_clzll(value));
  return bits < kHistogramBuckets ? bits : kHistogramBuckets - 1;
}

uint64_t Histogram::BucketLowerBound(size_t b) {
  return b == 0 ? 0 : uint64_t{1} << (b - 1);
}

uint64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 1;
  if (b >= 63) return ~uint64_t{0};  // the top bucket is open-ended
  return uint64_t{1} << b;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    out.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target value, 1-based: the smallest r with r >= q*count.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cumulative + buckets[b] >= rank) {
      const double lo = static_cast<double>(Histogram::BucketLowerBound(b));
      const double hi = static_cast<double>(Histogram::BucketUpperBound(b));
      const double within =
          static_cast<double>(rank - cumulative) / buckets[b];
      return lo + within * (hi - lo);
    }
    cumulative += buckets[b];
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(kHistogramBuckets - 1));
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
  return *this;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  const MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendJsonDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  *out += buf;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "onion_";
  for (const char c : name) out += c == '.' ? '_' : c;
  return out;
}

namespace {

void AppendHistogramJson(std::string* out, const HistogramSnapshot& h) {
  *out += "{\"count\":" + std::to_string(h.count);
  *out += ",\"sum\":" + std::to_string(h.sum);
  *out += ",\"mean\":";
  AppendJsonDouble(out, h.mean());
  *out += ",\"p50\":";
  AppendJsonDouble(out, h.p50());
  *out += ",\"p90\":";
  AppendJsonDouble(out, h.p90());
  *out += ",\"p99\":";
  AppendJsonDouble(out, h.p99());
  *out += ",\"p999\":";
  AppendJsonDouble(out, h.p999());
  *out += "}";
}

}  // namespace

void MetricsRegistry::AppendJsonMembers(std::string* out) const {
  const MutexLock lock(mu_);
  *out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) *out += ",";
    first = false;
    *out += "\"";
    AppendJsonEscaped(out, name);
    *out += "\":" + std::to_string(counter->value());
  }
  *out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) *out += ",";
    first = false;
    *out += "\"";
    AppendJsonEscaped(out, name);
    *out += "\":" + std::to_string(gauge->value());
  }
  *out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) *out += ",";
    first = false;
    *out += "\"";
    AppendJsonEscaped(out, name);
    *out += "\":";
    AppendHistogramJson(out, histogram->Snapshot());
  }
  *out += "}";
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{";
  AppendJsonMembers(&out);
  out += "}";
  return out;
}

void MetricsRegistry::AppendPrometheus(std::string* out,
                                       const std::string& labels) const {
  const MutexLock lock(mu_);
  const std::string plain_labels = labels.empty() ? "" : "{" + labels + "}";
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    *out += "# TYPE " + prom + " counter\n";
    *out += prom + plain_labels + " " + std::to_string(counter->value()) +
            "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    *out += "# TYPE " + prom + " gauge\n";
    *out += prom + plain_labels + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot h = histogram->Snapshot();
    const std::string prom = PrometheusName(name);
    *out += "# TYPE " + prom + " histogram\n";
    // Cumulative buckets up to the highest non-empty one, then +Inf.
    size_t top = 0;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] != 0) top = b;
    }
    uint64_t cumulative = 0;
    for (size_t b = 0; b <= top; ++b) {
      cumulative += h.buckets[b];
      const std::string le =
          std::to_string(Histogram::BucketUpperBound(b) - 1);
      *out += prom + "_bucket{" + (labels.empty() ? "" : labels + ",") +
              "le=\"" + le + "\"} " + std::to_string(cumulative) + "\n";
    }
    *out += prom + "_bucket{" + (labels.empty() ? "" : labels + ",") +
            "le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    *out += prom + "_sum" + plain_labels + " " + std::to_string(h.sum) + "\n";
    *out += prom + "_count" + plain_labels + " " + std::to_string(h.count) +
            "\n";
  }
}

}  // namespace onion::obs
