// Engine-wide observability primitives: counters, gauges, and log-scale
// latency histograms, grouped into a named MetricsRegistry that exports
// both JSON and Prometheus text format.
//
// Design goals, in order:
//   1. The hot path pays ONE relaxed atomic increment (two for a
//      histogram: bucket + sum). No locks, no allocation, no branches
//      beyond the bucket computation — cheap enough to leave on in every
//      build, including the benches whose numbers we publish.
//   2. Metric objects have STABLE addresses for the life of their
//      registry: a subsystem looks its handles up once (a mutex-guarded
//      map insert, cold path) and then records through raw pointers.
//   3. Snapshots are plain values, mergeable with operator+= — so an
//      SfcDb can aggregate its tables' histograms, and a bench can diff
//      two snapshots to report a phase.
//
// Histogram bucket scheme (documented in docs/observability.md): 64
// fixed power-of-two buckets. Bucket 0 holds the value 0; bucket b >= 1
// holds values in [2^(b-1), 2^b). Values are unit-agnostic, but every
// engine histogram records MICROSECONDS (the _us name suffix) unless the
// name says otherwise (e.g. wal.commit_batch_records counts records).
// Quantiles interpolate linearly inside the bucket, so a reported p99 is
// exact to within a factor of 2 — plenty for a perf trajectory, at the
// cost of 64 words per histogram.

#ifndef ONION_OBS_METRICS_H_
#define ONION_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace onion::obs {

/// Monotonic wall-clock microseconds (steady_clock; origin unspecified).
/// The single time source of every engine latency measurement.
uint64_t NowMicros();

/// Output format of the engine's DumpMetrics() exporters (SfcTable,
/// SfcDb): one JSON object, or Prometheus text exposition.
enum class MetricsFormat { kJson, kPrometheus };

/// Monotonically increasing event count. Relaxed atomics: the counter is
/// a statistic, not synchronization.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that goes up and down (queue depth, resident pages, pin age).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

inline constexpr size_t kHistogramBuckets = 64;

/// A plain-value copy of a Histogram, safe to merge, diff, and render
/// without touching the live (concurrently updated) object.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Quantile estimate, q in [0, 1]: finds the bucket holding the q-th
  /// recorded value and interpolates linearly inside it (exact to within
  /// the bucket's factor-of-2 width). 0 when nothing was recorded.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }
  double p999() const { return Quantile(0.999); }
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  HistogramSnapshot& operator+=(const HistogramSnapshot& other);
};

/// Fixed-bucket log-scale histogram. Record() is wait-free: one relaxed
/// fetch_add on the bucket, one on count, one on sum.
class Histogram {
 public:
  /// Bucket index of `value`: 0 for 0, otherwise floor(log2(value)) + 1,
  /// clamped to the last bucket.
  static size_t BucketIndex(uint64_t value);
  /// Smallest value bucket `b` can hold (0 for bucket 0, else 2^(b-1)).
  static uint64_t BucketLowerBound(size_t b);
  /// One past the largest value bucket `b` can hold (2^b; saturates).
  static uint64_t BucketUpperBound(size_t b);

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
};

/// Records NowMicros()-elapsed into a histogram on destruction. Stack
/// only; `histogram` may be null (then nothing is recorded).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_us_(NowMicros()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(NowMicros() - start_us_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t start_us() const { return start_us_; }

 private:
  Histogram* histogram_;
  uint64_t start_us_;
};

/// Named metrics with stable addresses. Lookup (counter/gauge/histogram)
/// takes a mutex and is meant for initialization; the returned pointers
/// stay valid for the registry's lifetime and are what hot paths use.
/// Metric names use dotted lower-case ("wal.fsync_us"); the Prometheus
/// exporter rewrites dots to underscores and prefixes "onion_".
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get by name. The same name always returns the same object.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Appends this registry's metrics as the MEMBERS of a JSON object —
  /// no surrounding braces, so callers can splice in derived fields:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  ///    mean,p50,p90,p99,p999}}}  (minus the outer braces)
  void AppendJsonMembers(std::string* out) const;
  /// The registry alone as a complete JSON object.
  std::string ToJson() const;

  /// Appends Prometheus text-format samples. `labels` is the rendered
  /// label set without braces (e.g. `table="left"`), empty for none.
  /// Histograms emit cumulative _bucket{le=...} series plus _sum/_count.
  void AppendPrometheus(std::string* out, const std::string& labels) const;

 private:
  // mu_ guards the name->metric maps only; the metric OBJECTS are
  // lock-free atomics with stable addresses, recorded into without mu_.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ONION_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ ONION_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ONION_GUARDED_BY(mu_);
};

// --- small rendering helpers shared by every exporter (DumpMetrics,
// bench_report.h, the trace ring) -----------------------------------

/// Appends `s` JSON-escaped, without surrounding quotes.
void AppendJsonEscaped(std::string* out, const std::string& s);
/// Appends a double as a JSON number (fixed, 3 decimals; "0" for 0).
void AppendJsonDouble(std::string* out, double value);
/// "wal.fsync_us" -> "onion_wal_fsync_us" (Prometheus metric name).
std::string PrometheusName(const std::string& name);

}  // namespace onion::obs

#endif  // ONION_OBS_METRICS_H_
