#include "obs/trace.h"

#include <utility>

#include "obs/metrics.h"

namespace onion::obs {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFlush: return "flush";
    case TraceKind::kCompaction: return "compaction";
    case TraceKind::kBatchCommit: return "batch_commit";
    case TraceKind::kSessionExpire: return "session_expire";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceRing::Add(TraceEvent event) {
  total_added_.fetch_add(1, std::memory_order_relaxed);
  const MutexLock lock(mu_);
  if (size_ < capacity_) {
    ring_[(start_ + size_) % capacity_] = std::move(event);
    ++size_;
  } else {
    ring_[start_] = std::move(event);  // overwrite the oldest...
    start_ = (start_ + 1) % capacity_;  // ...which shifts the window
  }
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start_ + i) % capacity_]);
  }
  return out;
}

std::string TraceRing::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(event.id);
    out += ",\"kind\":\"";
    out += TraceKindName(event.kind);
    out += "\",\"label\":\"";
    AppendJsonEscaped(&out, event.label);
    out += "\",\"start_us\":" + std::to_string(event.start_us);
    out += ",\"dur_us\":" + std::to_string(event.dur_us);
    out += ",\"bytes\":" + std::to_string(event.bytes);
    out += ",\"entries\":" + std::to_string(event.entries);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace onion::obs
