// A bounded in-memory ring of structured trace events for post-mortem
// debugging: every flush, compaction, and batch commit deposits one event
// (id, kind, label, start time, duration, bytes, entries) on completion.
// The ring keeps the most recent `capacity` events — old ones fall off —
// so it can stay enabled forever at a fixed memory cost, and a crash
// investigation (or a test) dumps it as JSON via ToJson().
//
// Events are RARE (background-work granularity, not per-operation), so a
// plain mutex around a ring vector is plenty; the hot write path never
// touches this.

#ifndef ONION_OBS_TRACE_H_
#define ONION_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace onion::obs {

enum class TraceKind {
  kFlush,          // one memtable generation written as an L0 segment
  kCompaction,     // one merge (leveled round or full Compact())
  kBatchCommit,    // one SfcDb::Write (single- or multi-table)
  kSessionExpire,  // the net server force-expired a stalled session
};

/// Stable lower-case name ("flush", "compaction", "batch_commit",
/// "session_expire").
const char* TraceKindName(TraceKind kind);

struct TraceEvent {
  uint64_t id = 0;  // unique per ring, from TraceRing::NextId()
  TraceKind kind = TraceKind::kFlush;
  std::string label;     // e.g. the table name ("" when not applicable)
  uint64_t start_us = 0; // NowMicros() at event start
  uint64_t dur_us = 0;
  uint64_t bytes = 0;    // on-disk bytes written (0 when not applicable)
  uint64_t entries = 0;  // entries written / committed
};

class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 256);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Allocates the next event id (events of concurrent producers get
  /// distinct ids; ids are NOT ordered like completion times).
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Deposits one completed event, evicting the oldest when full.
  void Add(TraceEvent event);

  /// The retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// JSON array of the retained events:
  ///   [{"id":1,"kind":"flush","label":"t","start_us":...,"dur_us":...,
  ///     "bytes":...,"entries":...}, ...]
  std::string ToJson() const;

  size_t capacity() const { return capacity_; }
  /// Total events ever added (>= Snapshot().size(); the difference is how
  /// many fell off the ring).
  uint64_t total_added() const {
    return total_added_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> total_added_{0};
  mutable Mutex mu_;
  // ring_[(start_ + i) % size] is the i-th oldest retained event.
  std::vector<TraceEvent> ring_ ONION_GUARDED_BY(mu_);
  size_t start_ ONION_GUARDED_BY(mu_) = 0;
  size_t size_ ONION_GUARDED_BY(mu_) = 0;
};

}  // namespace onion::obs

#endif  // ONION_OBS_TRACE_H_
