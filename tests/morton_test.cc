// Tests for Morton interleaving, Gray-code utilities, and the Z-order /
// Gray-code curves built on them.

#include <gtest/gtest.h>

#include "sfc/graycode.h"
#include "sfc/morton.h"
#include "sfc/zorder.h"

namespace onion {
namespace {

TEST(MortonTest, Known2DValues) {
  // Interleaving (x, y): y bits land above x bits within each pair.
  EXPECT_EQ(MortonEncode(Cell(0, 0), 2), 0u);
  EXPECT_EQ(MortonEncode(Cell(1, 0), 2), 1u);
  EXPECT_EQ(MortonEncode(Cell(0, 1), 2), 2u);
  EXPECT_EQ(MortonEncode(Cell(1, 1), 2), 3u);
  EXPECT_EQ(MortonEncode(Cell(2, 0), 2), 4u);
  EXPECT_EQ(MortonEncode(Cell(3, 3), 2), 15u);
}

TEST(MortonTest, RoundTrip2D) {
  for (Coord x = 0; x < 16; ++x) {
    for (Coord y = 0; y < 16; ++y) {
      const Key code = MortonEncode(Cell(x, y), 4);
      EXPECT_EQ(MortonDecode(code, 2, 4), Cell(x, y));
    }
  }
}

TEST(MortonTest, RoundTrip3D) {
  for (Coord x = 0; x < 8; ++x) {
    for (Coord y = 0; y < 8; ++y) {
      for (Coord z = 0; z < 8; ++z) {
        const Key code = MortonEncode(Cell(x, y, z), 3);
        EXPECT_EQ(MortonDecode(code, 3, 3), Cell(x, y, z));
      }
    }
  }
}

TEST(MortonTest, CodesArePermutation) {
  std::vector<bool> seen(256, false);
  for (Coord x = 0; x < 16; ++x) {
    for (Coord y = 0; y < 16; ++y) {
      const Key code = MortonEncode(Cell(x, y), 4);
      ASSERT_LT(code, 256u);
      ASSERT_FALSE(seen[code]);
      seen[code] = true;
    }
  }
}

TEST(MortonTest, Log2Exact) {
  EXPECT_EQ(Log2Exact(1), 0);
  EXPECT_EQ(Log2Exact(2), 1);
  EXPECT_EQ(Log2Exact(1024), 10);
}

TEST(MortonTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(6));
  EXPECT_FALSE(IsPowerOfTwo(1023));
}

TEST(GrayTest, EncodeKnownValues) {
  // 0,1,3,2,6,7,5,4 is the 3-bit reflected Gray sequence.
  const uint64_t expected[] = {0, 1, 3, 2, 6, 7, 5, 4};
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(GrayEncode(i), expected[i]) << i;
  }
}

TEST(GrayTest, DecodeInvertsEncode) {
  for (uint64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(GrayDecode(GrayEncode(i)), i);
  }
  // Large values too.
  EXPECT_EQ(GrayDecode(GrayEncode(0xdeadbeefcafebabeULL)),
            0xdeadbeefcafebabeULL);
}

TEST(GrayTest, ConsecutiveCodesDifferInOneBit) {
  for (uint64_t i = 0; i + 1 < 1024; ++i) {
    const uint64_t diff = GrayEncode(i) ^ GrayEncode(i + 1);
    EXPECT_EQ(diff & (diff - 1), 0u) << i;  // power of two
    EXPECT_NE(diff, 0u);
  }
}

TEST(ZOrderTest, MatchesMortonDirectly) {
  auto curve = ZOrderCurve::Make(Universe(2, 8)).value();
  for (Coord x = 0; x < 8; ++x) {
    for (Coord y = 0; y < 8; ++y) {
      EXPECT_EQ(curve->IndexOf(Cell(x, y)), MortonEncode(Cell(x, y), 3));
    }
  }
}

TEST(ZOrderTest, NotContinuous) {
  auto curve = ZOrderCurve::Make(Universe(2, 4)).value();
  EXPECT_FALSE(curve->is_continuous());
  // The jump from key 3 (1,1) to key 4 (2,0) is not a neighbor move.
  EXPECT_EQ(curve->CellAt(3), Cell(1, 1));
  EXPECT_EQ(curve->CellAt(4), Cell(2, 0));
}

TEST(GrayCodeCurveTest, ConsecutiveCellsDifferInOneMortonBit) {
  auto curve = GrayCodeCurve::Make(Universe(2, 8)).value();
  for (Key key = 0; key + 1 < curve->num_cells(); ++key) {
    const Key m1 = MortonEncode(curve->CellAt(key), 3);
    const Key m2 = MortonEncode(curve->CellAt(key + 1), 3);
    const Key diff = m1 ^ m2;
    EXPECT_EQ(diff & (diff - 1), 0u) << key;
  }
}

TEST(GrayCodeCurveTest, SingleStepMovesArePowerOfTwoDistance) {
  // A one-bit Morton flip moves exactly one coordinate by a power of two.
  auto curve = GrayCodeCurve::Make(Universe(2, 16)).value();
  for (Key key = 0; key + 1 < curve->num_cells(); ++key) {
    const Cell a = curve->CellAt(key);
    const Cell b = curve->CellAt(key + 1);
    int changed = 0;
    for (int axis = 0; axis < 2; ++axis) {
      const Coord diff = a[axis] ^ b[axis];
      if (diff == 0) continue;
      ++changed;
      EXPECT_EQ(diff & (diff - 1), 0u);
    }
    EXPECT_EQ(changed, 1) << key;
  }
}

}  // namespace
}  // namespace onion
