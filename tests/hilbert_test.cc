// Tests for the Hilbert curves: the classic 2D rotation algorithm and the
// d-dimensional Skilling algorithm. Both are validated as continuous
// bijections; the 2D pair is additionally cross-checked for clustering
// equivalence (the two constructions differ by a symmetry of the square,
// which leaves translation-averaged clustering invariant).

#include <vector>

#include <gtest/gtest.h>

#include "analysis/clustering.h"
#include "analysis/continuity.h"
#include "sfc/hilbert2d.h"
#include "sfc/hilbert_nd.h"

namespace onion {
namespace {

TEST(Hilbert2DTest, OrderTwoGrid) {
  // The classic algorithm on 2x2: d=0 -> (0,0), then (0,1), (1,1), (1,0).
  auto curve = Hilbert2D::Make(Universe(2, 2)).value();
  EXPECT_EQ(curve->CellAt(0), Cell(0, 0));
  EXPECT_EQ(curve->CellAt(1), Cell(0, 1));
  EXPECT_EQ(curve->CellAt(2), Cell(1, 1));
  EXPECT_EQ(curve->CellAt(3), Cell(1, 0));
}

TEST(Hilbert2DTest, ContinuousAtAllSizes) {
  for (const Coord side : {2u, 4u, 8u, 16u, 32u}) {
    auto curve = Hilbert2D::Make(Universe(2, side)).value();
    EXPECT_TRUE(VerifyContinuity(*curve)) << "side " << side;
  }
}

TEST(Hilbert2DTest, QuadrantRecursion) {
  // Each quadrant of the 2^k x 2^k curve is a contiguous block of keys of
  // size (n/4).
  const Coord side = 16;
  auto curve = Hilbert2D::Make(Universe(2, side)).value();
  const Key quarter = curve->num_cells() / 4;
  for (int q = 0; q < 4; ++q) {
    Coord min_x = side;
    Coord max_x = 0;
    Coord min_y = side;
    Coord max_y = 0;
    for (Key key = quarter * q; key < quarter * (q + 1); ++key) {
      const Cell cell = curve->CellAt(key);
      min_x = std::min(min_x, cell.x());
      max_x = std::max(max_x, cell.x());
      min_y = std::min(min_y, cell.y());
      max_y = std::max(max_y, cell.y());
    }
    EXPECT_EQ(max_x - min_x + 1, side / 2) << "quadrant " << q;
    EXPECT_EQ(max_y - min_y + 1, side / 2) << "quadrant " << q;
  }
}

TEST(Hilbert2DTest, RejectsBadUniverses) {
  EXPECT_FALSE(Hilbert2D::Make(Universe(2, 6)).ok());
  EXPECT_FALSE(Hilbert2D::Make(Universe(3, 8)).ok());
}

TEST(HilbertNDTest, ContinuousInTwoThreeFourDims) {
  for (const int dims : {2, 3, 4}) {
    for (const Coord side : {2u, 4u, 8u}) {
      if (PowChecked(side, dims) > (1u << 20)) continue;
      auto curve = HilbertND::Make(Universe(dims, side)).value();
      EXPECT_TRUE(VerifyContinuity(*curve))
          << dims << "D side " << side;
    }
  }
}

TEST(HilbertNDTest, StartsAtOrigin) {
  for (const int dims : {2, 3, 4}) {
    auto curve = HilbertND::Make(Universe(dims, 8)).value();
    EXPECT_EQ(curve->IndexOf(Cell::Filled(dims, 0)), 0u) << dims;
  }
}

TEST(HilbertNDTest, AlignedBlocksAreContiguous) {
  // Every aligned 2x2x2 block of the 3D curve occupies 8 consecutive keys
  // starting at a multiple of 8.
  auto curve = HilbertND::Make(Universe(3, 8)).value();
  for (Coord bx = 0; bx < 8; bx += 2) {
    for (Coord by = 0; by < 8; by += 2) {
      for (Coord bz = 0; bz < 8; bz += 2) {
        Key min_key = curve->num_cells();
        Key max_key = 0;
        for (Coord dx = 0; dx < 2; ++dx) {
          for (Coord dy = 0; dy < 2; ++dy) {
            for (Coord dz = 0; dz < 2; ++dz) {
              const Key key =
                  curve->IndexOf(Cell(bx + dx, by + dy, bz + dz));
              min_key = std::min(min_key, key);
              max_key = std::max(max_key, key);
            }
          }
        }
        EXPECT_EQ(max_key - min_key, 7u);
        EXPECT_EQ(min_key % 8, 0u);
      }
    }
  }
}

TEST(HilbertNDTest, RejectsOneDimensional) {
  EXPECT_FALSE(HilbertND::Make(Universe(1, 8)).ok());
}

TEST(HilbertCrossCheckTest, SameClusteringDistributionIn2D) {
  // The classic and Skilling constructions differ by a reflection, so the
  // average clustering number over ALL translations of a fixed query shape
  // must agree exactly for symmetric (square) shapes.
  const Coord side = 16;
  auto classic = Hilbert2D::Make(Universe(2, side)).value();
  auto skilling = HilbertND::Make(Universe(2, side)).value();
  for (const Coord len : {2u, 3u, 5u, 9u}) {
    uint64_t total_classic = 0;
    uint64_t total_skilling = 0;
    for (Coord x = 0; x + len <= side; ++x) {
      for (Coord y = 0; y + len <= side; ++y) {
        const Box box = Box::Cube(Cell(x, y), len);
        total_classic += ClusteringNumberBruteForce(*classic, box);
        total_skilling += ClusteringNumberBruteForce(*skilling, box);
      }
    }
    EXPECT_EQ(total_classic, total_skilling) << "len " << len;
  }
}

}  // namespace
}  // namespace onion
