// Write-ahead-log unit tests: append/replay round trips, torn-tail
// tolerance (short and corrupt records), header validation, and
// group-commit fsync (SyncUpTo leader/follower batching).

#include <unistd.h>

#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "storage/wal.h"

namespace onion::storage {
namespace {

std::string FreshPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<std::pair<Key, uint64_t>> Replay(const std::string& path) {
  std::vector<std::pair<Key, uint64_t>> records;
  auto result = ReplayWal(path, [&](Key key, uint64_t payload) {
    records.emplace_back(key, payload);
  });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) {
    EXPECT_EQ(result.value(), records.size());
  }
  return records;
}

/// Byte length of the WAL file after `n` records (header + n * record).
long FileBytes(uint64_t n) { return static_cast<long>(16 + 24 * n); }

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string path = FreshPath("wal_roundtrip.log");
  std::vector<std::pair<Key, uint64_t>> written;
  {
    auto wal = WalWriter::Create(path, /*fsync_each_append=*/false);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint64_t i = 0; i < 500; ++i) {
      const Key key = (i * 2654435761u) % 10000;  // unordered on purpose
      ASSERT_TRUE(wal.value()->Append(key, i).ok());
      written.emplace_back(key, i);
    }
    EXPECT_EQ(wal.value()->num_records(), 500u);
  }
  EXPECT_EQ(Replay(path), written);  // order and duplicates preserved
}

TEST(WalTest, EmptyLogReplaysNothing) {
  const std::string path = FreshPath("wal_empty.log");
  { ASSERT_TRUE(WalWriter::Create(path, false).ok()); }
  EXPECT_TRUE(Replay(path).empty());
}

TEST(WalTest, TornTailIsDiscardedShortRecord) {
  const std::string path = FreshPath("wal_torn.log");
  {
    auto wal = WalWriter::Create(path, false);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, i).ok());
    }
  }
  // Simulate a crash mid-append: truncate into the middle of record 9.
  ASSERT_EQ(::truncate(path.c_str(), FileBytes(9) + 7), 0);
  const auto records = Replay(path);
  ASSERT_EQ(records.size(), 9u);
  EXPECT_EQ(records.back().first, 8u);
}

TEST(WalTest, CorruptChecksumStopsReplayThere) {
  const std::string path = FreshPath("wal_corrupt.log");
  {
    auto wal = WalWriter::Create(path, false);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, i).ok());
    }
  }
  // Flip one payload byte of record 5; its checksum no longer matches, so
  // replay must stop after record 4 (torn-tail semantics).
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fseek(file, FileBytes(5) + 8, SEEK_SET), 0);
  const unsigned char bad = 0xFF;
  ASSERT_EQ(std::fwrite(&bad, 1, 1, file), 1u);
  std::fclose(file);
  const auto records = Replay(path);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.back().first, 4u);
}

TEST(WalTest, SyncUpToCoversEverythingAppendedSoFar) {
  const std::string path = FreshPath("wal_syncupto.log");
  auto wal = WalWriter::Create(path, /*fsync_each_append=*/false);
  ASSERT_TRUE(wal.ok());
  uint64_t seq = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal.value()->Append(i, i, &seq).ok());
  }
  EXPECT_EQ(seq, 10u);
  EXPECT_EQ(wal.value()->num_syncs(), 0u);
  // One call syncs the whole tail...
  ASSERT_TRUE(wal.value()->SyncUpTo(seq).ok());
  EXPECT_EQ(wal.value()->num_syncs(), 1u);
  // ...so syncing any earlier record is already satisfied: no extra fsync.
  ASSERT_TRUE(wal.value()->SyncUpTo(3).ok());
  ASSERT_TRUE(wal.value()->SyncUpTo(10).ok());
  EXPECT_EQ(wal.value()->num_syncs(), 1u);
  // A new record needs a new fsync.
  ASSERT_TRUE(wal.value()->Append(99, 99, &seq).ok());
  ASSERT_TRUE(wal.value()->SyncUpTo(seq).ok());
  EXPECT_EQ(wal.value()->num_syncs(), 2u);
}

TEST(WalTest, GroupCommitBatchesConcurrentCommitters) {
  // The SfcTable insert pattern: appends serialized by a mutex, each
  // thread then calling SyncUpTo(its seq) unlocked. Everything must be
  // durable and replayable, and the leader/follower protocol must issue
  // at most one fsync per committer (in practice far fewer — but that is
  // timing-dependent, so only the hard invariants are asserted).
  const std::string path = FreshPath("wal_group_commit.log");
  auto wal_result = WalWriter::Create(path, /*fsync_each_append=*/false);
  ASSERT_TRUE(wal_result.ok());
  WalWriter& wal = *wal_result.value();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 200;
  std::mutex append_mu;
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; ++t) {
    committers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t seq = 0;
        {
          std::lock_guard<std::mutex> lock(append_mu);
          ASSERT_TRUE(
              wal.Append(static_cast<uint64_t>(t) * kPerThread + i, i, &seq)
                  .ok());
        }
        ASSERT_TRUE(wal.SyncUpTo(seq).ok());
      }
    });
  }
  for (std::thread& committer : committers) committer.join();
  EXPECT_EQ(wal.num_records(), kThreads * kPerThread);
  EXPECT_GT(wal.num_syncs(), 0u);
  EXPECT_LE(wal.num_syncs(), kThreads * kPerThread);
  EXPECT_EQ(Replay(path).size(), kThreads * kPerThread);
}

TEST(WalTest, MissingFileIsNotFound) {
  auto result = ReplayWal(FreshPath("wal_missing.log"), [](Key, uint64_t) {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(WalTest, BadHeaderIsRejected) {
  const std::string path = FreshPath("wal_badheader.log");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("not a wal file at all", file);
  std::fclose(file);
  auto result = ReplayWal(path, [](Key, uint64_t) {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace onion::storage
