// Write-ahead-log unit tests: append/replay round trips for single-op and
// multi-op (batch) records with sequence stamps and tombstones, torn-tail
// tolerance (short and corrupt records, whole batches discarded
// atomically), version-1 backward compatibility from a handcrafted
// fixture, header validation, and group-commit fsync (SyncUpTo
// leader/follower batching).

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "storage/codec.h"
#include "storage/wal.h"

namespace onion::storage {
namespace {

std::string FreshPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

struct ReplayedOp {
  Key key = 0;
  uint64_t payload = 0;
  uint64_t sequence = 0;
  bool tombstone = false;

  bool operator==(const ReplayedOp& other) const {
    return key == other.key && payload == other.payload &&
           sequence == other.sequence && tombstone == other.tombstone;
  }
};

std::vector<ReplayedOp> Replay(const std::string& path) {
  std::vector<ReplayedOp> ops;
  auto result = ReplayWal(
      path, [&](Key key, uint64_t payload, uint64_t sequence, bool tombstone) {
        ops.push_back(ReplayedOp{key, payload, sequence, tombstone});
      });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) {
    EXPECT_EQ(result.value(), ops.size());
  }
  return ops;
}

/// Byte length of a v2 record holding `ops` ops.
long RecordBytes(uint64_t ops) { return static_cast<long>(12 + 17 * ops + 4); }

/// Byte length of the WAL file after `n` single-op records.
long FileBytes(uint64_t n) {
  return static_cast<long>(16) + static_cast<long>(n) * RecordBytes(1);
}

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string path = FreshPath("wal_roundtrip.log");
  std::vector<ReplayedOp> written;
  {
    auto wal = WalWriter::Create(path, /*fsync_each_append=*/false);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint64_t i = 0; i < 500; ++i) {
      const Key key = (i * 2654435761u) % 10000;  // unordered on purpose
      const bool tombstone = i % 7 == 0;
      const WalOp op{key, tombstone ? 0 : i, tombstone};
      ASSERT_TRUE(wal.value()->AppendBatch(&op, 1, /*first_sequence=*/i + 1)
                      .ok());
      written.push_back(ReplayedOp{key, tombstone ? 0 : i, i + 1, tombstone});
    }
    EXPECT_EQ(wal.value()->num_records(), 500u);
  }
  EXPECT_EQ(Replay(path), written);  // order, seqs, and tombstones preserved
}

TEST(WalTest, MultiOpBatchRecordsRoundTrip) {
  const std::string path = FreshPath("wal_batch.log");
  {
    auto wal = WalWriter::Create(path, false);
    ASSERT_TRUE(wal.ok());
    const WalOp ops[3] = {{10, 100, false}, {20, 0, true}, {30, 300, false}};
    ASSERT_TRUE(wal.value()->AppendBatch(ops, 3, /*first_sequence=*/41).ok());
    const WalOp one{99, 999, false};
    ASSERT_TRUE(wal.value()->AppendBatch(&one, 1, /*first_sequence=*/44).ok());
    EXPECT_EQ(wal.value()->num_records(), 2u);  // records, not ops
  }
  const auto ops = Replay(path);
  ASSERT_EQ(ops.size(), 4u);
  // Ops of one batch carry consecutive sequences from first_sequence.
  EXPECT_EQ(ops[0], (ReplayedOp{10, 100, 41, false}));
  EXPECT_EQ(ops[1], (ReplayedOp{20, 0, 42, true}));
  EXPECT_EQ(ops[2], (ReplayedOp{30, 300, 43, false}));
  EXPECT_EQ(ops[3], (ReplayedOp{99, 999, 44, false}));
}

TEST(WalTest, EmptyLogReplaysNothing) {
  const std::string path = FreshPath("wal_empty.log");
  { ASSERT_TRUE(WalWriter::Create(path, false).ok()); }
  EXPECT_TRUE(Replay(path).empty());
}

TEST(WalTest, TornTailIsDiscardedShortRecord) {
  const std::string path = FreshPath("wal_torn.log");
  {
    auto wal = WalWriter::Create(path, false);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 10; ++i) {
      const WalOp op{i, i, false};
      ASSERT_TRUE(wal.value()->AppendBatch(&op, 1, i + 1).ok());
    }
  }
  // Simulate a crash mid-append: truncate into the middle of record 9.
  ASSERT_EQ(::truncate(path.c_str(), FileBytes(9) + 7), 0);
  const auto ops = Replay(path);
  ASSERT_EQ(ops.size(), 9u);
  EXPECT_EQ(ops.back().key, 8u);
}

TEST(WalTest, TornBatchIsDiscardedWhole) {
  // The atomicity contract: a torn multi-op record must not replay ANY of
  // its ops, even those whose bytes survived intact.
  const std::string path = FreshPath("wal_torn_batch.log");
  {
    auto wal = WalWriter::Create(path, false);
    ASSERT_TRUE(wal.ok());
    const WalOp first{1, 1, false};
    ASSERT_TRUE(wal.value()->AppendBatch(&first, 1, 1).ok());
    const WalOp batch[4] = {{2, 2, false}, {3, 3, false}, {4, 0, true},
                            {5, 5, false}};
    ASSERT_TRUE(wal.value()->AppendBatch(batch, 4, 2).ok());
  }
  // Cut into the LAST op of the batch: three ops' bytes are fully present
  // but the record (and its CRC) is torn — all four must vanish.
  ASSERT_EQ(::truncate(path.c_str(), FileBytes(1) + RecordBytes(4) - 6), 0);
  const auto ops = Replay(path);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0], (ReplayedOp{1, 1, 1, false}));
}

TEST(WalTest, CorruptChecksumStopsReplayThere) {
  const std::string path = FreshPath("wal_corrupt.log");
  {
    auto wal = WalWriter::Create(path, false);
    ASSERT_TRUE(wal.ok());
    for (uint64_t i = 0; i < 10; ++i) {
      const WalOp op{i, i, false};
      ASSERT_TRUE(wal.value()->AppendBatch(&op, 1, i + 1).ok());
    }
  }
  // Flip one payload byte of record 5; its CRC32C no longer matches, so
  // replay must stop after record 4 (torn-tail semantics).
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fseek(file, FileBytes(5) + 12 + 9, SEEK_SET), 0);
  const unsigned char bad = 0xFF;
  ASSERT_EQ(std::fwrite(&bad, 1, 1, file), 1u);
  std::fclose(file);
  const auto ops = Replay(path);
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops.back().key, 4u);
}

TEST(WalTest, HandcraftedV1FileReplaysWithSequenceZero) {
  // Byte-exact version-1 fixture (fixed 24-byte records, xor-rotate
  // checksum), written independently of wal.cc: the current replay must
  // surface its ops as puts with sequence 0 for the table to synthesize.
  const std::string path = FreshPath("wal_v1_fixture.log");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  uint8_t header[16] = {};
  std::memcpy(header, "OSFCWAL1", 8);
  PutU32(header + 8, 1);  // format version 1
  ASSERT_EQ(std::fwrite(header, 1, sizeof(header), file), sizeof(header));
  for (uint64_t i = 0; i < 20; ++i) {
    const uint64_t key = i * 11;
    const uint64_t payload = i + 7;
    uint8_t record[24];
    PutU64(record, key);
    PutU64(record + 8, payload);
    uint64_t sum = 0x0410105fc5a10ULL;  // the v1 checksum, reproduced
    sum ^= Rotl64(key, 17);
    sum ^= Rotl64(payload, 31);
    PutU64(record + 16, sum);
    ASSERT_EQ(std::fwrite(record, 1, sizeof(record), file), sizeof(record));
  }
  std::fclose(file);
  const auto ops = Replay(path);
  ASSERT_EQ(ops.size(), 20u);
  for (uint64_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i], (ReplayedOp{i * 11, i + 7, 0, false})) << i;
  }
}

TEST(WalTest, SyncUpToCoversEverythingAppendedSoFar) {
  const std::string path = FreshPath("wal_syncupto.log");
  auto wal = WalWriter::Create(path, /*fsync_each_append=*/false);
  ASSERT_TRUE(wal.ok());
  uint64_t record = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    const WalOp op{i, i, false};
    ASSERT_TRUE(wal.value()->AppendBatch(&op, 1, i + 1, &record).ok());
  }
  EXPECT_EQ(record, 10u);
  EXPECT_EQ(wal.value()->num_syncs(), 0u);
  // One call syncs the whole tail...
  ASSERT_TRUE(wal.value()->SyncUpTo(record).ok());
  EXPECT_EQ(wal.value()->num_syncs(), 1u);
  // ...so syncing any earlier record is already satisfied: no extra fsync.
  ASSERT_TRUE(wal.value()->SyncUpTo(3).ok());
  ASSERT_TRUE(wal.value()->SyncUpTo(10).ok());
  EXPECT_EQ(wal.value()->num_syncs(), 1u);
  // A new record needs a new fsync.
  const WalOp op{99, 99, false};
  ASSERT_TRUE(wal.value()->AppendBatch(&op, 1, 11, &record).ok());
  ASSERT_TRUE(wal.value()->SyncUpTo(record).ok());
  EXPECT_EQ(wal.value()->num_syncs(), 2u);
}

TEST(WalTest, GroupCommitBatchesConcurrentCommitters) {
  // The SfcTable insert pattern: appends serialized by a mutex, each
  // thread then calling SyncUpTo(its record) unlocked. Everything must be
  // durable and replayable, and the leader/follower protocol must issue
  // at most one fsync per committer (in practice far fewer — but that is
  // timing-dependent, so only the hard invariants are asserted).
  const std::string path = FreshPath("wal_group_commit.log");
  auto wal_result = WalWriter::Create(path, /*fsync_each_append=*/false);
  ASSERT_TRUE(wal_result.ok());
  WalWriter& wal = *wal_result.value();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 200;
  std::mutex append_mu;
  uint64_t next_sequence = 1;
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; ++t) {
    committers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t record = 0;
        {
          std::lock_guard<std::mutex> lock(append_mu);
          const WalOp op{static_cast<uint64_t>(t) * kPerThread + i, i, false};
          ASSERT_TRUE(wal.AppendBatch(&op, 1, next_sequence++, &record).ok());
        }
        ASSERT_TRUE(wal.SyncUpTo(record).ok());
      }
    });
  }
  for (std::thread& committer : committers) committer.join();
  EXPECT_EQ(wal.num_records(), kThreads * kPerThread);
  EXPECT_GT(wal.num_syncs(), 0u);
  EXPECT_LE(wal.num_syncs(), kThreads * kPerThread);
  EXPECT_EQ(Replay(path).size(), kThreads * kPerThread);
}

TEST(WalTest, NumRecordsIsSafeToObserveDuringAppends) {
  // Regression: num_records() used to read the append-side counter
  // directly, racing with in-flight appends (appends are serialized by
  // the CALLER's lock, which an observer thread does not hold). It now
  // reads the atomic AppendBatch publishes after each record, so a
  // polling observer must always see a monotone count that never runs
  // ahead of what has actually been appended. Run under TSan (CI) this
  // also proves the read is race-free.
  const std::string path = FreshPath("wal_observer.log");
  auto wal_result = WalWriter::Create(path, /*fsync_each_append=*/false);
  ASSERT_TRUE(wal_result.ok());
  WalWriter& wal = *wal_result.value();
  constexpr uint64_t kRecords = 2000;
  std::atomic<bool> done{false};
  std::atomic<bool> observer_failed{false};
  std::thread observer([&] {
    uint64_t prev = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t now = wal.num_records();
      const uint64_t syncs = wal.num_syncs();
      if (now < prev || now > kRecords || syncs > kRecords) {
        observer_failed.store(true);
        return;
      }
      prev = now;
    }
  });
  uint64_t record = 0;
  for (uint64_t i = 0; i < kRecords; ++i) {
    const WalOp op{i, i, false};
    ASSERT_TRUE(wal.AppendBatch(&op, 1, i + 1, &record).ok());
  }
  ASSERT_TRUE(wal.SyncUpTo(record).ok());
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_FALSE(observer_failed.load());
  EXPECT_EQ(wal.num_records(), kRecords);
}

TEST(WalTest, MissingFileIsNotFound) {
  auto result = ReplayWal(FreshPath("wal_missing.log"),
                          [](Key, uint64_t, uint64_t, bool) {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(WalTest, BadHeaderIsRejected) {
  const std::string path = FreshPath("wal_badheader.log");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("not a wal file at all", file);
  std::fclose(file);
  auto result = ReplayWal(path, [](Key, uint64_t, uint64_t, bool) {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace onion::storage
