// SfcDb catalog tests: create/open/drop/list lifecycle, catalog
// persistence across reopen, shared-pool I/O attribution staying
// per-table, the shared worker pool flushing many tables, orphan GC, and
// option/name validation.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/sfc_db.h"
#include "workloads/generators.h"

namespace onion::storage {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sfc_db_test/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SfcDbTest, CreateListGetDropLifecycle) {
  const std::string dir = FreshDir("lifecycle");
  auto db_result = SfcDb::Open(dir);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result.value();
  EXPECT_TRUE(db.ListTables().empty());

  const Universe universe(2, 32);
  auto beta = db.CreateTable("beta", "hilbert", universe);
  auto alpha = db.CreateTable("alpha", "onion", universe);
  ASSERT_TRUE(beta.ok()) << beta.status().ToString();
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(db.ListTables(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(db.GetTable("alpha"), alpha.value());
  EXPECT_EQ(db.GetTable("beta"), beta.value());
  EXPECT_EQ(db.GetTable("gamma"), nullptr);
  EXPECT_EQ(alpha.value()->curve().name(), "onion");

  // Same name twice is refused; the original handle stays valid.
  auto dup = db.CreateTable("alpha", "zorder", universe);
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(db.DropTable("alpha").ok());
  EXPECT_EQ(db.ListTables(), (std::vector<std::string>{"beta"}));
  EXPECT_EQ(db.GetTable("alpha"), nullptr);
  EXPECT_FALSE(std::filesystem::exists(dir + "/alpha"));
  EXPECT_EQ(db.DropTable("alpha").code(), StatusCode::kNotFound);
  // The name is reusable after a drop.
  EXPECT_TRUE(db.CreateTable("alpha", "zorder", universe).ok());
}

TEST(SfcDbTest, CatalogSurvivesReopen) {
  const std::string dir = FreshDir("reopen");
  const Universe universe(2, 64);
  const auto points = RandomPoints(universe, 2000, 311);
  {
    auto db_result = SfcDb::Open(dir);
    ASSERT_TRUE(db_result.ok());
    auto& db = *db_result.value();
    SfcTableOptions options;
    options.memtable_flush_entries = 300;
    auto table = db.CreateTable("points", "hilbert", universe, options);
    ASSERT_TRUE(table.ok());
    for (size_t i = 0; i < points.size(); ++i) {
      ASSERT_TRUE(table.value()->Insert(points[i], i).ok());
    }
    ASSERT_TRUE(db.Close().ok());
  }
  auto db_result = SfcDb::Open(dir);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result.value();
  EXPECT_EQ(db.ListTables(), (std::vector<std::string>{"points"}));
  EXPECT_EQ(db.GetTable("points"), nullptr);  // not opened eagerly
  auto table = db.OpenTable("points");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->size(), points.size());
  EXPECT_EQ(table.value()->curve().name(), "hilbert");
  // OpenTable is idempotent: same handle back.
  EXPECT_EQ(db.OpenTable("points").value(), table.value());
  EXPECT_EQ(db.OpenTable("nope").status().code(), StatusCode::kNotFound);
}

TEST(SfcDbTest, SharedPoolKeepsPerTableIoStatsIsolated) {
  const std::string dir = FreshDir("io_isolation");
  SfcDbOptions db_options;
  db_options.pool_pages = 64;  // one pool for both tables
  auto db_result = SfcDb::Open(dir, db_options);
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result.value();

  const Universe universe(2, 64);
  const auto points = RandomPoints(universe, 4000, 331);
  SfcTableOptions options;
  options.entries_per_page = 32;
  options.memtable_flush_entries = 1000;
  auto hot = db.CreateTable("hot", "hilbert", universe, options);
  auto cold = db.CreateTable("cold", "hilbert", universe, options);
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(cold.ok());
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(hot.value()->Insert(points[i], i).ok());
    ASSERT_TRUE(cold.value()->Insert(points[i], i).ok());
  }
  ASSERT_TRUE(hot.value()->Flush().ok());
  ASSERT_TRUE(cold.value()->Flush().ok());

  hot.value()->ResetStats();
  cold.value()->ResetStats();
  const Box box(Cell(0, 0), Cell(40, 40));
  auto hot_cursor = hot.value()->NewBoxCursor(box);
  const auto results = DrainCursor(hot_cursor.get());
  ASSERT_TRUE(hot_cursor->status().ok());
  EXPECT_FALSE(results.empty());

  // Attribution: the queried table saw I/O, its neighbor saw none, and
  // the pool's physical aggregate covers at least the queried share.
  const IoStats hot_io = hot.value()->io_stats();
  const IoStats cold_io = cold.value()->io_stats();
  EXPECT_GT(hot_io.page_reads + hot_io.cache_hits, 0u);
  EXPECT_GT(hot_io.entries_read, 0u);
  EXPECT_EQ(cold_io.page_reads, 0u);
  EXPECT_EQ(cold_io.cache_hits, 0u);
  EXPECT_EQ(cold_io.entries_read, 0u);
  const IoStats pool = db.pool_stats();
  EXPECT_GE(pool.page_reads, hot_io.page_reads);
}

TEST(SfcDbTest, SharedWorkersServeManyTables) {
  const std::string dir = FreshDir("shared_workers");
  SfcDbOptions db_options;
  db_options.num_workers = 2;
  auto db_result = SfcDb::Open(dir, db_options);
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result.value();

  const Universe universe(2, 64);
  constexpr int kTables = 4;
  constexpr size_t kPerTable = 2000;
  SfcTableOptions options;
  options.memtable_flush_entries = 250;  // many background flushes each
  options.l0_compaction_trigger = 3;     // and background leveling
  std::vector<SfcTable*> tables;
  for (int t = 0; t < kTables; ++t) {
    auto table = db.CreateTable("t" + std::to_string(t), "onion", universe,
                                options);
    ASSERT_TRUE(table.ok());
    tables.push_back(table.value());
  }
  // Concurrent writers, one per table, all feeding the two shared workers.
  std::vector<std::thread> writers;
  for (int t = 0; t < kTables; ++t) {
    writers.emplace_back([&, t] {
      const auto points = RandomPoints(universe, kPerTable, 400 + t);
      for (size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(tables[t]->Insert(points[i], i).ok());
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  for (SfcTable* table : tables) {
    ASSERT_TRUE(table->Flush().ok());
    EXPECT_EQ(table->size(), kPerTable);
    EXPECT_EQ(table->memtable_entries(), 0u);
    EXPECT_GT(table->num_segments(), 0u);
    auto cursor = table->NewScanCursor();
    EXPECT_EQ(DrainCursor(cursor.get()).size(), kPerTable);
  }
  ASSERT_TRUE(db.Close().ok());
}

TEST(SfcDbTest, OrphanTableDirectoriesAreCollectedOnOpen) {
  const std::string dir = FreshDir("orphan_gc");
  {
    auto db = SfcDb::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        db.value()->CreateTable("keep", "onion", Universe(2, 32)).ok());
    ASSERT_TRUE(db.value()->Close().ok());
  }
  // Simulate a crash between catalog rewrite and directory removal: a
  // table directory (with a MANIFEST) the catalog does not name.
  std::filesystem::create_directories(dir + "/ghost");
  std::ofstream(dir + "/ghost/MANIFEST") << "onion-sfc-table 2\n";
  // And a random non-table directory, which must be left alone.
  std::filesystem::create_directories(dir + "/not_a_table");

  auto db = SfcDb::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db.value()->ListTables(), (std::vector<std::string>{"keep"}));
  EXPECT_FALSE(std::filesystem::exists(dir + "/ghost"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/not_a_table"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/keep/MANIFEST"));
}

TEST(SfcDbTest, RejectsBadNamesAndOptions) {
  const Universe universe(2, 32);
  {
    SfcDbOptions bad;
    bad.pool_pages = 0;
    EXPECT_EQ(SfcDb::Open(FreshDir("bad_pool"), bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    SfcDbOptions bad;
    bad.num_workers = 0;
    EXPECT_EQ(SfcDb::Open(FreshDir("bad_workers"), bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  auto db = SfcDb::Open(FreshDir("bad_names"));
  ASSERT_TRUE(db.ok());
  for (const std::string name :
       {"", "has/slash", "has space", "..", "dot.dot", "a\tb"}) {
    auto result = db.value()->CreateTable(name, "onion", universe);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << name;
  }
  // A bad curve or bad per-table options must not catalog anything.
  EXPECT_FALSE(db.value()->CreateTable("t", "no_such_curve", universe).ok());
  SfcTableOptions bad_table;
  bad_table.l0_compaction_trigger = 1;
  EXPECT_EQ(db.value()
                ->CreateTable("t", "onion", universe, bad_table)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(db.value()->ListTables().empty());
  EXPECT_TRUE(db.value()->CreateTable("t", "onion", universe).ok());
}

TEST(SfcDbTest, WriteBatchSpansTablesAtomicallyAndReadsBack) {
  const std::string dir = FreshDir("write_batch");
  auto db_result = SfcDb::Open(dir);
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result.value();
  const Universe universe(2, 32);
  auto heat = db.CreateTable("heat", "hilbert", universe);
  auto trips = db.CreateTable("trips", "onion", universe);
  ASSERT_TRUE(heat.ok());
  ASSERT_TRUE(trips.ok());

  WriteBatch batch;
  batch.Put("heat", Cell(1, 2), 100);
  batch.Put("trips", Cell(3, 4), 200);
  batch.Put("heat", Cell(1, 2), 101);
  batch.Delete("trips", Cell(9, 9));  // deleting an absent cell is fine
  ASSERT_EQ(batch.size(), 4u);
  ASSERT_TRUE(db.Write(std::move(batch)).ok());

  auto heat_got = heat.value()->Get(Cell(1, 2));
  ASSERT_TRUE(heat_got.ok());
  std::sort(heat_got.value().begin(), heat_got.value().end());
  EXPECT_EQ(heat_got.value(), (std::vector<uint64_t>{100, 101}));
  EXPECT_EQ(trips.value()->Get(Cell(3, 4)).value(),
            (std::vector<uint64_t>{200}));
  EXPECT_TRUE(trips.value()->Get(Cell(9, 9)).value().empty());

  // A batch follows the deletes-hide-older rule across its own ops too.
  WriteBatch second;
  second.Delete("heat", Cell(1, 2));
  second.Put("heat", Cell(1, 2), 102);
  ASSERT_TRUE(db.Write(std::move(second)).ok());
  EXPECT_EQ(heat.value()->Get(Cell(1, 2)).value(),
            (std::vector<uint64_t>{102}));

  // Validation errors apply NOTHING: one bad op poisons the whole batch.
  WriteBatch bad;
  bad.Put("heat", Cell(2, 2), 7);
  bad.Put("heat", Cell(32, 0), 8);  // outside the universe
  EXPECT_EQ(db.Write(std::move(bad)).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(heat.value()->Get(Cell(2, 2)).value().empty());
  WriteBatch unknown;
  unknown.Put("no_such_table", Cell(1, 1), 9);
  EXPECT_EQ(db.Write(std::move(unknown)).code(), StatusCode::kNotFound);
  ASSERT_TRUE(db.Close().ok());

  // Everything batch-written survives reopen through the normal WAL path.
  auto reopened = SfcDb::Open(dir);
  ASSERT_TRUE(reopened.ok());
  auto heat2 = reopened.value()->OpenTable("heat");
  ASSERT_TRUE(heat2.ok());
  EXPECT_EQ(heat2.value()->Get(Cell(1, 2)).value(),
            (std::vector<uint64_t>{102}));
}

TEST(SfcDbTest, WriteBatchIsAtomicAcrossHardCrash) {
  // The acceptance bar: a WriteBatch spanning two tables is atomic across
  // a hard _Exit. The child commits batches and dies without any
  // shutdown; the parent then simulates the worst partial state — one
  // table's WAL never received its slice — and recovery must still
  // surface the batch in BOTH tables (the batch journal repairs the
  // missing slice) with nothing duplicated.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Universe universe(2, 32);
  const std::string dir = FreshDir("batch_crash");
  constexpr uint64_t kBatches = 25;
  ASSERT_EXIT(
      {
        auto db = SfcDb::Open(dir);
        if (!db.ok()) std::_Exit(1);
        if (!db.value()->CreateTable("a", "onion", universe).ok() ||
            !db.value()->CreateTable("b", "hilbert", universe).ok()) {
          std::_Exit(2);
        }
        for (uint64_t i = 0; i < kBatches; ++i) {
          WriteBatch batch;
          batch.Put("a", Cell(i % 32, 0), i);
          batch.Put("b", Cell(i % 32, 1), i);
          batch.Put("b", Cell(i % 32, 2), 1000 + i);
          if (!db.value()->Write(std::move(batch)).ok()) std::_Exit(3);
        }
        std::_Exit(0);  // no Close, no flush: WALs + journal only
      },
      ::testing::ExitedWithCode(0), "");

  // Simulate the crash window between the two per-table WAL appends: table
  // "b" never got its records (drop its WAL files wholesale).
  uint64_t removed = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/b")) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal_", 0) == 0) {
      std::filesystem::remove(entry.path());
      ++removed;
    }
  }
  ASSERT_GT(removed, 0u);

  auto db = SfcDb::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto a = db.value()->OpenTable("a");
  auto b = db.value()->OpenTable("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // All-or-nothing, nothing duplicated: every batch is whole in BOTH
  // tables even though table b lost its own copy.
  EXPECT_EQ(a.value()->size(), kBatches);
  EXPECT_EQ(b.value()->size(), 2 * kBatches);
  for (uint64_t i = 0; i < kBatches; ++i) {
    EXPECT_EQ(a.value()->Get(Cell(i % 32, 0)).value(),
              (std::vector<uint64_t>{i}))
        << i;
    EXPECT_EQ(b.value()->Get(Cell(i % 32, 1)).value(),
              (std::vector<uint64_t>{i}))
        << i;
    EXPECT_EQ(b.value()->Get(Cell(i % 32, 2)).value(),
              (std::vector<uint64_t>{1000 + i}))
        << i;
  }
  ASSERT_TRUE(db.value()->Close().ok());
}

TEST(SfcDbTest, TornBatchJournalTailAppliesNothing) {
  // The converse crash window: the journal record itself is torn (crash
  // mid-journal-append, before any table saw the batch). Recovery must
  // apply NOTHING of that batch while keeping every earlier one.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Universe universe(2, 32);
  const std::string dir = FreshDir("torn_journal");
  ASSERT_EXIT(
      {
        auto db = SfcDb::Open(dir);
        if (!db.ok()) std::_Exit(1);
        if (!db.value()->CreateTable("a", "onion", universe).ok() ||
            !db.value()->CreateTable("b", "onion", universe).ok()) {
          std::_Exit(2);
        }
        WriteBatch committed;
        committed.Put("a", Cell(1, 1), 1);
        committed.Put("b", Cell(1, 1), 1);
        if (!db.value()->Write(std::move(committed)).ok()) std::_Exit(3);
        WriteBatch torn;
        torn.Put("a", Cell(2, 2), 2);
        torn.Put("b", Cell(2, 2), 2);
        if (!db.value()->Write(std::move(torn)).ok()) std::_Exit(4);
        std::_Exit(0);
      },
      ::testing::ExitedWithCode(0), "");

  // Tear the second journal record AND drop both tables' WALs: the
  // surviving on-disk state is "journal committed batch 1, batch 2 torn,
  // no table saw anything" — exactly a crash mid-second-commit.
  const uintmax_t journal_size =
      std::filesystem::file_size(dir + "/BATCHLOG");
  std::filesystem::resize_file(dir + "/BATCHLOG", journal_size - 5);
  for (const std::string table : {"a", "b"}) {
    for (const auto& entry :
         std::filesystem::directory_iterator(dir + "/" + table)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("wal_", 0) == 0) std::filesystem::remove(entry.path());
    }
  }

  auto db = SfcDb::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (const std::string table : {"a", "b"}) {
    auto handle = db.value()->OpenTable(table);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(handle.value()->Get(Cell(1, 1)).value(),
              (std::vector<uint64_t>{1}))
        << table;  // the whole first batch survived (via the journal)
    EXPECT_TRUE(handle.value()->Get(Cell(2, 2)).value().empty())
        << table;  // the torn batch applied nowhere
  }
  ASSERT_TRUE(db.value()->Close().ok());
}

TEST(SfcDbTest, DbSnapshotIsConsistentAcrossTables) {
  auto db_result = SfcDb::Open(FreshDir("db_snapshot"));
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result.value();
  const Universe universe(2, 32);
  auto left = db.CreateTable("left", "hilbert", universe);
  auto right = db.CreateTable("right", "zorder", universe);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());

  WriteBatch first;
  first.Put("left", Cell(1, 1), 1);
  first.Put("right", Cell(1, 1), 1);
  ASSERT_TRUE(db.Write(std::move(first)).ok());

  auto pinned_result = db.GetSnapshot();
  ASSERT_TRUE(pinned_result.ok());
  // Move the pin out of the Result: every copy must be released before
  // Close() (a pin must not outlive the tables it pins).
  auto pinned = std::move(pinned_result).value();

  WriteBatch second;
  second.Put("left", Cell(2, 2), 2);
  second.Put("right", Cell(2, 2), 2);
  second.Delete("left", Cell(1, 1));
  ASSERT_TRUE(db.Write(std::move(second)).ok());
  ASSERT_TRUE(left.value()->Flush().ok());
  ASSERT_TRUE(left.value()->Compact().ok());

  // The pinned view agrees on the batch boundary for every table: batch 1
  // visible everywhere, batch 2 (including its delete) nowhere — even
  // after a flush+compaction rewrote one table's files.
  ReadOptions left_pin;
  left_pin.snapshot = pinned->ForTable(left.value());
  ReadOptions right_pin;
  right_pin.snapshot = pinned->ForTable(right.value());
  ASSERT_NE(left_pin.snapshot, nullptr);
  ASSERT_NE(right_pin.snapshot, nullptr);
  EXPECT_EQ(left.value()->Get(Cell(1, 1), left_pin).value(),
            (std::vector<uint64_t>{1}));
  EXPECT_TRUE(left.value()->Get(Cell(2, 2), left_pin).value().empty());
  EXPECT_EQ(right.value()->Get(Cell(1, 1), right_pin).value(),
            (std::vector<uint64_t>{1}));
  EXPECT_TRUE(right.value()->Get(Cell(2, 2), right_pin).value().empty());
  // Latest reads see batch 2 everywhere.
  EXPECT_TRUE(left.value()->Get(Cell(1, 1)).value().empty());
  EXPECT_EQ(left.value()->Get(Cell(2, 2)).value(),
            (std::vector<uint64_t>{2}));
  EXPECT_EQ(right.value()->Get(Cell(2, 2)).value(),
            (std::vector<uint64_t>{2}));

  pinned.reset();  // release the pins before the tables shut down
  ASSERT_TRUE(db.Close().ok());
}

TEST(SfcDbTest, MetricsPopulateAndStayMonotonicAcrossWorkload) {
  // The observability acceptance bar: after a write/flush/compact/read
  // workload on a wal_fsync table, every headline histogram (WAL append
  // AND fsync, flush, compaction, cursor steps) has non-zero counts, the
  // event counters only ever grow, and both DumpMetrics formats carry the
  // numbers.
  auto db_result = SfcDb::Open(FreshDir("metrics"));
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result.value();
  const Universe universe(2, 64);
  SfcTableOptions options;
  options.memtable_flush_entries = 500;
  options.wal_fsync = true;  // the fsync histogram must see real syncs
  auto table_result = db.CreateTable("obs", "hilbert", universe, options);
  ASSERT_TRUE(table_result.ok());
  auto& table = *table_result.value();

  const auto points = RandomPoints(universe, 2000, 997);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(table.Insert(points[i], i).ok());
  }
  ASSERT_TRUE(table.Flush().ok());
  const uint64_t flushes_after_flush =
      table.metrics().counter("flush.count")->value();
  EXPECT_GT(flushes_after_flush, 0u);
  ASSERT_TRUE(table.Compact().ok());
  // Monotonic: compaction added work, flush count never went backwards.
  EXPECT_GE(table.metrics().counter("flush.count")->value(),
            flushes_after_flush);
  EXPECT_GT(table.metrics().counter("compaction.count")->value(), 0u);
  EXPECT_GT(table.metrics().counter("compaction.bytes_rewritten")->value(),
            0u);
  auto cursor = table.NewBoxCursor(Box(Cell(0, 0), Cell(63, 63)));
  EXPECT_EQ(DrainCursor(cursor.get()).size(), points.size());

  // Every headline histogram recorded real events.
  for (const char* name : {"wal.append_us", "wal.fsync_us", "flush.us",
                           "compaction.us", "cursor.next_us",
                           "memtable.insert_us", "write.commit_us"}) {
    EXPECT_GT(table.metrics().histogram(name)->count(), 0u) << name;
  }

  // A cross-table batch reaches the db-level commit histogram.
  WriteBatch batch;
  batch.Put("obs", Cell(1, 1), 42);
  ASSERT_TRUE(db.Write(std::move(batch)).ok());
  EXPECT_GT(db.metrics().histogram("db.batch_commit_us")->count(), 0u);

  // Both export formats carry the histograms (the JSON shape is validated
  // structurally in obs_test.cc; here we pin the engine wiring).
  const std::string json = db.DumpMetrics();
  for (const char* key : {"\"wal.fsync_us\"", "\"flush.us\"",
                          "\"compaction.us\"", "\"cursor.next_us\"",
                          "\"db.batch_commit_us\"", "\"pool\"",
                          "\"hit_ratio\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  const std::string prom = db.DumpMetrics(obs::MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("onion_wal_fsync_us_count{table=\"obs\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("onion_db_batch_commit_us_count"), std::string::npos);
  // The trace ring saw the flush and the compaction.
  const std::string trace = db.DumpTrace();
  EXPECT_NE(trace.find("\"kind\":\"flush\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\":\"compaction\""), std::string::npos);

  ASSERT_TRUE(db.Close().ok());
}

TEST(SfcDbTest, CloseIsIdempotentAndFinal) {
  auto db = SfcDb::Open(FreshDir("close"));
  ASSERT_TRUE(db.ok());
  const Universe universe(2, 32);
  auto table = db.value()->CreateTable("t", "onion", universe);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table.value()->Insert(Cell(1, 2), 3).ok());
  ASSERT_TRUE(db.value()->Close().ok());
  ASSERT_TRUE(db.value()->Close().ok());  // idempotent
  EXPECT_EQ(db.value()->CreateTable("u", "onion", universe).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.value()->OpenTable("t").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.value()->DropTable("t").code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace onion::storage
