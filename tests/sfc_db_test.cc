// SfcDb catalog tests: create/open/drop/list lifecycle, catalog
// persistence across reopen, shared-pool I/O attribution staying
// per-table, the shared worker pool flushing many tables, orphan GC, and
// option/name validation.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/sfc_db.h"
#include "workloads/generators.h"

namespace onion::storage {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sfc_db_test/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(SfcDbTest, CreateListGetDropLifecycle) {
  const std::string dir = FreshDir("lifecycle");
  auto db_result = SfcDb::Open(dir);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result.value();
  EXPECT_TRUE(db.ListTables().empty());

  const Universe universe(2, 32);
  auto beta = db.CreateTable("beta", "hilbert", universe);
  auto alpha = db.CreateTable("alpha", "onion", universe);
  ASSERT_TRUE(beta.ok()) << beta.status().ToString();
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(db.ListTables(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(db.GetTable("alpha"), alpha.value());
  EXPECT_EQ(db.GetTable("beta"), beta.value());
  EXPECT_EQ(db.GetTable("gamma"), nullptr);
  EXPECT_EQ(alpha.value()->curve().name(), "onion");

  // Same name twice is refused; the original handle stays valid.
  auto dup = db.CreateTable("alpha", "zorder", universe);
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(db.DropTable("alpha").ok());
  EXPECT_EQ(db.ListTables(), (std::vector<std::string>{"beta"}));
  EXPECT_EQ(db.GetTable("alpha"), nullptr);
  EXPECT_FALSE(std::filesystem::exists(dir + "/alpha"));
  EXPECT_EQ(db.DropTable("alpha").code(), StatusCode::kNotFound);
  // The name is reusable after a drop.
  EXPECT_TRUE(db.CreateTable("alpha", "zorder", universe).ok());
}

TEST(SfcDbTest, CatalogSurvivesReopen) {
  const std::string dir = FreshDir("reopen");
  const Universe universe(2, 64);
  const auto points = RandomPoints(universe, 2000, 311);
  {
    auto db_result = SfcDb::Open(dir);
    ASSERT_TRUE(db_result.ok());
    auto& db = *db_result.value();
    SfcTableOptions options;
    options.memtable_flush_entries = 300;
    auto table = db.CreateTable("points", "hilbert", universe, options);
    ASSERT_TRUE(table.ok());
    for (size_t i = 0; i < points.size(); ++i) {
      ASSERT_TRUE(table.value()->Insert(points[i], i).ok());
    }
    ASSERT_TRUE(db.Close().ok());
  }
  auto db_result = SfcDb::Open(dir);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result.value();
  EXPECT_EQ(db.ListTables(), (std::vector<std::string>{"points"}));
  EXPECT_EQ(db.GetTable("points"), nullptr);  // not opened eagerly
  auto table = db.OpenTable("points");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->size(), points.size());
  EXPECT_EQ(table.value()->curve().name(), "hilbert");
  // OpenTable is idempotent: same handle back.
  EXPECT_EQ(db.OpenTable("points").value(), table.value());
  EXPECT_EQ(db.OpenTable("nope").status().code(), StatusCode::kNotFound);
}

TEST(SfcDbTest, SharedPoolKeepsPerTableIoStatsIsolated) {
  const std::string dir = FreshDir("io_isolation");
  SfcDbOptions db_options;
  db_options.pool_pages = 64;  // one pool for both tables
  auto db_result = SfcDb::Open(dir, db_options);
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result.value();

  const Universe universe(2, 64);
  const auto points = RandomPoints(universe, 4000, 331);
  SfcTableOptions options;
  options.entries_per_page = 32;
  options.memtable_flush_entries = 1000;
  auto hot = db.CreateTable("hot", "hilbert", universe, options);
  auto cold = db.CreateTable("cold", "hilbert", universe, options);
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(cold.ok());
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(hot.value()->Insert(points[i], i).ok());
    ASSERT_TRUE(cold.value()->Insert(points[i], i).ok());
  }
  ASSERT_TRUE(hot.value()->Flush().ok());
  ASSERT_TRUE(cold.value()->Flush().ok());

  hot.value()->ResetStats();
  cold.value()->ResetStats();
  const Box box(Cell(0, 0), Cell(40, 40));
  const auto results = hot.value()->Query(box);
  EXPECT_FALSE(results.empty());

  // Attribution: the queried table saw I/O, its neighbor saw none, and
  // the pool's physical aggregate covers at least the queried share.
  const IoStats hot_io = hot.value()->io_stats();
  const IoStats cold_io = cold.value()->io_stats();
  EXPECT_GT(hot_io.page_reads + hot_io.cache_hits, 0u);
  EXPECT_GT(hot_io.entries_read, 0u);
  EXPECT_EQ(cold_io.page_reads, 0u);
  EXPECT_EQ(cold_io.cache_hits, 0u);
  EXPECT_EQ(cold_io.entries_read, 0u);
  const IoStats pool = db.pool_stats();
  EXPECT_GE(pool.page_reads, hot_io.page_reads);
}

TEST(SfcDbTest, SharedWorkersServeManyTables) {
  const std::string dir = FreshDir("shared_workers");
  SfcDbOptions db_options;
  db_options.num_workers = 2;
  auto db_result = SfcDb::Open(dir, db_options);
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result.value();

  const Universe universe(2, 64);
  constexpr int kTables = 4;
  constexpr size_t kPerTable = 2000;
  SfcTableOptions options;
  options.memtable_flush_entries = 250;  // many background flushes each
  options.l0_compaction_trigger = 3;     // and background leveling
  std::vector<SfcTable*> tables;
  for (int t = 0; t < kTables; ++t) {
    auto table = db.CreateTable("t" + std::to_string(t), "onion", universe,
                                options);
    ASSERT_TRUE(table.ok());
    tables.push_back(table.value());
  }
  // Concurrent writers, one per table, all feeding the two shared workers.
  std::vector<std::thread> writers;
  for (int t = 0; t < kTables; ++t) {
    writers.emplace_back([&, t] {
      const auto points = RandomPoints(universe, kPerTable, 400 + t);
      for (size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(tables[t]->Insert(points[i], i).ok());
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  for (SfcTable* table : tables) {
    ASSERT_TRUE(table->Flush().ok());
    EXPECT_EQ(table->size(), kPerTable);
    EXPECT_EQ(table->memtable_entries(), 0u);
    EXPECT_GT(table->num_segments(), 0u);
    auto cursor = table->NewScanCursor();
    EXPECT_EQ(DrainCursor(cursor.get()).size(), kPerTable);
  }
  ASSERT_TRUE(db.Close().ok());
}

TEST(SfcDbTest, OrphanTableDirectoriesAreCollectedOnOpen) {
  const std::string dir = FreshDir("orphan_gc");
  {
    auto db = SfcDb::Open(dir);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        db.value()->CreateTable("keep", "onion", Universe(2, 32)).ok());
    ASSERT_TRUE(db.value()->Close().ok());
  }
  // Simulate a crash between catalog rewrite and directory removal: a
  // table directory (with a MANIFEST) the catalog does not name.
  std::filesystem::create_directories(dir + "/ghost");
  std::ofstream(dir + "/ghost/MANIFEST") << "onion-sfc-table 2\n";
  // And a random non-table directory, which must be left alone.
  std::filesystem::create_directories(dir + "/not_a_table");

  auto db = SfcDb::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db.value()->ListTables(), (std::vector<std::string>{"keep"}));
  EXPECT_FALSE(std::filesystem::exists(dir + "/ghost"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/not_a_table"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/keep/MANIFEST"));
}

TEST(SfcDbTest, RejectsBadNamesAndOptions) {
  const Universe universe(2, 32);
  {
    SfcDbOptions bad;
    bad.pool_pages = 0;
    EXPECT_EQ(SfcDb::Open(FreshDir("bad_pool"), bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    SfcDbOptions bad;
    bad.num_workers = 0;
    EXPECT_EQ(SfcDb::Open(FreshDir("bad_workers"), bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  auto db = SfcDb::Open(FreshDir("bad_names"));
  ASSERT_TRUE(db.ok());
  for (const std::string name :
       {"", "has/slash", "has space", "..", "dot.dot", "a\tb"}) {
    auto result = db.value()->CreateTable(name, "onion", universe);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << name;
  }
  // A bad curve or bad per-table options must not catalog anything.
  EXPECT_FALSE(db.value()->CreateTable("t", "no_such_curve", universe).ok());
  SfcTableOptions bad_table;
  bad_table.l0_compaction_trigger = 1;
  EXPECT_EQ(db.value()
                ->CreateTable("t", "onion", universe, bad_table)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(db.value()->ListTables().empty());
  EXPECT_TRUE(db.value()->CreateTable("t", "onion", universe).ok());
}

TEST(SfcDbTest, CloseIsIdempotentAndFinal) {
  auto db = SfcDb::Open(FreshDir("close"));
  ASSERT_TRUE(db.ok());
  const Universe universe(2, 32);
  auto table = db.value()->CreateTable("t", "onion", universe);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table.value()->Insert(Cell(1, 2), 3).ok());
  ASSERT_TRUE(db.value()->Close().ok());
  ASSERT_TRUE(db.value()->Close().ok());  // idempotent
  EXPECT_EQ(db.value()->CreateTable("u", "onion", universe).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.value()->OpenTable("t").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.value()->DropTable("t").code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace onion::storage
