// Tests for the sharded, arena-backed memtable: scan/flush equivalence
// with a single-vector reference, per-key sequence-order preservation
// through FlushTo, and — the reason the file exists — concurrent inserts
// and scans exercising the per-shard locking under TSan.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/memtable.h"
#include "storage/segment.h"

namespace onion::storage {
namespace {

TEST(MemTableShardTest, ScanMatchesReferenceAcrossShardBoundaries) {
  Rng rng(7);
  constexpr Key kSpan = 4096;  // shard width 512
  MemTable table(kSpan);
  std::vector<Entry> reference;
  for (uint64_t i = 0; i < 3000; ++i) {
    const Key key = rng.UniformInclusive(kSpan - 1);
    table.Insert(key, i, PackSeq(i + 1, false));
    reference.push_back({key, i, PackSeq(i + 1, false)});
  }
  EXPECT_EQ(table.size(), 3000u);
  EXPECT_EQ(table.max_sequence(), 3000u);
  for (int trial = 0; trial < 60; ++trial) {
    const Key lo = rng.UniformInclusive(kSpan - 1);
    const Key hi = lo + rng.UniformInclusive(700);
    std::vector<Entry> expected;
    for (const Entry& entry : reference) {
      if (entry.key >= lo && entry.key <= hi) expected.push_back(entry);
    }
    std::vector<Entry> actual;
    table.ScanRange(lo, hi, [&](const Entry& entry) {
      actual.push_back(entry);
    });
    // ScanRange promises key-range order across shards and insertion
    // order within one; normalize both sides the same way to compare.
    auto by_key_then_seq = [](const Entry& a, const Entry& b) {
      return a.key != b.key ? a.key < b.key : a.seq < b.seq;
    };
    std::stable_sort(expected.begin(), expected.end(), by_key_then_seq);
    std::stable_sort(actual.begin(), actual.end(), by_key_then_seq);
    ASSERT_EQ(actual, expected) << "[" << lo << ", " << hi << "]";
  }
}

TEST(MemTableShardTest, KeysAtOrPastSpanLandInTheLastShard) {
  MemTable table(/*key_span=*/100);
  table.Insert(99, 1, PackSeq(1, false));
  table.Insert(100, 2, PackSeq(2, false));   // at span
  table.Insert(~Key{0}, 3, PackSeq(3, false));  // far past span
  size_t seen = 0;
  table.ScanRange(0, ~Key{0}, [&](const Entry&) { ++seen; });
  EXPECT_EQ(seen, 3u);
  MemTable whole;  // span 0: the full 64-bit key space
  whole.Insert(~Key{0}, 1, PackSeq(1, false));
  whole.Insert(0, 2, PackSeq(2, false));
  seen = 0;
  whole.ScanRange(~Key{0}, ~Key{0}, [&](const Entry&) { ++seen; });
  EXPECT_EQ(seen, 1u);
}

TEST(MemTableShardTest, FlushKeepsPerKeySequenceOrder) {
  MemTable table(/*key_span=*/256);
  // Same-key updates across several shards, interleaved with other keys.
  uint64_t seq = 0;
  for (int round = 0; round < 5; ++round) {
    for (Key key : {Key{3}, Key{200}, Key{3}, Key{77}, Key{255}}) {
      ++seq;
      table.Insert(key, seq * 10, PackSeq(seq, round % 2 == 1));
    }
  }
  const std::string path = ::testing::TempDir() + "/memtable_flush.sfc";
  std::remove(path.c_str());
  SegmentWriter writer(path, 4);
  ASSERT_TRUE(table.FlushTo(&writer).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto opened = SegmentReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto reader = std::move(opened).value();
  std::vector<Entry> flushed;
  for (uint64_t page = 0; page < reader->num_pages(); ++page) {
    std::vector<Entry> entries;
    ASSERT_TRUE(reader->ReadPage(page, &entries).ok());
    flushed.insert(flushed.end(), entries.begin(), entries.end());
  }
  ASSERT_EQ(flushed.size(), table.size());
  for (size_t i = 1; i < flushed.size(); ++i) {
    ASSERT_LE(flushed[i - 1].key, flushed[i].key);
    if (flushed[i - 1].key == flushed[i].key) {
      // Same key: sequence order must survive the flush sort.
      ASSERT_LT(SequenceOf(flushed[i - 1].seq), SequenceOf(flushed[i].seq));
    }
  }
}

TEST(MemTableShardTest, ContainsSequenceSearchesEveryShard) {
  MemTable table(/*key_span=*/800);
  for (uint64_t i = 0; i < 64; ++i) {
    table.Insert(i * 12, i, PackSeq(100 + i, false));
  }
  EXPECT_TRUE(table.ContainsSequence(100));
  EXPECT_TRUE(table.ContainsSequence(163));
  EXPECT_FALSE(table.ContainsSequence(99));
  EXPECT_FALSE(table.ContainsSequence(164));
}

TEST(MemTableShardTest, MoveTransfersEntriesAndEmptiesSource) {
  MemTable table(/*key_span=*/64);
  for (uint64_t i = 0; i < 10; ++i) table.Insert(i, i, PackSeq(i + 1, false));
  MemTable moved = std::move(table);
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_EQ(moved.max_sequence(), 10u);
  table = MemTable(/*key_span=*/64);
  EXPECT_TRUE(table.empty());
  size_t seen = 0;
  moved.ScanRange(0, 63, [&](const Entry&) { ++seen; });
  EXPECT_EQ(seen, 10u);
}

// The concurrency contract: inserts from many threads, scans racing them.
// Run under TSan (the storage sanitizer CI jobs include this binary) this
// proves the per-shard locking, the atomic counters, and the arena's
// no-relocation guarantee together.
TEST(MemTableShardTest, ConcurrentInsertsAndScansAreSafe) {
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 2000;
  constexpr Key kSpan = 1 << 14;
  MemTable table(kSpan);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&table, w] {
      Rng rng(1000 + w);
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const uint64_t seq = w * kPerWriter + i + 1;
        table.Insert(rng.UniformInclusive(kSpan - 1), seq,
                     PackSeq(seq, false));
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&table, &stop, r] {
      Rng rng(2000 + r);
      while (!stop.load(std::memory_order_acquire)) {
        const Key lo = rng.UniformInclusive(kSpan - 1);
        const Key hi = lo + rng.UniformInclusive(kSpan / 4);
        uint64_t last_size = table.size();
        uint64_t seen = 0;
        table.ScanRange(lo, hi, [&](const Entry& entry) {
          ++seen;
          // Entries are fully written before becoming visible.
          ASSERT_EQ(entry.payload, SequenceOf(entry.seq));
        });
        ASSERT_LE(seen, table.size());
        ASSERT_GE(table.size(), last_size);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(table.size(), kWriters * kPerWriter);
  EXPECT_EQ(table.max_sequence(), kWriters * kPerWriter);
  uint64_t total = 0;
  table.ScanRange(0, ~Key{0}, [&](const Entry&) { ++total; });
  EXPECT_EQ(total, kWriters * kPerWriter);
}

}  // namespace
}  // namespace onion::storage
