// Tests for the on-disk segment format: write -> reopen round trips
// (including empty and single-page segments), fence-index correctness,
// header validation of corrupted files, and agreement with the in-memory
// page source on identical data.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/mem_source.h"
#include "storage/segment.h"

namespace onion::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::unique_ptr<SegmentReader> WriteAndOpen(const std::string& name,
                                            const std::vector<Entry>& entries,
                                            uint32_t entries_per_page) {
  const std::string path = TempPath(name);
  std::remove(path.c_str());
  SegmentWriter writer(path, entries_per_page);
  for (const Entry& entry : entries) {
    EXPECT_TRUE(writer.Add(entry.key, entry.payload).ok());
  }
  EXPECT_TRUE(writer.Finish().ok());
  auto reader = SegmentReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return std::move(reader).value();
}

std::vector<Entry> ReadAll(const SegmentReader& reader) {
  std::vector<Entry> all;
  std::vector<Entry> page;
  for (uint64_t p = 0; p < reader.num_pages(); ++p) {
    reader.ReadPage(p, &page);
    all.insert(all.end(), page.begin(), page.end());
  }
  return all;
}

TEST(SegmentTest, RoundTripMultiPage) {
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 1000; ++i) entries.push_back({i * 3, i});
  auto reader = WriteAndOpen("seg_multi.sfc", entries, 16);
  EXPECT_EQ(reader->num_entries(), 1000u);
  EXPECT_EQ(reader->num_pages(), (1000u + 15) / 16);
  EXPECT_EQ(reader->min_key(), 0u);
  EXPECT_EQ(reader->max_key(), 999u * 3);
  EXPECT_EQ(ReadAll(*reader), entries);
}

TEST(SegmentTest, RoundTripEmpty) {
  auto reader = WriteAndOpen("seg_empty.sfc", {}, 8);
  EXPECT_EQ(reader->num_entries(), 0u);
  EXPECT_EQ(reader->num_pages(), 0u);
  EXPECT_EQ(reader->PageOf(0), 0u);
}

TEST(SegmentTest, RoundTripSinglePartialPage) {
  const std::vector<Entry> entries = {{7, 100}, {9, 200}, {9, 201}};
  auto reader = WriteAndOpen("seg_single.sfc", entries, 8);
  EXPECT_EQ(reader->num_entries(), 3u);
  EXPECT_EQ(reader->num_pages(), 1u);
  EXPECT_EQ(reader->first_key(0), 7u);
  EXPECT_EQ(reader->last_key(0), 9u);
  EXPECT_EQ(ReadAll(*reader), entries);
}

TEST(SegmentTest, FencesMatchPageContents) {
  Rng rng(7);
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 500; ++i) {
    entries.push_back({rng.UniformInclusive(10000), i});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  auto reader = WriteAndOpen("seg_fence.sfc", entries, 7);
  std::vector<Entry> page;
  for (uint64_t p = 0; p < reader->num_pages(); ++p) {
    reader->ReadPage(p, &page);
    EXPECT_EQ(reader->first_key(p), page.front().key);
    EXPECT_EQ(reader->last_key(p), page.back().key);
  }
}

TEST(SegmentTest, PageOfAgreesWithMemSource) {
  Rng rng(11);
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 300; ++i) {
    entries.push_back({rng.UniformInclusive(999), i});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  auto reader = WriteAndOpen("seg_pageof.sfc", entries, 9);
  const MemPageSource mem(entries, 9);
  for (Key key = 0; key <= 1005; ++key) {
    ASSERT_EQ(reader->PageOf(key), mem.PageOf(key)) << "key " << key;
  }
}

TEST(SegmentTest, OpenRejectsMissingFile) {
  auto result = SegmentReader::Open(TempPath("does_not_exist.sfc"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SegmentTest, OpenRejectsBadMagic) {
  const std::string path = TempPath("seg_badmagic.sfc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[128] = "this is not a segment file at all, sorry";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  auto result = SegmentReader::Open(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SegmentTest, OpenRejectsCorruptedHeader) {
  const std::vector<Entry> entries = {{1, 1}, {2, 2}, {3, 3}};
  auto reader = WriteAndOpen("seg_corrupt.sfc", entries, 2);
  reader.reset();
  // Flip a byte inside the entry-count field.
  const std::string path = TempPath("seg_corrupt.sfc");
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 16, SEEK_SET);
  const uint8_t bogus = 0xff;
  std::fwrite(&bogus, 1, 1, f);
  std::fclose(f);
  auto result = SegmentReader::Open(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SegmentTest, AbandonedWriterLeavesNoFile) {
  const std::string path = TempPath("seg_abandoned.sfc");
  {
    SegmentWriter writer(path, 4);
    EXPECT_TRUE(writer.Add(1, 1).ok());
    // No Finish().
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

}  // namespace
}  // namespace onion::storage
