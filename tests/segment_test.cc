// Tests for the on-disk segment format: write -> reopen round trips
// (including empty and single-page segments), fence-index correctness,
// header validation of corrupted files, agreement with the in-memory page
// source on identical data, and — for format version 2 — codec round
// trips, bloom-filter probes, zone-map pruning, and backward compat with
// handcrafted format-v1 files.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sfc/registry.h"
#include "storage/codec.h"
#include "storage/mem_source.h"
#include "storage/segment.h"
#include "v1_segment_fixture.h"

namespace onion::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::unique_ptr<SegmentReader> WriteAndOpen(const std::string& name,
                                            const std::vector<Entry>& entries,
                                            uint32_t entries_per_page) {
  const std::string path = TempPath(name);
  std::remove(path.c_str());
  SegmentWriter writer(path, entries_per_page);
  for (const Entry& entry : entries) {
    EXPECT_TRUE(writer.Add(entry.key, entry.payload, entry.seq).ok());
  }
  EXPECT_TRUE(writer.Finish().ok());
  auto reader = SegmentReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return std::move(reader).value();
}

std::vector<Entry> ReadAll(const SegmentReader& reader) {
  std::vector<Entry> all;
  std::vector<Entry> page;
  for (uint64_t p = 0; p < reader.num_pages(); ++p) {
    const Status status = reader.ReadPage(p, &page);
    EXPECT_TRUE(status.ok()) << status.ToString();
    all.insert(all.end(), page.begin(), page.end());
  }
  return all;
}

TEST(SegmentTest, RoundTripMultiPage) {
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 1000; ++i) entries.push_back({i * 3, i});
  auto reader = WriteAndOpen("seg_multi.sfc", entries, 16);
  EXPECT_EQ(reader->num_entries(), 1000u);
  EXPECT_EQ(reader->num_pages(), (1000u + 15) / 16);
  EXPECT_EQ(reader->min_key(), 0u);
  EXPECT_EQ(reader->max_key(), 999u * 3);
  EXPECT_EQ(ReadAll(*reader), entries);
}

TEST(SegmentTest, RoundTripEmpty) {
  auto reader = WriteAndOpen("seg_empty.sfc", {}, 8);
  EXPECT_EQ(reader->num_entries(), 0u);
  EXPECT_EQ(reader->num_pages(), 0u);
  EXPECT_EQ(reader->PageOf(0), 0u);
}

TEST(SegmentTest, RoundTripSinglePartialPage) {
  const std::vector<Entry> entries = {{7, 100}, {9, 200}, {9, 201}};
  auto reader = WriteAndOpen("seg_single.sfc", entries, 8);
  EXPECT_EQ(reader->num_entries(), 3u);
  EXPECT_EQ(reader->num_pages(), 1u);
  EXPECT_EQ(reader->first_key(0), 7u);
  EXPECT_EQ(reader->last_key(0), 9u);
  EXPECT_EQ(ReadAll(*reader), entries);
}

TEST(SegmentTest, FencesMatchPageContents) {
  Rng rng(7);
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 500; ++i) {
    entries.push_back({rng.UniformInclusive(10000), i});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  auto reader = WriteAndOpen("seg_fence.sfc", entries, 7);
  std::vector<Entry> page;
  for (uint64_t p = 0; p < reader->num_pages(); ++p) {
    ASSERT_TRUE(reader->ReadPage(p, &page).ok());
    EXPECT_EQ(reader->first_key(p), page.front().key);
    EXPECT_EQ(reader->last_key(p), page.back().key);
  }
}

TEST(SegmentTest, PageOfAgreesWithMemSource) {
  Rng rng(11);
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 300; ++i) {
    entries.push_back({rng.UniformInclusive(999), i});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  auto reader = WriteAndOpen("seg_pageof.sfc", entries, 9);
  const MemPageSource mem(entries, 9);
  for (Key key = 0; key <= 1005; ++key) {
    ASSERT_EQ(reader->PageOf(key), mem.PageOf(key)) << "key " << key;
  }
}

TEST(SegmentTest, OpenRejectsMissingFile) {
  auto result = SegmentReader::Open(TempPath("does_not_exist.sfc"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SegmentTest, OpenRejectsBadMagic) {
  const std::string path = TempPath("seg_badmagic.sfc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[128] = "this is not a segment file at all, sorry";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  auto result = SegmentReader::Open(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SegmentTest, OpenRejectsCorruptedHeader) {
  const std::vector<Entry> entries = {{1, 1}, {2, 2}, {3, 3}};
  auto reader = WriteAndOpen("seg_corrupt.sfc", entries, 2);
  reader.reset();
  // Flip a byte inside the entry-count field.
  const std::string path = TempPath("seg_corrupt.sfc");
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 16, SEEK_SET);
  const uint8_t bogus = 0xff;
  std::fwrite(&bogus, 1, 1, f);
  std::fclose(f);
  auto result = SegmentReader::Open(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SegmentTest, AbandonedWriterLeavesNoFile) {
  const std::string path = TempPath("seg_abandoned.sfc");
  {
    SegmentWriter writer(path, 4);
    EXPECT_TRUE(writer.Add(1, 1).ok());
    // No Finish().
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

TEST(SegmentTest, DeltaVarintSegmentRoundTripsAndShrinks) {
  Rng rng(13);
  std::vector<Entry> entries;
  Key key = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    key += rng.UniformInclusive(5);  // dense, with duplicates
    entries.push_back({key, i});
  }
  const std::string raw_path = TempPath("seg_codec_raw.sfc");
  const std::string delta_path = TempPath("seg_codec_delta.sfc");
  for (const auto& [path, codec] :
       {std::pair<std::string, PageCodec>{raw_path, PageCodec::kRaw},
        {delta_path, PageCodec::kDeltaVarint}}) {
    std::remove(path.c_str());
    SegmentWriterOptions options;
    options.entries_per_page = 64;
    options.codec = codec;
    SegmentWriter writer(path, options);
    for (const Entry& entry : entries) {
      ASSERT_TRUE(writer.Add(entry.key, entry.payload).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto raw = SegmentReader::Open(raw_path);
  auto delta = SegmentReader::Open(delta_path);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(raw.value()->format_version(), 3u);
  EXPECT_EQ(delta.value()->codec(), PageCodec::kDeltaVarint);
  // Byte-identical decoded entries, strictly fewer bytes on disk.
  EXPECT_EQ(ReadAll(*raw.value()), entries);
  EXPECT_EQ(ReadAll(*delta.value()), entries);
  EXPECT_LT(delta.value()->file_bytes(), raw.value()->file_bytes());
  for (uint64_t p = 0; p < delta.value()->num_pages(); ++p) {
    EXPECT_LT(delta.value()->PageDiskBytes(p),
              raw.value()->PageDiskBytes(p));
  }
}

TEST(SegmentTest, BloomFilterProbesHaveNoFalseNegatives) {
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 1000; ++i) entries.push_back({i * 7, i});
  auto reader = WriteAndOpen("seg_bloom.sfc", entries, 32);
  EXPECT_GT(reader->filter_bytes(), 0u);
  uint64_t negatives = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(reader->MayContainKey(i * 7));  // present: never negative
    if (!reader->MayContainKey(i * 7 + 3)) ++negatives;  // absent
  }
  // ~1% FPR at 10 bits/key: the overwhelming majority of absent probes
  // must be filtered out.
  EXPECT_GT(negatives, 900u);
}

TEST(SegmentTest, FilterDisabledWritesNoBloomBlock) {
  const std::string path = TempPath("seg_nofilter.sfc");
  std::remove(path.c_str());
  SegmentWriterOptions options;
  options.entries_per_page = 8;
  options.filter_bits_per_key = 0;
  SegmentWriter writer(path, options);
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(writer.Add(i, i).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value()->filter_bytes(), 0u);
  EXPECT_TRUE(reader.value()->MayContainKey(9999));  // no filter: maybe
}

TEST(SegmentTest, ZoneMapsPruneDisjointBoxes) {
  // Zone maps need a curve to map keys back to cells; brute-force check
  // PageMayIntersect against the actual page contents for random boxes.
  const Universe universe(2, 32);
  auto curve = MakeCurve("hilbert", universe).value();
  std::vector<Entry> entries;
  for (Key key = 0; key < universe.num_cells(); key += 3) {
    entries.push_back({key, key});
  }
  const std::string path = TempPath("seg_zones.sfc");
  std::remove(path.c_str());
  SegmentWriterOptions options;
  options.entries_per_page = 16;
  options.curve = curve.get();
  SegmentWriter writer(path, options);
  for (const Entry& entry : entries) {
    ASSERT_TRUE(writer.Add(entry.key, entry.payload).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  auto opened = SegmentReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto& reader = *opened.value();

  Rng rng(77);
  uint64_t pruned = 0;
  std::vector<Entry> page;
  for (int round = 0; round < 200; ++round) {
    const auto x = static_cast<Coord>(rng.UniformInclusive(31));
    const auto y = static_cast<Coord>(rng.UniformInclusive(31));
    const auto w = static_cast<Coord>(rng.UniformInclusive(7));
    const auto h = static_cast<Coord>(rng.UniformInclusive(7));
    const Box box(Cell(x, y), Cell(std::min<Coord>(31, x + w),
                                   std::min<Coord>(31, y + h)));
    for (uint64_t p = 0; p < reader.num_pages(); ++p) {
      if (reader.PageMayIntersect(p, box)) continue;
      ++pruned;
      // "Skippable" must be sound: no entry of the page is in the box.
      ASSERT_TRUE(reader.ReadPage(p, &page).ok());
      for (const Entry& entry : page) {
        EXPECT_FALSE(box.Contains(curve->CellAt(entry.key)))
            << "zone map pruned a page containing a box entry";
      }
    }
  }
  EXPECT_GT(pruned, 0u);  // the maps actually prune something
  // A mismatched dimensionality must disable pruning, not misprune.
  EXPECT_TRUE(reader.PageMayIntersect(0, Box(Cell(0, 0, 0), Cell(1, 1, 1))));
}

TEST(SegmentTest, SeqStampsRoundTripThroughSegments) {
  // Every entry's packed MVCC stamp (sequence + tombstone bit) must
  // survive the write -> reopen -> decode cycle under both codecs.
  Rng rng(41);
  std::vector<Entry> entries;
  Key key = 0;
  for (uint64_t i = 0; i < 700; ++i) {
    key += rng.UniformInclusive(4);
    entries.push_back({key, i, PackSeq(i + 1, i % 6 == 0)});
  }
  for (const PageCodec codec : {PageCodec::kRaw, PageCodec::kDeltaVarint,
                                PageCodec::kBitpack}) {
    const std::string path =
        TempPath(std::string("seg_seq_") + PageCodecName(codec) + ".sfc");
    std::remove(path.c_str());
    SegmentWriterOptions options;
    options.entries_per_page = 32;
    options.codec = codec;
    SegmentWriter writer(path, options);
    for (const Entry& entry : entries) {
      ASSERT_TRUE(writer.Add(entry.key, entry.payload, entry.seq).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
    auto reader = SegmentReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader.value()->format_version(), 3u);
    EXPECT_EQ(ReadAll(*reader.value()), entries);
  }
}

TEST(SegmentTest, BatchedReadPagesMatchesPerPageReads) {
  // ReadPages must deliver byte-identical pages to a ReadPage loop, for
  // every codec (variable page sizes stress the contiguous-span math) and
  // every run position/length.
  Rng rng(43);
  std::vector<Entry> entries;
  Key key = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    key += rng.UniformInclusive(6);
    entries.push_back({key, i * 3, PackSeq(i + 1, i % 9 == 0)});
  }
  for (const PageCodec codec : {PageCodec::kRaw, PageCodec::kDeltaVarint,
                                PageCodec::kBitpack}) {
    const std::string path =
        TempPath(std::string("seg_batch_") + PageCodecName(codec) + ".sfc");
    std::remove(path.c_str());
    SegmentWriterOptions options;
    options.entries_per_page = 24;
    options.codec = codec;
    SegmentWriter writer(path, options);
    for (const Entry& entry : entries) {
      ASSERT_TRUE(writer.Add(entry.key, entry.payload, entry.seq).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
    auto opened = SegmentReader::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const auto reader = std::move(opened).value();
    const uint64_t pages = reader->num_pages();
    for (uint64_t first = 0; first < pages; ++first) {
      for (uint64_t count = 1; count <= pages - first; ++count) {
        std::vector<std::vector<Entry>> batch;
        ASSERT_TRUE(reader->ReadPages(first, count, &batch).ok());
        ASSERT_EQ(batch.size(), count);
        for (uint64_t i = 0; i < count; ++i) {
          std::vector<Entry> single;
          ASSERT_TRUE(reader->ReadPage(first + i, &single).ok());
          ASSERT_EQ(batch[i], single)
              << PageCodecName(codec) << " page " << first + i;
        }
      }
    }
  }
}

TEST(SegmentTest, PageChecksumCatchesBitFlip) {
  // The per-page CRC32C of format v3: flipping a single bit inside page
  // data must surface as Status::Corruption from ReadPage — never as
  // silently wrong entries — while the header (and the other pages) stay
  // readable.
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 96; ++i) {
    entries.push_back({i * 5, i, PackSeq(i + 1, false)});
  }
  auto reader = WriteAndOpen("seg_bitflip.sfc", entries, 16);
  ASSERT_EQ(reader->format_version(), 3u);
  const uint64_t victim_bytes = reader->PageDiskBytes(2);
  reader.reset();  // release the file before mutating it

  const std::string path = TempPath("seg_bitflip.sfc");
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  // Page 2 starts at 96 (header) + pages 0 and 1; flip a bit mid-page.
  long offset = 96;
  for (uint64_t p = 0; p < 2; ++p) {
    offset += static_cast<long>(victim_bytes);  // raw pages: equal sizes
  }
  std::fseek(f, offset + 10, SEEK_SET);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  std::fseek(f, offset + 10, SEEK_SET);
  std::fputc(byte ^ 0x04, f);
  std::fclose(f);

  auto reopened = SegmentReader::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::vector<Entry> page;
  EXPECT_TRUE(reopened.value()->ReadPage(0, &page).ok());
  const Status corrupt = reopened.value()->ReadPage(2, &page);
  EXPECT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.code(), StatusCode::kCorruption);
  EXPECT_NE(corrupt.ToString().find("checksum"), std::string::npos)
      << corrupt.ToString();
  EXPECT_TRUE(reopened.value()->ReadPage(3, &page).ok());
}

/// Writes a format-v2 segment file (the pre-MVCC layout: 96-byte header,
/// raw PAIR pages without checksums, page index, no filter/zones),
/// byte-exactly and independently of segment.cc.
void WriteV2SegmentFixture(const std::string& path,
                           const std::vector<Entry>& entries,
                           uint32_t entries_per_page) {
  ASSERT_FALSE(entries.empty());
  const uint64_t num_pages =
      (entries.size() + entries_per_page - 1) / entries_per_page;
  std::vector<uint8_t> bytes(96);
  std::vector<uint64_t> page_offsets;
  std::vector<uint64_t> page_sizes;
  for (uint64_t p = 0; p < num_pages; ++p) {
    const size_t begin = p * entries_per_page;
    const size_t end =
        std::min<size_t>(begin + entries_per_page, entries.size());
    page_offsets.push_back(bytes.size());
    page_sizes.push_back((end - begin) * kEntryBytes);
    for (size_t i = begin; i < end; ++i) {
      uint8_t pair[16];
      PutU64(pair, entries[i].key);
      PutU64(pair + 8, entries[i].payload);
      bytes.insert(bytes.end(), pair, pair + sizeof(pair));
    }
  }
  const uint64_t index_offset = bytes.size();
  for (uint64_t p = 0; p < num_pages; ++p) {
    const size_t begin = p * entries_per_page;
    const size_t end =
        std::min<size_t>(begin + entries_per_page, entries.size());
    uint8_t record[32];
    PutU64(record, page_offsets[p]);
    PutU64(record + 8, page_sizes[p]);
    PutU64(record + 16, entries[begin].key);
    PutU64(record + 24, entries[end - 1].key);
    bytes.insert(bytes.end(), record, record + sizeof(record));
  }
  std::memcpy(bytes.data(), "OSFCSEG1", 8);
  PutU32(&bytes[8], 2);  // format version 2
  PutU32(&bytes[12], entries_per_page);
  PutU64(&bytes[16], entries.size());
  PutU64(&bytes[24], num_pages);
  PutU64(&bytes[32], entries.front().key);
  PutU64(&bytes[40], entries.back().key);
  PutU64(&bytes[48], index_offset);
  PutU32(&bytes[56], 0);  // codec raw
  PutU32(&bytes[60], 0);  // no filter
  PutU64(&bytes[64], 0);  // filter_offset
  PutU64(&bytes[72], 0);  // filter_bytes
  PutU32(&bytes[80], 0);  // zone_dims
  // The v2 header checksum, reproduced independently of segment.cc.
  uint64_t sum = 0x0410105fc5e671ULL;
  sum ^= Rotl64(static_cast<uint64_t>(2) << 32 | entries_per_page, 1);
  sum ^= Rotl64(entries.size(), 7);
  sum ^= Rotl64(num_pages, 13);
  sum ^= Rotl64(entries.front().key, 19);
  sum ^= Rotl64(entries.back().key, 29);
  sum ^= Rotl64(index_offset, 37);
  PutU64(&bytes[88], sum);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(SegmentTest, OpensHandcraftedV2FileWithSeqZero) {
  // Backward compat for the pre-MVCC format: v2 pages carry no sequence
  // stamps, so every entry must read back with seq 0 — visible to every
  // snapshot, hidden by any tombstone.
  Rng rng(43);
  std::vector<Entry> entries;
  Key key = 0;
  for (uint64_t i = 0; i < 300; ++i) {
    key += rng.UniformInclusive(6);
    entries.push_back({key, i * 3});  // seq 0 by construction
  }
  const std::string path = TempPath("seg_v2_fixture.sfc");
  std::remove(path.c_str());
  WriteV2SegmentFixture(path, entries, 16);
  auto opened = SegmentReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto& reader = *opened.value();
  EXPECT_EQ(reader.format_version(), 2u);
  EXPECT_EQ(reader.codec(), PageCodec::kRaw);
  EXPECT_EQ(reader.num_entries(), entries.size());
  const auto decoded = ReadAll(reader);
  EXPECT_EQ(decoded, entries);
  for (const Entry& entry : decoded) {
    EXPECT_EQ(entry.seq, 0u);
  }
}

TEST(SegmentTest, OpensHandcraftedV1File) {
  Rng rng(31);
  std::vector<Entry> entries;
  Key key = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    key += rng.UniformInclusive(9);
    entries.push_back({key, i});
  }
  const std::string path = TempPath("seg_v1_fixture.sfc");
  std::remove(path.c_str());
  WriteV1SegmentFixture(path, entries, 16);
  auto opened = SegmentReader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const auto& reader = *opened.value();
  EXPECT_EQ(reader.format_version(), 1u);
  EXPECT_EQ(reader.codec(), PageCodec::kRaw);
  EXPECT_EQ(reader.filter_bytes(), 0u);
  EXPECT_EQ(reader.num_entries(), entries.size());
  EXPECT_EQ(reader.min_key(), entries.front().key);
  EXPECT_EQ(reader.max_key(), entries.back().key);
  EXPECT_EQ(ReadAll(reader), entries);
  // No filter, no zone maps: probes answer "maybe", never "no".
  EXPECT_TRUE(reader.MayContainKey(entries.back().key + 1234));
  EXPECT_TRUE(reader.PageMayIntersect(0, Box(Cell(0, 0), Cell(1, 1))));
  // v1 pages are fixed-size on disk.
  EXPECT_EQ(reader.PageDiskBytes(0), 16 * kEntryBytes);
}

TEST(SegmentTest, OpenRejectsUnknownFutureVersion) {
  const std::vector<Entry> entries = {{1, 1}, {2, 2}};
  const std::string path = TempPath("seg_future.sfc");
  std::remove(path.c_str());
  WriteV1SegmentFixture(path, entries, 4);
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8, SEEK_SET);
  uint8_t version_bytes[4];
  PutU32(version_bytes, 7);
  std::fwrite(version_bytes, 1, 4, f);
  std::fclose(f);
  auto result = SegmentReader::Open(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The message must tell the operator what happened, not just "bad file".
  EXPECT_NE(result.status().ToString().find("unsupported segment format"),
            std::string::npos);
  EXPECT_NE(result.status().ToString().find("7"), std::string::npos);
}

TEST(SegmentTest, OpenRejectsCorruptedV2Header) {
  const std::vector<Entry> entries = {{1, 1}, {2, 2}, {3, 3}};
  auto reader = WriteAndOpen("seg_corrupt_v2.sfc", entries, 2);
  ASSERT_EQ(reader->format_version(), 3u);
  reader.reset();
  const std::string path = TempPath("seg_corrupt_v2.sfc");
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 56, SEEK_SET);  // codec id field of the v2 header
  const uint8_t bogus = 0x5a;
  std::fwrite(&bogus, 1, 1, f);
  std::fclose(f);
  auto result = SegmentReader::Open(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace onion::storage
