// Tests for the locality metrics: inter-cluster gaps (the paper's stated
// future work), neighbor stretch, and grid-neighbor key gaps.

#include <gtest/gtest.h>

#include "analysis/boxiter.h"
#include "analysis/clustering.h"
#include "analysis/locality.h"
#include "sfc/registry.h"

namespace onion {
namespace {

TEST(ClusterGapsTest, SingleClusterHasNoGaps) {
  auto onion = MakeCurve("onion", Universe(2, 12)).value();
  const Box box = Box::Cube(Cell(1, 1), 10);  // inner layers: one cluster
  const ClusterGapStats stats = ComputeClusterGaps(*onion, box);
  EXPECT_EQ(stats.clusters, 1u);
  EXPECT_EQ(stats.total_gap, 0u);
  EXPECT_EQ(stats.max_gap, 0u);
  EXPECT_EQ(stats.MeanGap(), 0.0);
  EXPECT_EQ(stats.span, box.Volume());
}

TEST(ClusterGapsTest, GapsMatchManualRangeInspection) {
  auto hilbert = MakeCurve("hilbert", Universe(2, 8)).value();
  const Box box = Box::FromCornerAndLengths(Cell(0, 1), {7, 7});
  const auto ranges = ClusterRanges(*hilbert, box);
  const ClusterGapStats stats = ComputeClusterGaps(*hilbert, box);
  ASSERT_EQ(stats.clusters, ranges.size());
  uint64_t total = 0;
  uint64_t max_gap = 0;
  for (size_t i = 1; i < ranges.size(); ++i) {
    const uint64_t gap = ranges[i].lo - ranges[i - 1].hi - 1;
    total += gap;
    max_gap = std::max(max_gap, gap);
  }
  EXPECT_EQ(stats.total_gap, total);
  EXPECT_EQ(stats.max_gap, max_gap);
  EXPECT_EQ(stats.span, ranges.back().hi - ranges.front().lo + 1);
}

TEST(ClusterGapsTest, SpanNeverBelowVolume) {
  auto onion = MakeCurve("onion", Universe(2, 16)).value();
  auto hilbert = MakeCurve("hilbert", Universe(2, 16)).value();
  for (Coord len : {3u, 7u, 12u}) {
    const Box box = Box::Cube(Cell(2, 1), len);
    for (const SpaceFillingCurve* curve :
         {static_cast<const SpaceFillingCurve*>(onion.get()),
          static_cast<const SpaceFillingCurve*>(hilbert.get())}) {
      const ClusterGapStats stats = ComputeClusterGaps(*curve, box);
      EXPECT_GE(stats.span, box.Volume());
      EXPECT_EQ(stats.span, box.Volume() + stats.total_gap);
    }
  }
}

TEST(StretchTest, ContinuousCurvesHaveUnitStretch) {
  for (const std::string name : {"onion", "hilbert", "snake"}) {
    auto curve = MakeCurve(name, Universe(2, 16)).value();
    const StretchStats stats = NeighborStretch(*curve);
    EXPECT_DOUBLE_EQ(stats.mean_l1, 1.0) << name;
    EXPECT_EQ(stats.max_l1, 1u) << name;
    EXPECT_EQ(stats.jumps, 0u) << name;
  }
}

TEST(StretchTest, ZOrderJumps) {
  auto zorder = MakeCurve("zorder", Universe(2, 16)).value();
  const StretchStats stats = NeighborStretch(*zorder);
  EXPECT_GT(stats.mean_l1, 1.0);
  EXPECT_GT(stats.max_l1, 1u);
  // Exactly half the steps of a 2D Z curve are odd->even jumps.
  EXPECT_EQ(stats.jumps, (zorder->num_cells() - 1) / 2);
}

TEST(StretchTest, RowMajorWrapJumps) {
  auto row = MakeCurve("row_major", Universe(2, 8)).value();
  const StretchStats stats = NeighborStretch(*row);
  // One wrap jump of L1 distance 8 per row transition (7 of them).
  EXPECT_EQ(stats.jumps, 7u);
  EXPECT_EQ(stats.max_l1, 8u);
}

TEST(KeyGapTest, RowMajorKnownValues) {
  // In row-major order, horizontal neighbors differ by 1 and vertical
  // neighbors by `side`.
  auto row = MakeCurve("row_major", Universe(2, 4)).value();
  const KeyGapStats stats = KeyGapOfGridNeighbors(*row);
  EXPECT_EQ(stats.max, 4u);
  // 12 horizontal pairs with gap 1 and 12 vertical pairs with gap 4.
  EXPECT_DOUBLE_EQ(stats.mean, (12.0 * 1 + 12.0 * 4) / 24.0);
}

TEST(KeyGapTest, HilbertKeepsMostNeighborsClose) {
  // Note the mean is NOT the right lens here: row-major's mean gap is
  // (1 + side)/2, which can beat Hilbert's mean because Hilbert trades a
  // heavy tail (quadrant boundaries) for keeping the vast majority of
  // neighbor pairs very close in key space. Verify the body of the
  // distribution instead.
  const Coord side = 32;
  auto hilbert = MakeCurve("hilbert", Universe(2, side)).value();
  auto row = MakeCurve("row_major", Universe(2, side)).value();
  auto close_fraction = [&](const SpaceFillingCurve& curve) {
    uint64_t close = 0;
    uint64_t pairs = 0;
    ForEachCellInUniverse(curve.universe(), [&](const Cell& cell) {
      for (int axis = 0; axis < 2; ++axis) {
        if (cell[axis] + 1 >= side) continue;
        Cell up = cell;
        up[axis] += 1;
        const Key a = curve.IndexOf(cell);
        const Key b = curve.IndexOf(up);
        const uint64_t gap = a > b ? a - b : b - a;
        if (gap <= 8) ++close;
        ++pairs;
      }
    });
    return static_cast<double>(close) / static_cast<double>(pairs);
  };
  EXPECT_GT(close_fraction(*hilbert), close_fraction(*row));
  // Row-major: exactly the horizontal pairs are close.
  EXPECT_DOUBLE_EQ(close_fraction(*row), 0.5);
}

TEST(KeyGapTest, OnionLayerStructureShowsInMaxGap) {
  // Grid neighbors on opposite sides of the first layer's start/end are
  // nearly a full perimeter apart in key space.
  auto onion = MakeCurve("onion", Universe(2, 16)).value();
  const KeyGapStats stats = KeyGapOfGridNeighbors(*onion);
  EXPECT_GE(stats.max, 4u * 15u - 1u - 16u);  // near the outer perimeter
}

TEST(ClusterGapsTest, OnionTradesFewerClustersForWiderGaps) {
  // The honest flip side the paper defers to future work: the onion curve
  // achieves fewer clusters on large cubes, but its clusters live in
  // different layers, so the gaps BETWEEN them are larger than Hilbert's.
  auto onion = MakeCurve("onion", Universe(2, 64)).value();
  auto hilbert = MakeCurve("hilbert", Universe(2, 64)).value();
  const Box box = Box::Cube(Cell(3, 5), 48);
  const ClusterGapStats o = ComputeClusterGaps(*onion, box);
  const ClusterGapStats h = ComputeClusterGaps(*hilbert, box);
  EXPECT_LT(o.clusters, h.clusters);
  EXPECT_GT(o.MeanGap(), h.MeanGap());
}

}  // namespace
}  // namespace onion
