// Tests for the clustering-number algorithms: the three implementations
// must agree on every curve and query, and reproduce the paper's Figure 1
// and Figure 2 examples.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/clustering.h"
#include "common/rng.h"
#include "sfc/registry.h"

namespace onion {
namespace {

TEST(ClusteringTest, WholeUniverseIsOneCluster) {
  for (const std::string& name : KnownCurveNames()) {
    auto result = MakeCurve(name, Universe(2, 8));
    if (!result.ok()) continue;  // e.g. peano needs a power-of-three side
    auto curve = std::move(result).value();
    EXPECT_EQ(ClusteringNumber(*curve, curve->universe().Bounds()), 1u)
        << name;
  }
  // Peano separately on its native side.
  auto peano = MakeCurve("peano", Universe(2, 9)).value();
  EXPECT_EQ(ClusteringNumber(*peano, peano->universe().Bounds()), 1u);
}

TEST(ClusteringTest, SingleCellIsOneCluster) {
  for (const std::string& name : KnownCurveNames()) {
    auto result = MakeCurve(name, Universe(2, 8));
    if (!result.ok()) continue;
    auto curve = std::move(result).value();
    const Box box = Box::FromCornerAndLengths(Cell(3, 5), {1, 1});
    EXPECT_EQ(ClusteringNumber(*curve, box), 1u) << name;
  }
}

// Property sweep: all three algorithms agree on random boxes, every curve,
// 2D and 3D.
struct AgreementCase {
  std::string name;
  int dims;
  Coord side;
};

class ClusteringAgreement : public testing::TestWithParam<AgreementCase> {};

TEST_P(ClusteringAgreement, AllAlgorithmsAgree) {
  const AgreementCase& param = GetParam();
  auto curve = MakeCurve(param.name, Universe(param.dims, param.side)).value();
  Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    Cell lo = Cell::Filled(param.dims, 0);
    Cell hi = Cell::Filled(param.dims, 0);
    for (int axis = 0; axis < param.dims; ++axis) {
      auto a = static_cast<Coord>(rng.UniformInclusive(param.side - 1));
      auto b = static_cast<Coord>(rng.UniformInclusive(param.side - 1));
      lo[axis] = std::min(a, b);
      hi[axis] = std::max(a, b);
    }
    const Box box(lo, hi);
    const uint64_t brute = ClusteringNumberBruteForce(*curve, box);
    const uint64_t entry = ClusteringNumberEntryTest(*curve, box);
    ASSERT_EQ(brute, entry) << param.name << " " << box.ToString();
    if (curve->is_continuous()) {
      ASSERT_EQ(brute, ClusteringNumberBoundary(*curve, box))
          << param.name << " " << box.ToString();
    }
    ASSERT_EQ(brute, ClusteringNumber(*curve, box))
        << param.name << " " << box.ToString();
    // Cluster ranges must be consistent: count matches, ranges sorted,
    // disjoint, and their total size equals the box volume.
    const auto ranges = ClusterRanges(*curve, box);
    ASSERT_EQ(ranges.size(), brute);
    uint64_t covered = 0;
    for (size_t i = 0; i < ranges.size(); ++i) {
      ASSERT_LE(ranges[i].lo, ranges[i].hi);
      if (i > 0) {
        ASSERT_GT(ranges[i].lo, ranges[i - 1].hi + 1);
      }
      covered += ranges[i].hi - ranges[i].lo + 1;
    }
    ASSERT_EQ(covered, box.Volume());
  }
}

std::vector<AgreementCase> AgreementCases() {
  std::vector<AgreementCase> cases;
  for (const std::string& name : KnownCurveNames()) {
    for (const AgreementCase& candidate :
         {AgreementCase{name, 2, 16}, AgreementCase{name, 3, 8},
          AgreementCase{name, 2, 9}, AgreementCase{name, 3, 9}}) {
      if (MakeCurve(candidate.name,
                    Universe(candidate.dims, candidate.side))
              .ok()) {
        cases.push_back(candidate);
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCurves, ClusteringAgreement, testing::ValuesIn(AgreementCases()),
    [](const testing::TestParamInfo<AgreementCase>& info) {
      return info.param.name + "_" + std::to_string(info.param.dims) +
             "d_s" + std::to_string(info.param.side);
    });

TEST(ClusteringTest, Figure1HilbertBeatsZOnExampleQuery) {
  // Figure 1: for the same query region, the Hilbert curve yields fewer
  // clusters than the Z curve (2 vs 4 in the paper's 8x8 example).
  auto hilbert = MakeCurve("hilbert", Universe(2, 8)).value();
  auto zorder = MakeCurve("zorder", Universe(2, 8)).value();
  uint64_t z_worse = 0;
  uint64_t comparisons = 0;
  for (Coord x = 0; x + 3 <= 8; ++x) {
    for (Coord y = 0; y + 2 <= 8; ++y) {
      const Box box = Box::FromCornerAndLengths(Cell(x, y), {3, 2});
      const uint64_t h = ClusteringNumber(*hilbert, box);
      const uint64_t z = ClusteringNumber(*zorder, box);
      if (z > h) ++z_worse;
      ++comparisons;
    }
  }
  // The Z curve is strictly worse on a majority of placements of this
  // query shape and never dramatically better on average.
  EXPECT_GT(z_worse * 2, comparisons);
}

TEST(ClusteringTest, Figure2OnionVersusHilbertOn7x7) {
  // Figure 2: a 7x7 query on the 8x8 universe where the onion curve
  // achieves a single cluster while the Hilbert curve needs 5.
  auto onion = MakeCurve("onion", Universe(2, 8)).value();
  auto hilbert = MakeCurve("hilbert", Universe(2, 8)).value();
  uint64_t onion_best = ~0ull;
  uint64_t hilbert_best = ~0ull;
  double onion_total = 0;
  double hilbert_total = 0;
  for (Coord x = 0; x + 7 <= 8; ++x) {
    for (Coord y = 0; y + 7 <= 8; ++y) {
      const Box box = Box::Cube(Cell(x, y), 7);
      const uint64_t o = ClusteringNumber(*onion, box);
      const uint64_t h = ClusteringNumber(*hilbert, box);
      onion_best = std::min(onion_best, o);
      hilbert_best = std::min(hilbert_best, h);
      onion_total += static_cast<double>(o);
      hilbert_total += static_cast<double>(h);
    }
  }
  // The onion curve achieves clustering number 1 on one placement and at
  // most 2 anywhere; Hilbert is far worse on average (Fig. 2 shows 5).
  EXPECT_EQ(onion_best, 1u);
  EXPECT_GT(hilbert_total, 2 * onion_total);
  EXPECT_GE(hilbert_best, 2u);
}

TEST(ClusteringTest, OnionSingleClusterForLayerAlignedQuery) {
  // A query equal to the inner k x k sub-square (all layers >= t) is a
  // single suffix of the onion order.
  auto onion = MakeCurve("onion", Universe(2, 12)).value();
  for (Coord t = 0; t < 6; ++t) {
    const Coord w = 12 - 2 * t;
    const Box box = Box::Cube(Cell(t, t), w);
    EXPECT_EQ(ClusteringNumber(*onion, box), 1u) << "t " << t;
  }
}

TEST(ClusteringTest, AverageClusteringExactMatchesManualEnumeration) {
  auto onion = MakeCurve("onion", Universe(2, 6)).value();
  // Manual enumeration of Q(2, 3).
  double total = 0;
  int count = 0;
  for (Coord x = 0; x + 2 <= 6; ++x) {
    for (Coord y = 0; y + 3 <= 6; ++y) {
      total += static_cast<double>(ClusteringNumberBruteForce(
          *onion, Box::FromCornerAndLengths(Cell(x, y), {2, 3})));
      ++count;
    }
  }
  EXPECT_DOUBLE_EQ(AverageClusteringExact(*onion, {2, 3}), total / count);
}

TEST(ClusteringEvaluatorTest, ModesSelectedPerCurve) {
  auto hilbert = MakeCurve("hilbert", Universe(2, 16)).value();
  auto onion3d = MakeCurve("onion", Universe(3, 8)).value();
  // Z-order has ~n/2 non-neighbor steps, far above the jump threshold at
  // realistic sizes (at tiny sides it may legitimately classify as
  // "almost", which is also exact).
  auto zorder = MakeCurve("zorder", Universe(2, 64)).value();
  EXPECT_STREQ(ClusteringEvaluator(hilbert.get()).mode(), "boundary");
  EXPECT_STREQ(ClusteringEvaluator(onion3d.get()).mode(), "almost");
  EXPECT_STREQ(ClusteringEvaluator(zorder.get()).mode(), "entry");
}

TEST(ClusteringEvaluatorTest, AgreesWithBruteForceOnEveryCurve) {
  Rng rng(31337);
  for (const std::string& name : KnownCurveNames()) {
    for (const int dims : {2, 3}) {
      const Coord side = dims == 2 ? 16 : 8;
      auto result = MakeCurve(name, Universe(dims, side));
      if (!result.ok()) continue;
      auto curve = std::move(result).value();
      const ClusteringEvaluator evaluator(curve.get());
      for (int trial = 0; trial < 40; ++trial) {
        Cell lo = Cell::Filled(dims, 0);
        Cell hi = Cell::Filled(dims, 0);
        for (int axis = 0; axis < dims; ++axis) {
          auto a = static_cast<Coord>(rng.UniformInclusive(side - 1));
          auto b = static_cast<Coord>(rng.UniformInclusive(side - 1));
          lo[axis] = std::min(a, b);
          hi[axis] = std::max(a, b);
        }
        const Box box(lo, hi);
        ASSERT_EQ(evaluator.Clustering(box),
                  ClusteringNumberBruteForce(*curve, box))
            << name << " " << dims << "D " << box.ToString();
      }
    }
  }
}

TEST(ClusteringEvaluatorTest, Onion3DInteriorJumpsCounted) {
  // A query strictly inside the universe that contains group-boundary jump
  // targets must still be exact.
  auto curve = MakeCurve("onion", Universe(3, 12)).value();
  const ClusteringEvaluator evaluator(curve.get());
  for (const Coord corner : {1u, 2u, 3u}) {
    const Box box = Box::Cube(Cell(corner, corner, corner), 12 - 2 * corner);
    EXPECT_EQ(evaluator.Clustering(box),
              ClusteringNumberEntryTest(*curve, box))
        << corner;
  }
}

TEST(ClusteringTest, ThinBoxesAndEdgeTouchingBoxes) {
  auto onion = MakeCurve("onion", Universe(2, 10)).value();
  auto hilbert = MakeCurve("hilbert", Universe(2, 16)).value();
  // 1 x side sliver through the middle.
  const Box sliver = Box::FromCornerAndLengths(Cell(4, 0), {1, 10});
  EXPECT_EQ(ClusteringNumberBruteForce(*onion, sliver),
            ClusteringNumberEntryTest(*onion, sliver));
  const Box sliver16 = Box::FromCornerAndLengths(Cell(7, 0), {1, 16});
  EXPECT_EQ(ClusteringNumberBruteForce(*hilbert, sliver16),
            ClusteringNumberBoundary(*hilbert, sliver16));
}

}  // namespace
}  // namespace onion
