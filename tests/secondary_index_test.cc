// Secondary-index tests: randomized equivalence between index-cursor
// queries and brute-force base scans across flush/compaction/reopen and
// three index curves, crash consistency of the base+index WriteBatch
// expansion (hard _Exit mid-stream, then WAL loss on either side),
// AdviseCurve/MigrateIndexCurve, catalog lifecycle and validation, read
// budgets and snapshot reads, and a concurrency smoke for TSan.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/index_spec.h"
#include "storage/sfc_db.h"

namespace onion::storage {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "/secondary_index_test/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A base row as (base curve key, payload) — the canonical form both the
/// index path and the brute-force path are reduced to before comparison.
using Row = std::pair<Key, uint64_t>;

/// Drains an index cursor into sorted rows, additionally asserting the
/// delivery order is nondecreasing in the INDEX curve key (the documented
/// contract of NewIndexCursor).
std::vector<Row> DrainIndexCursor(Cursor* cursor, const SfcTable& base,
                                  const SfcTable& index,
                                  const IndexExtractor& extractor) {
  std::vector<Row> rows;
  Key prev_key = 0;
  bool have_prev = false;
  for (; cursor->Valid(); cursor->Next()) {
    const SpatialEntry& e = cursor->entry();
    const Cell index_cell = extractor.map(e.cell, base.curve().universe());
    const Key index_key = index.curve().IndexOf(index_cell);
    if (have_prev) EXPECT_GE(index_key, prev_key);
    prev_key = index_key;
    have_prev = true;
    rows.emplace_back(base.curve().IndexOf(e.cell), e.payload);
  }
  EXPECT_TRUE(cursor->status().ok()) << cursor->status().ToString();
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Ground truth: full base scan filtered by `box` in index-cell space.
std::vector<Row> BruteForceIndexQuery(SfcTable* base,
                                      const IndexExtractor& extractor,
                                      const Box& box) {
  std::vector<Row> rows;
  auto cursor = base->NewScanCursor();
  for (; cursor->Valid(); cursor->Next()) {
    const SpatialEntry& e = cursor->entry();
    if (box.Contains(extractor.map(e.cell, base->curve().universe()))) {
      rows.emplace_back(base->curve().IndexOf(e.cell), e.payload);
    }
  }
  EXPECT_TRUE(cursor->status().ok()) << cursor->status().ToString();
  std::sort(rows.begin(), rows.end());
  return rows;
}

void ExpectIndexMatchesBruteForce(SfcDb& db, const std::string& table,
                                  const std::string& index,
                                  const std::string& extractor_name,
                                  const Box& box) {
  SCOPED_TRACE("box " + box.ToString());
  auto base = db.OpenTable(table);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  auto index_table = db.IndexTable(table, index);
  ASSERT_TRUE(index_table.ok()) << index_table.status().ToString();
  const IndexExtractor* extractor = FindIndexExtractor(extractor_name);
  ASSERT_NE(extractor, nullptr);
  auto cursor = db.NewIndexCursor(table, index, box);
  const auto got =
      DrainIndexCursor(cursor.get(), *base.value(), *index_table.value(),
                       *extractor);
  const auto want = BruteForceIndexQuery(base.value(), *extractor, box);
  EXPECT_EQ(got, want);
}

/// Applies `n` random ops (~20% deletes, coordinates drawn from the full
/// side so overwrites and delete-hits occur) in batches of 1..8 through
/// SfcDb::Write, the only legal write path for indexed tables.
void ApplyRandomOps(SfcDb& db, const std::string& table, Rng& rng, int n,
                    Coord side) {
  while (n > 0) {
    WriteBatch batch;
    const int ops = 1 + static_cast<int>(rng.UniformInclusive(7));
    for (int i = 0; i < ops && n > 0; ++i, --n) {
      const Cell cell(static_cast<Coord>(rng.UniformInclusive(side - 1)),
                      static_cast<Coord>(rng.UniformInclusive(side - 1)));
      if (rng.UniformInclusive(9) < 2) {
        batch.Delete(table, cell);
      } else {
        batch.Put(table, cell, rng.Next() % 1000);
      }
    }
    ASSERT_TRUE(db.Write(std::move(batch)).ok());
  }
}

Box RandomBox(Rng& rng, Coord side) {
  const auto lo_x = static_cast<Coord>(rng.UniformInclusive(side - 1));
  const auto lo_y = static_cast<Coord>(rng.UniformInclusive(side - 1));
  const auto hi_x = std::min<Coord>(
      side - 1, lo_x + static_cast<Coord>(rng.UniformInclusive(side / 2)));
  const auto hi_y = std::min<Coord>(
      side - 1, lo_y + static_cast<Coord>(rng.UniformInclusive(side / 2)));
  return Box(Cell(lo_x, lo_y), Cell(hi_x, hi_y));
}

// --- Satellite 1: randomized equivalence across three index curves, at
// every lifecycle stage (memtable-only, flushed, compacted, reopened).

TEST(SecondaryIndexTest, EquivalenceAcrossCurvesAndLifecycles) {
  const Coord kSide = 32;  // power of two: valid for zorder and hilbert
  const Universe universe(2, kSide);
  const char* kCurves[] = {"zorder", "hilbert", "row_major"};
  for (const char* curve : kCurves) {
    SCOPED_TRACE(std::string("index curve ") + curve);
    const std::string dir = FreshDir(std::string("equiv_") + curve);
    SfcDbOptions options;
    options.table_options.memtable_flush_entries = 128;

    auto check_boxes = [&](SfcDb& db, Rng& rng) {
      ExpectIndexMatchesBruteForce(
          db, "t", "ix", "swap_xy",
          Box(Cell(0, 0), Cell(kSide - 1, kSide - 1)));
      for (int i = 0; i < 8; ++i) {
        ExpectIndexMatchesBruteForce(db, "t", "ix", "swap_xy",
                                     RandomBox(rng, kSide));
      }
    };

    Rng rng(0x5eed0000 + static_cast<uint64_t>(curve[0]));
    {
      auto db_result = SfcDb::Open(dir, options);
      ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
      auto& db = *db_result.value();
      ASSERT_TRUE(db.CreateTable("t", "onion", universe).ok());

      // Data written BEFORE the index exists exercises the backfill.
      ApplyRandomOps(db, "t", rng, 400, kSide);
      ASSERT_TRUE(db.CreateIndex("t", {"ix", "swap_xy", curve}).ok());
      check_boxes(db, rng);

      // Incremental maintenance through Write, still memtable-resident.
      ApplyRandomOps(db, "t", rng, 400, kSide);
      check_boxes(db, rng);

      // Flushed and compacted on both sides.
      ASSERT_TRUE(db.GetTable("t")->Flush().ok());
      auto index_table = db.IndexTable("t", "ix");
      ASSERT_TRUE(index_table.ok());
      ASSERT_TRUE(index_table.value()->Flush().ok());
      check_boxes(db, rng);
      ASSERT_TRUE(db.GetTable("t")->Compact().ok());
      ASSERT_TRUE(index_table.value()->Compact().ok());
      check_boxes(db, rng);
      ASSERT_TRUE(db.Close().ok());
    }
    {
      auto db_result = SfcDb::Open(dir, options);
      ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
      auto& db = *db_result.value();
      check_boxes(db, rng);
      ApplyRandomOps(db, "t", rng, 200, kSide);
      check_boxes(db, rng);
      ASSERT_TRUE(db.Close().ok());
    }
  }
}

// --- Satellite 2: crash consistency. A child process commits WriteBatches
// against an indexed table and hard-exits without Close(); the parent then
// destroys one side's WAL files and asserts recovery reconstructs BOTH
// sides to the full committed state, agreeing entry for entry.

constexpr uint64_t kCrashBatches = 30;
constexpr Coord kCrashSide = 16;

void CrashChildWriteAndExit(const std::string& dir) {
  auto db_result = SfcDb::Open(dir);
  if (!db_result.ok()) std::_Exit(2);
  auto& db = *db_result.value();
  const Universe universe(2, kCrashSide);
  if (!db.CreateTable("t", "onion", universe).ok()) std::_Exit(3);
  if (!db.CreateIndex("t", {"ix", "cell", "zorder"}).ok()) std::_Exit(4);
  for (uint64_t i = 0; i < kCrashBatches; ++i) {
    WriteBatch batch;
    batch.Put("t", Cell(i % kCrashSide, (i * 7) % kCrashSide), 100 + i);
    if (i % 5 == 4) {
      batch.Delete("t", Cell((i + 2) % kCrashSide,
                             ((i + 2) * 7) % kCrashSide));
    }
    if (!db.Write(std::move(batch)).ok()) std::_Exit(5);
  }
  std::_Exit(0);  // hard crash: no Close, no flush
}

/// The state the child committed, replayed by the same op semantics
/// (Delete drops every payload at the cell).
std::map<std::pair<Coord, Coord>, std::vector<uint64_t>> CrashExpectedState() {
  std::map<std::pair<Coord, Coord>, std::vector<uint64_t>> state;
  for (uint64_t i = 0; i < kCrashBatches; ++i) {
    state[{static_cast<Coord>(i % kCrashSide),
           static_cast<Coord>((i * 7) % kCrashSide)}]
        .push_back(100 + i);
    if (i % 5 == 4) {
      state[{static_cast<Coord>((i + 2) % kCrashSide),
             static_cast<Coord>(((i + 2) * 7) % kCrashSide)}]
          .clear();
    }
  }
  return state;
}

void RunCrashTest(const std::string& dir, const std::string& strip_subdir) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_EXIT(CrashChildWriteAndExit(dir), ::testing::ExitedWithCode(0), "");

  // Destroy one side's WAL files: recovery must rebuild that side from the
  // batch journal so base and index stay in lockstep.
  size_t removed = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/" + strip_subdir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal_", 0) == 0) {
      std::filesystem::remove(entry.path());
      ++removed;
    }
  }
  ASSERT_GT(removed, 0u);

  auto db_result = SfcDb::Open(dir);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result.value();
  auto base = db.OpenTable("t");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  auto index_table = db.IndexTable("t", "ix");
  ASSERT_TRUE(index_table.ok()) << index_table.status().ToString();

  // Base table recovered to exactly the committed state.
  const auto want_state = CrashExpectedState();
  std::vector<Row> want_rows;
  for (const auto& [xy, payloads] : want_state) {
    for (const uint64_t payload : payloads) {
      want_rows.emplace_back(
          base.value()->curve().IndexOf(Cell(xy.first, xy.second)), payload);
    }
  }
  std::sort(want_rows.begin(), want_rows.end());
  {
    std::vector<Row> got_rows;
    auto cursor = base.value()->NewScanCursor();
    for (; cursor->Valid(); cursor->Next()) {
      got_rows.emplace_back(base.value()->curve().IndexOf(cursor->entry().cell),
                            cursor->entry().payload);
    }
    ASSERT_TRUE(cursor->status().ok()) << cursor->status().ToString();
    std::sort(got_rows.begin(), got_rows.end());
    EXPECT_EQ(got_rows, want_rows);
  }

  // Raw index contents agree with the base entry for entry: one index
  // entry per base row, at extractor(cell) under the index curve, whose
  // payload is the base row's curve key.
  const IndexExtractor* extractor = FindIndexExtractor("cell");
  ASSERT_NE(extractor, nullptr);
  std::vector<Row> want_index;
  {
    auto cursor = base.value()->NewScanCursor();
    for (; cursor->Valid(); cursor->Next()) {
      const SpatialEntry& e = cursor->entry();
      const Cell index_cell =
          extractor->map(e.cell, base.value()->curve().universe());
      want_index.emplace_back(index_table.value()->curve().IndexOf(index_cell),
                              base.value()->curve().IndexOf(e.cell));
    }
    ASSERT_TRUE(cursor->status().ok());
  }
  std::vector<Row> got_index;
  {
    auto cursor = index_table.value()->NewScanCursor();
    for (; cursor->Valid(); cursor->Next()) {
      got_index.emplace_back(
          index_table.value()->curve().IndexOf(cursor->entry().cell),
          cursor->entry().payload);
    }
    ASSERT_TRUE(cursor->status().ok()) << cursor->status().ToString();
  }
  std::sort(want_index.begin(), want_index.end());
  std::sort(got_index.begin(), got_index.end());
  EXPECT_EQ(got_index, want_index);

  // And the query path over the recovered pair returns the committed rows.
  ExpectIndexMatchesBruteForce(
      db, "t", "ix", "cell",
      Box(Cell(0, 0), Cell(kCrashSide - 1, kCrashSide - 1)));
  ASSERT_TRUE(db.Close().ok());
}

TEST(SecondaryIndexTest, CrashRecoveryAfterIndexWalLoss) {
  RunCrashTest(FreshDir("crash_index_wal"), "t__idx__ix");
}

TEST(SecondaryIndexTest, CrashRecoveryAfterBaseWalLoss) {
  RunCrashTest(FreshDir("crash_base_wal"), "t");
}

// --- Tentpole: curve advice from the observed workload, and migration.

TEST(SecondaryIndexTest, AdviseCurveAndMigrate) {
  const Coord kSide = 16;
  const Universe universe(2, kSide);
  const std::string dir = FreshDir("advise");
  auto db_result = SfcDb::Open(dir);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result.value();
  ASSERT_TRUE(db.CreateTable("t", "onion", universe).ok());
  ASSERT_TRUE(db.CreateIndex("t", {"ix", "cell", "zorder"}).ok());

  Rng rng(20260808);
  ApplyRandomOps(db, "t", rng, 300, kSide);

  // No queries served yet and no boxes passed: nothing to advise on.
  EXPECT_EQ(db.AdviseCurve("t", "ix").status().code(),
            StatusCode::kInvalidArgument);

  // Serve full-width height-2 strips — the workload a row-linear curve
  // answers in exactly one cluster.
  for (Coord y = 0; y + 1 < kSide; y += 2) {
    auto cursor = db.NewIndexCursor(
        "t", "ix", Box(Cell(0, y), Cell(kSide - 1, y + 1)));
    while (cursor->Valid()) cursor->Next();
    ASSERT_TRUE(cursor->status().ok()) << cursor->status().ToString();
  }
  auto advice = db.AdviseCurve("t", "ix");
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_TRUE(advice.value().recommended == "row_major" ||
              advice.value().recommended == "snake")
      << advice.value().recommended;
  ASSERT_FALSE(advice.value().ranked.empty());
  EXPECT_DOUBLE_EQ(advice.value().ranked.front().avg_clusters, 1.0);
  for (size_t i = 1; i < advice.value().ranked.size(); ++i) {
    EXPECT_LE(advice.value().ranked[i - 1].modeled_ms_per_query,
              advice.value().ranked[i].modeled_ms_per_query);
  }

  // Explicit boxes override the recorded ring: full-height width-2 strips
  // make column_major the unique single-cluster answer.
  std::vector<Box> columns;
  for (Coord x = 0; x + 1 < kSide; x += 2) {
    columns.push_back(Box(Cell(x, 0), Cell(x + 1, kSide - 1)));
  }
  auto column_advice = db.AdviseCurve("t", "ix", columns);
  ASSERT_TRUE(column_advice.ok()) << column_advice.status().ToString();
  EXPECT_EQ(column_advice.value().recommended, "column_major");

  // Migrate to the row recommendation and verify the rebuilt index still
  // answers every query identically.
  const std::string new_curve = advice.value().recommended;
  ASSERT_TRUE(db.MigrateIndexCurve("t", "ix", new_curve).ok());
  auto specs = db.ListIndexes("t");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].curve, new_curve);
  auto index_table = db.IndexTable("t", "ix");
  ASSERT_TRUE(index_table.ok());
  EXPECT_EQ(index_table.value()->curve().name(), new_curve);
  EXPECT_FALSE(std::filesystem::exists(dir + "/t__idx__ix"));
  ExpectIndexMatchesBruteForce(db, "t", "ix", "cell",
                               Box(Cell(0, 0), Cell(kSide - 1, kSide - 1)));
  for (int i = 0; i < 6; ++i) {
    ExpectIndexMatchesBruteForce(db, "t", "ix", "cell",
                                 RandomBox(rng, kSide));
  }

  // Maintenance continues on the migrated generation; a migration to the
  // current curve is a no-op.
  ApplyRandomOps(db, "t", rng, 100, kSide);
  ASSERT_TRUE(db.MigrateIndexCurve("t", "ix", new_curve).ok());
  ExpectIndexMatchesBruteForce(db, "t", "ix", "cell",
                               Box(Cell(0, 0), Cell(kSide - 1, kSide - 1)));
  ASSERT_TRUE(db.Close().ok());

  // The migrated curve is what the catalog remembers.
  auto reopened = SfcDb::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db2 = *reopened.value();
  auto specs2 = db2.ListIndexes("t");
  ASSERT_EQ(specs2.size(), 1u);
  EXPECT_EQ(specs2[0].curve, new_curve);
  ExpectIndexMatchesBruteForce(db2, "t", "ix", "cell",
                               Box(Cell(0, 0), Cell(kSide - 1, kSide - 1)));
  ASSERT_TRUE(db2.Close().ok());
}

// --- Catalog lifecycle and validation.

TEST(SecondaryIndexTest, CatalogLifecycleAndValidation) {
  const Universe universe(2, 16);
  const std::string dir = FreshDir("catalog");
  auto db_result = SfcDb::Open(dir);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result.value();
  ASSERT_TRUE(db.CreateTable("t", "onion", universe).ok());

  // Hidden-directory infix is reserved.
  EXPECT_EQ(db.CreateTable("a__idx__b", "onion", universe).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(db.CreateIndex("missing", {"ix", "cell", "zorder"}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.CreateIndex("t", {"bad name", "cell", "zorder"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.CreateIndex("t", {"ix", "no_such_extractor", "zorder"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.CreateIndex("t", {"ix", "cell", "no_such_curve"}).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(db.CreateIndex("t", {"ix", "cell", "zorder"}).ok());
  EXPECT_EQ(db.CreateIndex("t", {"ix", "cell", "hilbert"}).code(),
            StatusCode::kInvalidArgument);  // duplicate name
  ASSERT_TRUE(db.CreateIndex("t", {"mirror", "mirror_x", "hilbert"}).ok());

  // An extractor with min_dims above the base universe is refused.
  ASSERT_TRUE(db.CreateTable("line", "row_major", Universe(1, 64)).ok());
  EXPECT_EQ(db.CreateIndex("line", {"ix", "swap_xy", "row_major"}).code(),
            StatusCode::kInvalidArgument);

  // The hidden directory is not reachable through the public table API.
  EXPECT_TRUE(std::filesystem::exists(dir + "/t__idx__ix"));
  EXPECT_EQ(db.OpenTable("t__idx__ix").status().code(), StatusCode::kNotFound);
  const auto tables = db.ListTables();
  EXPECT_EQ(std::count(tables.begin(), tables.end(), "t__idx__ix"), 0);

  auto specs = db.ListIndexes("t");
  ASSERT_EQ(specs.size(), 2u);  // creation order
  EXPECT_EQ(specs[0].name, "ix");
  EXPECT_EQ(specs[1].name, "mirror");
  EXPECT_TRUE(db.ListIndexes("missing").empty());
  ASSERT_TRUE(db.Close().ok());

  // Specs survive reopen; both indexes keep answering queries.
  auto reopened = SfcDb::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db2 = *reopened.value();
  auto specs2 = db2.ListIndexes("t");
  ASSERT_EQ(specs2.size(), 2u);
  EXPECT_EQ(specs2[0].name, "ix");
  EXPECT_EQ(specs2[0].extractor, "cell");
  EXPECT_EQ(specs2[0].curve, "zorder");
  EXPECT_EQ(specs2[1].name, "mirror");
  EXPECT_EQ(specs2[1].extractor, "mirror_x");
  EXPECT_EQ(specs2[1].curve, "hilbert");

  Rng rng(77);
  ApplyRandomOps(db2, "t", rng, 100, 16);
  ExpectIndexMatchesBruteForce(db2, "t", "ix", "cell",
                               Box(Cell(0, 0), Cell(15, 15)));
  ExpectIndexMatchesBruteForce(db2, "t", "mirror", "mirror_x",
                               Box(Cell(0, 0), Cell(15, 15)));

  // DropIndex removes the directory and stops maintenance; the remaining
  // index and the base keep working.
  ASSERT_TRUE(db2.DropIndex("t", "ix").ok());
  EXPECT_FALSE(std::filesystem::exists(dir + "/t__idx__ix"));
  EXPECT_EQ(db2.DropIndex("t", "ix").code(), StatusCode::kNotFound);
  EXPECT_EQ(db2.DropIndex("missing", "ix").code(), StatusCode::kNotFound);
  ASSERT_EQ(db2.ListIndexes("t").size(), 1u);
  {
    auto cursor = db2.NewIndexCursor("t", "ix", Box(Cell(0, 0), Cell(3, 3)));
    EXPECT_FALSE(cursor->Valid());
    EXPECT_EQ(cursor->status().code(), StatusCode::kNotFound);
  }
  ApplyRandomOps(db2, "t", rng, 50, 16);
  ExpectIndexMatchesBruteForce(db2, "t", "mirror", "mirror_x",
                               Box(Cell(0, 0), Cell(15, 15)));

  // DropTable takes its index directories with it.
  ASSERT_TRUE(db2.DropTable("t").ok());
  EXPECT_FALSE(std::filesystem::exists(dir + "/t"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/t__idx__mirror"));
  EXPECT_TRUE(db2.ListIndexes("t").empty());
  ASSERT_TRUE(db2.Close().ok());
}

// --- Read budgets, snapshot reads, and the metric counters.

TEST(SecondaryIndexTest, LimitSnapshotAndMetrics) {
  const Coord kSide = 16;
  const Universe universe(2, kSide);
  const std::string dir = FreshDir("limits");
  auto db_result = SfcDb::Open(dir);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result.value();
  ASSERT_TRUE(db.CreateTable("t", "onion", universe).ok());
  ASSERT_TRUE(db.CreateIndex("t", {"ix", "cell", "hilbert"}).ok());

  // 64 distinct rows in the lower-left quadrant.
  WriteBatch load;
  for (Coord x = 0; x < 8; ++x) {
    for (Coord y = 0; y < 8; ++y) load.Put("t", Cell(x, y), x * 100 + y);
  }
  ASSERT_TRUE(db.Write(std::move(load)).ok());
  const Box all(Cell(0, 0), Cell(kSide - 1, kSide - 1));

  {
    IndexReadOptions options;
    options.limit = 10;
    auto cursor = db.NewIndexCursor("t", "ix", all, options);
    uint64_t delivered = 0;
    for (; cursor->Valid(); cursor->Next()) ++delivered;
    EXPECT_TRUE(cursor->status().ok()) << cursor->status().ToString();
    EXPECT_EQ(delivered, 10u);
    EXPECT_TRUE(cursor->hit_read_budget());
  }

  // A cross-table snapshot freezes what the index cursor resolves.
  auto snapshot = db.GetSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  WriteBatch more;
  for (Coord x = 8; x < 12; ++x) more.Put("t", Cell(x, 0), 9000 + x);
  ASSERT_TRUE(db.Write(std::move(more)).ok());
  auto count_rows = [&](const IndexReadOptions& options) {
    auto cursor = db.NewIndexCursor("t", "ix", all, options);
    uint64_t n = 0;
    for (; cursor->Valid(); cursor->Next()) ++n;
    EXPECT_TRUE(cursor->status().ok()) << cursor->status().ToString();
    return n;
  };
  IndexReadOptions pinned;
  pinned.snapshot = snapshot.value();
  EXPECT_EQ(count_rows(pinned), 64u);
  EXPECT_EQ(count_rows(IndexReadOptions{}), 68u);

  // Query and resolution counters moved; nothing dangled.
  EXPECT_GT(db.metrics().counter("index.queries")->value(), 0u);
  EXPECT_GT(db.metrics().counter("index.rows_resolved")->value(), 0u);
  EXPECT_EQ(db.metrics().counter("index.dangling_entries")->value(), 0u);

  // Out-of-universe boxes surface as an error cursor, not a crash.
  {
    auto cursor = db.NewIndexCursor(
        "t", "ix", Box(Cell(0, 0), Cell(kSide, kSide)));
    EXPECT_FALSE(cursor->Valid());
    EXPECT_FALSE(cursor->status().ok());
  }
  ASSERT_TRUE(db.Close().ok());
}

// --- Concurrency smoke (runs under TSan in CI): concurrent WriteBatches
// on an indexed table against concurrent index readers.

TEST(SecondaryIndexTest, ConcurrentWritesAndIndexReads) {
  const Coord kSide = 32;
  const Universe universe(2, kSide);
  const std::string dir = FreshDir("concurrent");
  SfcDbOptions options;
  options.table_options.memtable_flush_entries = 256;
  auto db_result = SfcDb::Open(dir, options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result.value();
  ASSERT_TRUE(db.CreateTable("t", "onion", universe).ok());
  ASSERT_TRUE(db.CreateIndex("t", {"ix", "swap_xy", "zorder"}).ok());

  std::atomic<bool> writes_ok{true};
  std::atomic<bool> reads_ok{true};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&db, &writes_ok, w] {
      Rng rng(1000 + w);
      for (int i = 0; i < 150 && writes_ok.load(); ++i) {
        WriteBatch batch;
        for (int op = 0; op < 4; ++op) {
          batch.Put("t",
                    Cell(static_cast<Coord>(rng.UniformInclusive(kSide - 1)),
                         static_cast<Coord>(rng.UniformInclusive(kSide - 1))),
                    static_cast<uint64_t>(w) * 1000000 + i);
        }
        batch.Delete(
            "t", Cell(static_cast<Coord>(rng.UniformInclusive(kSide - 1)),
                      static_cast<Coord>(rng.UniformInclusive(kSide - 1))));
        if (!db.Write(std::move(batch)).ok()) writes_ok.store(false);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&db, &reads_ok, r] {
      Rng rng(2000 + r);
      for (int i = 0; i < 40 && reads_ok.load(); ++i) {
        auto cursor = db.NewIndexCursor("t", "ix", RandomBox(rng, kSide));
        while (cursor->Valid()) cursor->Next();
        if (!cursor->status().ok()) reads_ok.store(false);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(writes_ok.load());
  EXPECT_TRUE(reads_ok.load());

  // After the dust settles the index agrees with the base exactly.
  ExpectIndexMatchesBruteForce(db, "t", "ix", "swap_xy",
                               Box(Cell(0, 0), Cell(kSide - 1, kSide - 1)));
  ASSERT_TRUE(db.Close().ok());
}

}  // namespace
}  // namespace onion::storage
