// Tests for query-box -> key-range decomposition: the hierarchical and
// cluster-scan algorithms must produce identical minimal range sets, whose
// cardinality is the clustering number and whose union is exactly the box.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/boxiter.h"
#include "common/rng.h"
#include "index/decompose.h"
#include "sfc/registry.h"

namespace onion {
namespace {

void ExpectExactCover(const SpaceFillingCurve& curve, const Box& box,
                      const std::vector<KeyRange>& ranges) {
  std::set<Key> expected;
  ForEachCell(box, [&](const Cell& cell) {
    expected.insert(curve.IndexOf(cell));
  });
  std::set<Key> covered;
  for (const KeyRange& range : ranges) {
    for (Key key = range.lo; key <= range.hi; ++key) {
      ASSERT_TRUE(covered.insert(key).second) << "overlapping ranges";
    }
  }
  EXPECT_EQ(covered, expected);
}

TEST(MergeAdjacentRangesTest, MergesAndSorts) {
  std::vector<KeyRange> ranges = {{10, 12}, {0, 3}, {4, 5}, {13, 20}, {30, 30}};
  MergeAdjacentRanges(&ranges);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (KeyRange{0, 5}));
  EXPECT_EQ(ranges[1], (KeyRange{10, 20}));
  EXPECT_EQ(ranges[2], (KeyRange{30, 30}));
}

TEST(MergeAdjacentRangesTest, EmptyAndSingle) {
  std::vector<KeyRange> empty;
  MergeAdjacentRanges(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<KeyRange> single = {{5, 9}};
  MergeAdjacentRanges(&single);
  ASSERT_EQ(single.size(), 1u);
}

struct DecomposeCase {
  std::string name;
  int dims;
  Coord side;
};

class DecomposeProperty : public testing::TestWithParam<DecomposeCase> {};

TEST_P(DecomposeProperty, HierarchicalEqualsClusterScan) {
  const DecomposeCase& param = GetParam();
  auto curve = MakeCurve(param.name, Universe(param.dims, param.side)).value();
  ASSERT_TRUE(curve->has_contiguous_aligned_blocks());
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    Cell lo = Cell::Filled(param.dims, 0);
    Cell hi = Cell::Filled(param.dims, 0);
    for (int axis = 0; axis < param.dims; ++axis) {
      auto a = static_cast<Coord>(rng.UniformInclusive(param.side - 1));
      auto b = static_cast<Coord>(rng.UniformInclusive(param.side - 1));
      lo[axis] = std::min(a, b);
      hi[axis] = std::max(a, b);
    }
    const Box box(lo, hi);
    const auto hierarchical = DecomposeHierarchical(*curve, box);
    const auto scanned = DecomposeByClusterScan(*curve, box);
    ASSERT_EQ(hierarchical.size(), scanned.size()) << box.ToString();
    for (size_t i = 0; i < hierarchical.size(); ++i) {
      ASSERT_EQ(hierarchical[i], scanned[i]) << box.ToString();
    }
  }
}

TEST_P(DecomposeProperty, CoversExactlyTheBox) {
  const DecomposeCase& param = GetParam();
  auto curve = MakeCurve(param.name, Universe(param.dims, param.side)).value();
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    Cell lo = Cell::Filled(param.dims, 0);
    Cell hi = Cell::Filled(param.dims, 0);
    for (int axis = 0; axis < param.dims; ++axis) {
      auto a = static_cast<Coord>(rng.UniformInclusive(param.side - 1));
      auto b = static_cast<Coord>(rng.UniformInclusive(param.side - 1));
      lo[axis] = std::min(a, b);
      hi[axis] = std::max(a, b);
    }
    const Box box(lo, hi);
    ExpectExactCover(*curve, box, DecomposeBox(*curve, box));
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitRecursiveCurves, DecomposeProperty,
    testing::Values(DecomposeCase{"zorder", 2, 16},
                    DecomposeCase{"graycode", 2, 16},
                    DecomposeCase{"hilbert", 2, 16},
                    DecomposeCase{"hilbert_nd", 2, 16},
                    DecomposeCase{"zorder", 3, 8},
                    DecomposeCase{"graycode", 3, 8},
                    DecomposeCase{"hilbert", 3, 8},
                    DecomposeCase{"peano", 2, 27},
                    DecomposeCase{"peano", 3, 9}),
    [](const testing::TestParamInfo<DecomposeCase>& info) {
      return info.param.name + "_" + std::to_string(info.param.dims) + "d";
    });

TEST(DecomposeTest, OnionQueriesDecomposeExactly) {
  auto curve = MakeCurve("onion", Universe(2, 10)).value();
  const Box box = Box::FromCornerAndLengths(Cell(2, 3), {5, 4});
  ExpectExactCover(*curve, box, DecomposeBox(*curve, box));
}

TEST(DecomposeTest, FullUniverseIsOneRange) {
  for (const std::string name : {"zorder", "hilbert", "onion"}) {
    auto curve = MakeCurve(name, Universe(2, 16)).value();
    const auto ranges = DecomposeBox(*curve, curve->universe().Bounds());
    ASSERT_EQ(ranges.size(), 1u) << name;
    EXPECT_EQ(ranges[0].lo, 0u);
    EXPECT_EQ(ranges[0].hi, curve->num_cells() - 1);
  }
}

TEST(DecomposeTest, SingleCell) {
  auto curve = MakeCurve("hilbert", Universe(2, 16)).value();
  const Box box = Box::FromCornerAndLengths(Cell(9, 4), {1, 1});
  const auto ranges = DecomposeBox(*curve, box);
  ASSERT_EQ(ranges.size(), 1u);
  const Key key = curve->IndexOf(Cell(9, 4));
  EXPECT_EQ(ranges[0], (KeyRange{key, key}));
}

TEST(DecomposeTest, Onion2DAnalyticMatchesClusterScan) {
  Rng rng(2718);
  for (const Coord side : {8u, 9u, 16u, 31u, 64u}) {
    auto result = Onion2D::Make(Universe(2, side));
    ASSERT_TRUE(result.ok());
    const auto& onion = *result.value();
    for (int trial = 0; trial < 60; ++trial) {
      auto a = static_cast<Coord>(rng.UniformInclusive(side - 1));
      auto b = static_cast<Coord>(rng.UniformInclusive(side - 1));
      auto c = static_cast<Coord>(rng.UniformInclusive(side - 1));
      auto d = static_cast<Coord>(rng.UniformInclusive(side - 1));
      const Box box(Cell(std::min(a, b), std::min(c, d)),
                    Cell(std::max(a, b), std::max(c, d)));
      const auto analytic = DecomposeOnion2DAnalytic(onion, box);
      const auto scanned = DecomposeByClusterScan(onion, box);
      ASSERT_EQ(analytic.size(), scanned.size())
          << "side " << side << " " << box.ToString();
      for (size_t i = 0; i < analytic.size(); ++i) {
        ASSERT_EQ(analytic[i], scanned[i])
            << "side " << side << " " << box.ToString();
      }
    }
  }
}

TEST(DecomposeTest, Onion2DAnalyticEdgeShapes) {
  auto onion = Onion2D::Make(Universe(2, 12)).value();
  const std::vector<Box> shapes = {
      Box(Cell(0, 0), Cell(11, 11)),   // whole universe
      Box(Cell(5, 5), Cell(6, 6)),     // center 2x2
      Box(Cell(0, 0), Cell(0, 0)),     // single corner cell
      Box(Cell(0, 0), Cell(11, 0)),    // bottom row
      Box(Cell(4, 0), Cell(4, 11)),    // full column
      Box(Cell(1, 1), Cell(10, 10)),   // all inner layers
      Box(Cell(0, 3), Cell(11, 8)),    // full-width band
  };
  for (const Box& box : shapes) {
    const auto analytic = DecomposeOnion2DAnalytic(*onion, box);
    const auto scanned = DecomposeByClusterScan(*onion, box);
    ASSERT_EQ(analytic, scanned) << box.ToString();
  }
}

TEST(DecomposeTest, DecomposeBoxRoutesOnion2DToAnalytic) {
  // DecomposeBox must produce identical results through the dispatcher.
  auto curve = MakeCurve("onion", Universe(2, 20)).value();
  const Box box = Box(Cell(2, 5), Cell(17, 11));
  EXPECT_EQ(DecomposeBox(*curve, box),
            DecomposeByClusterScan(*curve, box));
}

TEST(DecomposeTest, RangeCountEqualsClusteringNumber) {
  auto hilbert = MakeCurve("hilbert", Universe(2, 32)).value();
  auto onion = MakeCurve("onion", Universe(2, 32)).value();
  const Box box = Box::FromCornerAndLengths(Cell(3, 5), {20, 17});
  EXPECT_EQ(DecomposeBox(*hilbert, box).size(),
            ClusteringNumber(*hilbert, box));
  EXPECT_EQ(DecomposeBox(*onion, box).size(),
            ClusteringNumber(*onion, box));
}

}  // namespace
}  // namespace onion
