// Tests for src/common: Status/Result, the deterministic RNG, box-plot
// statistics, and the CLI flag parser.

#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace onion {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("side must be even");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "InvalidArgument: side must be even");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformInclusiveStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(rng.UniformInclusive(9), 9u);
  }
}

TEST(RngTest, UniformInclusiveHitsAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInclusive(7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t draw = rng.UniformRange(10, 20);
    EXPECT_GE(draw, 10u);
    EXPECT_LE(draw, 20u);
  }
}

TEST(RngTest, UniformIsRoughlyBalanced) {
  Rng rng(99);
  const int buckets = 10;
  const int draws = 100000;
  int counts[10] = {};
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.UniformInclusive(buckets - 1)];
  }
  for (int b = 0; b < buckets; ++b) {
    EXPECT_NEAR(counts[b], draws / buckets, draws / buckets / 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, SplitMix64MatchesReference) {
  // Reference values of the SplitMix64 sequence seeded with 0 (from the
  // published algorithm by Steele/Lea/Flood).
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(&state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(&state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(SplitMix64(&state), 0x06c45d188009454fULL);
}

TEST(StatsTest, EmptySample) {
  const BoxPlot box = Summarize(std::vector<double>{});
  EXPECT_EQ(box.count, 0u);
  EXPECT_EQ(box.mean, 0.0);
}

TEST(StatsTest, SingleValue) {
  const BoxPlot box = Summarize(std::vector<double>{5.0});
  EXPECT_EQ(box.min, 5.0);
  EXPECT_EQ(box.median, 5.0);
  EXPECT_EQ(box.max, 5.0);
  EXPECT_EQ(box.mean, 5.0);
}

TEST(StatsTest, FiveNumberSummary) {
  const BoxPlot box = Summarize(std::vector<double>{1, 2, 3, 4, 5});
  EXPECT_EQ(box.min, 1.0);
  EXPECT_EQ(box.q25, 2.0);
  EXPECT_EQ(box.median, 3.0);
  EXPECT_EQ(box.q75, 4.0);
  EXPECT_EQ(box.max, 5.0);
  EXPECT_EQ(box.mean, 3.0);
  EXPECT_EQ(box.count, 5u);
}

TEST(StatsTest, QuantileInterpolation) {
  const BoxPlot box = Summarize(std::vector<double>{0, 10});
  EXPECT_DOUBLE_EQ(box.q25, 2.5);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  EXPECT_DOUBLE_EQ(box.q75, 7.5);
}

TEST(StatsTest, UnsortedInputIsSorted) {
  const BoxPlot box = Summarize(std::vector<double>{9, 1, 5});
  EXPECT_EQ(box.min, 1.0);
  EXPECT_EQ(box.max, 9.0);
  EXPECT_EQ(box.median, 5.0);
}

TEST(StatsTest, IntegerOverload) {
  const BoxPlot box = Summarize(std::vector<uint64_t>{2, 4, 6});
  EXPECT_EQ(box.mean, 4.0);
  EXPECT_EQ(box.count, 3u);
}

TEST(StatsTest, ToStringFormat) {
  const BoxPlot box = Summarize(std::vector<double>{1, 2, 3});
  EXPECT_EQ(box.ToString(), "1.0 / 1.5 / 2.0 / 2.5 / 3.0 (mean 2.00)");
}

CommandLine ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return CommandLine(static_cast<int>(args.size()),
                     const_cast<char**>(args.data()));
}

TEST(CliTest, ParsesEqualsForm) {
  const CommandLine cli = ParseArgs({"--side=128", "--rho=0.5"});
  EXPECT_EQ(cli.GetInt("side", 0), 128);
  EXPECT_DOUBLE_EQ(cli.GetDouble("rho", 0), 0.5);
}

TEST(CliTest, ParsesSpaceForm) {
  const CommandLine cli = ParseArgs({"--queries", "500"});
  EXPECT_EQ(cli.GetInt("queries", 0), 500);
}

TEST(CliTest, DefaultsWhenMissing) {
  const CommandLine cli = ParseArgs({});
  EXPECT_EQ(cli.GetInt("side", 64), 64);
  EXPECT_EQ(cli.GetString("curve", "onion"), "onion");
  EXPECT_TRUE(cli.GetBool("verbose", true));
  EXPECT_FALSE(cli.Has("side"));
}

TEST(CliTest, BareBooleanFlag) {
  const CommandLine cli = ParseArgs({"--full"});
  EXPECT_TRUE(cli.GetBool("full", false));
  EXPECT_TRUE(cli.Has("full"));
}

TEST(CliTest, ExplicitFalse) {
  const CommandLine cli = ParseArgs({"--full=false"});
  EXPECT_FALSE(cli.GetBool("full", true));
}

}  // namespace
}  // namespace onion
