// Tests for the Peano curve: the classic 3x3 serpentine, self-similarity
// (aligned 3^k-blocks are contiguous), continuity, and the base-3 side
// requirement.

#include <gtest/gtest.h>

#include "analysis/clustering.h"
#include "analysis/continuity.h"
#include "sfc/peano.h"

namespace onion {
namespace {

std::unique_ptr<PeanoCurve> MakePeano(int dims, Coord side) {
  auto result = PeanoCurve::Make(Universe(dims, side));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(PeanoTest, IsPowerOfThree) {
  EXPECT_TRUE(PeanoCurve::IsPowerOfThree(1));
  EXPECT_TRUE(PeanoCurve::IsPowerOfThree(3));
  EXPECT_TRUE(PeanoCurve::IsPowerOfThree(27));
  EXPECT_TRUE(PeanoCurve::IsPowerOfThree(729));
  EXPECT_FALSE(PeanoCurve::IsPowerOfThree(0));
  EXPECT_FALSE(PeanoCurve::IsPowerOfThree(2));
  EXPECT_FALSE(PeanoCurve::IsPowerOfThree(6));
  EXPECT_FALSE(PeanoCurve::IsPowerOfThree(10));
}

TEST(PeanoTest, RejectsNonPowerOfThreeSides) {
  EXPECT_FALSE(PeanoCurve::Make(Universe(2, 8)).ok());
  EXPECT_FALSE(PeanoCurve::Make(Universe(2, 6)).ok());
  EXPECT_TRUE(PeanoCurve::Make(Universe(2, 9)).ok());
}

TEST(PeanoTest, ClassicThreeByThreeSerpentine) {
  // The canonical Peano 3x3: columns traversed boustrophedon in y.
  auto curve = MakePeano(2, 3);
  const Cell expected[9] = {
      Cell(0, 0), Cell(0, 1), Cell(0, 2), Cell(1, 2), Cell(1, 1),
      Cell(1, 0), Cell(2, 0), Cell(2, 1), Cell(2, 2),
  };
  for (Key key = 0; key < 9; ++key) {
    EXPECT_EQ(curve->CellAt(key), expected[key]) << "key " << key;
    EXPECT_EQ(curve->IndexOf(expected[key]), key);
  }
}

TEST(PeanoTest, ContinuousAtLargerSizes) {
  EXPECT_TRUE(VerifyContinuity(*MakePeano(2, 27)));
  EXPECT_TRUE(VerifyContinuity(*MakePeano(2, 81)));
  EXPECT_TRUE(VerifyContinuity(*MakePeano(3, 9)));
  EXPECT_TRUE(VerifyContinuity(*MakePeano(4, 3)));
}

TEST(PeanoTest, AlignedBlocksAreContiguous) {
  // Aligned 3x3 blocks of the 9x9 curve occupy 9 consecutive keys starting
  // at multiples of 9 (self-similarity).
  auto curve = MakePeano(2, 9);
  for (Coord bx = 0; bx < 9; bx += 3) {
    for (Coord by = 0; by < 9; by += 3) {
      Key min_key = curve->num_cells();
      Key max_key = 0;
      for (Coord dx = 0; dx < 3; ++dx) {
        for (Coord dy = 0; dy < 3; ++dy) {
          const Key key = curve->IndexOf(Cell(bx + dx, by + dy));
          min_key = std::min(min_key, key);
          max_key = std::max(max_key, key);
        }
      }
      EXPECT_EQ(max_key - min_key, 8u);
      EXPECT_EQ(min_key % 9, 0u);
    }
  }
}

TEST(PeanoTest, StartsAtOriginEndsAtFarCorner) {
  auto curve = MakePeano(2, 27);
  EXPECT_EQ(curve->CellAt(0), Cell(0, 0));
  EXPECT_EQ(curve->EndCell(), Cell(26, 26));
}

TEST(PeanoTest, ClusteringSanityOnRowQueries) {
  // Like all continuous curves, a full row decomposes into O(sqrt(n))
  // clusters and the whole universe into exactly 1.
  auto curve = MakePeano(2, 27);
  EXPECT_EQ(ClusteringNumber(*curve, curve->universe().Bounds()), 1u);
  const Box row = Box::FromCornerAndLengths(Cell(0, 13), {27, 1});
  const uint64_t clusters = ClusteringNumber(*curve, row);
  EXPECT_GE(clusters, 2u);
  EXPECT_LE(clusters, 27u);
}

}  // namespace
}  // namespace onion
