// Concurrency tests for the storage engine, designed to run under
// ThreadSanitizer (the CI tsan job builds with -DONION_SANITIZE=thread):
// readers querying while the background worker flushes and compacts,
// multiple writers, concurrent manual compaction, and a shared buffer
// pool hammered from several threads.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/cursor.h"
#include "storage/segment.h"
#include "storage/sfc_table.h"
#include "workloads/generators.h"

namespace onion::storage {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "/storage_concurrency_test/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Drains a box query through the streaming cursor path. Deliberately free
// of gtest assertions: reader threads in these tests report failure through
// atomics, not EXPECTs (which are not thread-safe everywhere).
std::vector<SpatialEntry> CursorQuery(SfcTable& table, const Box& box) {
  auto cursor = table.NewBoxCursor(box);
  return DrainCursor(cursor.get());
}

// Readers run box queries nonstop while one writer inserts enough points
// to force several background flushes and at least one leveling round.
// Every result a reader sees must lie inside its box (no torn reads, no
// entries from retired segments double-counted against the box filter),
// and the final flushed state must hold exactly the inserted points.
TEST(StorageConcurrencyTest, ReadersProceedDuringFlushAndCompaction) {
  const Universe universe(2, 64);
  const auto points = RandomPoints(universe, 8000, 97);
  SfcTableOptions options;
  options.entries_per_page = 32;
  options.pool_pages = 16;
  options.memtable_flush_entries = 400;  // ~20 background flushes
  options.l0_compaction_trigger = 3;
  auto table_result =
      SfcTable::Create(FreshDir("read_during_flush"), "hilbert", universe,
                       options);
  ASSERT_TRUE(table_result.ok()) << table_result.status().ToString();
  auto& table = *table_result.value();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries_run{0};
  std::atomic<bool> reader_failed{false};
  const auto boxes = RandomCubes(universe, 10, 30, 101);
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!done.load(std::memory_order_relaxed)) {
        const Box& box = boxes[i++ % boxes.size()];
        for (const SpatialEntry& entry : CursorQuery(table, box)) {
          if (!box.Contains(entry.cell)) {
            reader_failed.store(true);
            return;
          }
        }
        queries_run.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(table.Insert(points[i], i).ok());
  }
  ASSERT_TRUE(table.Flush().ok());
  done.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(reader_failed.load());
  EXPECT_GT(queries_run.load(), 0u);

  EXPECT_EQ(table.size(), points.size());
  const auto all = CursorQuery(table, Box(Cell(0, 0), Cell(63, 63)));
  EXPECT_EQ(all.size(), points.size());
}

// Several writer threads share one table; the total must come out exact
// and queryable. (Payloads are disjoint per thread so loss would show.)
TEST(StorageConcurrencyTest, ConcurrentWritersLoseNothing) {
  const Universe universe(2, 64);
  SfcTableOptions options;
  options.memtable_flush_entries = 300;
  options.l0_compaction_trigger = 3;
  auto table_result = SfcTable::Create(FreshDir("concurrent_writers"),
                                       "zorder", universe, options);
  ASSERT_TRUE(table_result.ok());
  auto& table = *table_result.value();

  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 1500;
  std::atomic<bool> writer_failed{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1234 + w);
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const Cell cell(rng.UniformInclusive(63), rng.UniformInclusive(63));
        const uint64_t payload = static_cast<uint64_t>(w) * kPerWriter + i;
        if (!table.Insert(cell, payload).ok()) {
          writer_failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  ASSERT_FALSE(writer_failed.load());
  ASSERT_TRUE(table.Flush().ok());
  EXPECT_EQ(table.size(), kWriters * kPerWriter);

  std::vector<bool> seen(kWriters * kPerWriter, false);
  for (const SpatialEntry& entry :
       CursorQuery(table, Box(Cell(0, 0), Cell(63, 63)))) {
    ASSERT_LT(entry.payload, seen.size());
    EXPECT_FALSE(seen[entry.payload]) << "duplicated payload";
    seen[entry.payload] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](bool b) { return b; }));
}

// Manual Compact() while readers are live: results stay correct before,
// during, and after, and the table ends at a single segment.
TEST(StorageConcurrencyTest, ManualCompactionUnderReaders) {
  const Universe universe(2, 64);
  const auto points = RandomPoints(universe, 5000, 103);
  SfcTableOptions options;
  options.memtable_flush_entries = 500;
  options.l0_compaction_trigger = 100;  // keep it fragmented until Compact
  auto table_result = SfcTable::Create(FreshDir("manual_compact"), "onion",
                                       universe, options);
  ASSERT_TRUE(table_result.ok());
  auto& table = *table_result.value();
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(table.Insert(points[i], i).ok());
  }
  ASSERT_TRUE(table.Flush().ok());
  ASSERT_GT(table.num_segments(), 1u);

  const Box everything(Cell(0, 0), Cell(63, 63));
  const size_t expected = CursorQuery(table, everything).size();
  std::atomic<bool> done{false};
  std::atomic<bool> reader_failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        if (CursorQuery(table, everything).size() != expected) {
          reader_failed.store(true);
          return;
        }
      }
    });
  }
  ASSERT_TRUE(table.Compact().ok());
  done.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(reader_failed.load());
  EXPECT_EQ(table.num_segments(), 1u);
  EXPECT_EQ(CursorQuery(table, everything).size(), expected);
}

// Close() racing a manual Compact(): Close must not report quiesced while
// the compaction is still installing manifests. Whatever interleaving
// happens, both calls return, the data survives intact, and the table is
// cleanly closed afterwards.
TEST(StorageConcurrencyTest, CloseDuringManualCompactionQuiesces) {
  const Universe universe(2, 64);
  const auto points = RandomPoints(universe, 4000, 107);
  SfcTableOptions options;
  options.memtable_flush_entries = 400;
  options.l0_compaction_trigger = 100;  // fragmented until Compact
  auto table_result = SfcTable::Create(FreshDir("close_vs_compact"),
                                       "hilbert", universe, options);
  ASSERT_TRUE(table_result.ok());
  auto& table = *table_result.value();
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(table.Insert(points[i], i).ok());
  }
  ASSERT_TRUE(table.Flush().ok());
  ASSERT_GT(table.num_segments(), 1u);

  std::thread compactor([&] {
    const Status status = table.Compact();
    // Either it won the race and compacted, or Close() got there first.
    EXPECT_TRUE(status.ok() ||
                status.code() == StatusCode::kInvalidArgument)
        << status.ToString();
  });
  ASSERT_TRUE(table.Close().ok());
  compactor.join();
  EXPECT_TRUE(table.Close().ok());  // still idempotent after the race
  EXPECT_EQ(table.size(), points.size());
  EXPECT_EQ(CursorQuery(table, Box(Cell(0, 0), Cell(63, 63))).size(),
            points.size());
}

// The shared buffer pool itself: many threads scanning two segments with
// a pool too small to hold them, so fetches, evictions, and the stats
// counters race as hard as possible.
// Regression for the worker-registration lifecycle: worker_client_ is a
// table-lock-guarded field that StartWorker used to publish WITHOUT the
// lock, racing with the pool thread (which reads it under the lock to
// re-notify itself) and with StopWorker. Cycle tables fast enough that
// Close() routinely overlaps in-flight background flushes, with writer
// threads notifying the worker the whole time — under TSan (CI) the old
// unguarded publish is a reported race.
TEST(StorageConcurrencyTest, WorkerLifecycleUnderChurn) {
  const Universe universe(2, 64);
  const auto points = RandomPoints(universe, 600, 131);
  for (int round = 0; round < 8; ++round) {
    SfcTableOptions options;
    options.entries_per_page = 32;
    options.pool_pages = 16;
    options.memtable_flush_entries = 50;  // background work every 50 inserts
    auto table_result = SfcTable::Create(
        FreshDir("worker_churn_" + std::to_string(round)), "hilbert",
        universe, options);
    ASSERT_TRUE(table_result.ok()) << table_result.status().ToString();
    auto& table = *table_result.value();
    std::atomic<bool> writer_failed{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 2; ++t) {
      writers.emplace_back([&, t] {
        for (size_t i = static_cast<size_t>(t); i < points.size(); i += 2) {
          if (!table.Insert(points[i], i).ok()) {
            writer_failed.store(true);
            return;
          }
        }
      });
    }
    for (std::thread& writer : writers) writer.join();
    EXPECT_FALSE(writer_failed.load());
    // Close while the last rotation's flush may still be in flight: the
    // quiesce path reads worker_client_ under the lock and must agree
    // with StartWorker's publish.
    ASSERT_TRUE(table.Close().ok());
    EXPECT_EQ(table.size(), points.size());
  }
}

TEST(StorageConcurrencyTest, BufferPoolParallelScans) {
  const std::string dir = FreshDir("pool_parallel");
  std::filesystem::create_directories(dir);
  auto make_segment = [&](const std::string& name) {
    SegmentWriter writer(dir + "/" + name, 8);
    for (Key key = 0; key < 512; ++key) {
      EXPECT_TRUE(writer.Add(key, key * 3).ok());
    }
    EXPECT_TRUE(writer.Finish().ok());
    auto reader = SegmentReader::Open(dir + "/" + name);
    EXPECT_TRUE(reader.ok());
    return std::move(reader).value();
  };
  auto seg_a = make_segment("a.sfc");
  auto seg_b = make_segment("b.sfc");
  BufferPool pool(8);  // 128 pages total across both segments

  std::atomic<bool> failed{false};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 4; ++t) {
    scanners.emplace_back([&, t] {
      Rng rng(7 + t);
      const SegmentReader& segment = (t % 2 == 0) ? *seg_a : *seg_b;
      for (int round = 0; round < 200; ++round) {
        const Key lo = rng.UniformInclusive(500);
        const Key hi = lo + rng.UniformInclusive(40);
        Key expect = lo;
        bool ok = true;
        pool.ScanRange(segment, lo, hi, [&](Key key, uint64_t payload) {
          if (key != expect || payload != key * 3) ok = false;
          ++expect;
        });
        const Key last = std::min<Key>(hi, 511);
        if (!ok || (lo <= 511 && expect != last + 1)) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& scanner : scanners) scanner.join();
  EXPECT_FALSE(failed.load());
  const IoStats stats = pool.stats();
  EXPECT_GT(stats.page_reads, 0u);
  EXPECT_GT(stats.entries_read, 0u);
}

}  // namespace
}  // namespace onion::storage
