// Shared backward-compat fixture: a byte-exact writer of the segment
// format version 1 layout (the fixed-page format shipped before segment
// format v2, specified in docs/storage_format.md). It reproduces the v1
// header checksum independently of segment.cc, so these tests prove the
// current reader opens REAL v1 bytes — not whatever today's writer
// happens to emit. Used by segment_test.cc (file-level round trip) and
// sfc_table_test.cc (a whole v1 table directory that must open, serve
// queries, and upgrade on compaction).

#ifndef ONION_TESTS_V1_SEGMENT_FIXTURE_H_
#define ONION_TESTS_V1_SEGMENT_FIXTURE_H_

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/codec.h"
#include "storage/page_source.h"

namespace onion::storage {

/// Writes a format-v1 segment file: 64-byte header, fixed-size
/// zero-padded raw pages, fence block, v1 checksum. `entries` must be
/// sorted by key and non-empty.
inline void WriteV1SegmentFixture(const std::string& path,
                                  const std::vector<Entry>& entries,
                                  uint32_t entries_per_page) {
  ASSERT_FALSE(entries.empty());
  const uint64_t num_pages =
      (entries.size() + entries_per_page - 1) / entries_per_page;
  const uint64_t page_bytes =
      static_cast<uint64_t>(entries_per_page) * kEntryBytes;
  const uint64_t fence_offset = 64 + num_pages * page_bytes;
  std::vector<uint8_t> bytes(fence_offset + num_pages * kEntryBytes, 0);
  for (size_t i = 0; i < entries.size(); ++i) {
    uint8_t* at = &bytes[64 + (i / entries_per_page) * page_bytes +
                         (i % entries_per_page) * kEntryBytes];
    PutU64(at, entries[i].key);
    PutU64(at + 8, entries[i].payload);
  }
  for (uint64_t p = 0; p < num_pages; ++p) {
    const size_t begin = p * entries_per_page;
    const size_t end =
        std::min<size_t>(begin + entries_per_page, entries.size());
    PutU64(&bytes[fence_offset + p * kEntryBytes], entries[begin].key);
    PutU64(&bytes[fence_offset + p * kEntryBytes + 8], entries[end - 1].key);
  }
  std::memcpy(bytes.data(), "OSFCSEG1", 8);
  PutU32(&bytes[8], 1);  // format version 1
  PutU32(&bytes[12], entries_per_page);
  PutU64(&bytes[16], entries.size());
  PutU64(&bytes[24], num_pages);
  PutU64(&bytes[32], entries.front().key);
  PutU64(&bytes[40], entries.back().key);
  PutU64(&bytes[48], fence_offset);
  // The v1 header checksum, reproduced independently of segment.cc.
  uint64_t sum = 0x0410105fc5e671ULL;
  sum ^= Rotl64(static_cast<uint64_t>(1) << 32 | entries_per_page, 1);
  sum ^= Rotl64(entries.size(), 7);
  sum ^= Rotl64(num_pages, 13);
  sum ^= Rotl64(entries.front().key, 19);
  sum ^= Rotl64(entries.back().key, 29);
  sum ^= Rotl64(fence_offset, 37);
  PutU64(&bytes[56], sum);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

}  // namespace onion::storage

#endif  // ONION_TESTS_V1_SEGMENT_FIXTURE_H_
