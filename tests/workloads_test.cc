// Tests for the workload generators: determinism, bounds, and the
// structural properties of Algorithm 1 (fixed-ratio rectangles).

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "workloads/generators.h"

namespace onion {
namespace {

TEST(RandomCubesTest, BoundsAndShape) {
  const Universe universe(2, 64);
  const auto cubes = RandomCubes(universe, 16, 100, 1);
  EXPECT_EQ(cubes.size(), 100u);
  for (const Box& box : cubes) {
    EXPECT_TRUE(universe.Contains(box));
    EXPECT_EQ(box.Length(0), 16u);
    EXPECT_EQ(box.Length(1), 16u);
  }
}

TEST(RandomCubesTest, DeterministicPerSeed) {
  const Universe universe(2, 64);
  const auto a = RandomCubes(universe, 8, 50, 42);
  const auto b = RandomCubes(universe, 8, 50, 42);
  const auto c = RandomCubes(universe, 8, 50, 43);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == c[i])) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RandomCubesTest, CornersSpreadAcrossUniverse) {
  const Universe universe(2, 64);
  const auto cubes = RandomCubes(universe, 4, 500, 3);
  std::set<std::pair<Coord, Coord>> corners;
  for (const Box& box : cubes) corners.insert({box.lo.x(), box.lo.y()});
  EXPECT_GT(corners.size(), 300u);  // not degenerate
}

TEST(RandomBoxesTest, RespectsPerAxisLengths) {
  const Universe universe(3, 32);
  const auto boxes = RandomBoxes(universe, {4, 8, 16}, 50, 7);
  for (const Box& box : boxes) {
    EXPECT_TRUE(universe.Contains(box));
    EXPECT_EQ(box.Length(0), 4u);
    EXPECT_EQ(box.Length(1), 8u);
    EXPECT_EQ(box.Length(2), 16u);
  }
}

TEST(FixedRatioTest, Algorithm1SideRatio2D) {
  const Universe universe(2, 1024);
  const double rho = 4.0;
  const auto boxes = FixedRatioBoxes(universe, rho, 50, 20, 11);
  EXPECT_FALSE(boxes.empty());
  for (const Box& box : boxes) {
    EXPECT_TRUE(universe.Contains(box));
    // l1 = floor(l2 / rho).
    EXPECT_EQ(box.Length(0),
              static_cast<Coord>(std::floor(box.Length(1) / rho)));
  }
}

TEST(FixedRatioTest, RhoBelowOneMakesWideBoxes) {
  const Universe universe(2, 1024);
  const auto boxes = FixedRatioBoxes(universe, 0.25, 100, 5, 12);
  for (const Box& box : boxes) {
    EXPECT_GE(box.Length(0), box.Length(1));
  }
}

TEST(FixedRatioTest, PerStepCount) {
  const Universe universe(2, 512);
  const Coord step = 64;
  const size_t per_step = 7;
  const auto boxes = FixedRatioBoxes(universe, 1.0, step, per_step, 13);
  // l2 in {512, 448, ..., 64} plus the appended l2 = 1: 9 valid levels,
  // each contributing per_step boxes.
  EXPECT_EQ(boxes.size(), 9 * per_step);
}

TEST(FixedRatioTest, ExtremeRatiosProduceColumnLikeBoxes) {
  // rho = 1/side is only feasible at l2 = 1 (a full-width row); the
  // generator must still produce it (paper Fig. 6 includes rho = 1/1024).
  const Universe universe(2, 1024);
  const auto wide = FixedRatioBoxes(universe, 1.0 / 1024, 50, 5, 15);
  ASSERT_FALSE(wide.empty());
  for (const Box& box : wide) {
    EXPECT_EQ(box.Length(0), 1024u);
    EXPECT_EQ(box.Length(1), 1u);
  }
  const auto tall = FixedRatioBoxes(universe, 1024.0, 50, 5, 16);
  ASSERT_FALSE(tall.empty());
  for (const Box& box : tall) {
    EXPECT_EQ(box.Length(0), 1u);
    EXPECT_EQ(box.Length(1), 1024u);
  }
}

TEST(FixedRatioTest, ThreeDimensionalSharesL2) {
  const Universe universe(3, 128);
  const auto boxes = FixedRatioBoxes(universe, 2.0, 32, 3, 14);
  for (const Box& box : boxes) {
    EXPECT_EQ(box.Length(1), box.Length(2));
    EXPECT_EQ(box.Length(0),
              static_cast<Coord>(std::floor(box.Length(1) / 2.0)));
  }
}

TEST(RandomCornerBoxesTest, BoundsAndDeterminism) {
  const Universe universe(2, 100);
  const auto a = RandomCornerBoxes(universe, 200, 21);
  const auto b = RandomCornerBoxes(universe, 200, 21);
  ASSERT_EQ(a.size(), 200u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(universe.Contains(a[i]));
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(RandomCornerBoxesTest, ShapesVary) {
  const Universe universe(2, 100);
  const auto boxes = RandomCornerBoxes(universe, 200, 22);
  std::set<std::pair<Coord, Coord>> shapes;
  for (const Box& box : boxes) {
    shapes.insert({box.Length(0), box.Length(1)});
  }
  EXPECT_GT(shapes.size(), 100u);
}

TEST(RandomPointsTest, InBoundsAndDeterministic) {
  const Universe universe(3, 16);
  const auto a = RandomPoints(universe, 1000, 31);
  const auto b = RandomPoints(universe, 1000, 31);
  ASSERT_EQ(a.size(), 1000u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(universe.Contains(a[i]));
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(ClusteredPointsTest, InBoundsAndClustered) {
  const Universe universe(2, 256);
  const auto points = ClusteredPoints(universe, 2000, 4, 10, 41);
  ASSERT_EQ(points.size(), 2000u);
  std::set<std::pair<Coord, Coord>> distinct;
  for (const Cell& p : points) {
    EXPECT_TRUE(universe.Contains(p));
    distinct.insert({p.x(), p.y()});
  }
  // Clustered data occupies far fewer distinct cells than uniform data
  // would (4 clusters x 21x21 box = at most ~1764 cells).
  EXPECT_LT(distinct.size(), 1764u + 1);
}

}  // namespace
}  // namespace onion
