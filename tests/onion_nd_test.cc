// Tests for the generic d-dimensional onion curve: the layer-sequential
// property (the essential invariant all clustering bounds rest on), face
// ordering, and agreement of layer prefixes with side^d - w^d.

#include <gtest/gtest.h>

#include "analysis/boxiter.h"
#include "core/onion_nd.h"

namespace onion {
namespace {

std::unique_ptr<OnionND> MakeOnion(int dims, Coord side) {
  auto result = OnionND::Make(Universe(dims, side));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(OnionNDTest, LayerSequentialInAllDims) {
  struct Case {
    int dims;
    Coord side;
  };
  for (const Case c : {Case{1, 9}, Case{2, 8}, Case{2, 7}, Case{3, 6},
                       Case{3, 5}, Case{4, 4}, Case{5, 3}}) {
    auto curve = MakeOnion(c.dims, c.side);
    Coord prev_layer = 0;
    for (Key key = 0; key < curve->num_cells(); ++key) {
      // In 1D the curve is the natural order, which is NOT layered; skip.
      if (c.dims == 1) break;
      const Coord layer = curve->universe().Layer(curve->CellAt(key));
      ASSERT_GE(layer, prev_layer)
          << c.dims << "D side " << c.side << " key " << key;
      prev_layer = layer;
    }
  }
}

TEST(OnionNDTest, LayerPrefixFormula) {
  // Layer t (0-based) begins at key side^d - w^d with w = side - 2t.
  const int dims = 3;
  const Coord side = 6;
  auto curve = MakeOnion(dims, side);
  for (Coord t = 0; t < (side + 1) / 2; ++t) {
    const Key w = side - 2 * t;
    const Key begin = PowChecked(side, dims) - w * w * w;
    const Cell first = curve->CellAt(begin);
    EXPECT_EQ(curve->universe().Layer(first), t) << "t " << t;
  }
}

TEST(OnionNDTest, OneDimensionalIsIdentity) {
  auto curve = MakeOnion(1, 16);
  for (Key key = 0; key < 16; ++key) {
    EXPECT_EQ(curve->CellAt(key)[0], key);
  }
}

TEST(OnionNDTest, FirstFaceComesFirst) {
  // Within the outermost layer, all cells of the face x0 = 0 precede all
  // other layer-0 cells.
  const int dims = 3;
  const Coord side = 5;
  auto curve = MakeOnion(dims, side);
  const Key face = PowChecked(side, dims - 1);
  for (Key key = 0; key < face; ++key) {
    EXPECT_EQ(curve->CellAt(key)[0], 0u) << key;
  }
  // And the second face is x0 = side - 1.
  for (Key key = face; key < 2 * face; ++key) {
    EXPECT_EQ(curve->CellAt(key)[0], side - 1) << key;
  }
}

TEST(OnionNDTest, HighDimensionalBijectionSpotCheck) {
  // 6D, side 3: 729 cells; full round trip.
  auto curve = MakeOnion(6, 3);
  for (Key key = 0; key < curve->num_cells(); ++key) {
    ASSERT_EQ(curve->IndexOf(curve->CellAt(key)), key);
  }
}

TEST(OnionNDTest, MaxDimsSupported) {
  auto curve = MakeOnion(kMaxDims, 2);
  EXPECT_EQ(curve->num_cells(), 256u);
  for (Key key = 0; key < curve->num_cells(); ++key) {
    ASSERT_EQ(curve->IndexOf(curve->CellAt(key)), key);
  }
}

TEST(OnionNDTest, SideOneUniverse) {
  auto curve = MakeOnion(3, 1);
  EXPECT_EQ(curve->num_cells(), 1u);
  EXPECT_EQ(curve->CellAt(0), Cell(0, 0, 0));
}

}  // namespace
}  // namespace onion
