// Unit tests for the observability primitives in src/obs/: histogram
// bucket math and quantiles, concurrent recording (this test is in the
// tsan job's list on purpose), registry pointer stability, the JSON and
// Prometheus exporters (validated by a tiny JSON well-formedness parser,
// not substring luck), and the bounded trace ring.

#include <cctype>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace onion::obs {
namespace {

// --- a minimal JSON well-formedness checker ---------------------------
// Enough of RFC 8259 to catch a broken exporter: objects, arrays,
// strings with escapes, numbers, true/false/null. Returns true iff the
// whole input is exactly one valid value.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!Digits()) return false;
    if (Peek() == '.') { ++pos_; if (!Digits()) return false; }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) return false;
    }
    return pos_ > start;
  }

  bool Digits() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

TEST(JsonCheckerTest, AcceptsValidRejectsBroken) {
  // Sanity-check the checker itself so the exporter tests mean something.
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("{\"a\":[1,2.5,-3,1e9],\"b\":{\"c\":\"x\\\"y\"}}"));
  EXPECT_TRUE(IsValidJson("[true,false,null]"));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{\"a\":}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1,}"));
  EXPECT_FALSE(IsValidJson("{\"a\":01x}"));
  EXPECT_FALSE(IsValidJson("\"unterminated"));
  EXPECT_FALSE(IsValidJson("{} trailing"));
}

// --- histogram bucket math --------------------------------------------

TEST(HistogramTest, BucketIndexMatchesPowerOfTwoScheme) {
  // Bucket 0 holds only the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  for (size_t k = 1; k < 63; ++k) {
    const uint64_t pow = uint64_t{1} << k;
    EXPECT_EQ(Histogram::BucketIndex(pow), k + 1) << "at 2^" << k;
    EXPECT_EQ(Histogram::BucketIndex(pow - 1), k) << "below 2^" << k;
    EXPECT_EQ(Histogram::BucketIndex(pow + 1), k + 1) << "above 2^" << k;
  }
  // The top bucket is open-ended: everything >= 2^62 clamps to bucket 63.
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 63),
            kHistogramBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            kHistogramBuckets - 1);
}

TEST(HistogramTest, BucketBoundsTileTheValueSpace) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  for (size_t b = 1; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketLowerBound(b), uint64_t{1} << (b - 1));
    // Adjacent buckets meet exactly: lower(b) == upper(b-1).
    EXPECT_EQ(Histogram::BucketLowerBound(b),
              Histogram::BucketUpperBound(b - 1));
    // Every bound maps back into its own bucket.
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(b)), b);
  }
  // The last bucket saturates instead of overflowing 2^64.
  EXPECT_EQ(Histogram::BucketUpperBound(kHistogramBuckets - 1),
            std::numeric_limits<uint64_t>::max());
}

TEST(HistogramTest, QuantilesExactToWithinBucketWidth) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 1000u * 1001u / 2);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // The documented contract: a quantile lands inside the bucket holding
  // the true value, i.e. within a factor of 2.
  EXPECT_GE(s.p50(), 256.0);   // true p50 = 500, bucket [256, 512)
  EXPECT_LE(s.p50(), 512.0);
  EXPECT_GE(s.p99(), 512.0);   // true p99 = 990, bucket [512, 1024)
  EXPECT_LE(s.p99(), 1024.0);
  EXPECT_GE(s.Quantile(1.0), s.Quantile(0.0));  // monotone in q
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(s.Quantile(-1.0), s.Quantile(0.0));
  EXPECT_DOUBLE_EQ(s.Quantile(2.0), s.Quantile(1.0));
}

TEST(HistogramTest, EmptyAndZeroOnlyHistograms) {
  Histogram h;
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.Snapshot().p99(), 0.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().mean(), 0.0);
  h.Record(0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_LE(s.p50(), 1.0);  // everything sits in the [0, 1) bucket
}

TEST(HistogramTest, SnapshotsMergeAndResetClears) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 10; ++i) a.Record(3);    // bucket 2
  for (int i = 0; i < 20; ++i) b.Record(100);  // bucket 7
  HistogramSnapshot merged = a.Snapshot();
  merged += b.Snapshot();
  EXPECT_EQ(merged.count, 30u);
  EXPECT_EQ(merged.sum, 10u * 3 + 20u * 100);
  EXPECT_EQ(merged.buckets[Histogram::BucketIndex(3)], 10u);
  EXPECT_EQ(merged.buckets[Histogram::BucketIndex(100)], 20u);

  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.sum(), 0u);
  EXPECT_EQ(a.Snapshot().buckets[Histogram::BucketIndex(3)], 0u);
}

// Four threads hammer one histogram and one counter; totals must come
// out exact. Run under tsan this also proves Record() is race-free.
TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  Counter c;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) + 1);
        c.Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.sum(), (1u + 2u + 3u + 4u) * kPerThread);
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  uint64_t bucketed = 0;
  for (const uint64_t b : h.Snapshot().buckets) bucketed += b;
  EXPECT_EQ(bucketed, kThreads * kPerThread);
}

TEST(ScopedTimerTest, RecordsOnceAndToleratesNull) {
  Histogram h;
  {
    const ScopedTimer timer(&h);
    EXPECT_LE(timer.start_us(), NowMicros());
  }
  EXPECT_EQ(h.count(), 1u);
  { const ScopedTimer noop(nullptr); }  // must not crash
  EXPECT_EQ(h.count(), 1u);
}

// --- registry ----------------------------------------------------------

TEST(MetricsRegistryTest, CreateOrGetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("reqs");
  Histogram* h1 = registry.histogram("lat_us");
  Gauge* g1 = registry.gauge("depth");
  c1->Add(7);
  h1->Record(42);
  g1->Set(-3);
  // Same name, same object — and the namespaces are per metric type, so
  // a counter and a gauge may share a name without colliding.
  EXPECT_EQ(registry.counter("reqs"), c1);
  EXPECT_EQ(registry.histogram("lat_us"), h1);
  EXPECT_EQ(registry.gauge("depth"), g1);
  EXPECT_NE(registry.counter("other"), c1);
  registry.gauge("reqs")->Set(1);
  EXPECT_EQ(c1->value(), 7u);
  EXPECT_EQ(registry.counter("reqs"), c1);
}

TEST(MetricsRegistryTest, ToJsonIsWellFormedAndEscapes) {
  MetricsRegistry registry;
  EXPECT_TRUE(IsValidJson(registry.ToJson())) << registry.ToJson();

  registry.counter("wal.appends")->Add(12);
  registry.gauge("pool.resident_pages")->Set(99);
  registry.histogram("wal.fsync_us")->Record(250);
  registry.counter("weird\"name\\with\ttrouble")->Increment();
  const std::string json = registry.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"wal.appends\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.resident_pages\":99"), std::string::npos);
  EXPECT_NE(json.find("\"wal.fsync_us\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExportEmitsCumulativeBuckets) {
  EXPECT_EQ(PrometheusName("wal.fsync_us"), "onion_wal_fsync_us");

  MetricsRegistry registry;
  registry.counter("reqs")->Add(3);
  Histogram* h = registry.histogram("lat_us");
  h->Record(1);  // bucket 1, le="1"
  h->Record(1);
  h->Record(5);  // bucket 3, le="7"
  std::string out;
  registry.AppendPrometheus(&out, "table=\"t\"");
  EXPECT_NE(out.find("# TYPE onion_reqs counter\n"), std::string::npos);
  EXPECT_NE(out.find("onion_reqs{table=\"t\"} 3\n"), std::string::npos);
  // Buckets are cumulative and carry the caller's labels plus le=.
  EXPECT_NE(out.find("onion_lat_us_bucket{table=\"t\",le=\"1\"} 2\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("onion_lat_us_bucket{table=\"t\",le=\"7\"} 3\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("onion_lat_us_bucket{table=\"t\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("onion_lat_us_sum{table=\"t\"} 7\n"),
            std::string::npos);
  EXPECT_NE(out.find("onion_lat_us_count{table=\"t\"} 3\n"),
            std::string::npos);
}

// --- trace ring --------------------------------------------------------

TEST(TraceRingTest, KeepsMostRecentEventsOldestFirst) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (uint64_t i = 0; i < 6; ++i) {
    TraceEvent event;
    event.id = ring.NextId();
    event.kind = i % 2 == 0 ? TraceKind::kFlush : TraceKind::kCompaction;
    event.label = "t" + std::to_string(i);
    event.start_us = 1000 + i;
    event.dur_us = 10 * (i + 1);
    event.entries = i;
    ring.Add(event);
  }
  EXPECT_EQ(ring.total_added(), 6u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);  // the two oldest fell off
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 3) << "oldest-first order";
    EXPECT_EQ(events[i].label, "t" + std::to_string(i + 2));
  }
  const std::string json = ring.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"kind\":\"flush\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"compaction\""), std::string::npos);
  EXPECT_EQ(json.find("\"label\":\"t0\""), std::string::npos)
      << "evicted event still present: " << json;
}

TEST(TraceRingTest, KindNamesAreStable) {
  EXPECT_STREQ(TraceKindName(TraceKind::kFlush), "flush");
  EXPECT_STREQ(TraceKindName(TraceKind::kCompaction), "compaction");
  EXPECT_STREQ(TraceKindName(TraceKind::kBatchCommit), "batch_commit");
}

TEST(TraceRingTest, EmptyRingDumpsEmptyArray) {
  const TraceRing ring(8);
  EXPECT_EQ(ring.ToJson(), "[]");
  EXPECT_EQ(ring.Snapshot().size(), 0u);
  EXPECT_EQ(ring.total_added(), 0u);
}

}  // namespace
}  // namespace onion::obs
