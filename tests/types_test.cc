// Tests for the geometric vocabulary (Cell, Box, Universe) and the box
// iteration helpers.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/boxiter.h"
#include "sfc/types.h"

namespace onion {
namespace {

TEST(CellTest, ConstructorsSetDims) {
  const Cell c2(3, 4);
  EXPECT_EQ(c2.dims, 2);
  EXPECT_EQ(c2.x(), 3u);
  EXPECT_EQ(c2.y(), 4u);
  const Cell c3(1, 2, 3);
  EXPECT_EQ(c3.dims, 3);
  EXPECT_EQ(c3.z(), 3u);
}

TEST(CellTest, FilledInitializesAllAxes) {
  const Cell cell = Cell::Filled(4, 7);
  EXPECT_EQ(cell.dims, 4);
  for (int axis = 0; axis < 4; ++axis) EXPECT_EQ(cell[axis], 7u);
}

TEST(CellTest, EqualityComparesDimsAndCoords) {
  EXPECT_EQ(Cell(1, 2), Cell(1, 2));
  EXPECT_NE(Cell(1, 2), Cell(2, 1));
  EXPECT_NE(Cell(1, 2), Cell(1, 2, 0));  // different dims
}

TEST(CellTest, ToString) {
  EXPECT_EQ(Cell(1, 2).ToString(), "(1, 2)");
  EXPECT_EQ(Cell(1, 2, 3).ToString(), "(1, 2, 3)");
}

TEST(BoxTest, FromCornerAndLengths) {
  const Box box = Box::FromCornerAndLengths(Cell(2, 3), {4, 5});
  EXPECT_EQ(box.lo, Cell(2, 3));
  EXPECT_EQ(box.hi, Cell(5, 7));
  EXPECT_EQ(box.Length(0), 4u);
  EXPECT_EQ(box.Length(1), 5u);
}

TEST(BoxTest, CubeHelper) {
  const Box box = Box::Cube(Cell(1, 1, 1), 3);
  EXPECT_EQ(box.hi, Cell(3, 3, 3));
  EXPECT_EQ(box.Volume(), 27u);
}

TEST(BoxTest, VolumeAndSurface2D) {
  const Box box = Box::FromCornerAndLengths(Cell(0, 0), {5, 4});
  EXPECT_EQ(box.Volume(), 20u);
  // 20 - 3*2 interior cells = 14 boundary cells.
  EXPECT_EQ(box.SurfaceCells(), 14u);
}

TEST(BoxTest, SurfaceOfThinBoxIsEverything) {
  const Box box = Box::FromCornerAndLengths(Cell(0, 0), {2, 10});
  EXPECT_EQ(box.SurfaceCells(), box.Volume());
}

TEST(BoxTest, SurfaceCells3D) {
  const Box box = Box::Cube(Cell(0, 0, 0), 4);
  EXPECT_EQ(box.Volume(), 64u);
  EXPECT_EQ(box.SurfaceCells(), 64u - 8u);
}

TEST(BoxTest, Contains) {
  const Box box = Box::FromCornerAndLengths(Cell(1, 1), {3, 3});
  EXPECT_TRUE(box.Contains(Cell(1, 1)));
  EXPECT_TRUE(box.Contains(Cell(3, 3)));
  EXPECT_FALSE(box.Contains(Cell(0, 1)));
  EXPECT_FALSE(box.Contains(Cell(4, 2)));
  EXPECT_FALSE(box.Contains(Cell(2, 2, 2)));  // dim mismatch
}

TEST(UniverseTest, BasicProperties) {
  const Universe u(2, 8);
  EXPECT_EQ(u.dims(), 2);
  EXPECT_EQ(u.side(), 8u);
  EXPECT_EQ(u.num_cells(), 64u);
  EXPECT_EQ(u.NumLayers(), 4u);
}

TEST(UniverseTest, ContainsCellAndBox) {
  const Universe u(2, 4);
  EXPECT_TRUE(u.Contains(Cell(3, 3)));
  EXPECT_FALSE(u.Contains(Cell(4, 0)));
  EXPECT_FALSE(u.Contains(Cell(0, 0, 0)));
  EXPECT_TRUE(u.Contains(Box::Cube(Cell(0, 0), 4)));
  EXPECT_FALSE(u.Contains(Box::Cube(Cell(1, 1), 4)));
}

TEST(UniverseTest, DepthMatchesPaperDefinition) {
  const Universe u(2, 8);
  // Depth(alpha) = min(x+1, side-x, y+1, side-y).
  EXPECT_EQ(u.Depth(Cell(0, 0)), 1u);
  EXPECT_EQ(u.Depth(Cell(7, 7)), 1u);
  EXPECT_EQ(u.Depth(Cell(3, 3)), 4u);
  EXPECT_EQ(u.Depth(Cell(1, 5)), 2u);
  EXPECT_EQ(u.Layer(Cell(1, 5)), 1u);
}

TEST(UniverseTest, OddSideLayers) {
  const Universe u(2, 5);
  EXPECT_EQ(u.NumLayers(), 3u);
  EXPECT_EQ(u.Depth(Cell(2, 2)), 3u);
}

TEST(UniverseTest, PowCheckedComputesPowers) {
  EXPECT_EQ(PowChecked(2, 10), 1024u);
  EXPECT_EQ(PowChecked(10, 3), 1000u);
  EXPECT_EQ(PowChecked(1, 8), 1u);
}

TEST(ForEachCellTest, VisitsEveryCellOnce) {
  const Box box = Box::FromCornerAndLengths(Cell(1, 2), {3, 4});
  std::set<std::pair<Coord, Coord>> seen;
  ForEachCell(box, [&](const Cell& cell) {
    EXPECT_TRUE(box.Contains(cell));
    seen.insert({cell.x(), cell.y()});
  });
  EXPECT_EQ(seen.size(), box.Volume());
}

TEST(ForEachCellTest, SingleCellBox) {
  const Box box = Box::FromCornerAndLengths(Cell(5, 5), {1, 1});
  int visits = 0;
  ForEachCell(box, [&](const Cell& cell) {
    EXPECT_EQ(cell, Cell(5, 5));
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(ForEachCellTest, ThreeDimensional) {
  const Box box = Box::Cube(Cell(0, 0, 0), 3);
  uint64_t visits = 0;
  ForEachCell(box, [&](const Cell&) { ++visits; });
  EXPECT_EQ(visits, 27u);
}

// Boundary enumeration must match the brute-force definition for a variety
// of box shapes in 2D..4D.
TEST(ForEachBoundaryCellTest, MatchesBruteForce) {
  struct Case {
    int dims;
    std::array<Coord, kMaxDims> corner;
    std::array<Coord, kMaxDims> lengths;
  };
  const std::vector<Case> cases = {
      {2, {0, 0}, {5, 4}},  {2, {3, 1}, {1, 6}},  {2, {2, 2}, {2, 2}},
      {2, {0, 0}, {1, 1}},  {3, {0, 0, 0}, {4, 3, 5}},
      {3, {1, 1, 1}, {2, 2, 2}}, {3, {0, 2, 1}, {1, 3, 4}},
      {4, {0, 0, 0, 0}, {3, 3, 2, 4}},
  };
  for (const Case& c : cases) {
    Cell corner;
    corner.dims = c.dims;
    for (int axis = 0; axis < c.dims; ++axis) corner[axis] = c.corner[axis];
    const Box box = Box::FromCornerAndLengths(corner, c.lengths);

    std::set<std::vector<Coord>> expected;
    ForEachCell(box, [&](const Cell& cell) {
      for (int axis = 0; axis < c.dims; ++axis) {
        if (cell[axis] == box.lo[axis] || cell[axis] == box.hi[axis]) {
          std::vector<Coord> key(cell.coords.begin(),
                                 cell.coords.begin() + c.dims);
          expected.insert(key);
          return;
        }
      }
    });

    std::set<std::vector<Coord>> actual;
    uint64_t visits = 0;
    ForEachBoundaryCell(box, [&](const Cell& cell) {
      std::vector<Coord> key(cell.coords.begin(),
                             cell.coords.begin() + c.dims);
      actual.insert(key);
      ++visits;
    });
    EXPECT_EQ(actual, expected) << box.ToString();
    EXPECT_EQ(visits, actual.size()) << "duplicate visits for "
                                     << box.ToString();
    EXPECT_EQ(visits, box.SurfaceCells()) << box.ToString();
  }
}

}  // namespace
}  // namespace onion
