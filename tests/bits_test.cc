// Cross-path equivalence proofs for the interleave kernels (sfc/bits.h):
// the BMI2 pdep/pext path, the magic-number path, the lookup-table path,
// and the dispatched entry points must all reproduce the scalar reference
// bit for bit — exhaustively for small widths, randomized for large ones.

#include "sfc/bits.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sfc/morton.h"

namespace onion::bits {
namespace {

// Every kernel pair under test for a given (dims, bits), driven through
// one comparison helper so each case checks all available paths at once.
void ExpectAllPathsMatch(const Coord* coords, int dims, int bits) {
  const Key want = InterleaveScalar(coords, dims, bits);
  EXPECT_EQ(want, Interleave(coords, dims, bits))
      << "dispatched interleave diverges at dims=" << dims;
  if (dims == 2 && bits <= 32) {
    EXPECT_EQ(want, InterleaveMagic2(coords));
    EXPECT_EQ(want, InterleaveLut2(coords));
  }
  if (dims == 3 && bits <= 21) {
    EXPECT_EQ(want, InterleaveMagic3(coords));
    EXPECT_EQ(want, InterleaveLut3(coords));
  }
#if defined(ONION_BITS_HAVE_BMI2_KERNELS)
  if (HasBmi2()) {
    EXPECT_EQ(want, InterleaveBmi2(coords, dims, bits));
  }
#endif

  // And every decode path must invert it.
  Coord back[kMaxDims] = {};
  DeinterleaveScalar(want, dims, bits, back);
  for (int i = 0; i < dims; ++i) EXPECT_EQ(coords[i], back[i]);
  Coord dispatched[kMaxDims] = {};
  Deinterleave(want, dims, bits, dispatched);
  for (int i = 0; i < dims; ++i) EXPECT_EQ(coords[i], dispatched[i]);
  if (dims == 2 && bits <= 32) {
    Coord m[2];
    DeinterleaveMagic2(want, m);
    EXPECT_EQ(coords[0], m[0]);
    EXPECT_EQ(coords[1], m[1]);
    Coord l[2];
    DeinterleaveLut2(want, l);
    EXPECT_EQ(coords[0], l[0]);
    EXPECT_EQ(coords[1], l[1]);
  }
  if (dims == 3 && bits <= 21) {
    Coord m[3];
    DeinterleaveMagic3(want, m);
    Coord l[3];
    DeinterleaveLut3(want, l);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(coords[i], m[i]);
      EXPECT_EQ(coords[i], l[i]);
    }
  }
#if defined(ONION_BITS_HAVE_BMI2_KERNELS)
  if (HasBmi2()) {
    Coord b[kMaxDims] = {};
    DeinterleaveBmi2(want, dims, bits, b);
    for (int i = 0; i < dims; ++i) EXPECT_EQ(coords[i], b[i]);
  }
#endif
}

// Exhaustive 2D: every coordinate pair for bits <= 8 would be 2^32 cases;
// exhaust each axis independently against every "stress" value of the
// other (all-ones, alternating, zero), which covers every bit position and
// every carry-free interaction, then exhaust both axes jointly for
// bits <= 4 (65k cases).
TEST(BitsTest, Exhaustive2D) {
  for (int bits = 1; bits <= 8; ++bits) {
    const Coord limit = Coord{1} << bits;
    const Coord stress[] = {0, limit - 1,
                            static_cast<Coord>(0x55555555u & (limit - 1)),
                            static_cast<Coord>(0xaaaaaaaau & (limit - 1))};
    for (Coord a = 0; a < limit; ++a) {
      for (const Coord s : stress) {
        const Coord xy[2] = {a, s};
        ExpectAllPathsMatch(xy, 2, bits);
        const Coord yx[2] = {s, a};
        ExpectAllPathsMatch(yx, 2, bits);
      }
    }
  }
  for (Coord a = 0; a < 16; ++a) {
    for (Coord b = 0; b < 16; ++b) {
      const Coord xy[2] = {a, b};
      ExpectAllPathsMatch(xy, 2, 4);
    }
  }
}

TEST(BitsTest, Exhaustive3D) {
  // Joint exhaustion for bits <= 4: 16^3 = 4096 cases per width.
  for (int bits = 1; bits <= 4; ++bits) {
    const Coord limit = Coord{1} << bits;
    for (Coord a = 0; a < limit; ++a) {
      for (Coord b = 0; b < limit; ++b) {
        for (Coord c = 0; c < limit; ++c) {
          const Coord xyz[3] = {a, b, c};
          ExpectAllPathsMatch(xyz, 3, bits);
        }
      }
    }
  }
  // Per-axis exhaustion at 8 bits against stress values of the others.
  for (Coord a = 0; a < 256; ++a) {
    const Coord cases[][3] = {
        {a, 0, 255}, {255, a, 0}, {0, 255, a}, {a, a, a}, {a, 0x55, 0xaa}};
    for (const auto& xyz : cases) ExpectAllPathsMatch(xyz, 3, 8);
  }
}

TEST(BitsTest, RandomizedWideWidthsAllDims) {
  Rng rng(20260808);
  for (int dims = 1; dims <= kMaxDims; ++dims) {
    const int max_bits = 64 / dims > 32 ? 32 : 64 / dims;
    for (int bits = 1; bits <= max_bits; ++bits) {
      const uint64_t limit = uint64_t{1} << bits;
      for (int trial = 0; trial < 64; ++trial) {
        Coord coords[kMaxDims] = {};
        for (int i = 0; i < dims; ++i) {
          coords[i] = static_cast<Coord>(rng.UniformInclusive(limit - 1));
        }
        ExpectAllPathsMatch(coords, dims, bits);
      }
    }
  }
}

// The dispatched entry points must apply the scalar truncation rule to
// out-of-range input (coordinates wider than `bits`, codes wider than
// dims*bits) — the fast kernels otherwise see bits the reference ignores.
TEST(BitsTest, DispatchTruncatesLikeScalar) {
  Rng rng(42);
  for (int dims = 2; dims <= 4; ++dims) {
    for (int trial = 0; trial < 128; ++trial) {
      const int bits = 1 + static_cast<int>(rng.UniformInclusive(
                               static_cast<uint64_t>(64 / dims - 1)));
      Coord raw[kMaxDims] = {};
      for (int i = 0; i < dims; ++i) {
        raw[i] = static_cast<Coord>(rng.UniformInclusive(~0u));  // any value
      }
      EXPECT_EQ(InterleaveScalar(raw, dims, bits),
                Interleave(raw, dims, bits));
      const Key code = rng.UniformInclusive(~0ull);
      Coord a[kMaxDims] = {};
      Coord b[kMaxDims] = {};
      DeinterleaveScalar(code, dims, bits, a);
      Deinterleave(code, dims, bits, b);
      for (int i = 0; i < dims; ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

// MortonEncode/Decode must remain the scalar reference function after the
// rewire onto the dispatched kernels.
TEST(BitsTest, MortonStaysOnReferenceLayout) {
  Rng rng(7);
  for (int dims = 1; dims <= kMaxDims; ++dims) {
    const int bits = 64 / dims > 8 ? 8 : 64 / dims;
    for (int trial = 0; trial < 256; ++trial) {
      Cell cell;
      cell.dims = dims;
      for (int i = 0; i < dims; ++i) {
        cell[i] =
            static_cast<Coord>(rng.UniformInclusive((1ull << bits) - 1));
      }
      const Key code = MortonEncode(cell, bits);
      EXPECT_EQ(InterleaveScalar(cell.coords.data(), dims, bits), code);
      EXPECT_EQ(cell, MortonDecode(code, dims, bits));
    }
  }
}

}  // namespace
}  // namespace onion::bits
