// Large-universe sampled tests: the exhaustive property sweeps stop at
// side 27, so these guard against overflow and float-precision bugs that
// only appear at realistic scales (integer sqrt/cbrt layer search at
// side 2^10+, 64-bit key assembly, analytic decomposition arithmetic).

#include <gtest/gtest.h>

#include "analysis/clustering.h"
#include "common/rng.h"
#include "index/decompose.h"
#include "index/pager.h"
#include "sfc/registry.h"

namespace onion {
namespace {

Cell RandomCell(const Universe& universe, Rng* rng) {
  Cell cell = Cell::Filled(universe.dims(), 0);
  for (int axis = 0; axis < universe.dims(); ++axis) {
    cell[axis] = static_cast<Coord>(rng->UniformInclusive(universe.side() - 1));
  }
  return cell;
}

TEST(LargeScaleTest, SampledRoundTrip2D) {
  Rng rng(1);
  for (const std::string& name : KnownCurveNames()) {
    const Coord side = name == "peano" ? 729 : 1024;
    auto result = MakeCurve(name, Universe(2, side));
    ASSERT_TRUE(result.ok()) << name;
    auto curve = std::move(result).value();
    for (int i = 0; i < 5000; ++i) {
      const Cell cell = RandomCell(curve->universe(), &rng);
      const Key key = curve->IndexOf(cell);
      ASSERT_LT(key, curve->num_cells()) << name;
      ASSERT_EQ(curve->CellAt(key), cell) << name << " " << cell.ToString();
      const Key probe = rng.UniformInclusive(curve->num_cells() - 1);
      ASSERT_EQ(curve->IndexOf(curve->CellAt(probe)), probe) << name;
    }
  }
}

TEST(LargeScaleTest, SampledRoundTrip3D) {
  Rng rng(2);
  for (const std::string name :
       {"onion", "onion_nd", "hilbert", "zorder", "graycode", "snake"}) {
    auto curve = MakeCurve(name, Universe(3, 256)).value();
    for (int i = 0; i < 5000; ++i) {
      const Cell cell = RandomCell(curve->universe(), &rng);
      ASSERT_EQ(curve->CellAt(curve->IndexOf(cell)), cell)
          << name << " " << cell.ToString();
      const Key probe = rng.UniformInclusive(curve->num_cells() - 1);
      ASSERT_EQ(curve->IndexOf(curve->CellAt(probe)), probe) << name;
    }
  }
}

TEST(LargeScaleTest, OnionOddAndNonPowerSides) {
  Rng rng(3);
  for (const Coord side : {999u, 1023u, 2048u, 4096u}) {
    auto curve = MakeCurve("onion", Universe(2, side)).value();
    for (int i = 0; i < 2000; ++i) {
      const Cell cell = RandomCell(curve->universe(), &rng);
      ASSERT_EQ(curve->CellAt(curve->IndexOf(cell)), cell)
          << "side " << side << " " << cell.ToString();
    }
    // Layer-boundary keys are the hardest cases for the integer sqrt.
    for (Coord t = 0; t < curve->universe().NumLayers(); t += 97) {
      const Key w = side - 2 * t;
      const Key begin = static_cast<Key>(side) * side - w * w;
      ASSERT_EQ(curve->IndexOf(curve->CellAt(begin)), begin) << side;
      if (begin > 0) {
        ASSERT_EQ(curve->IndexOf(curve->CellAt(begin - 1)), begin - 1) << side;
      }
    }
  }
}

TEST(LargeScaleTest, Onion3DLayerBoundaries) {
  const Coord side = 512;
  auto curve = MakeCurve("onion", Universe(3, side)).value();
  for (Coord t = 0; t < side / 2; t += 31) {
    const Key w = side - 2 * t;
    const Key begin = static_cast<Key>(side) * side * side - w * w * w;
    ASSERT_EQ(curve->IndexOf(curve->CellAt(begin)), begin) << "t " << t;
    ASSERT_EQ(curve->CellAt(begin), Cell(t, t, t)) << "t " << t;
    if (begin > 0) {
      ASSERT_EQ(curve->IndexOf(curve->CellAt(begin - 1)), begin - 1)
          << "t " << t;
    }
  }
}

TEST(LargeScaleTest, Onion2DAnalyticDecompositionAtScale) {
  Rng rng(4);
  const Coord side = 1024;
  auto result = Onion2D::Make(Universe(2, side));
  ASSERT_TRUE(result.ok());
  const auto& onion = *result.value();
  for (int trial = 0; trial < 15; ++trial) {
    auto a = static_cast<Coord>(rng.UniformInclusive(side - 1));
    auto b = static_cast<Coord>(rng.UniformInclusive(side - 1));
    auto c = static_cast<Coord>(rng.UniformInclusive(side - 1));
    auto d = static_cast<Coord>(rng.UniformInclusive(side - 1));
    const Box box(Cell(std::min(a, b), std::min(c, d)),
                  Cell(std::max(a, b), std::max(c, d)));
    const auto analytic = DecomposeOnion2DAnalytic(onion, box);
    const auto scanned = DecomposeByClusterScan(onion, box);
    ASSERT_EQ(analytic, scanned) << box.ToString();
  }
}

TEST(LargeScaleTest, HierarchicalDecompositionAtScale) {
  Rng rng(5);
  const Coord side = 1024;
  for (const std::string name : {"hilbert", "zorder"}) {
    auto curve = MakeCurve(name, Universe(2, side)).value();
    for (int trial = 0; trial < 10; ++trial) {
      auto a = static_cast<Coord>(rng.UniformInclusive(side - 1));
      auto b = static_cast<Coord>(rng.UniformInclusive(side - 1));
      auto c = static_cast<Coord>(rng.UniformInclusive(side - 1));
      auto d = static_cast<Coord>(rng.UniformInclusive(side - 1));
      const Box box(Cell(std::min(a, b), std::min(c, d)),
                    Cell(std::max(a, b), std::max(c, d)));
      const auto ranges = DecomposeHierarchical(*curve, box);
      // Range count equals the clustering number; total size equals the
      // volume; ranges sorted and disjoint.
      uint64_t covered = 0;
      for (size_t i = 0; i < ranges.size(); ++i) {
        ASSERT_LE(ranges[i].lo, ranges[i].hi);
        if (i > 0) {
          ASSERT_GT(ranges[i].lo, ranges[i - 1].hi + 1);
        }
        covered += ranges[i].hi - ranges[i].lo + 1;
      }
      ASSERT_EQ(covered, box.Volume()) << name << " " << box.ToString();
      ASSERT_EQ(ranges.size(), ClusteringNumber(*curve, box)) << name;
    }
  }
}

TEST(LargeScaleTest, SixtyFourBitKeySpace) {
  // 8D side 16 = 2^32 cells would be too slow to enumerate, but key
  // arithmetic must be exact; spot-check the extremes on 4D side 256
  // (2^32 cells) for the curves supporting it.
  const Universe universe(4, 256);
  for (const std::string name : {"onion_nd", "hilbert_nd", "zorder",
                                  "graycode", "snake", "row_major"}) {
    auto curve = MakeCurve(name, universe).value();
    EXPECT_EQ(curve->num_cells(), uint64_t{1} << 32);
    // First, last, and a few random keys round-trip.
    Rng rng(6);
    const std::vector<Key> probes = {
        0, curve->num_cells() - 1, rng.Next() & 0xffffffffull,
        rng.Next() & 0xffffffffull};
    for (const Key key : probes) {
      ASSERT_EQ(curve->IndexOf(curve->CellAt(key)), key) << name;
    }
  }
}

TEST(ContractDeathTest, UniverseOverflowAborts) {
  EXPECT_DEATH(Universe(8, 1024), "overflows");
}

TEST(ContractDeathTest, BoxCornersOutOfOrderAbort) {
  EXPECT_DEATH(Box(Cell(5, 5), Cell(4, 6)), "out of order");
}

void BuildUnsortedRun() {
  std::vector<PackedRun::Entry> entries = {{5, 0}, {3, 1}};
  PackedRun run(std::move(entries), 4);
}

TEST(ContractDeathTest, PackedRunRequiresSortedInput) {
  EXPECT_DEATH(BuildUnsortedRun(), "sorted");
}

}  // namespace
}  // namespace onion
