// Negative compile check for the thread-safety annotations — NOT a gtest
// binary (CMake builds it as an object target and, under Clang, runs it
// through -fsyntax-only twice via ctest):
//
//   thread_safety_compile_positive  compiles this file as is — the guarded
//                                   accesses below must be warning-free.
//   thread_safety_compile_negative  compiles with -DONION_TS_EXPECT_FAIL,
//                                   unguarding one read; it MUST fail under
//                                   -Werror=thread-safety (WILL_FAIL TRUE),
//                                   proving the analysis actually fires —
//                                   i.e. the ONION_* macros did not silently
//                                   expand to nothing under the enforcing
//                                   compiler.
//
// If the negative test ever starts passing, the annotations have gone dead
// (macro rename, wrapper regression, flag typo) and every other file's
// "warning-free" status means nothing.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace onion::ts_check {

/// The smallest guarded class: one mutex, one ONION_GUARDED_BY field, one
/// ONION_REQUIRES helper — the three annotation kinds the engine leans on.
class Account {
 public:
  void Deposit(int amount);
  int Read() const;

 private:
  int BalanceLocked() const ONION_REQUIRES(mu_);

  mutable Mutex mu_;
  int balance_ ONION_GUARDED_BY(mu_) = 0;
};

void Account::Deposit(int amount) {
  const MutexLock lock(mu_);
  balance_ += amount;
}

int Account::BalanceLocked() const { return balance_; }

int Account::Read() const {
#ifdef ONION_TS_EXPECT_FAIL
  // Deliberately unguarded: reading balance_ without mu_ must be rejected
  // by -Werror=thread-safety.
  return balance_;
#else
  const MutexLock lock(mu_);
  return BalanceLocked();
#endif
}

}  // namespace onion::ts_check
