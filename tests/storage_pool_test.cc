// Tests for the multi-source buffer pool: scans against a reference over
// disk-backed segments, LRU eviction across several sources, per-source
// sequential-vs-seek accounting, fence-only termination (no page I/O past
// the range), and Drop() of retired sources.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/mem_source.h"
#include "storage/segment.h"

namespace onion::storage {
namespace {

std::unique_ptr<SegmentReader> MakeSegment(const std::string& name,
                                           const std::vector<Key>& keys,
                                           uint32_t entries_per_page) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  SegmentWriter writer(path, entries_per_page);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(writer.Add(keys[i], i).ok());
  }
  EXPECT_TRUE(writer.Finish().ok());
  auto reader = SegmentReader::Open(path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return std::move(reader).value();
}

std::vector<Key> SequentialKeys(size_t n) {
  std::vector<Key> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = i;
  return keys;
}

TEST(StoragePoolTest, DiskScanMatchesReference) {
  Rng rng(5);
  std::vector<Key> keys;
  for (int i = 0; i < 600; ++i) keys.push_back(rng.UniformInclusive(1999));
  std::sort(keys.begin(), keys.end());
  auto segment = MakeSegment("pool_ref.sfc", keys, 16);
  BufferPool pool(8);
  for (int trial = 0; trial < 50; ++trial) {
    const Key lo = rng.UniformInclusive(1999);
    const Key hi = lo + rng.UniformInclusive(300);
    std::vector<Key> expected;
    for (const Key key : keys) {
      if (key >= lo && key <= hi) expected.push_back(key);
    }
    std::vector<Key> actual;
    pool.ScanRange(*segment, lo, hi,
                   [&](Key key, uint64_t) { actual.push_back(key); });
    ASSERT_EQ(actual, expected) << "[" << lo << ", " << hi << "]";
  }
}

TEST(StoragePoolTest, CachesAcrossMultipleSources) {
  auto seg_a = MakeSegment("pool_a.sfc", SequentialKeys(40), 10);
  auto seg_b = MakeSegment("pool_b.sfc", SequentialKeys(40), 10);
  BufferPool pool(16);  // both segments fit
  pool.ScanRange(*seg_a, 0, 39, [](Key, uint64_t) {});
  pool.ScanRange(*seg_b, 0, 39, [](Key, uint64_t) {});
  EXPECT_EQ(pool.stats().page_reads, 8u);
  pool.ScanRange(*seg_a, 0, 39, [](Key, uint64_t) {});
  pool.ScanRange(*seg_b, 0, 39, [](Key, uint64_t) {});
  EXPECT_EQ(pool.stats().page_reads, 8u);  // all hits the second time
  EXPECT_EQ(pool.stats().cache_hits, 8u);
  EXPECT_EQ(pool.resident_pages(), 8u);
}

TEST(StoragePoolTest, LruEvictsAcrossSourcesUnderPressure) {
  auto seg_a = MakeSegment("pool_ev_a.sfc", SequentialKeys(40), 10);
  auto seg_b = MakeSegment("pool_ev_b.sfc", SequentialKeys(40), 10);
  BufferPool pool(3);  // 3 of the 8 total pages fit
  pool.ScanRange(*seg_a, 0, 39, [](Key, uint64_t) {});
  pool.ScanRange(*seg_b, 0, 39, [](Key, uint64_t) {});
  EXPECT_EQ(pool.resident_pages(), 3u);
  // A second full sweep misses everywhere again.
  pool.ScanRange(*seg_a, 0, 39, [](Key, uint64_t) {});
  pool.ScanRange(*seg_b, 0, 39, [](Key, uint64_t) {});
  EXPECT_EQ(pool.stats().page_reads, 16u);
  EXPECT_EQ(pool.stats().cache_hits, 0u);
}

TEST(StoragePoolTest, SwitchingSourcesCostsASeek) {
  auto seg_a = MakeSegment("pool_seek_a.sfc", SequentialKeys(40), 10);
  auto seg_b = MakeSegment("pool_seek_b.sfc", SequentialKeys(40), 10);
  BufferPool pool(16);
  pool.ScanRange(*seg_a, 0, 39, [](Key, uint64_t) {});  // 4 seq reads: 1 seek
  EXPECT_EQ(pool.stats().seeks, 1u);
  pool.ScanRange(*seg_b, 0, 39, [](Key, uint64_t) {});  // switch: +1 seek
  EXPECT_EQ(pool.stats().seeks, 2u);
  // Interleaving page-by-page seeks every time: pages alternate sources.
  pool.ResetStats();
  BufferPool cold(16);
  for (uint64_t page = 0; page < 4; ++page) {
    cold.Fetch(*seg_a, page);
    cold.Fetch(*seg_b, page);
  }
  EXPECT_EQ(cold.stats().page_reads, 8u);
  EXPECT_EQ(cold.stats().seeks, 8u);
}

TEST(StoragePoolTest, FenceIndexStopsScanWithoutExtraPageIo) {
  // Pages of 10: the range [0, 9] is exactly page 0; the fence of page 1
  // must terminate the scan without fetching page 1.
  auto segment = MakeSegment("pool_fence.sfc", SequentialKeys(100), 10);
  BufferPool pool(16);
  pool.ScanRange(*segment, 0, 9, [](Key, uint64_t) {});
  EXPECT_EQ(pool.stats().page_reads, 1u);
  EXPECT_EQ(pool.stats().entries_read, 10u);
  // Range starting past the last key reads nothing at all.
  pool.ResetStats();
  pool.ScanRange(*segment, 200, 300, [](Key, uint64_t) {});
  EXPECT_EQ(pool.stats().page_reads, 0u);
  EXPECT_EQ(pool.stats().entries_read, 0u);
}

TEST(StoragePoolTest, DropRemovesOnlyThatSource) {
  auto seg_a = MakeSegment("pool_drop_a.sfc", SequentialKeys(40), 10);
  auto seg_b = MakeSegment("pool_drop_b.sfc", SequentialKeys(40), 10);
  BufferPool pool(16);
  pool.ScanRange(*seg_a, 0, 39, [](Key, uint64_t) {});
  pool.ScanRange(*seg_b, 0, 39, [](Key, uint64_t) {});
  EXPECT_EQ(pool.resident_pages(), 8u);
  pool.Drop(seg_a.get());
  EXPECT_EQ(pool.resident_pages(), 4u);
  pool.ResetStats();
  pool.ScanRange(*seg_b, 0, 39, [](Key, uint64_t) {});  // still cached
  EXPECT_EQ(pool.stats().cache_hits, 4u);
  EXPECT_EQ(pool.stats().page_reads, 0u);
}

TEST(StoragePoolTest, MemAndDiskSourcesAreInterchangeable) {
  Rng rng(21);
  std::vector<Key> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.UniformInclusive(499));
  std::sort(keys.begin(), keys.end());
  std::vector<Entry> entries;
  for (size_t i = 0; i < keys.size(); ++i) entries.push_back({keys[i], i});
  const MemPageSource mem(entries, 16);
  auto disk = MakeSegment("pool_mixed.sfc", keys, 16);
  BufferPool mem_pool(8);
  BufferPool disk_pool(8);
  for (int trial = 0; trial < 30; ++trial) {
    const Key lo = rng.UniformInclusive(499);
    const Key hi = lo + rng.UniformInclusive(120);
    std::vector<Key> from_mem;
    std::vector<Key> from_disk;
    mem_pool.ScanRange(mem, lo, hi,
                       [&](Key key, uint64_t) { from_mem.push_back(key); });
    disk_pool.ScanRange(*disk, lo, hi,
                        [&](Key key, uint64_t) { from_disk.push_back(key); });
    ASSERT_EQ(from_mem, from_disk);
  }
  // Identical geometry implies identical physical accounting.
  EXPECT_EQ(mem_pool.stats().page_reads, disk_pool.stats().page_reads);
  EXPECT_EQ(mem_pool.stats().seeks, disk_pool.stats().seeks);
  EXPECT_EQ(mem_pool.stats().cache_hits, disk_pool.stats().cache_hits);
}

TEST(StoragePoolTest, ReadaheadBatchesASequentialScan) {
  // 8 pages, readahead budget 4: a cold sequential sweep costs two
  // physical transfers (pages 0-4, then 5-7) instead of eight.
  auto segment = MakeSegment("pool_ra.sfc", SequentialKeys(80), 10);
  BufferPool pool(16, /*readahead_pages=*/4);
  pool.ScanRange(*segment, 0, 79, [](Key, uint64_t) {});
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.page_reads, 8u);
  EXPECT_EQ(stats.readahead_batched_reads, 2u);
  EXPECT_EQ(stats.readahead_pages, 6u);
  EXPECT_EQ(stats.readahead_hits, 6u);  // every prefetched page was used
  EXPECT_EQ(stats.cache_hits, 6u);
  // The second transfer starts right after the first ends: one seek total.
  EXPECT_EQ(stats.seeks, 1u);
  EXPECT_EQ(stats.readahead_wasted, 0u);
}

TEST(StoragePoolTest, ReadaheadScanMatchesReference) {
  Rng rng(31);
  std::vector<Key> keys;
  for (int i = 0; i < 600; ++i) keys.push_back(rng.UniformInclusive(1999));
  std::sort(keys.begin(), keys.end());
  auto segment = MakeSegment("pool_ra_ref.sfc", keys, 16);
  BufferPool plain(8);
  BufferPool batched(8, /*readahead_pages=*/4);
  for (int trial = 0; trial < 50; ++trial) {
    const Key lo = rng.UniformInclusive(1999);
    const Key hi = lo + rng.UniformInclusive(300);
    std::vector<Key> expected;
    std::vector<Key> actual;
    plain.ScanRange(*segment, lo, hi,
                    [&](Key key, uint64_t) { expected.push_back(key); });
    batched.ScanRange(*segment, lo, hi,
                      [&](Key key, uint64_t) { actual.push_back(key); });
    ASSERT_EQ(actual, expected) << "[" << lo << ", " << hi << "]";
  }
  // Readahead changes how pages arrive, never how many entries do.
  EXPECT_EQ(batched.stats().entries_read, plain.stats().entries_read);
}

TEST(StoragePoolTest, ReadaheadStopsAtResidentPages) {
  auto segment = MakeSegment("pool_ra_stop.sfc", SequentialKeys(80), 10);
  BufferPool pool(16, /*readahead_pages=*/4);
  pool.Fetch(*segment, 4);  // resident: 4..7 (readahead stops at the end)
  EXPECT_EQ(pool.stats().page_reads, 4u);
  pool.Fetch(*segment, 3);  // the run must stop before resident page 4
  EXPECT_EQ(pool.stats().page_reads, 5u);
  EXPECT_EQ(pool.stats().readahead_batched_reads, 1u);
}

TEST(StoragePoolTest, ReadaheadCountsWaste) {
  auto segment = MakeSegment("pool_ra_waste.sfc", SequentialKeys(80), 10);
  // Drop of never-touched prefetched pages is counted.
  BufferPool pool(16, /*readahead_pages=*/4);
  pool.Fetch(*segment, 0);  // prefetches pages 1..4
  pool.Drop(segment.get());
  EXPECT_EQ(pool.stats().readahead_wasted, 4u);
  // Eviction of never-touched prefetched pages is counted too.
  BufferPool tight(3, /*readahead_pages=*/2);
  tight.Fetch(*segment, 0);  // resident: 0,1,2 (1 and 2 prefetched)
  tight.Fetch(*segment, 5);  // resident: 5,6,7 — evicts 0,1,2
  EXPECT_EQ(tight.stats().readahead_wasted, 2u);
  EXPECT_EQ(tight.evictions(), 3u);
}

// A memory source whose zone maps exclude a fixed page set — what a
// segment's per-page cell bounding boxes do, reduced to its essence.
class ZonedMemSource final : public MemPageSource {
 public:
  ZonedMemSource(std::vector<Entry> entries, uint32_t entries_per_page,
                 std::vector<uint64_t> excluded)
      : MemPageSource(std::move(entries), entries_per_page),
        excluded_(std::move(excluded)) {}

  bool PageMayIntersect(uint64_t page, const Box&) const override {
    return std::find(excluded_.begin(), excluded_.end(), page) ==
           excluded_.end();
  }

 private:
  std::vector<uint64_t> excluded_;
};

TEST(StoragePoolTest, ReadaheadNeverPrefetchesZoneExcludedPages) {
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 80; ++i) entries.push_back({i, i});
  const ZonedMemSource source(entries, 10, /*excluded=*/{2});
  const Box box(Cell(0, 0), Cell(7, 7));
  BufferPool pool(16, /*readahead_pages=*/4);
  Status status;
  // The run from page 0 must stop at excluded page 2: pages 0 and 1 only.
  pool.Fetch(source, 0, nullptr, &status, &box);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(pool.stats().page_reads, 2u);
  EXPECT_EQ(pool.resident_pages(), 2u);
  // Without a box the zone map cannot apply and the full run is read.
  BufferPool unfiltered(16, /*readahead_pages=*/4);
  unfiltered.Fetch(source, 0, nullptr, &status);
  EXPECT_EQ(unfiltered.stats().page_reads, 5u);
}

}  // namespace
}  // namespace onion::storage
